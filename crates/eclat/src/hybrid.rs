//! The container-era Eclat recursion: equivalence-class DFS over
//! [`VerticalHybridDb`]'s adaptive per-chunk tid-sets (DESIGN.md §16).
//!
//! The lattice walk is *identical* to the bit-matrix miner's
//! ([`crate::mine`]) — same class order, same minsup filter, same
//! cooperative-stop points — and supports are cardinalities, which no
//! representation can change; that is why swapping the storage keeps the
//! emitted byte sequence identical at every thread count.
//!
//! The intersections themselves dispatch per chunk pair (galloping
//! array∩array, word-wise SIMD bitmap∩bitmap, probe, run merges — see
//! [`also::containers`]); ad-hoc k-way supports go through
//! [`VerticalHybridDb::support_of`], the one-pass
//! [`TidSet::multi_and_count_with`] fold that needs no chained pairwise
//! temporaries.

use crate::tidlist::SparseStats;
use also::containers::TidSet;
use fpm::control::MineControl;
use fpm::vertical::VerticalHybridDb;
use fpm::PatternSink;
use memsim::Probe;

/// A member of the current equivalence class: item rank, hybrid tid-set,
/// cached support.
struct HybridCand {
    item: u32,
    set: TidSet,
    support: u64,
}

/// The hybrid-container DFS driver, mirroring `Miner` for the bit matrix.
pub(crate) struct HybridMiner<'a, P, S> {
    pub(crate) minsup: u64,
    pub(crate) probe: &'a mut P,
    pub(crate) sink: &'a mut S,
    pub(crate) stats: SparseStats,
    /// Cooperative stop signal, polled once per class member.
    pub(crate) control: &'a MineControl,
    /// Set when a control check cut the recursion: the emitted sequence
    /// is a strict prefix of the full serial output.
    pub(crate) cut: bool,
    pub(crate) prefix: Vec<u32>,
}

/// Charges a tid-set's storage to the memory model: one streamed pass
/// per chunk payload (arrays, bitmap words, or run intervals).
fn probe_set<P: Probe>(probe: &mut P, set: &TidSet, write: bool) {
    for (_, c) in set.chunks() {
        let (addr, len) = if let Some(a) = c.as_array() {
            memsim::slice_span(a)
        } else if let Some(w) = c.as_bitmap() {
            memsim::slice_span(&w[..])
        } else if let Some(r) = c.as_runs() {
            (r.as_ptr() as usize, std::mem::size_of_val(r))
        } else {
            continue;
        };
        if write {
            probe.write(addr, len);
        } else {
            probe.read(addr, len);
        }
    }
}

impl<P: Probe, S: PatternSink> HybridMiner<'_, P, S> {
    /// Serial full run: every root subtree in rank order.
    pub(crate) fn run(&mut self, db: &VerticalHybridDb) {
        for r in 0..db.n_items() as u32 {
            self.mine_subtree(db, r);
        }
    }

    /// Mines the subtree of itemsets whose first (lowest-rank) item is
    /// `r` — the task granularity `EclatSpine` hands to `fpm-exec`.
    pub(crate) fn mine_subtree(&mut self, db: &VerticalHybridDb, r: u32) {
        if self.control.should_stop() {
            self.cut = true;
            return;
        }
        self.prefix.push(r);
        self.sink.emit(&self.prefix, db.support(r));
        let mut next: Vec<HybridCand> = Vec::new();
        for j in (r + 1)..db.n_items() as u32 {
            if let Some(cand) = self.intersect(db.column(r), db.column(j), j) {
                next.push(cand);
            }
        }
        if !next.is_empty() {
            self.recurse(&next);
        }
        self.prefix.pop();
    }

    fn recurse(&mut self, class: &[HybridCand]) {
        for (i, c) in class.iter().enumerate() {
            if self.control.should_stop() {
                self.cut = true;
                return;
            }
            self.prefix.push(c.item);
            self.sink.emit(&self.prefix, c.support);
            let mut next: Vec<HybridCand> = Vec::new();
            for d in &class[i + 1..] {
                if let Some(cand) = self.intersect(&c.set, &d.set, d.item) {
                    next.push(cand);
                }
            }
            if !next.is_empty() {
                self.recurse(&next);
            }
            self.prefix.pop();
        }
    }

    /// Intersects two hybrid columns, keeping the result only when it
    /// reaches minsup. Chunk pairs absent from either operand are skipped
    /// without touching any word — the container-level 0-escaping.
    fn intersect(&mut self, a: &TidSet, b: &TidSet, item: u32) -> Option<HybridCand> {
        self.stats.set_ops += 1;
        self.stats.elements_in += a.cardinality() + b.cardinality();
        probe_set(self.probe, a, false);
        probe_set(self.probe, b, false);
        self.probe
            .instr((a.cardinality().min(b.cardinality())).max(1) * 3);
        let out = a.and(b);
        let sup = out.cardinality();
        self.stats.elements_out += sup;
        if sup > 0 {
            probe_set(self.probe, &out, true);
        }
        if sup < self.minsup {
            return None;
        }
        Some(HybridCand {
            item,
            set: out,
            support: sup,
        })
    }
}
