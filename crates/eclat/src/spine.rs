//! Eclat's [`KernelSpine`] implementation — the kernel's task-parallel
//! skeleton consumed by `fpm-exec`'s `MinePlan` (DESIGN.md §11).
//!
//! The root equivalence class splits into one independent subtree per
//! first (lowest-rank) item; subtrees only *read* the shared vertical
//! bit matrix, and their outputs in item order concatenate to the
//! serial emission sequence of [`crate::mine`].

use crate::{EclatConfig, EclatStats, Forward, Miner};
use fpm::control::MineControl;
use fpm::exec::KernelSpine;
use fpm::vertical::VerticalBitDb;
use fpm::{remap, PatternSink, RankMap, TransactionDb, TranslateSink};
use memsim::Probe;

/// The spine handle: a zero-sized type carrying the associated items.
#[derive(Debug, Clone, Copy, Default)]
pub struct EclatSpine;

/// The shared read-only root of an Eclat run: remapped rank space plus
/// the vertical bit matrix.
pub struct EclatPrepared {
    map: RankMap,
    vdb: VerticalBitDb,
    minsup: u64,
    cfg: EclatConfig,
}

impl KernelSpine for EclatSpine {
    type Config = EclatConfig;
    type Prepared = EclatPrepared;
    /// The first (lowest-rank) item of one root subtree.
    type Task = u32;

    fn prepare(db: &TransactionDb, minsup: u64, cfg: &Self::Config) -> Self::Prepared {
        let ranked = remap(db, minsup);
        let mut transactions = ranked.transactions.clone();
        if cfg.lex {
            also::lexorder::lex_order(&mut transactions);
        }
        let vdb = VerticalBitDb::from_ranked(&transactions, ranked.n_ranks());
        EclatPrepared {
            map: ranked.map,
            vdb,
            minsup,
            cfg: *cfg,
        }
    }

    fn root_tasks(prepared: &Self::Prepared) -> Vec<Self::Task> {
        (0..prepared.vdb.n_items() as u32).collect()
    }

    fn mine_task<P: Probe, S: PatternSink>(
        prepared: &Self::Prepared,
        task: Self::Task,
        probe: &mut P,
        control: &MineControl,
        sink: &mut S,
    ) -> bool {
        let mut translate = TranslateSink::new(&prepared.map, Forward(sink));
        let mut miner = Miner {
            minsup: prepared.minsup.max(1),
            cfg: prepared.cfg,
            probe,
            sink: &mut translate,
            stats: EclatStats::default(),
            control,
            cut: false,
            prefix: Vec::new(),
        };
        miner.mine_subtree(&prepared.vdb, task);
        !miner.cut
    }
}
