//! Eclat's [`KernelSpine`] implementation — the kernel's task-parallel
//! skeleton consumed by `fpm-exec`'s `MinePlan` (DESIGN.md §11).
//!
//! The root equivalence class splits into one independent subtree per
//! first (lowest-rank) item; subtrees only *read* the shared vertical
//! database, and their outputs in item order concatenate to the serial
//! emission sequence of [`crate::mine`].
//!
//! Since the container refactor (DESIGN.md §16) the spine mines over
//! [`VerticalHybridDb`] — per-2^16-tid adaptive array/bitmap/run
//! containers — instead of the dense bit matrix. The emitted byte
//! sequence is unchanged: the class walk and minsup filter are
//! representation-independent and supports are cardinalities, which the
//! exec-conformance and chaos suites pin against the committed goldens.

use crate::hybrid::HybridMiner;
use crate::tidlist::SparseStats;
use crate::{EclatConfig, Forward};
use fpm::control::MineControl;
use fpm::exec::KernelSpine;
use fpm::vertical::VerticalHybridDb;
use fpm::{remap, PatternSink, RankMap, TransactionDb, TranslateSink};
use memsim::Probe;

/// The spine handle: a zero-sized type carrying the associated items.
#[derive(Debug, Clone, Copy, Default)]
pub struct EclatSpine;

/// The shared read-only root of an Eclat run: remapped rank space plus
/// the vertical hybrid-container database.
pub struct EclatPrepared {
    map: RankMap,
    hdb: VerticalHybridDb,
    minsup: u64,
}

impl KernelSpine for EclatSpine {
    type Config = EclatConfig;
    type Prepared = EclatPrepared;
    /// The first (lowest-rank) item of one root subtree.
    type Task = u32;

    fn prepare(db: &TransactionDb, minsup: u64, cfg: &Self::Config) -> Self::Prepared {
        let ranked = remap(db, minsup);
        let mut transactions = ranked.transactions.clone();
        if cfg.lex {
            // P1 still pays: lexicographic clustering turns scattered
            // chunks into run/dense chunks the per-chunk chooser exploits.
            also::lexorder::lex_order(&mut transactions);
        }
        let hdb = VerticalHybridDb::from_ranked(&transactions, ranked.n_ranks());
        EclatPrepared {
            map: ranked.map,
            hdb,
            minsup,
        }
    }

    fn root_tasks(prepared: &Self::Prepared) -> Vec<Self::Task> {
        (0..prepared.hdb.n_items() as u32).collect()
    }

    fn mine_task<P: Probe, S: PatternSink>(
        prepared: &Self::Prepared,
        task: Self::Task,
        probe: &mut P,
        control: &MineControl,
        sink: &mut S,
    ) -> bool {
        let mut translate = TranslateSink::new(&prepared.map, Forward(sink));
        let mut miner = HybridMiner {
            minsup: prepared.minsup.max(1),
            probe,
            sink: &mut translate,
            stats: SparseStats::default(),
            control,
            cut: false,
            prefix: Vec::new(),
        };
        miner.mine_subtree(&prepared.hdb, task);
        !miner.cut
    }
}
