//! Sparse vertical representations: **tid-lists** and **diffsets** —
//! the other side of the paper's Feature 2 design space (§3.3, P2 data
//! structure adaptation), and the dEclat algorithm of Zaki & Gouda
//! (KDD'03, the paper's reference \[33\]).
//!
//! A dense bit matrix spends one bit per (item, transaction) *cell*; a
//! tid-list spends 32 bits per *occurrence*. Below ~1/32 density the
//! list wins — which is exactly the boundary
//! [`also::adapt::choose_repr`] encodes, and [`mine_auto`] consumes.
//!
//! Diffsets go further for dense data: within a prefix equivalence
//! class, each member stores only the transactions *lost* relative to
//! the class prefix (`d(PX) = t(P) − t(PX)`), so deep recursion carries
//! tiny sets even when tidsets are huge.

use crate::hybrid::HybridMiner;
use crate::EclatConfig;
use also::advisor::AutoMode;
use fpm::control::MineControl;
use fpm::vertical::VerticalHybridDb;
use fpm::{remap, PatternSink, TransactionDb, TranslateSink};
use memsim::{NullProbe, Probe};

/// Vertical set representation for the sparse miner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseRepr {
    /// Plain sorted tid-lists, intersected by merge (the flat global-pick
    /// baseline, kept for A/B against the containers).
    TidLists,
    /// dEclat: tidsets at level 1, diffsets below.
    Diffsets,
    /// Roaring-style adaptive containers: per-2^16-tid chunks stored as
    /// sorted-u16 arrays, bitmaps, or runs ([`also::containers`],
    /// DESIGN.md §16).
    Hybrid,
}

/// Work counters for a sparse-representation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseStats {
    /// Set operations (intersections or differences) performed.
    pub set_ops: u64,
    /// Total elements written into result sets.
    pub elements_out: u64,
    /// Total elements scanned from operand sets.
    pub elements_in: u64,
}

/// Mines every frequent itemset over sorted tid-lists (or diffsets),
/// emitting patterns in **original item ids**. Results are identical to
/// the bit-matrix [`crate::mine`].
pub fn mine<S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    repr: SparseRepr,
    sink: &mut S,
) -> SparseStats {
    mine_probed(db, minsup, repr, &mut NullProbe, sink)
}

/// [`mine`] with memory instrumentation.
pub fn mine_probed<P: Probe, S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    repr: SparseRepr,
    probe: &mut P,
    sink: &mut S,
) -> SparseStats {
    let ranked = remap(db, minsup);
    if repr == SparseRepr::Hybrid {
        // Hybrid containers: build the per-chunk adaptive columns and run
        // the container DFS (crate::hybrid). Same class walk, same output.
        let hdb = VerticalHybridDb::from_ranked(&ranked.transactions, ranked.n_ranks());
        let mut translate = TranslateSink::new(&ranked.map, Fwd(sink));
        let control = MineControl::unlimited();
        let mut miner = HybridMiner {
            minsup: minsup.max(1),
            probe,
            sink: &mut translate,
            stats: SparseStats::default(),
            control: &control,
            cut: false,
            prefix: Vec::new(),
        };
        miner.run(&hdb);
        return miner.stats;
    }
    // Build tid-lists directly: transactions are scanned once.
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); ranked.n_ranks()];
    for (tid, t) in ranked.transactions.iter().enumerate() {
        for &r in t {
            lists[r as usize].push(tid as u32);
        }
    }
    let mut translate = TranslateSink::new(&ranked.map, Fwd(sink));
    let minsup = minsup.max(1);
    let mut stats = SparseStats::default();
    let class: Vec<Member> = lists
        .into_iter()
        .enumerate()
        .map(|(r, tids)| Member {
            item: r as u32,
            support: tids.len() as u64,
            set: tids,
        })
        .collect();
    let mut prefix = Vec::new();
    match repr {
        SparseRepr::TidLists => recurse_tids(
            &class,
            &mut prefix,
            minsup,
            probe,
            &mut translate,
            &mut stats,
        ),
        SparseRepr::Diffsets => {
            // Level 1 members carry tidsets; recursion converts to
            // diffsets: d(xy) = t(x) − t(y).
            recurse_level1_diff(&class, &mut prefix, minsup, probe, &mut translate, &mut stats)
        }
        SparseRepr::Hybrid => unreachable!("handled above"),
    }
    stats
}

/// Picks bit matrix vs sparse from the measured density
/// ([`also::adapt::choose_repr`]) and runs the corresponding miner.
/// Returns which representation was chosen.
///
/// The density *decision* is unchanged from the pre-container chooser
/// (bit-for-bit — [`also::advisor::AutoMode::Global`] pins this); what
/// changed is the sparse branch's *execution*, which now runs the hybrid
/// containers. Use [`mine_auto_mode`] with [`AutoMode::Global`] to also
/// execute the legacy flat tid-lists for A/B.
pub fn mine_auto<S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    sink: &mut S,
) -> also::adapt::Repr {
    mine_auto_mode(db, minsup, AutoMode::PerChunk, sink)
}

/// [`mine_auto`] with an explicit execution mode: the representation
/// decision is always the legacy global [`also::adapt::choose_repr`]
/// pick, but the sparse branch runs per-chunk hybrid containers in
/// [`AutoMode::PerChunk`] and the flat `Vec<u32>` tid-lists in
/// [`AutoMode::Global`] — the A/B lever the ablation bench flips.
pub fn mine_auto_mode<S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    mode: AutoMode,
    sink: &mut S,
) -> also::adapt::Repr {
    let ranked = remap(db, minsup);
    let nnz: u64 = ranked.transactions.iter().map(|t| t.len() as u64).sum();
    let repr = also::adapt::choose_repr(
        ranked.transactions.len(),
        ranked.n_ranks(),
        nnz,
        1.0, // prefix sharing is the tree miner's business
    );
    match repr {
        also::adapt::Repr::VerticalBits => {
            crate::mine(db, minsup, &EclatConfig::all(), sink);
        }
        _ => {
            let sparse = match mode {
                AutoMode::PerChunk => SparseRepr::Hybrid,
                AutoMode::Global => SparseRepr::TidLists,
            };
            mine(db, minsup, sparse, sink);
        }
    }
    repr
}

struct Fwd<'a, S>(&'a mut S);
impl<S: PatternSink> PatternSink for Fwd<'_, S> {
    fn emit(&mut self, itemset: &[u32], support: u64) {
        self.0.emit(itemset, support);
    }
}

struct Member {
    item: u32,
    support: u64,
    /// tidset (tid-list mode / level 1) or diffset (deeper dEclat levels).
    set: Vec<u32>,
}

/// Sorted-merge intersection with probing.
fn intersect<P: Probe>(a: &[u32], b: &[u32], probe: &mut P, stats: &mut SparseStats) -> Vec<u32> {
    stats.set_ops += 1;
    stats.elements_in += (a.len() + b.len()) as u64;
    let (pa, la) = memsim::slice_span(a);
    probe.read(pa, la);
    let (pb, lb) = memsim::slice_span(b);
    probe.read(pb, lb);
    probe.instr((a.len() + b.len()) as u64 * 3);
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    stats.elements_out += out.len() as u64;
    if !out.is_empty() {
        let (po, lo) = memsim::slice_span(out.as_slice());
        probe.write(po, lo);
    }
    out
}

/// Sorted-merge difference `a − b` with probing.
fn difference<P: Probe>(a: &[u32], b: &[u32], probe: &mut P, stats: &mut SparseStats) -> Vec<u32> {
    stats.set_ops += 1;
    stats.elements_in += (a.len() + b.len()) as u64;
    let (pa, la) = memsim::slice_span(a);
    probe.read(pa, la);
    let (pb, lb) = memsim::slice_span(b);
    probe.read(pb, lb);
    probe.instr((a.len() + b.len()) as u64 * 3);
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] == b[j] {
            i += 1;
            j += 1;
        } else {
            j += 1;
        }
    }
    stats.elements_out += out.len() as u64;
    if !out.is_empty() {
        let (po, lo) = memsim::slice_span(out.as_slice());
        probe.write(po, lo);
    }
    out
}

fn recurse_tids<P: Probe, S: PatternSink>(
    class: &[Member],
    prefix: &mut Vec<u32>,
    minsup: u64,
    probe: &mut P,
    sink: &mut S,
    stats: &mut SparseStats,
) {
    for (i, c) in class.iter().enumerate() {
        prefix.push(c.item);
        sink.emit(prefix, c.support);
        let mut next = Vec::new();
        for d in &class[i + 1..] {
            let t = intersect(&c.set, &d.set, probe, stats);
            if t.len() as u64 >= minsup {
                next.push(Member {
                    item: d.item,
                    support: t.len() as u64,
                    set: t,
                });
            }
        }
        if !next.is_empty() {
            recurse_tids(&next, prefix, minsup, probe, sink, stats);
        }
        prefix.pop();
    }
}

/// Level 1 of dEclat: members hold tidsets; children get diffsets
/// `d(xy) = t(x) − t(y)` with `sup(xy) = sup(x) − |d(xy)|`.
fn recurse_level1_diff<P: Probe, S: PatternSink>(
    class: &[Member],
    prefix: &mut Vec<u32>,
    minsup: u64,
    probe: &mut P,
    sink: &mut S,
    stats: &mut SparseStats,
) {
    for (i, c) in class.iter().enumerate() {
        prefix.push(c.item);
        sink.emit(prefix, c.support);
        let mut next = Vec::new();
        for d in &class[i + 1..] {
            let diff = difference(&c.set, &d.set, probe, stats);
            let support = c.support - diff.len() as u64;
            if support >= minsup {
                next.push(Member {
                    item: d.item,
                    support,
                    set: diff,
                });
            }
        }
        if !next.is_empty() {
            recurse_diff(&next, prefix, minsup, probe, sink, stats);
        }
        prefix.pop();
    }
}

/// Deeper dEclat levels: members hold diffsets relative to the class
/// prefix; `d(PXY) = d(PY) − d(PX)` and `sup(PXY) = sup(PX) − |d(PXY)|`.
fn recurse_diff<P: Probe, S: PatternSink>(
    class: &[Member],
    prefix: &mut Vec<u32>,
    minsup: u64,
    probe: &mut P,
    sink: &mut S,
    stats: &mut SparseStats,
) {
    for (i, c) in class.iter().enumerate() {
        prefix.push(c.item);
        sink.emit(prefix, c.support);
        let mut next = Vec::new();
        for d in &class[i + 1..] {
            let diff = difference(&d.set, &c.set, probe, stats);
            let support = c.support - diff.len() as u64;
            if support >= minsup {
                next.push(Member {
                    item: d.item,
                    support,
                    set: diff,
                });
            }
        }
        if !next.is_empty() {
            recurse_diff(&next, prefix, minsup, probe, sink, stats);
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm::types::canonicalize;
    use fpm::CollectSink;

    fn toy() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    fn run(db: &TransactionDb, minsup: u64, repr: SparseRepr) -> Vec<fpm::ItemsetCount> {
        let mut s = CollectSink::default();
        mine(db, minsup, repr, &mut s);
        canonicalize(s.patterns)
    }

    #[test]
    fn tidlists_and_diffsets_match_naive() {
        for minsup in 1..=5u64 {
            let expect = canonicalize(fpm::naive::mine(&toy(), minsup));
            assert_eq!(run(&toy(), minsup, SparseRepr::TidLists), expect, "tids {minsup}");
            assert_eq!(run(&toy(), minsup, SparseRepr::Diffsets), expect, "diff {minsup}");
            assert_eq!(run(&toy(), minsup, SparseRepr::Hybrid), expect, "hybrid {minsup}");
        }
    }

    #[test]
    fn sparse_matches_bits_on_pseudorandom() {
        let mut s = 17u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let db = TransactionDb::from_transactions(
            (0..250)
                .map(|_| (0..18u32).filter(|_| rnd() % 3 == 0).collect::<Vec<_>>())
                .collect(),
        );
        let mut bits = CollectSink::default();
        crate::mine(&db, 6, &EclatConfig::all(), &mut bits);
        let expect = canonicalize(bits.patterns);
        assert!(!expect.is_empty());
        assert_eq!(run(&db, 6, SparseRepr::TidLists), expect);
        assert_eq!(run(&db, 6, SparseRepr::Diffsets), expect);
        assert_eq!(run(&db, 6, SparseRepr::Hybrid), expect);
    }

    #[test]
    fn hybrid_matches_flat_and_moves_fewer_bytes_on_sparse() {
        // Sparse scattered shape: long tid universe, low per-item density —
        // the profile the containers target.
        let mut s = 41u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let db = TransactionDb::from_transactions(
            (0..4000)
                .map(|_| (0..14u32).filter(|_| rnd() % 5 == 0).collect::<Vec<_>>())
                .collect(),
        );
        let mut flat_sink = CollectSink::default();
        let flat = mine(&db, 40, SparseRepr::TidLists, &mut flat_sink);
        let mut hyb_sink = CollectSink::default();
        let hyb = mine(&db, 40, SparseRepr::Hybrid, &mut hyb_sink);
        assert_eq!(
            canonicalize(flat_sink.patterns),
            canonicalize(hyb_sink.patterns)
        );
        // Same class walk → same op/element counts; the wins come from
        // bytes-per-element and per-chunk kernels, not from a different
        // search.
        assert_eq!(flat.set_ops, hyb.set_ops);
        assert_eq!(flat.elements_out, hyb.elements_out);
    }

    #[test]
    fn auto_mode_global_runs_legacy_flat_path() {
        let sparse = TransactionDb::from_transactions(
            (0..500u32).map(|k| vec![k % 97, 97 + k % 89]).collect(),
        );
        let mut per_chunk = CollectSink::default();
        let r1 = mine_auto_mode(&sparse, 3, AutoMode::PerChunk, &mut per_chunk);
        let mut global = CollectSink::default();
        let r2 = mine_auto_mode(&sparse, 3, AutoMode::Global, &mut global);
        // Identical decision, identical output — only the execution differs.
        assert_eq!(r1, r2);
        assert_eq!(
            canonicalize(per_chunk.patterns),
            canonicalize(global.patterns)
        );
    }

    #[test]
    fn diffsets_shrink_on_dense_data() {
        // Dense database: diffsets must move far fewer elements than
        // tid-lists — dEclat's raison d'être.
        let db = TransactionDb::from_transactions(
            (0..400u32)
                .map(|k| (0..12u32).filter(|&i| (k + i) % 13 != 0).collect::<Vec<_>>())
                .collect(),
        );
        let mut s1 = CollectSink::default();
        let tids = mine(&db, 40, SparseRepr::TidLists, &mut s1);
        let mut s2 = CollectSink::default();
        let diff = mine(&db, 40, SparseRepr::Diffsets, &mut s2);
        assert_eq!(canonicalize(s1.patterns), canonicalize(s2.patterns));
        assert!(
            diff.elements_out * 3 < tids.elements_out,
            "diffsets must carry far less: {} vs {}",
            diff.elements_out,
            tids.elements_out
        );
    }

    #[test]
    fn auto_routes_by_density() {
        // dense toy → bit matrix
        assert_eq!(
            mine_auto(&toy(), 1, &mut CollectSink::default()),
            also::adapt::Repr::VerticalBits
        );
        // very sparse synthetic → tid-lists, same results as bits
        let sparse = TransactionDb::from_transactions(
            (0..500u32).map(|k| vec![k % 97, 97 + k % 89]).collect(),
        );
        let mut auto_sink = CollectSink::default();
        let repr = mine_auto(&sparse, 3, &mut auto_sink);
        assert_ne!(repr, also::adapt::Repr::VerticalBits);
        let mut bits_sink = CollectSink::default();
        crate::mine(&sparse, 3, &EclatConfig::all(), &mut bits_sink);
        assert_eq!(
            canonicalize(auto_sink.patterns),
            canonicalize(bits_sink.patterns)
        );
    }

    #[test]
    fn set_algebra_edge_cases() {
        let mut st = SparseStats::default();
        let mut p = NullProbe;
        assert_eq!(intersect(&[], &[1, 2], &mut p, &mut st), Vec::<u32>::new());
        assert_eq!(intersect(&[1, 3, 5], &[2, 3, 4, 5], &mut p, &mut st), vec![3, 5]);
        assert_eq!(difference(&[1, 2, 3], &[], &mut p, &mut st), vec![1, 2, 3]);
        assert_eq!(difference(&[1, 2, 3], &[2], &mut p, &mut st), vec![1, 3]);
        assert_eq!(difference(&[], &[1], &mut p, &mut st), Vec::<u32>::new());
        assert_eq!(st.set_ops, 5);
    }
}
