//! # `fpm-eclat` — vertical bit-matrix miner with ALSO-tuned variants
//!
//! Eclat (Zaki et al.) mines the itemset lattice depth-first over a
//! *vertical* database: each itemset is represented by the bit vector of
//! the transactions containing it, the extension of an itemset by an item
//! is the AND of their vectors, and the support is the population count
//! of the result. The paper's profile (§4.2) finds 98% of the runtime in
//! exactly those two operations, classifies the kernel as **computation
//! bound** (Figure 2: CPI near the 0.33 optimum), and tunes it with:
//!
//! * **P1 — lexicographic ordering**, which clusters the 1s of frequent
//!   items at the front of their vectors and thereby enables
//!   **0-escaping**: intersections and counts run only inside the
//!   conservative `[first_one, last_one]` word range of the operands
//!   ([`also::bits::OneRange`]);
//! * **P8 — SIMDization**: the original table-lookup popcount is an
//!   indirect load that cannot be vectorized, so it is replaced by a
//!   computed (bit-sliced) count that runs in SSE2/AVX2 registers
//!   ([`also::simd`]).
//!
//! [`EclatConfig`] selects the pattern combination; [`variants`] lists
//! the named columns of the paper's Figure 8(c).

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub(crate) mod hybrid;
pub mod spine;
pub mod tidlist;

pub use spine::EclatSpine;

use also::bits::{BitVec, OneRange};
use also::simd::{and_into_count, Popcount};
use fpm::control::MineControl;
use fpm::vertical::VerticalBitDb;
use fpm::{remap, ControlledSink, PatternSink, TransactionDb, TranslateSink};
use memsim::{NullProbe, Probe};

/// Pattern selection for an Eclat run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EclatConfig {
    /// P1: lexicographically reorder transactions before building the bit
    /// matrix (clusters 1s; makes 0-escaping effective).
    pub lex: bool,
    /// Skip all-zero word prefixes/suffixes via 1-ranges (§4.2). Valid
    /// with or without `lex`, but only profitable with it.
    pub zero_escape: bool,
    /// The AND+popcount kernel (P8 ladder).
    pub popcount: Popcount,
}

impl EclatConfig {
    /// The FIMI'04-style baseline: unordered, full-span, table-lookup
    /// popcount.
    pub fn baseline() -> Self {
        EclatConfig {
            lex: false,
            zero_escape: false,
            popcount: Popcount::Table16,
        }
    }

    /// P1 only (lex ordering + the 0-escaping it enables).
    pub fn lex() -> Self {
        EclatConfig {
            lex: true,
            zero_escape: true,
            popcount: Popcount::Table16,
        }
    }

    /// P8 only (best available SIMD kernel, no reordering).
    pub fn simd() -> Self {
        EclatConfig {
            lex: false,
            zero_escape: false,
            popcount: Popcount::best(),
        }
    }

    /// All applicable patterns (the paper's `all` column).
    pub fn all() -> Self {
        EclatConfig {
            lex: true,
            zero_escape: true,
            popcount: Popcount::best(),
        }
    }
}

/// The named variants benchmarked in Figure 8(c): `(label, config)`.
pub fn variants() -> Vec<(&'static str, EclatConfig)> {
    vec![
        ("base", EclatConfig::baseline()),
        ("lex", EclatConfig::lex()),
        ("simd", EclatConfig::simd()),
        ("all", EclatConfig::all()),
    ]
}

/// Work counters for one run — exposes the 0-escaping effect (words
/// skipped) and the intersection count for EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EclatStats {
    /// Candidate intersections performed.
    pub intersections: u64,
    /// Words actually ANDed + counted.
    pub words_processed: u64,
    /// Words skipped by 0-escaping (vs the full-span kernel).
    pub words_skipped: u64,
    /// Intersections short-circuited entirely (disjoint 1-ranges).
    pub short_circuits: u64,
}

/// Mines every frequent itemset, emitting patterns in **original item
/// ids** to `sink`. Returns work statistics.
pub fn mine<S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    cfg: &EclatConfig,
    sink: &mut S,
) -> EclatStats {
    mine_probed(db, minsup, cfg, &mut NullProbe, sink)
}

/// [`mine`] with memory-access instrumentation (see [`memsim`]).
///
/// These two serial entry points are the kernel's whole mining surface.
/// Control (cancellation, deadlines, budgets) and parallelism are
/// composed once, above the kernel, by `fpm-exec`'s `MinePlan` driving
/// this crate's [`spine`] implementation.
pub fn mine_probed<P: Probe, S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    cfg: &EclatConfig,
    probe: &mut P,
    sink: &mut S,
) -> EclatStats {
    let control = MineControl::unlimited();
    let ranked = remap(db, minsup);
    let mut transactions = ranked.transactions.clone();
    if cfg.lex {
        also::lexorder::lex_order(&mut transactions);
        // Charge the preprocessing to the simulated run: the reorder is a
        // real cost the paper weighs against the benefit ("lexicographic
        // ordering is very time consuming" on very large inputs, §4.4).
        // One streamed read+write pass plus sort work per item.
        for t in &transactions {
            let (a, l) = memsim::slice_span(t);
            probe.read(a, l);
            probe.write(a, l);
            probe.instr(10 * t.len() as u64);
        }
    }
    let vdb = VerticalBitDb::from_ranked(&transactions, ranked.n_ranks());
    let mut translate =
        TranslateSink::new(&ranked.map, ControlledSink::new(&control, Forward(sink)));
    let mut miner = Miner {
        minsup: minsup.max(1),
        cfg: *cfg,
        probe,
        sink: &mut translate,
        stats: EclatStats::default(),
        control: &control,
        cut: false,
        prefix: Vec::new(),
    };
    miner.run(&vdb);
    miner.stats
}

pub(crate) struct Forward<'a, S>(pub(crate) &'a mut S);
impl<S: PatternSink> PatternSink for Forward<'_, S> {
    fn emit(&mut self, itemset: &[u32], support: u64) {
        self.0.emit(itemset, support);
    }
}

/// A candidate column in the current equivalence class.
struct Candidate {
    item: u32,
    bits: BitVec,
    range: OneRange,
    support: u64,
}

pub(crate) struct Miner<'a, P, S> {
    pub(crate) minsup: u64,
    pub(crate) cfg: EclatConfig,
    pub(crate) probe: &'a mut P,
    pub(crate) sink: &'a mut S,
    pub(crate) stats: EclatStats,
    /// Cooperative stop signal, polled once per class member.
    pub(crate) control: &'a MineControl,
    /// Set when a control check cut the recursion: the emitted sequence
    /// is a strict prefix of the full serial output.
    pub(crate) cut: bool,
    pub(crate) prefix: Vec<u32>,
}

/// Models the memory behaviour of the 16-bit-table popcount for the
/// simulator: four indirect half-word lookups per word, scattered over
/// the 64 KiB table — the un-SIMDizable loads the paper replaces (§4.2).
///
/// AND results are sparse, so most half-words are small and hit the
/// table's hot head; a minority of lookups range over the full 64 KiB,
/// which is what makes the table compete with the mined data for L1.
pub fn probe_table_lookups<P: Probe>(probe: &mut P, words: u64) {
    let table_base = 0x5457_0000_0000usize; // synthetic table address
    for w in 0..words {
        for h in 0..4u64 {
            let hash = w.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (h * 13);
            let ix = if hash & 0x7 == 0 {
                hash & 0xFFFF // full-range lookup
            } else {
                hash & 0x03FF // hot head of the table
            };
            probe.read(table_base + ix as usize, 1);
        }
    }
}

/// Estimated retired instructions per 64-bit word of the AND+count loop,
/// per strategy — used only by the cycle model (the native build runs the
/// real kernels).
fn instrs_per_word(p: Popcount) -> u64 {
    match p {
        Popcount::Table16 => 15,
        Popcount::Scalar64 => 5,
        Popcount::Sse2 => 4,
        Popcount::Avx2 => 2,
    }
}

impl<P: Probe, S: PatternSink> Miner<'_, P, S> {
    fn run(&mut self, vdb: &VerticalBitDb) {
        // The root equivalence class splits into one independent subtree
        // per frequent first item — the same decomposition the spine
        // hands `fpm-exec` as root tasks (see [`crate::spine`]).
        for r in 0..vdb.n_items() as u32 {
            self.mine_subtree(vdb, r);
        }
    }

    /// Mines the subtree of itemsets whose first (lowest-rank) item is
    /// `r`: emits `{r}` itself, builds the next equivalence class by
    /// intersecting `r`'s column with every later root column, and
    /// recurses. Subtrees for different `r` touch disjoint lattice
    /// regions and only *read* `vdb`, which is what makes them safe
    /// parallel tasks.
    pub(crate) fn mine_subtree(&mut self, vdb: &VerticalBitDb, r: u32) {
        if self.control.should_stop() {
            self.cut = true;
            return;
        }
        self.prefix.push(r);
        self.sink.emit(&self.prefix, vdb.support(r));
        let mut next: Vec<Candidate> = Vec::new();
        for j in (r + 1)..vdb.n_items() as u32 {
            if let Some(cand) = self.intersect_parts(
                vdb.column(r),
                vdb.range(r),
                j,
                vdb.column(j),
                vdb.range(j),
            ) {
                next.push(cand);
            }
        }
        if !next.is_empty() {
            self.recurse(&next);
        }
        self.prefix.pop();
    }

    fn recurse(&mut self, class: &[Candidate]) {
        for (i, c) in class.iter().enumerate() {
            if self.control.should_stop() {
                self.cut = true;
                return;
            }
            self.prefix.push(c.item);
            self.sink.emit(&self.prefix, c.support);
            let mut next: Vec<Candidate> = Vec::new();
            for d in &class[i + 1..] {
                if let Some(cand) = self.intersect(c, d) {
                    next.push(cand);
                }
            }
            if !next.is_empty() {
                self.recurse(&next);
            }
            self.prefix.pop();
        }
    }

    fn intersect(&mut self, a: &Candidate, b: &Candidate) -> Option<Candidate> {
        self.intersect_parts(&a.bits, a.range, b.item, &b.bits, b.range)
    }

    fn intersect_parts(
        &mut self,
        a_bits: &BitVec,
        a_range: OneRange,
        b_item: u32,
        b_bits: &BitVec,
        b_range: OneRange,
    ) -> Option<Candidate> {
        self.stats.intersections += 1;
        let full_words = a_bits.words().min(b_bits.words());
        let span = if self.cfg.zero_escape {
            let r = a_range.intersect(&b_range);
            if r.is_empty() {
                self.stats.short_circuits += 1;
                self.stats.words_skipped += full_words as u64;
                return None;
            }
            r.as_word_span()
        } else {
            0..full_words
        };
        let words = span.len();
        self.stats.words_processed += words as u64;
        self.stats.words_skipped += (full_words - words) as u64;

        // --- probe the kernel's memory behaviour ---
        let (pa, _) = memsim::slice_span(&a_bits.as_words()[span.clone()]);
        let (pb, _) = memsim::slice_span(&b_bits.as_words()[span.clone()]);
        self.probe.read(pa, words * 8);
        self.probe.read(pb, words * 8);
        self.probe.instr(words as u64 * instrs_per_word(self.cfg.popcount));
        if self.cfg.popcount == Popcount::Table16 {
            probe_table_lookups(self.probe, words as u64);
        }

        let mut out = BitVec::zeros(a_bits.len().min(b_bits.len()));
        let sup = and_into_count(a_bits, b_bits, &mut out, span.clone(), self.cfg.popcount);
        let (po, _) = memsim::slice_span(&out.as_words()[span.clone()]);
        self.probe.write(po, words * 8);

        if sup < self.minsup {
            return None;
        }
        let range = if self.cfg.zero_escape {
            // conservative: intersection of operand ranges (§4.2 — "not
            // necessarily optimal")
            a_range.intersect(&b_range)
        } else {
            OneRange {
                first: 0,
                last: full_words.saturating_sub(1) as u32,
            }
        };
        Some(Candidate {
            item: b_item,
            bits: out,
            range,
            support: sup,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm::types::canonicalize;
    use fpm::CollectSink;

    fn run(db: &TransactionDb, minsup: u64, cfg: &EclatConfig) -> Vec<fpm::ItemsetCount> {
        let mut sink = CollectSink::default();
        mine(db, minsup, cfg, &mut sink);
        canonicalize(sink.patterns)
    }

    fn toy() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    #[test]
    fn all_variants_match_naive_on_toy() {
        for minsup in 1..=5u64 {
            let expect = canonicalize(fpm::naive::mine(&toy(), minsup));
            for (name, cfg) in variants() {
                assert_eq!(run(&toy(), minsup, &cfg), expect, "{name} minsup={minsup}");
            }
        }
    }

    #[test]
    fn variants_match_each_other_on_random_db() {
        // deterministic pseudo-random db, 64+ transactions to cross word
        // boundaries
        let mut s = 7u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let db = TransactionDb::from_transactions(
            (0..200)
                .map(|_| {
                    (0..20u32)
                        .filter(|_| rnd() % 3 == 0)
                        .collect::<Vec<_>>()
                })
                .collect(),
        );
        let expect = run(&db, 5, &EclatConfig::baseline());
        assert!(!expect.is_empty());
        for (name, cfg) in variants() {
            assert_eq!(run(&db, 5, &cfg), expect, "{name}");
        }
    }

    #[test]
    fn zero_escaping_skips_work_after_lex() {
        let db = quest_like(600);
        let mut sink = fpm::CountSink::default();
        let s_base = mine(&db, 12, &EclatConfig::baseline(), &mut sink);
        let mut sink2 = fpm::CountSink::default();
        let s_lex = mine(&db, 12, &EclatConfig::lex(), &mut sink2);
        assert_eq!(sink.count, sink2.count);
        assert!(s_base.words_skipped == 0);
        assert!(
            s_lex.words_processed < s_base.words_processed,
            "escaping must reduce words: {} vs {}",
            s_lex.words_processed,
            s_base.words_processed
        );
    }

    /// Correlated block-structured database: items 0..6 co-occur in the
    /// first half, items 6..12 in the second — after lex ordering the
    /// 1-ranges shrink sharply.
    fn quest_like(n: usize) -> TransactionDb {
        let mut s = 99u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        TransactionDb::from_transactions(
            (0..n)
                .map(|k| {
                    let base = if rnd() % 2 == 0 { 0 } else { 6 };
                    let _ = k;
                    (0..6u32)
                        .filter(|_| rnd() % 3 != 0)
                        .map(|i| base + i)
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn stats_are_consistent() {
        let db = toy();
        let mut sink = fpm::CountSink::default();
        let st = mine(&db, 2, &EclatConfig::all(), &mut sink);
        assert!(st.intersections > 0);
        assert!(st.words_processed > 0 || st.short_circuits > 0);
    }

    #[test]
    fn empty_db_yields_nothing() {
        let mut sink = CollectSink::default();
        mine(&TransactionDb::default(), 1, &EclatConfig::all(), &mut sink);
        assert!(sink.patterns.is_empty());
    }

    #[test]
    fn probed_run_reports_plausible_cpi() {
        // Long bit vectors are what makes Eclat computation bound — the
        // paper's columns span 300 K+ transactions. A tiny input is
        // cold-miss dominated, so use a few thousand transactions.
        let db = quest_like(8000);
        let mut probe = memsim::CacheProbe::new(memsim::Machine::m1());
        let mut sink = fpm::CountSink::default();
        // Figure 2 profiles the *baseline* kernel (table-lookup popcount,
        // the instruction-dense loop) — that is the run whose CPI sits
        // near the optimum and classifies Eclat as computation bound.
        mine_probed(&db, 50, &EclatConfig::baseline(), &mut probe, &mut sink);
        let r = probe.report("eclat");
        assert!(r.cpi() < 1.2, "eclat CPI {} should be low", r.cpi());
        assert!(!r.is_memory_bound(), "eclat must classify computation bound");
        assert!(r.instructions > 0);
    }

    #[test]
    fn minsup_filters_supports() {
        let out = run(&toy(), 3, &EclatConfig::all());
        assert!(out.iter().all(|p| p.support >= 3));
        assert_eq!(out.len(), 7);
    }
}
