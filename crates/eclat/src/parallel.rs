//! Parallel Eclat over independent equivalence-class subtrees.
//!
//! The root equivalence class splits into one subtree per frequent first
//! item; the lattice below two different first items is disjoint, so
//! workers share only the *read-only* vertical bit matrix (the 1-item
//! tidlists) and nothing else. Scheduling is delegated to the shared
//! [`par`] work-stealing runtime; its rank-ordered merge reproduces the
//! serial emission sequence exactly, so parallel output is bit-identical
//! to [`crate::mine`] for every [`crate::EclatConfig`].

use crate::{EclatStats, Miner};
use fpm::control::MineControl;
use fpm::types::canonicalize;
use fpm::vertical::VerticalBitDb;
use fpm::{
    remap, CollectSink, ControlledSink, ItemsetCount, PatternSink, TransactionDb, TranslateSink,
};
use memsim::NullProbe;
use par::ParConfig;

/// Mines every frequent itemset on the shared work-stealing runtime,
/// returning the canonicalized patterns (original item ids). Results are
/// identical to the sequential [`crate::mine`] for every configuration.
pub fn mine_parallel(
    db: &TransactionDb,
    minsup: u64,
    cfg: &crate::EclatConfig,
    par_cfg: &ParConfig,
) -> Vec<ItemsetCount> {
    let mut sink = CollectSink::default();
    mine_parallel_into(db, minsup, cfg, par_cfg, &mut sink);
    canonicalize(sink.patterns)
}

/// [`mine_parallel`], but streaming the merged output into `sink` in the
/// *serial emission order*: per-task buffers are re-slotted by first-item
/// rank before replay, so the emission sequence observed by `sink` is
/// byte-identical to [`crate::mine`] regardless of thread count or steal
/// timing.
pub fn mine_parallel_into<S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    cfg: &crate::EclatConfig,
    par_cfg: &ParConfig,
    sink: &mut S,
) {
    mine_parallel_controlled_into(db, minsup, cfg, par_cfg, &MineControl::unlimited(), sink);
}

/// [`mine_parallel_into`] under a cooperative [`MineControl`] — the
/// serve layer's parallel execution path. Workers poll the control
/// before every task and inside every recursion spine; per-task buffers
/// are then merged in rank order *up to the first abandoned or truncated
/// task* ([`fpm::replay_merged_prefix`]), so even a cancelled run's
/// output is a contiguous prefix of the serial emission sequence.
/// Returns `true` iff the merged output is the complete serial sequence
/// (inspect `control.stop_cause()` for why it is not).
pub fn mine_parallel_controlled_into<S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    cfg: &crate::EclatConfig,
    par_cfg: &ParConfig,
    control: &MineControl,
    sink: &mut S,
) -> bool {
    let ranked = remap(db, minsup);
    let mut transactions = ranked.transactions.clone();
    if cfg.lex {
        also::lexorder::lex_order(&mut transactions);
    }
    let vdb = VerticalBitDb::from_ranked(&transactions, ranked.n_ranks());
    let tasks: Vec<u32> = (0..vdb.n_items() as u32).collect();

    let vdb_ref = &vdb;
    let map_ref = &ranked.map;
    let cfg = *cfg;
    let buffers = par::run_with_state_until(
        tasks,
        par_cfg,
        || control.should_stop(),
        |_worker| (),
        |(), first: u32| {
            let mut probe = NullProbe;
            let mut worker_sink = TranslateSink::new(
                map_ref,
                ControlledSink::new(control, CollectSink::default()),
            );
            let mut miner = Miner {
                minsup: minsup.max(1),
                cfg,
                probe: &mut probe,
                sink: &mut worker_sink,
                stats: EclatStats::default(),
                control,
                cut: false,
                prefix: Vec::new(),
            };
            miner.mine_subtree(vdb_ref, first);
            let cut = miner.cut;
            drop(miner);
            let controlled = worker_sink.into_inner();
            let complete = !cut && controlled.suppressed == 0;
            (controlled.into_inner().patterns, complete)
        },
    );
    fpm::replay_merged_prefix(buffers, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EclatConfig;

    fn toy() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    fn sequential(db: &TransactionDb, minsup: u64, cfg: &EclatConfig) -> Vec<ItemsetCount> {
        let mut sink = CollectSink::default();
        crate::mine(db, minsup, cfg, &mut sink);
        canonicalize(sink.patterns)
    }

    #[test]
    fn parallel_equals_sequential_on_toy() {
        for threads in [1usize, 2, 3, 8] {
            for (name, cfg) in crate::variants() {
                assert_eq!(
                    mine_parallel(&toy(), 2, &cfg, &ParConfig::with_threads(threads)),
                    sequential(&toy(), 2, &cfg),
                    "{name} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn merged_emission_order_matches_serial() {
        let db = toy();
        for (name, cfg) in crate::variants() {
            let mut serial = fpm::RecordSink::default();
            crate::mine(&db, 2, &cfg, &mut serial);
            let mut merged = fpm::RecordSink::default();
            mine_parallel_into(&db, 2, &cfg, &ParConfig::with_threads(3), &mut merged);
            assert_eq!(serial, merged, "{name}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(mine_parallel(
            &TransactionDb::default(),
            1,
            &EclatConfig::all(),
            &ParConfig::with_threads(4)
        )
        .is_empty());
        let expect = sequential(&toy(), 1, &EclatConfig::baseline());
        for threads in [0usize, 100] {
            assert_eq!(
                mine_parallel(
                    &toy(),
                    1,
                    &EclatConfig::baseline(),
                    &ParConfig::with_threads(threads)
                ),
                expect
            );
        }
    }
}
