//! Property tests: every Eclat variant — bit-matrix ladder, tid-lists,
//! diffsets — mines the same patterns on arbitrary inputs.

use fpm_eclat as eclat;
use eclat::tidlist::SparseRepr;
use fpm::types::canonicalize;
use fpm::{CollectSink, TransactionDb};
use proptest::prelude::*;

fn run_bits(db: &TransactionDb, minsup: u64, cfg: &eclat::EclatConfig) -> Vec<fpm::ItemsetCount> {
    let mut s = CollectSink::default();
    eclat::mine(db, minsup, cfg, &mut s);
    canonicalize(s.patterns)
}

fn run_sparse(db: &TransactionDb, minsup: u64, repr: SparseRepr) -> Vec<fpm::ItemsetCount> {
    let mut s = CollectSink::default();
    eclat::tidlist::mine(db, minsup, repr, &mut s);
    canonicalize(s.patterns)
}

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(
        prop::collection::btree_set(0u32..18, 0..9)
            .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
        0..70,
    )
    .prop_map(TransactionDb::from_transactions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_representations_agree(db in arb_db(), minsup in 1u64..8) {
        let expect = run_bits(&db, minsup, &eclat::EclatConfig::baseline());
        for (name, cfg) in eclat::variants() {
            prop_assert_eq!(run_bits(&db, minsup, &cfg), expect.clone(), "{}", name);
        }
        prop_assert_eq!(run_sparse(&db, minsup, SparseRepr::TidLists), expect.clone());
        prop_assert_eq!(run_sparse(&db, minsup, SparseRepr::Diffsets), expect.clone());
        prop_assert_eq!(run_sparse(&db, minsup, SparseRepr::Hybrid), expect.clone());
        let mut auto_sink = CollectSink::default();
        eclat::tidlist::mine_auto(&db, minsup, &mut auto_sink);
        prop_assert_eq!(canonicalize(auto_sink.patterns), expect);
    }

    #[test]
    fn zero_escaping_never_loses_patterns(db in arb_db(), minsup in 1u64..8) {
        // escape-only config (without lex) must still be exact
        let cfg = eclat::EclatConfig {
            lex: false,
            zero_escape: true,
            popcount: also::simd::Popcount::Scalar64,
        };
        prop_assert_eq!(
            run_bits(&db, minsup, &cfg),
            run_bits(&db, minsup, &eclat::EclatConfig::baseline())
        );
    }
}
