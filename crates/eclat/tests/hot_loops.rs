//! Runtime proof of the `// also-lint: hot` contract on the Eclat
//! AND/popcount kernels (`also::simd`): once the lazily built Table16
//! lookup table and the CPU-feature detection caches are warm, every
//! strategy's fused intersect-and-count — plain, 0-escaped, and
//! materializing — performs zero allocations.

use also::bits::BitVec;
use also::simd::{and_count, and_count_escaped, and_count_words, and_into_count, Popcount};
use fpm::alloc_guard::assert_no_alloc;

fn dense(len: usize, step: usize, phase: usize) -> BitVec {
    let idx: Vec<u32> = (phase..len).step_by(step).map(|x| x as u32).collect();
    BitVec::from_indices(len, &idx)
}

/// Warm every lazily initialized piece the kernels touch: the 64 KiB
/// Table16 (built on first use behind a OnceLock) and the
/// `is_x86_feature_detected!` cache consulted by `Popcount::available`.
fn warm() -> Vec<Popcount> {
    let strategies = Popcount::available();
    let a = [0xDEAD_BEEF_u64; 8];
    for &s in &strategies {
        let _ = and_count_words(&a, &a, s);
    }
    strategies
}

#[test]
fn and_count_kernels_are_allocation_free() {
    let strategies = warm();
    let a = dense(4096, 3, 0);
    let b = dense(4096, 5, 1);
    let expect = and_count_words(
        &a.as_words()[..a.words()],
        &b.as_words()[..b.words()],
        Popcount::Scalar64,
    );
    for &s in &strategies {
        let got = assert_no_alloc(|| {
            let words = and_count_words(&a.as_words()[..a.words()], &b.as_words()[..b.words()], s);
            let span = and_count(&a, &b, 0..a.words().min(b.words()), s);
            assert_eq!(words, span);
            words
        });
        assert_eq!(got, expect, "{}", s.label());
    }
}

#[test]
fn escaped_kernel_is_allocation_free() {
    let strategies = warm();
    let a = dense(8192, 7, 100);
    let b = dense(8192, 11, 300);
    let (ra, rb) = (a.one_range(), b.one_range());
    let expect = and_count_escaped(&a, &ra, &b, &rb, Popcount::Scalar64);
    for &s in &strategies {
        let got = assert_no_alloc(|| and_count_escaped(&a, &ra, &b, &rb, s));
        assert_eq!(got, expect, "{}", s.label());
    }
}

#[test]
fn materializing_kernel_is_allocation_free() {
    let strategies = warm();
    let a = dense(2048, 2, 0);
    let b = dense(2048, 3, 0);
    for &s in &strategies {
        // The output vector is preallocated — the kernel itself must only
        // fill it.
        let mut out = BitVec::zeros(2048);
        let got = assert_no_alloc(|| and_into_count(&a, &b, &mut out, 0..a.words(), s));
        assert_eq!(
            got,
            and_count_words(&a.as_words()[..a.words()], &b.as_words()[..b.words()], s),
            "{}",
            s.label()
        );
    }
}
