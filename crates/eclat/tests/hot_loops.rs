//! Runtime proof of the `// also-lint: hot` contract on the Eclat
//! AND/popcount kernels (`also::simd`) and the hybrid-container chunk
//! kernels (`also::containers`): once the lazily built Table16 lookup
//! table and the CPU-feature detection caches are warm, every strategy's
//! fused intersect-and-count — plain, 0-escaped, materializing,
//! galloping, and the k-way chunk fold — performs zero allocations.

use also::bits::BitVec;
use also::containers::{
    array_and_gallop_into, array_and_into, array_bitmap_and_into, bitmap_and_count,
    bitmap_and_into, AndScratch, TidSet, BITMAP_WORDS,
};
use also::simd::{and_count, and_count_escaped, and_count_words, and_into_count, Popcount};
use fpm::alloc_guard::assert_no_alloc;

fn dense(len: usize, step: usize, phase: usize) -> BitVec {
    let idx: Vec<u32> = (phase..len).step_by(step).map(|x| x as u32).collect();
    BitVec::from_indices(len, &idx)
}

/// Warm every lazily initialized piece the kernels touch: the 64 KiB
/// Table16 (built on first use behind a OnceLock) and the
/// `is_x86_feature_detected!` cache consulted by `Popcount::available`.
fn warm() -> Vec<Popcount> {
    let strategies = Popcount::available();
    let _ = Popcount::best(); // populate the cached-best OnceLock

    let a = [0xDEAD_BEEF_u64; 8];
    for &s in &strategies {
        let _ = and_count_words(&a, &a, s);
    }
    strategies
}

#[test]
fn and_count_kernels_are_allocation_free() {
    let strategies = warm();
    let a = dense(4096, 3, 0);
    let b = dense(4096, 5, 1);
    let expect = and_count_words(
        &a.as_words()[..a.words()],
        &b.as_words()[..b.words()],
        Popcount::Scalar64,
    );
    for &s in &strategies {
        let got = assert_no_alloc(|| {
            let words = and_count_words(&a.as_words()[..a.words()], &b.as_words()[..b.words()], s);
            let span = and_count(&a, &b, 0..a.words().min(b.words()), s);
            assert_eq!(words, span);
            words
        });
        assert_eq!(got, expect, "{}", s.label());
    }
}

#[test]
fn escaped_kernel_is_allocation_free() {
    let strategies = warm();
    let a = dense(8192, 7, 100);
    let b = dense(8192, 11, 300);
    let (ra, rb) = (a.one_range(), b.one_range());
    let expect = and_count_escaped(&a, &ra, &b, &rb, Popcount::Scalar64);
    for &s in &strategies {
        let got = assert_no_alloc(|| and_count_escaped(&a, &ra, &b, &rb, s));
        assert_eq!(got, expect, "{}", s.label());
    }
}

#[test]
fn materializing_kernel_is_allocation_free() {
    let strategies = warm();
    let a = dense(2048, 2, 0);
    let b = dense(2048, 3, 0);
    for &s in &strategies {
        // The output vector is preallocated — the kernel itself must only
        // fill it.
        let mut out = BitVec::zeros(2048);
        let got = assert_no_alloc(|| and_into_count(&a, &b, &mut out, 0..a.words(), s));
        assert_eq!(
            got,
            and_count_words(&a.as_words()[..a.words()], &b.as_words()[..b.words()], s),
            "{}",
            s.label()
        );
    }
}

#[test]
fn chunk_array_kernels_are_allocation_free() {
    warm();
    let small: Vec<u16> = (0..64u16).map(|i| i * 901).collect();
    let large: Vec<u16> = (0..60_000u16).collect();
    let peer: Vec<u16> = (0..30_000u16).map(|i| i * 2).collect();
    let mut out = vec![0u16; 60_000];
    // Skewed operands: the dispatching kernel and the explicit galloping
    // kernel agree and neither allocates.
    let (merged, galloped) = assert_no_alloc(|| {
        let m = array_and_into(&small, &large, &mut out);
        let g = array_and_gallop_into(&small, &large, &mut out);
        (m, g)
    });
    assert_eq!(merged, galloped);
    assert_eq!(merged, small.len());
    // Balanced operands take the linear merge; still allocation-free.
    let n = assert_no_alloc(|| array_and_into(&peer, &large, &mut out));
    assert_eq!(n, peer.len());
}

#[test]
fn chunk_bitmap_kernels_are_allocation_free() {
    warm();
    let mut a = Box::new([0u64; BITMAP_WORDS]);
    let mut b = Box::new([0u64; BITMAP_WORDS]);
    for i in 0..BITMAP_WORDS {
        a[i] = 0xAAAA_AAAA_AAAA_AAAA ^ i as u64;
        b[i] = 0x5555_5555_5555_5555 | (i as u64) << 7;
    }
    let arr: Vec<u16> = (0..4000u16).map(|i| i * 16) .collect();
    let mut out_bm = Box::new([0u64; BITMAP_WORDS]);
    let mut out_arr = vec![0u16; arr.len()];
    let (into_card, count_card, probe_n) = assert_no_alloc(|| {
        let c1 = bitmap_and_into(&a, &b, &mut out_bm);
        let c2 = bitmap_and_count(&a, &b);
        let n = array_bitmap_and_into(&arr, &a, &mut out_arr);
        (c1, c2, n)
    });
    assert_eq!(into_card, count_card, "materializing and count-only AND agree");
    let naive: usize = arr
        .iter()
        .filter(|&&v| a[v as usize / 64] >> (v % 64) & 1 == 1)
        .count();
    assert_eq!(probe_n, naive);
}

#[test]
fn k_way_fold_is_allocation_free() {
    warm();
    // Three multi-chunk sets mixing all container shapes.
    let a_tids: Vec<u32> = (0..140_000u32).step_by(3).collect();
    let b_tids: Vec<u32> = (0..140_000u32).step_by(2).collect();
    let c_tids: Vec<u32> = (10_000..90_000u32).collect();
    let a = TidSet::from_sorted(&a_tids);
    let b = TidSet::from_sorted(&b_tids);
    let mut c = TidSet::from_sorted(&c_tids);
    c.optimize(); // run containers join the fold
    let mut scratch = AndScratch::new();
    // Warm-up call outside the guard (first fold may fault pages only).
    let expect = TidSet::multi_and_count_with(&[&a, &b, &c], &mut scratch);
    let sets = [&a, &b, &c];
    let got = assert_no_alloc(|| TidSet::multi_and_count_with(&sets, &mut scratch));
    assert_eq!(got, expect);
    assert_eq!(got, a.and(&b).and(&c).cardinality());
}
