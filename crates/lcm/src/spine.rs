//! LCM's [`KernelSpine`] implementation — the kernel's task-parallel
//! skeleton consumed by `fpm-exec`'s `MinePlan` (DESIGN.md §11).
//!
//! The lattice below two different first-rank extensions is disjoint, so
//! the root projection splits into one independent task per frequent
//! first rank. Preparation builds the shared read-only root (projected
//! database, duplicate merge, occurrence array) exactly once; each task
//! then mines its subtree with a private `Miner`, and task outputs in
//! rank order concatenate to the serial emission sequence of
//! [`crate::mine`].

use crate::miner::Miner;
use crate::projdb::ProjDb;
use crate::rmdup::{rm_dup_trans, BucketImpl};
use crate::{Forward, LcmConfig};
use fpm::control::MineControl;
use fpm::exec::KernelSpine;
use fpm::{remap, PatternSink, RankMap, TransactionDb, TranslateSink};
use memsim::{NullProbe, Probe};

/// The spine handle: a zero-sized type carrying the associated items.
#[derive(Debug, Clone, Copy, Default)]
pub struct LcmSpine;

/// The shared read-only root of an LCM run: remapped rank space plus
/// the level-0 projected database with its occurrence array.
pub struct LcmPrepared {
    map: RankMap,
    root: ProjDb,
    children: Vec<(u32, u64)>,
    n_ranks: usize,
    minsup: u64,
    cfg: LcmConfig,
}

impl KernelSpine for LcmSpine {
    type Config = LcmConfig;
    type Prepared = LcmPrepared;
    /// `(first_rank, support)` — one frequent first-rank subtree.
    type Task = (u32, u64);

    fn prepare(db: &TransactionDb, minsup: u64, cfg: &Self::Config) -> Self::Prepared {
        let ranked = remap(db, minsup);
        let mut transactions = ranked.transactions.clone();
        if cfg.lex {
            also::lexorder::lex_order(&mut transactions);
        }
        let n_ranks = ranked.n_ranks();
        let mut root = ProjDb::from_ranked(&transactions);
        root.heads = rm_dup_trans(
            &root.items,
            std::mem::take(&mut root.heads),
            if cfg.aggregate {
                BucketImpl::Aggregated
            } else {
                BucketImpl::Linked
            },
            &mut NullProbe,
        );
        root.build_occ(n_ranks, &mut NullProbe);
        let children: Vec<(u32, u64)> = (0..n_ranks as u32)
            .filter_map(|r| {
                let s = root.support(r);
                (s >= minsup.max(1)).then_some((r, s))
            })
            .collect();
        LcmPrepared {
            map: ranked.map,
            root,
            children,
            n_ranks,
            minsup,
            cfg: *cfg,
        }
    }

    fn root_tasks(prepared: &Self::Prepared) -> Vec<Self::Task> {
        prepared.children.clone()
    }

    fn mine_task<P: Probe, S: PatternSink>(
        prepared: &Self::Prepared,
        task: Self::Task,
        probe: &mut P,
        control: &MineControl,
        sink: &mut S,
    ) -> bool {
        let mut translate = TranslateSink::new(&prepared.map, Forward(sink));
        let mut miner = Miner::new(
            prepared.cfg,
            prepared.minsup,
            prepared.n_ranks,
            probe,
            control,
            &mut translate,
        );
        miner.run_children(&prepared.root, &[task]);
        !miner.cut
    }
}
