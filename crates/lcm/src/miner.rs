//! The LCM recursion: `calc_freq` (occurrence-column walks computing
//! child supports — 54% of the paper's profile), projection with
//! database reduction, and `rm_dup_trans` between levels.
//!
//! The ALSO patterns hook in at exactly the places §4.1 describes:
//!
//! * **P1** — the initial database is lexicographically reordered before
//!   the root arena is built;
//! * **P4** — child-support counters live either embedded in 32-byte
//!   occ-header slots (baseline: scattered, one cache line per few
//!   counters) or compacted into a dense array;
//! * **P7.1** — the occ-column walk prefetches transaction headers a
//!   configurable wave-front distance ahead;
//! * **P6.1** — the per-candidate column walks are restructured into an
//!   outer loop over transaction-range tiles and an inner loop over
//!   candidates, giving header/arena reuse within a tile;
//! * **P3** — the duplicate-removal bucket lists aggregate into
//!   supernodes (see [`crate::rmdup`]).

use crate::projdb::{OccEntry, ProjDb, TransHead};
use crate::rmdup::{rm_dup_trans, BucketImpl};
use crate::LcmConfig;
use fpm::control::MineControl;
use fpm::PatternSink;
use memsim::Probe;

/// Work counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LcmStats {
    /// Recursion nodes visited (= itemsets with a non-trivial projection).
    pub nodes: u64,
    /// Occurrence entries processed by `calc_freq`.
    pub occ_entries: u64,
    /// Items counted by `calc_freq`.
    pub items_counted: u64,
    /// Transactions merged away by `rm_dup_trans`.
    pub trans_merged: u64,
    /// Patterns emitted.
    pub emitted: u64,
}

/// Counter storage: the P4 toggle. The baseline embeds each counter in a
/// 32-byte occ-header-like slot (so counters are scattered across cache
/// lines, 2 per line); the compacted form is a dense `u32` array (16 per
/// line). Epoch stamps avoid O(n) resets in both layouts.
struct Counters {
    compact: bool,
    slots: Vec<Slot>,
    counts: Vec<u32>,
    stamps: Vec<u32>,
    epoch: u32,
}

/// The baseline layout's slot, mimicking LCM's occ headers where the
/// frequency counter is "structured with the OccArray" (§4.1).
#[repr(C)]
#[derive(Clone, Copy)]
struct Slot {
    count: u32,
    stamp: u32,
    _occ_start: u32,
    _occ_len: u32,
    _pad: [u32; 4],
}

impl Counters {
    fn new(n: usize, compact: bool) -> Self {
        Counters {
            compact,
            slots: if compact {
                Vec::new()
            } else {
                vec![
                    Slot {
                        count: 0,
                        stamp: 0,
                        _occ_start: 0,
                        _occ_len: 0,
                        _pad: [0; 4],
                    };
                    n
                ]
            },
            counts: if compact { vec![0; n] } else { Vec::new() },
            stamps: if compact { vec![0; n] } else { Vec::new() },
            epoch: 0,
        }
    }

    #[inline]
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // extremely rare wrap: hard reset keeps stamps sound
            if self.compact {
                self.stamps.fill(0);
            } else {
                for s in &mut self.slots {
                    s.stamp = 0;
                }
            }
            self.epoch = 1;
        }
    }

    /// Adds `w` to `item`'s counter; returns `true` on first touch this
    /// epoch. Probes the counter's real address so the layouts' locality
    /// difference is visible to the simulator.
    #[inline]
    fn bump<P: Probe>(&mut self, item: u32, w: u32, probe: &mut P) -> bool {
        if self.compact {
            let i = item as usize;
            probe.write(memsim::addr_of(&self.counts[i]), 4);
            if self.stamps[i] != self.epoch {
                self.stamps[i] = self.epoch;
                self.counts[i] = w;
                true
            } else {
                self.counts[i] += w;
                false
            }
        } else {
            let s = &mut self.slots[item as usize];
            probe.write(memsim::addr_of(s), 8);
            if s.stamp != self.epoch {
                s.stamp = self.epoch;
                s.count = w;
                true
            } else {
                s.count += w;
                false
            }
        }
    }

    #[inline]
    fn get(&self, item: u32) -> u32 {
        if self.compact {
            if self.stamps[item as usize] == self.epoch {
                self.counts[item as usize]
            } else {
                0
            }
        } else {
            let s = &self.slots[item as usize];
            if s.stamp == self.epoch {
                s.count
            } else {
                0
            }
        }
    }
}

pub(crate) struct Miner<'a, P, S> {
    pub cfg: LcmConfig,
    pub minsup: u64,
    pub n_ranks: usize,
    pub probe: &'a mut P,
    pub sink: &'a mut S,
    pub stats: LcmStats,
    /// Cooperative stop signal, polled once per (node, child) step.
    pub control: &'a MineControl,
    /// Set when a [`MineControl`] check cut this recursion: the emitted
    /// sequence is a strict prefix of the full serial output.
    pub cut: bool,
    prefix: Vec<u32>,
    counters: Counters,
    /// Frequent-child marks for projection (epoch-stamped).
    fmark: Vec<u32>,
    fmark_epoch: u32,
    touched: Vec<u32>,
}

/// A candidate extension with its (weighted) support.
type Children = Vec<(u32, u64)>;

impl<'a, P: Probe, S: PatternSink> Miner<'a, P, S> {
    pub fn new(
        cfg: LcmConfig,
        minsup: u64,
        n_ranks: usize,
        probe: &'a mut P,
        control: &'a MineControl,
        sink: &'a mut S,
    ) -> Self {
        Miner {
            cfg,
            minsup: minsup.max(1),
            n_ranks,
            probe,
            sink,
            stats: LcmStats::default(),
            control,
            cut: false,
            prefix: Vec::new(),
            counters: Counters::new(n_ranks, cfg.compact_counters),
            fmark: vec![0; n_ranks],
            fmark_epoch: 0,
            // One slot per rank: deliver_column pushes each first-touched
            // rank exactly once per epoch, so this never regrows — a
            // precondition of that loop's `// also-lint: hot` contract.
            touched: Vec::with_capacity(n_ranks),
        }
    }

    fn bucket_impl(&self) -> BucketImpl {
        if self.cfg.aggregate {
            BucketImpl::Aggregated
        } else {
            BucketImpl::Linked
        }
    }

    /// Entry point: dedup the root database, build its occurrence lists,
    /// compute root candidate supports, recurse.
    pub fn run(&mut self, transactions: &[Vec<u32>]) {
        let mut root = ProjDb::from_ranked(transactions);
        let before = root.heads.len();
        root.heads = rm_dup_trans(&root.items, std::mem::take(&mut root.heads), self.bucket_impl(), self.probe);
        self.stats.trans_merged += (before - root.heads.len()) as u64;
        root.build_occ(self.n_ranks, self.probe);
        let children: Children = (0..self.n_ranks as u32)
            .filter_map(|r| {
                let s = root.support(r);
                (s >= self.minsup).then_some((r, s))
            })
            .collect();
        self.node(&root, &children);
    }

    /// Entry point for the parallel driver: processes an explicit subset
    /// of root children against a shared, pre-built root projection.
    pub(crate) fn run_children(&mut self, root: &ProjDb, children: &[(u32, u64)]) {
        self.node(root, &children.to_vec());
    }

    /// Processes one recursion node: `pdb` holds every transaction that
    /// contains the current prefix; `children` are the frequent extension
    /// items with their supports.
    fn node(&mut self, pdb: &ProjDb, children: &Children) {
        self.stats.nodes += 1;
        // Tiled variant: compute every child's grandchild counts up front,
        // tile by tile (P6.1). Untiled: per child, on demand. A projection
        // that fits inside a single tile gains nothing from the extra
        // loop nest, so small (deep) nodes fall back to the per-child
        // walk — in the paper, too, tiling restructures the large
        // top-level scans.
        let precomputed: Option<Vec<Children>> = match self.resolved_tile_rows(pdb) {
            Some(t) if pdb.heads.len() > t => Some(self.calc_freq_tiled(pdb, children, t)),
            _ => None,
        };
        for (ci, &(j, sup)) in children.iter().enumerate() {
            // Cancellation checkpoint (deadline / cancel / budget): the
            // trip is monotonic, so every frame up the stack returns too
            // and only a *tail* of the DFS emission order is cut.
            if self.control.should_stop() {
                self.cut = true;
                return;
            }
            self.prefix.push(j);
            self.sink.emit(&self.prefix, sup);
            self.stats.emitted += 1;
            let grand = match &precomputed {
                Some(rows) => rows[ci].clone(),
                None => self.calc_freq(pdb, j),
            };
            if !grand.is_empty() {
                let child = self.project(pdb, j, &grand);
                self.node(&child, &grand);
            }
            self.prefix.pop();
        }
    }

    /// The occurrence-deliver loop of `calc_freq` — the paper's hottest
    /// code: walk `occ[j]`, follow each entry to its transaction header
    /// (dependent load), and count every suffix item with the
    /// transaction's weight. Leaves the first-touched items, sorted
    /// ascending, in `self.touched`.
    ///
    /// Runs once per (node, child) pair over millions of occurrence
    /// entries, so it must not allocate: counters and marks are
    /// preallocated to `n_ranks` in [`Miner::new`], and `touched` holds at
    /// most one entry per rank (proven at runtime by
    /// `occurrence_deliver_loop_is_allocation_free`).
    // also-lint: hot
    fn deliver_column(&mut self, pdb: &ProjDb, j: u32) {
        self.counters.begin();
        self.touched.clear();
        let col = pdb.occ(j);
        let pf = self.cfg.prefetch;
        for (k, &e) in col.iter().enumerate() {
            if pf > 0 {
                // P7.1 wave-front: headers (and the occ entries leading to
                // them) of the next few occurrences are in flight while
                // this one is processed.
                if let Some(ahead) = col.get(k + pf) {
                    let h = &pdb.heads[ahead.tid as usize];
                    also::prefetch::prefetch_read(h as *const TransHead);
                    self.probe.prefetch(memsim::addr_of(h));
                    also::prefetch::prefetch_read(&pdb.items[ahead.pos as usize] as *const u32);
                    self.probe.prefetch(memsim::addr_of(&pdb.items[ahead.pos as usize]));
                }
            }
            self.probe.read(memsim::addr_of(&col[k]), 8);
            let h = &pdb.heads[e.tid as usize];
            self.probe.read_dep(memsim::addr_of(h), 12);
            let w = h.weight;
            let suffix = pdb.suffix(e);
            let (sa, sl) = memsim::slice_span(suffix);
            self.probe.read(sa, sl);
            self.probe.instr(10);
            self.stats.occ_entries += 1;
            self.stats.items_counted += suffix.len() as u64;
            for &it in suffix {
                self.probe.instr(4);
                if self.counters.bump(it, w, self.probe) {
                    // also-lint: allow(hot-loop-alloc) — within capacity: touched is preallocated to n_ranks and holds each rank at most once per epoch
                    self.touched.push(it);
                }
            }
        }
        self.touched.sort_unstable();
    }

    /// `calc_freq`: occurrence-deliver over column `j`
    /// ([`Self::deliver_column`]), then materialize the frequent children,
    /// ascending.
    fn calc_freq(&mut self, pdb: &ProjDb, j: u32) -> Children {
        self.deliver_column(pdb, j);
        let minsup = self.minsup;
        let counters = &self.counters;
        self.touched
            .iter()
            .filter_map(|&it| {
                let c = counters.get(it) as u64;
                (c >= minsup).then_some((it, c))
            })
            .collect()
    }

    /// P6.1 — the tiled `calc_freq`: outer loop over transaction-range
    /// tiles, inner loop over the candidate columns, each advancing a
    /// cursor through its occurrences. Within a tile, headers and arena
    /// lines are reused across *all* candidates before being evicted.
    /// Costs: per-candidate dense count rows (memory) and the extra loop
    /// nest — "the overhead for the added level of loop nesting" (§3.4).
    /// Resolves the configured tile size against this node's projection
    /// (`Some(0)` = auto-size to L1).
    fn resolved_tile_rows(&self, pdb: &ProjDb) -> Option<usize> {
        match self.cfg.tile_rows {
            None => None,
            Some(0) => {
                // auto: tile sized to half of a 32 KiB L1 given the mean
                // bytes touched per transaction
                let mean_len = (pdb.items.len() / pdb.heads.len().max(1)).max(1);
                Some(also::tiling::tile_rows_for_cache(12 + 4 * mean_len, 32 * 1024))
            }
            Some(t) => Some(t),
        }
    }

    fn calc_freq_tiled(
        &mut self,
        pdb: &ProjDb,
        children: &Children,
        tile_rows: usize,
    ) -> Vec<Children> {
        let n_cands = children.len();
        let mut rows: Vec<Vec<u32>> = vec![vec![0u32; self.n_ranks]; n_cands];
        let mut touched: Vec<Vec<u32>> = vec![Vec::new(); n_cands];
        let mut cursors = vec![0usize; n_cands];
        for tile in also::tiling::tiles(pdb.heads.len(), tile_rows) {
            let end = tile.end as u32;
            for (ci, &(j, _)) in children.iter().enumerate() {
                let col = pdb.occ(j);
                let row = &mut rows[ci];
                let touch = &mut touched[ci];
                let cur = &mut cursors[ci];
                while *cur < col.len() && col[*cur].tid < end {
                    let e = col[*cur];
                    *cur += 1;
                    self.probe.read(memsim::addr_of(&col[*cur - 1]), 8);
                    let h = &pdb.heads[e.tid as usize];
                    self.probe.read_dep(memsim::addr_of(h), 12);
                    let w = h.weight;
                    let suffix = {
                        let end_off = h.end() as usize;
                        &pdb.items[e.pos as usize + 1..end_off]
                    };
                    let (sa, sl) = memsim::slice_span(suffix);
                    self.probe.read(sa, sl);
                    self.probe.instr(11);
                    self.stats.occ_entries += 1;
                    self.stats.items_counted += suffix.len() as u64;
                    for &it in suffix {
                        self.probe.instr(4);
                        self.probe.write(memsim::addr_of(&row[it as usize]), 4);
                        if row[it as usize] == 0 {
                            touch.push(it);
                        }
                        row[it as usize] += w;
                    }
                }
            }
        }
        rows.into_iter()
            .zip(touched)
            .map(|(row, mut touch)| {
                touch.sort_unstable();
                touch
                    .into_iter()
                    .filter_map(|it| {
                        let c = row[it as usize] as u64;
                        (c >= self.minsup).then_some((it, c))
                    })
                    .collect()
            })
            .collect()
    }

    /// Builds the projection of `pdb` onto candidate `j`: every
    /// transaction containing `j`, trimmed to its frequent children
    /// (database reduction), duplicates merged, occurrence lists rebuilt.
    fn project(&mut self, pdb: &ProjDb, j: u32, children: &Children) -> ProjDb {
        // mark frequent children for O(1) filtering
        self.fmark_epoch = self.fmark_epoch.wrapping_add(1);
        if self.fmark_epoch == 0 {
            self.fmark.fill(0);
            self.fmark_epoch = 1;
        }
        for &(it, _) in children {
            self.fmark[it as usize] = self.fmark_epoch;
        }
        let mut child = ProjDb::default();
        for &e in pdb.occ(j) {
            let h = &pdb.heads[e.tid as usize];
            let off = child.items.len() as u32;
            for &it in pdb.suffix_raw(e, h) {
                if self.fmark[it as usize] == self.fmark_epoch {
                    child.items.push(it);
                }
            }
            let len = child.items.len() as u32 - off;
            if len > 0 {
                child.heads.push(TransHead {
                    off,
                    len,
                    weight: h.weight,
                });
            }
        }
        let before = child.heads.len();
        child.heads = rm_dup_trans(
            &child.items,
            std::mem::take(&mut child.heads),
            self.bucket_impl(),
            self.probe,
        );
        self.stats.trans_merged += (before - child.heads.len()) as u64;
        child.build_occ(self.n_ranks, self.probe);
        child
    }
}

impl ProjDb {
    /// Suffix via a pre-fetched header (avoids the double bounds lookup
    /// inside the projection loop).
    #[inline]
    pub(crate) fn suffix_raw(&self, e: OccEntry, h: &TransHead) -> &[u32] {
        &self.items[e.pos as usize + 1..h.end() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm::CountSink;
    use memsim::NullProbe;

    /// Runtime half of deliver_column's `// also-lint: hot` contract:
    /// after Miner::new's preallocation, the occurrence-deliver loop (the
    /// paper's 54%-of-profile `calc_freq` walk) performs zero allocations
    /// — for the scattered-slot baseline, the P4 compact layout, and the
    /// P7.1 prefetch variant alike.
    #[test]
    fn occurrence_deliver_loop_is_allocation_free() {
        let transactions: Vec<Vec<u32>> = (0..64u32)
            .map(|t| (0..6).filter(|r| (t >> (r % 6)) & 1 == 0 || t % (r + 2) == 0).collect())
            .collect();
        for cfg in [
            LcmConfig::baseline(),
            LcmConfig {
                compact_counters: true,
                prefetch: 4,
                ..LcmConfig::baseline()
            },
        ] {
            let mut probe = NullProbe;
            let mut sink = CountSink::default();
            let control = MineControl::unlimited();
            let mut miner = Miner::new(cfg, 1, 6, &mut probe, &control, &mut sink);
            let mut root = ProjDb::from_ranked(&transactions);
            root.build_occ(6, miner.probe);
            // Columns must be non-trivial or the test proves nothing.
            assert!(root.occ(0).len() > 10);
            fpm::alloc_guard::assert_no_alloc(|| {
                for j in 0..6 {
                    miner.deliver_column(&root, j);
                }
            });
            assert!(miner.stats.occ_entries > 0);
        }
    }
}
