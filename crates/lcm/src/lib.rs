//! # `fpm-lcm` — array-based horizontal miner with ALSO-tuned variants
//!
//! LCM (Uno et al., the FIMI'04 best-implementation award winner) mines
//! the itemset lattice depth-first over a horizontal array database with
//! *occurrence deliver*: each recursion node owns a projected database
//! (every transaction containing the current prefix), an item-major
//! occurrence array on top of it, and computes child supports by walking
//! occurrence columns (`calc_freq`, 54% of the paper's profile) while
//! merging duplicate transactions between levels (`rm_dup_trans`, 25%).
//! The paper classifies it as **memory bound** — high CPI, high cache
//! miss rate (Figure 2) — and tunes it with P1/P3/P4/P6.1/P7.1; see
//! [`LcmConfig`] and the module docs of [`miner`] and [`rmdup`].
//!
//! [`variants`] names the columns of the paper's Figure 8(a)/(b):
//! `base`, `lex`, `reorg` (aggregation + compaction), `pref`
//! (wave-front prefetch), `tile`, and `all`.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod miner;
pub mod projdb;
pub mod rmdup;
pub mod spine;

pub use miner::LcmStats;
pub use spine::LcmSpine;

use fpm::control::MineControl;
use fpm::{remap, ControlledSink, PatternSink, TransactionDb, TranslateSink};
use memsim::{NullProbe, Probe};

/// Pattern selection for an LCM run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcmConfig {
    /// P1: lexicographically reorder the initial database.
    pub lex: bool,
    /// P3: supernode-aggregated bucket lists in `rm_dup_trans`.
    pub aggregate: bool,
    /// P4: compact the frequency counters into a dense array (baseline
    /// embeds them in 32-byte occ-header slots).
    pub compact_counters: bool,
    /// P7.1: wave-front prefetch distance in `calc_freq` (0 = off).
    pub prefetch: usize,
    /// P6.1: tile the candidate column walks by transaction range.
    /// `None` = untiled; `Some(0)` = auto-size to L1; `Some(n)` = n rows.
    pub tile_rows: Option<usize>,
}

impl LcmConfig {
    /// The untuned FIMI'04-style baseline.
    pub fn baseline() -> Self {
        LcmConfig {
            lex: false,
            aggregate: false,
            compact_counters: false,
            prefetch: 0,
            tile_rows: None,
        }
    }

    /// P1 only.
    pub fn lex() -> Self {
        LcmConfig {
            lex: true,
            ..Self::baseline()
        }
    }

    /// The paper's `Reorg` column: data-structure optimizations
    /// (aggregation + compaction).
    pub fn reorg() -> Self {
        LcmConfig {
            aggregate: true,
            compact_counters: true,
            ..Self::baseline()
        }
    }

    /// P7.1 only (wave-front distance 3, Figure 5's depth).
    pub fn pref() -> Self {
        LcmConfig {
            prefetch: 3,
            ..Self::baseline()
        }
    }

    /// P6.1 only (auto-sized tiles).
    pub fn tile() -> Self {
        LcmConfig {
            tile_rows: Some(0),
            ..Self::baseline()
        }
    }

    /// All applicable patterns.
    pub fn all() -> Self {
        LcmConfig {
            lex: true,
            aggregate: true,
            compact_counters: true,
            prefetch: 3,
            tile_rows: Some(0),
        }
    }
}

/// The named variants benchmarked in Figure 8(a)/(b): `(label, config)`.
pub fn variants() -> Vec<(&'static str, LcmConfig)> {
    vec![
        ("base", LcmConfig::baseline()),
        ("lex", LcmConfig::lex()),
        ("reorg", LcmConfig::reorg()),
        ("pref", LcmConfig::pref()),
        ("tile", LcmConfig::tile()),
        ("all", LcmConfig::all()),
    ]
}

/// Mines every frequent itemset of `db` at `minsup`, emitting patterns in
/// **original item ids** to `sink`. Returns work statistics.
pub fn mine<S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    cfg: &LcmConfig,
    sink: &mut S,
) -> LcmStats {
    mine_probed(db, minsup, cfg, &mut NullProbe, sink)
}

/// [`mine`] with memory instrumentation (see [`memsim`]).
///
/// These two serial entry points are the kernel's whole mining surface.
/// Control (cancellation, deadlines, budgets) and parallelism are
/// composed once, above the kernel, by `fpm-exec`'s `MinePlan` driving
/// this crate's [`spine`] implementation.
pub fn mine_probed<P: Probe, S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    cfg: &LcmConfig,
    probe: &mut P,
    sink: &mut S,
) -> LcmStats {
    let control = MineControl::unlimited();
    let ranked = remap(db, minsup);
    let mut transactions = ranked.transactions.clone();
    if cfg.lex {
        also::lexorder::lex_order(&mut transactions);
        // Charge the preprocessing to the simulated run: the reorder is a
        // real cost the paper weighs against the benefit ("lexicographic
        // ordering is very time consuming" on very large inputs, §4.4).
        // One streamed read+write pass plus sort work per item.
        for t in &transactions {
            let (a, l) = memsim::slice_span(t);
            probe.read(a, l);
            probe.write(a, l);
            probe.instr(10 * t.len() as u64);
        }
    }
    let mut translate =
        TranslateSink::new(&ranked.map, ControlledSink::new(&control, Forward(sink)));
    let mut miner =
        miner::Miner::new(*cfg, minsup, ranked.n_ranks(), probe, &control, &mut translate);
    miner.run(&transactions);
    miner.stats
}

pub(crate) struct Forward<'a, S>(pub(crate) &'a mut S);
impl<S: PatternSink> PatternSink for Forward<'_, S> {
    fn emit(&mut self, itemset: &[u32], support: u64) {
        self.0.emit(itemset, support);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm::types::canonicalize;
    use fpm::CollectSink;

    fn run(db: &TransactionDb, minsup: u64, cfg: &LcmConfig) -> Vec<fpm::ItemsetCount> {
        let mut sink = CollectSink::default();
        mine(db, minsup, cfg, &mut sink);
        canonicalize(sink.patterns)
    }

    fn toy() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    #[test]
    fn all_variants_match_naive_on_toy() {
        for minsup in 1..=5u64 {
            let expect = canonicalize(fpm::naive::mine(&toy(), minsup));
            for (name, cfg) in variants() {
                assert_eq!(run(&toy(), minsup, &cfg), expect, "{name} minsup={minsup}");
            }
        }
    }

    #[test]
    fn variants_match_on_pseudorandom_db() {
        let mut s = 21u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let db = TransactionDb::from_transactions(
            (0..300)
                .map(|_| (0..16u32).filter(|_| rnd() % 3 == 0).collect::<Vec<_>>())
                .collect(),
        );
        let expect = run(&db, 8, &LcmConfig::baseline());
        assert!(!expect.is_empty());
        for (name, cfg) in variants() {
            assert_eq!(run(&db, 8, &cfg), expect, "{name}");
        }
        // explicit tile sizes, including degenerate ones
        for t in [1usize, 7, 64, 100_000] {
            let cfg = LcmConfig {
                tile_rows: Some(t),
                ..LcmConfig::baseline()
            };
            assert_eq!(run(&db, 8, &cfg), expect, "tile={t}");
        }
    }

    #[test]
    fn duplicate_heavy_database_exercises_rmdup() {
        let db = TransactionDb::from_transactions(
            (0..200)
                .map(|k| match k % 4 {
                    0 => vec![0u32, 1, 2],
                    1 => vec![0, 1],
                    2 => vec![0, 1, 2],
                    _ => vec![2, 3],
                })
                .collect(),
        );
        let expect = canonicalize(fpm::naive::mine(&db, 10));
        let mut sink = CollectSink::default();
        let stats = mine(&db, 10, &LcmConfig::all(), &mut sink);
        assert_eq!(canonicalize(sink.patterns), expect);
        assert!(stats.trans_merged > 100, "dups must merge: {stats:?}");
    }

    #[test]
    fn stats_plausible() {
        let mut sink = fpm::CountSink::default();
        let stats = mine(&toy(), 2, &LcmConfig::baseline(), &mut sink);
        assert_eq!(stats.emitted, sink.count);
        assert!(stats.occ_entries > 0);
        assert!(stats.nodes > 0);
    }

    #[test]
    fn empty_db() {
        let mut sink = CollectSink::default();
        mine(&TransactionDb::default(), 1, &LcmConfig::all(), &mut sink);
        assert!(sink.patterns.is_empty());
    }

    #[test]
    fn single_transaction() {
        let db = TransactionDb::from_transactions(vec![vec![1, 2, 3]]);
        let got = run(&db, 1, &LcmConfig::all());
        assert_eq!(got.len(), 7); // all non-empty subsets
    }

    #[test]
    fn probed_run_is_memory_bound() {
        // LCM on a scattered database: the paper's Figure 2 point — high
        // CPI, memory bound.
        let mut s = 77u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let db = TransactionDb::from_transactions(
            (0..4000)
                .map(|_| (0..60u32).filter(|_| rnd() % 6 == 0).collect::<Vec<_>>())
                .collect(),
        );
        let mut probe = memsim::CacheProbe::new(memsim::Machine::m1());
        let mut sink = fpm::CountSink::default();
        mine_probed(&db, 40, &LcmConfig::baseline(), &mut probe, &mut sink);
        let r = probe.report("lcm");
        assert!(
            r.cpi() > 0.8,
            "LCM CPI {} should sit well above the 0.33 optimum",
            r.cpi()
        );
    }
}
