//! Parallel mining over independent first-item subtrees — the
//! demonstration (DESIGN.md §7) that the ALSO patterns compose with
//! thread-level parallelism: the lattice below two different extension
//! items is disjoint, so workers share the *read-only* root projection
//! and nothing else.
//!
//! Scheduling is delegated to the shared [`par`] work-stealing runtime:
//! one task per frequent first rank, dealt round-robin in rank order
//! (low ranks — frequent items — own the biggest subtrees, so
//! interleaving balances better than contiguous splitting), with idle
//! workers stealing from the back of their neighbours' deques. Each task
//! mines its subtree into a private sink; the runtime's rank-ordered
//! merge then reproduces the exact emission sequence of the serial
//! miner, so parallel output is bit-identical to [`crate::mine`].

use crate::miner::Miner;
use crate::projdb::ProjDb;
use crate::rmdup::{rm_dup_trans, BucketImpl};
use crate::LcmConfig;
use fpm::control::MineControl;
use fpm::types::canonicalize;
use fpm::{
    remap, CollectSink, ControlledSink, ItemsetCount, PatternSink, TransactionDb, TranslateSink,
};
use memsim::NullProbe;
use par::ParConfig;

/// Mines every frequent itemset on the shared work-stealing runtime,
/// returning the canonicalized patterns (original item ids). Results are
/// identical to the sequential [`crate::mine`] for every configuration.
pub fn mine_parallel(
    db: &TransactionDb,
    minsup: u64,
    cfg: &LcmConfig,
    par_cfg: &ParConfig,
) -> Vec<ItemsetCount> {
    let mut sink = CollectSink::default();
    mine_parallel_into(db, minsup, cfg, par_cfg, &mut sink);
    canonicalize(sink.patterns)
}

/// [`mine_parallel`], but streaming the merged output into `sink` in the
/// *serial emission order*: per-worker buffers are re-slotted by first-
/// rank task index before replay, so the emission sequence observed by
/// `sink` is byte-identical to [`crate::mine`] — and in particular
/// identical across runs regardless of thread count or steal timing.
pub fn mine_parallel_into<S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    cfg: &LcmConfig,
    par_cfg: &ParConfig,
    sink: &mut S,
) {
    mine_parallel_controlled_into(db, minsup, cfg, par_cfg, &MineControl::unlimited(), sink);
}

/// [`mine_parallel_into`] under a cooperative [`MineControl`] — the
/// serve layer's parallel execution path. Workers poll the control
/// before every task and inside every recursion spine; per-task buffers
/// are then merged in rank order *up to the first abandoned or truncated
/// task* ([`fpm::replay_merged_prefix`]), so even a cancelled run's
/// output is a contiguous prefix of the serial emission sequence.
/// Returns `true` iff the merged output is the complete serial sequence
/// (inspect `control.stop_cause()` for why it is not).
pub fn mine_parallel_controlled_into<S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    cfg: &LcmConfig,
    par_cfg: &ParConfig,
    control: &MineControl,
    sink: &mut S,
) -> bool {
    let ranked = remap(db, minsup);
    let mut transactions = ranked.transactions.clone();
    if cfg.lex {
        also::lexorder::lex_order(&mut transactions);
    }
    let n_ranks = ranked.n_ranks();
    // Build the shared root once (sequentially — it is a small fraction
    // of total work and the workers only read it).
    let mut root = ProjDb::from_ranked(&transactions);
    root.heads = rm_dup_trans(
        &root.items,
        std::mem::take(&mut root.heads),
        if cfg.aggregate {
            BucketImpl::Aggregated
        } else {
            BucketImpl::Linked
        },
        &mut NullProbe,
    );
    root.build_occ(n_ranks, &mut NullProbe);
    let children: Vec<(u32, u64)> = (0..n_ranks as u32)
        .filter_map(|r| {
            let s = root.support(r);
            (s >= minsup.max(1)).then_some((r, s))
        })
        .collect();

    let root_ref = &root;
    let map_ref = &ranked.map;
    let cfg = *cfg;
    let buffers = par::run_with_state_until(
        children,
        par_cfg,
        || control.should_stop(),
        |_worker| (),
        |(), task: (u32, u64)| {
            let mut probe = NullProbe;
            let mut worker_sink = TranslateSink::new(
                map_ref,
                ControlledSink::new(control, CollectSink::default()),
            );
            let mut miner = Miner::new(cfg, minsup, n_ranks, &mut probe, control, &mut worker_sink);
            miner.run_children(root_ref, &[task]);
            let cut = miner.cut;
            let controlled = worker_sink.into_inner();
            let complete = !cut && controlled.suppressed == 0;
            (controlled.into_inner().patterns, complete)
        },
    );
    fpm::replay_merged_prefix(buffers, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm::types::canonicalize;

    fn toy() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    fn sequential(db: &TransactionDb, minsup: u64, cfg: &LcmConfig) -> Vec<ItemsetCount> {
        let mut sink = CollectSink::default();
        crate::mine(db, minsup, cfg, &mut sink);
        canonicalize(sink.patterns)
    }

    #[test]
    fn parallel_equals_sequential_on_toy() {
        for threads in [1usize, 2, 3, 8] {
            for (name, cfg) in crate::variants() {
                assert_eq!(
                    mine_parallel(&toy(), 2, &cfg, &ParConfig::with_threads(threads)),
                    sequential(&toy(), 2, &cfg),
                    "{name} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_equals_sequential_on_pseudorandom() {
        let mut s = 3u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let db = TransactionDb::from_transactions(
            (0..400)
                .map(|_| (0..20u32).filter(|_| rnd() % 4 == 0).collect::<Vec<_>>())
                .collect(),
        );
        let expect = sequential(&db, 10, &LcmConfig::all());
        assert!(!expect.is_empty());
        assert_eq!(
            mine_parallel(&db, 10, &LcmConfig::all(), &ParConfig::with_threads(4)),
            expect
        );
    }

    #[test]
    fn merged_emission_order_matches_serial() {
        // The into-sink form preserves the *sequence*, not just the set:
        // per-task buffers replayed in rank order reproduce the serial
        // DFS emission order exactly.
        let db = toy();
        for (name, cfg) in crate::variants() {
            let mut serial = fpm::RecordSink::default();
            crate::mine(&db, 2, &cfg, &mut serial);
            let mut merged = fpm::RecordSink::default();
            mine_parallel_into(&db, 2, &cfg, &ParConfig::with_threads(3), &mut merged);
            assert_eq!(serial, merged, "{name}");
        }
    }

    #[test]
    fn degenerate_thread_counts() {
        let db = toy();
        let expect = sequential(&db, 1, &LcmConfig::baseline());
        // 0 = auto-detect; 100 = more threads than subtrees.
        for threads in [0usize, 100] {
            assert_eq!(
                mine_parallel(&db, 1, &LcmConfig::baseline(), &ParConfig::with_threads(threads)),
                expect
            );
        }
        // empty database
        assert!(mine_parallel(
            &TransactionDb::default(),
            1,
            &LcmConfig::all(),
            &ParConfig::with_threads(4)
        )
        .is_empty());
    }
}
