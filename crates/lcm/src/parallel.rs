//! Parallel mining over independent first-item subtrees — the
//! demonstration (DESIGN.md §7) that the ALSO patterns compose with
//! thread-level parallelism: the lattice below two different extension
//! items is disjoint, so workers share the *read-only* root projection
//! and nothing else.
//!
//! Work is dealt round-robin in rank order: low ranks (frequent items)
//! own the biggest subtrees, so interleaving balances better than
//! contiguous splitting.

use crate::miner::Miner;
use crate::projdb::ProjDb;
use crate::rmdup::{rm_dup_trans, BucketImpl};
use crate::LcmConfig;
use fpm::{remap, CollectSink, ItemsetCount, TransactionDb, TranslateSink};
use memsim::NullProbe;

/// Mines every frequent itemset using `n_threads` workers, returning the
/// canonicalized patterns (original item ids). Results are identical to
/// the sequential [`crate::mine`] for every configuration.
pub fn mine_parallel(
    db: &TransactionDb,
    minsup: u64,
    cfg: &LcmConfig,
    n_threads: usize,
) -> Vec<ItemsetCount> {
    let ranked = remap(db, minsup);
    let mut transactions = ranked.transactions.clone();
    if cfg.lex {
        also::lexorder::lex_order(&mut transactions);
    }
    let n_ranks = ranked.n_ranks();
    // Build the shared root once (sequentially — it is a small fraction
    // of total work and the workers only read it).
    let mut root = ProjDb::from_ranked(&transactions);
    root.heads = rm_dup_trans(
        &root.items,
        std::mem::take(&mut root.heads),
        if cfg.aggregate {
            BucketImpl::Aggregated
        } else {
            BucketImpl::Linked
        },
        &mut NullProbe,
    );
    root.build_occ(n_ranks, &mut NullProbe);
    let children: Vec<(u32, u64)> = (0..n_ranks as u32)
        .filter_map(|r| {
            let s = root.support(r);
            (s >= minsup.max(1)).then_some((r, s))
        })
        .collect();

    let n_threads = n_threads.max(1).min(children.len().max(1));
    let root_ref = &root;
    let map_ref = &ranked.map;
    let mut results: Vec<Vec<ItemsetCount>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|w| {
                // round-robin deal
                let mine: Vec<(u32, u64)> = children
                    .iter()
                    .skip(w)
                    .step_by(n_threads)
                    .copied()
                    .collect();
                let cfg = *cfg;
                scope.spawn(move |_| {
                    let mut probe = NullProbe;
                    let mut sink = TranslateSink::new(map_ref, CollectSink::default());
                    let mut miner =
                        Miner::new(cfg, minsup, n_ranks, &mut probe, &mut sink);
                    miner.run_children(root_ref, &mine);
                    sink.into_inner().patterns
                })
            })
            .collect();
        results = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
    })
    .expect("thread scope");
    fpm::types::canonicalize(results.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm::types::canonicalize;

    fn toy() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    fn sequential(db: &TransactionDb, minsup: u64, cfg: &LcmConfig) -> Vec<ItemsetCount> {
        let mut sink = CollectSink::default();
        crate::mine(db, minsup, cfg, &mut sink);
        canonicalize(sink.patterns)
    }

    #[test]
    fn parallel_equals_sequential_on_toy() {
        for threads in [1usize, 2, 3, 8] {
            for (name, cfg) in crate::variants() {
                assert_eq!(
                    mine_parallel(&toy(), 2, &cfg, threads),
                    sequential(&toy(), 2, &cfg),
                    "{name} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_equals_sequential_on_pseudorandom() {
        let mut s = 3u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let db = TransactionDb::from_transactions(
            (0..400)
                .map(|_| (0..20u32).filter(|_| rnd() % 4 == 0).collect::<Vec<_>>())
                .collect(),
        );
        let expect = sequential(&db, 10, &LcmConfig::all());
        assert!(!expect.is_empty());
        assert_eq!(mine_parallel(&db, 10, &LcmConfig::all(), 4), expect);
    }

    #[test]
    fn degenerate_thread_counts() {
        let db = toy();
        let expect = sequential(&db, 1, &LcmConfig::baseline());
        assert_eq!(mine_parallel(&db, 1, &LcmConfig::baseline(), 0), expect);
        assert_eq!(mine_parallel(&db, 1, &LcmConfig::baseline(), 100), expect);
        // empty database
        assert!(mine_parallel(&TransactionDb::default(), 1, &LcmConfig::all(), 4).is_empty());
    }
}
