//! The projected-database representation of Figure 6 in the paper: a
//! transaction-major sparse arena (all transaction item arrays
//! concatenated), per-transaction headers carrying the merged weight, and
//! the item-major *occurrence array* (`occ`) whose columns `calc_freq`
//! walks.
//!
//! An occurrence entry stores both the transaction index (for the header
//! dereference — the pointer chase of the paper's Figure 6) and the
//! position of the occurrence in the arena, so the *suffix* of a
//! transaction after item `j` is directly addressable: items are stored
//! in ascending rank order, hence everything after `pos` is `> j`.

use memsim::Probe;

/// Per-transaction header: where its items live, and its multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransHead {
    /// Offset of the first item in the arena.
    pub off: u32,
    /// Number of items.
    pub len: u32,
    /// Multiplicity (duplicate transactions merged by `rm_dup_trans`).
    pub weight: u32,
}

impl TransHead {
    /// One-past-the-end arena offset.
    #[inline]
    pub fn end(&self) -> u32 {
        self.off + self.len
    }
}

/// One occurrence of an item: which transaction, and where in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccEntry {
    /// Transaction index (ascending within a column).
    pub tid: u32,
    /// Arena position of the occurrence.
    pub pos: u32,
}

/// A projected database (the root database is the projection on the empty
/// prefix).
#[derive(Debug, Default)]
pub struct ProjDb {
    /// Flattened transaction items (ascending rank within a transaction).
    pub items: Vec<u32>,
    /// Transaction headers, in arena order.
    pub heads: Vec<TransHead>,
    /// Flattened occurrence columns.
    pub occ_data: Vec<OccEntry>,
    /// Per rank: `(start, len)` of its column in `occ_data`.
    pub occ_index: Vec<(u32, u32)>,
}

impl ProjDb {
    /// Builds the root projected database from ranked transactions (each
    /// weight 1). Occurrence lists are **not** built; call
    /// [`ProjDb::build_occ`] after duplicate removal.
    pub fn from_ranked(transactions: &[Vec<u32>]) -> Self {
        let mut db = ProjDb::default();
        for t in transactions {
            let off = db.items.len() as u32;
            db.items.extend_from_slice(t);
            db.heads.push(TransHead {
                off,
                len: t.len() as u32,
                weight: 1,
            });
        }
        db
    }

    /// The occurrence column of `item`.
    #[inline]
    pub fn occ(&self, item: u32) -> &[OccEntry] {
        let (s, l) = self.occ_index[item as usize];
        &self.occ_data[s as usize..(s + l) as usize]
    }

    /// The item suffix of the occurrence `e` — everything *after* the
    /// occurrence position, i.e. exactly the items greater than the
    /// occurring item.
    #[inline]
    pub fn suffix(&self, e: OccEntry) -> &[u32] {
        let h = &self.heads[e.tid as usize];
        &self.items[e.pos as usize + 1..h.end() as usize]
    }

    /// (Re)builds the occurrence columns by a transaction-major scan —
    /// the "occurrence deliver" step. `n_ranks` bounds the item universe.
    ///
    /// Probes: one streamed read per transaction's item slice, one write
    /// per occurrence scattered into its column.
    pub fn build_occ<P: Probe>(&mut self, n_ranks: usize, probe: &mut P) {
        let mut counts = vec![0u32; n_ranks];
        for h in &self.heads {
            for &it in &self.items[h.off as usize..h.end() as usize] {
                counts[it as usize] += 1;
            }
        }
        let mut starts = vec![0u32; n_ranks];
        let mut acc = 0u32;
        for (r, &c) in counts.iter().enumerate() {
            starts[r] = acc;
            acc += c;
        }
        self.occ_index = counts
            .iter()
            .enumerate()
            .map(|(r, &c)| (starts[r], c))
            .collect();
        self.occ_data.clear();
        self.occ_data.resize(
            acc as usize,
            OccEntry { tid: 0, pos: 0 },
        );
        let mut cursors = starts;
        for (tid, h) in self.heads.iter().enumerate() {
            let span = &self.items[h.off as usize..h.end() as usize];
            let (pa, pl) = memsim::slice_span(span);
            probe.read(pa, pl);
            for (k, &it) in span.iter().enumerate() {
                let at = cursors[it as usize];
                cursors[it as usize] = at + 1;
                self.occ_data[at as usize] = OccEntry {
                    tid: tid as u32,
                    pos: h.off + k as u32,
                };
                probe.write(memsim::addr_of(&self.occ_data[at as usize]), 8);
                probe.instr(4);
            }
        }
    }

    /// Weighted support of `item` from its occurrence column.
    pub fn support(&self, item: u32) -> u64 {
        self.occ(item)
            .iter()
            .map(|e| self.heads[e.tid as usize].weight as u64)
            .sum()
    }

    /// Total weighted transactions.
    pub fn total_weight(&self) -> u64 {
        self.heads.iter().map(|h| h.weight as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::NullProbe;

    fn toy() -> ProjDb {
        let mut db = ProjDb::from_ranked(&[
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3, 4, 5],
            vec![0, 1, 3],
            vec![4, 5],
        ]);
        db.build_occ(6, &mut NullProbe);
        db
    }

    #[test]
    fn occ_columns_ascend_and_cover() {
        let db = toy();
        for r in 0..6u32 {
            let col = db.occ(r);
            assert!(col.windows(2).all(|w| w[0].tid < w[1].tid), "item {r}");
            for e in col {
                assert_eq!(db.items[e.pos as usize], r);
            }
        }
        let total: usize = (0..6u32).map(|r| db.occ(r).len()).sum();
        assert_eq!(total, db.items.len());
    }

    #[test]
    fn suffix_is_strictly_greater() {
        let db = toy();
        for r in 0..6u32 {
            for &e in db.occ(r) {
                assert!(db.suffix(e).iter().all(|&k| k > r));
            }
        }
        // transaction 3 = [0,1,3]: suffix of the occurrence of 1 is [3]
        let e = db.occ(1)[3];
        assert_eq!(e.tid, 3);
        assert_eq!(db.suffix(e), &[3]);
    }

    #[test]
    fn weighted_support() {
        let mut db = toy();
        db.heads[0].weight = 3; // transaction 0 now counts 3×
        db.build_occ(6, &mut NullProbe);
        assert_eq!(db.support(0), 3 + 1 + 1 + 1);
        assert_eq!(db.support(4), 2);
        assert_eq!(db.total_weight(), 7);
    }

    #[test]
    fn empty_db() {
        let mut db = ProjDb::from_ranked(&[]);
        db.build_occ(4, &mut NullProbe);
        assert!(db.occ(0).is_empty());
        assert_eq!(db.total_weight(), 0);
    }
}
