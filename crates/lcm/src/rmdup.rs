//! `rm_dup_trans` — duplicate-transaction removal, the second-hottest
//! function of the paper's LCM profile (25.5% of runtime, §4.1).
//!
//! Identical transactions in a (projected) database are merged into one
//! weighted representative. The original implementation finds duplicates
//! by bucket (radix) sorting with a **singly-linked list per bucket**;
//! because those lists are built once and then only traversed, the paper
//! applies **P3 — aggregation**, packing list nodes into cache-line
//! supernodes to cut dereferences and improve spatial locality.
//!
//! Both layouts are implemented here behind one entry point so the tuned
//! and untuned LCM variants differ in exactly the data structure:
//!
//! * [`BucketImpl::Linked`] — one node per transaction, heads in a bucket
//!   array ([`also::aggregate::NodeList`]);
//! * [`BucketImpl::Aggregated`] — supernode-chunked lists sharing one
//!   pool ([`also::aggregate::ChunkedList`]).

use crate::projdb::TransHead;
use also::aggregate::{ChunkPool, ChunkedList, NodeList, U32_LINE_CAPACITY};
use memsim::Probe;

/// Which bucket-list layout `rm_dup_trans` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketImpl {
    /// Baseline: classic one-element linked-list nodes.
    Linked,
    /// P3: cache-line supernodes.
    Aggregated,
}

/// FNV-1a over a transaction's items — the bucket key.
#[inline]
fn hash_items(items: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &i in items {
        h ^= i as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Merges identical transactions: returns the deduplicated headers in
/// first-occurrence (arena) order, weights summed. The arena itself is
/// left untouched (dead item runs are simply unreferenced — exactly what
/// the original does, trading arena slack for copy-free merging).
pub fn rm_dup_trans<P: Probe>(
    items: &[u32],
    heads: Vec<TransHead>,
    which: BucketImpl,
    probe: &mut P,
) -> Vec<TransHead> {
    let n = heads.len();
    if n < 2 {
        return heads;
    }
    let n_buckets = n.next_power_of_two();
    let mask = (n_buckets - 1) as u64;
    let tr = |h: &TransHead| &items[h.off as usize..h.end() as usize];

    // Extra weight accumulated onto a representative; u32::MAX marks a
    // transaction merged away.
    let mut extra = vec![0u32; n];
    let mut dead = vec![false; n];

    match which {
        BucketImpl::Linked => {
            let mut bucket_heads = vec![NodeList::<u32>::EMPTY; n_buckets];
            let mut nodes: NodeList<u32> = NodeList::new();
            for (tid, h) in heads.iter().enumerate() {
                let b = (hash_items(tr(h)) & mask) as usize;
                nodes.push_front(&mut bucket_heads[b], tid as u32);
                probe.write(memsim::addr_of(&bucket_heads[b]), 4);
                probe.instr(14);
            }
            // Traverse every bucket list: one dependent load per node —
            // the traversal the paper aggregates.
            let mut group: Vec<u32> = Vec::new();
            for &bh in &bucket_heads {
                group.clear();
                let mut cur = bh;
                while cur != NodeList::<u32>::EMPTY {
                    probe.read_dep(nodes.node_addr(cur), 8);
                    probe.instr(8);
                    let (tid, next) = nodes.node(cur);
                    group.push(tid);
                    cur = next;
                }
                // push_front reversed insertion order; restore tid order so
                // the smallest tid is the representative
                group.reverse();
                merge_group(&group, &heads, tr, &mut extra, &mut dead, probe);
            }
        }
        BucketImpl::Aggregated => {
            let mut pool: ChunkPool<u32, U32_LINE_CAPACITY> = ChunkPool::with_capacity(n);
            let mut lists = vec![ChunkedList::new(); n_buckets];
            for (tid, h) in heads.iter().enumerate() {
                let b = (hash_items(tr(h)) & mask) as usize;
                lists[b].push(&mut pool, tid as u32);
                probe.write(memsim::addr_of(&lists[b]), 4);
                probe.instr(14);
            }
            let mut group: Vec<u32> = Vec::new();
            for l in &lists {
                group.clear();
                // one dependent load per *supernode*, streaming within it
                l.for_each_chunk(&pool, |chunk| {
                    let (pa, la) = memsim::slice_span(chunk);
                    probe.read_dep(pa, la);
                    probe.instr(2 * chunk.len() as u64 + 6);
                    group.extend_from_slice(chunk);
                });
                merge_group(&group, &heads, tr, &mut extra, &mut dead, probe);
            }
        }
    }

    heads
        .into_iter()
        .enumerate()
        .filter_map(|(tid, mut h)| {
            if dead[tid] {
                None
            } else {
                h.weight += extra[tid];
                Some(h)
            }
        })
        .collect()
}

/// In one bucket group (same hash), find truly-equal transactions and
/// merge later ones into the earliest.
fn merge_group<'a, P: Probe>(
    group: &[u32],
    heads: &[TransHead],
    tr: impl Fn(&TransHead) -> &'a [u32],
    extra: &mut [u32],
    dead: &mut [bool],
    probe: &mut P,
) {
    for (gi, &a) in group.iter().enumerate() {
        if dead[a as usize] {
            continue;
        }
        let ta = tr(&heads[a as usize]);
        for &b in &group[gi + 1..] {
            if dead[b as usize] {
                continue;
            }
            let tb = tr(&heads[b as usize]);
            let (pa, la) = memsim::slice_span(ta);
            probe.read(pa, la);
            let (pb, lb) = memsim::slice_span(tb);
            probe.read(pb, lb);
            probe.instr(2 * ta.len().min(tb.len()) as u64 + 8);
            if ta == tb {
                extra[a as usize] += heads[b as usize].weight + extra[b as usize];
                extra[b as usize] = 0;
                dead[b as usize] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projdb::ProjDb;
    use memsim::NullProbe;

    fn heads_of(transactions: &[Vec<u32>]) -> (Vec<u32>, Vec<TransHead>) {
        let db = ProjDb::from_ranked(transactions);
        (db.items, db.heads)
    }

    fn run(transactions: &[Vec<u32>], which: BucketImpl) -> Vec<(Vec<u32>, u32)> {
        let (items, heads) = heads_of(transactions);
        let merged = rm_dup_trans(&items, heads, which, &mut NullProbe);
        merged
            .iter()
            .map(|h| {
                (
                    items[h.off as usize..h.end() as usize].to_vec(),
                    h.weight,
                )
            })
            .collect()
    }

    #[test]
    fn merges_duplicates_preserving_order() {
        let ts = vec![
            vec![0u32, 1],
            vec![2],
            vec![0, 1],
            vec![2],
            vec![0, 1],
            vec![3],
        ];
        for which in [BucketImpl::Linked, BucketImpl::Aggregated] {
            let out = run(&ts, which);
            assert_eq!(
                out,
                vec![(vec![0, 1], 3), (vec![2], 2), (vec![3], 1)],
                "{which:?}"
            );
        }
    }

    #[test]
    fn both_impls_agree_on_pseudorandom_input() {
        let mut s = 5u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let ts: Vec<Vec<u32>> = (0..300)
            .map(|_| {
                let len = (rnd() % 4) as usize;
                let mut t: Vec<u32> = (0..=len as u32).map(|_| (rnd() % 6) as u32).collect();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let a = run(&ts, BucketImpl::Linked);
        let b = run(&ts, BucketImpl::Aggregated);
        assert_eq!(a, b);
        // total weight preserved
        let total: u32 = a.iter().map(|(_, w)| w).sum();
        assert_eq!(total as usize, ts.len());
    }

    #[test]
    fn no_duplicates_is_identity() {
        let ts = vec![vec![0u32], vec![1], vec![2]];
        for which in [BucketImpl::Linked, BucketImpl::Aggregated] {
            let out = run(&ts, which);
            assert_eq!(out.len(), 3);
            assert!(out.iter().all(|(_, w)| *w == 1));
        }
    }

    #[test]
    fn single_and_empty() {
        assert_eq!(run(&[], BucketImpl::Linked).len(), 0);
        assert_eq!(run(&[vec![5]], BucketImpl::Aggregated).len(), 1);
    }

    #[test]
    fn respects_existing_weights() {
        let (items, mut heads) = heads_of(&[vec![0, 1], vec![0, 1]]);
        heads[0].weight = 5;
        heads[1].weight = 7;
        let merged = rm_dup_trans(&items, heads, BucketImpl::Linked, &mut NullProbe);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].weight, 12);
    }
}
