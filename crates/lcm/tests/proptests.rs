//! Property tests: every LCM variant is a pure optimization — identical
//! output to the baseline on arbitrary inputs — and the output satisfies
//! the frequent-itemset contract.

use fpm_lcm as lcm;
use fpm::types::canonicalize;
use fpm::{CollectSink, TransactionDb};
use proptest::prelude::*;

fn run(db: &TransactionDb, minsup: u64, cfg: &lcm::LcmConfig) -> Vec<fpm::ItemsetCount> {
    let mut s = CollectSink::default();
    lcm::mine(db, minsup, cfg, &mut s);
    canonicalize(s.patterns)
}

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(
        prop::collection::btree_set(0u32..20, 0..10)
            .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
        0..60,
    )
    .prop_map(TransactionDb::from_transactions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn variants_agree(db in arb_db(), minsup in 1u64..8) {
        let expect = run(&db, minsup, &lcm::LcmConfig::baseline());
        for (name, cfg) in lcm::variants() {
            prop_assert_eq!(run(&db, minsup, &cfg), expect.clone(), "{}", name);
        }
    }

    #[test]
    fn output_contract(db in arb_db(), minsup in 1u64..8) {
        let out = run(&db, minsup, &lcm::LcmConfig::all());
        // supports respect the threshold and items are sorted sets
        for p in &out {
            prop_assert!(p.support >= minsup);
            prop_assert!(p.items.windows(2).all(|w| w[0] < w[1]));
            // support equals a direct scan count
            let scan = db
                .transactions()
                .iter()
                .filter(|t| p.items.iter().all(|i| t.binary_search(i).is_ok()))
                .count() as u64;
            prop_assert_eq!(p.support, scan);
        }
        // no duplicate itemsets
        let mut keys: Vec<&Vec<u32>> = out.iter().map(|p| &p.items).collect();
        keys.dedup();
        prop_assert_eq!(keys.len(), out.len());
    }
}

// Parallel-vs-serial agreement lives in `tests/exec_conformance.rs` at
// the workspace root: the parallel driver is `fpm-exec`'s `MinePlan`,
// which this crate cannot depend on without a cycle.
