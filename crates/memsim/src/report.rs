//! Simulation reports: the numbers Figure 2 plots (CPI per kernel
//! function) plus the miss-rate breakdown used throughout the evaluation.

use crate::cache::LevelStats;
use serde::{Deserialize, Serialize};

/// Accumulated statistics of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemReport {
    /// What was measured (kernel/function name).
    pub label: String,
    /// The simulated machine's name.
    pub machine: String,
    /// Instructions retired.
    pub instructions: u64,
    /// Total cycles (base issue + stall cycles).
    pub cycles: f64,
    /// Read accesses issued.
    pub reads: u64,
    /// Write accesses issued.
    pub writes: u64,
    /// Software prefetches issued.
    pub sw_prefetches: u64,
    /// L1 data cache statistics.
    pub l1: LevelStats,
    /// L2 cache statistics.
    pub l2: LevelStats,
    /// Data-TLB statistics.
    pub tlb: LevelStats,
    /// Core frequency (GHz) for time conversion.
    pub freq_ghz: f64,
}

impl MemReport {
    /// Cycles per instruction — the Figure 2 metric.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles / self.instructions as f64
        }
    }

    /// Simulated wall-clock seconds.
    pub fn seconds(&self) -> f64 {
        self.cycles / (self.freq_ghz * 1e9)
    }

    /// `true` when the run is memory bound under the paper's §2.2 rule of
    /// thumb: CPI well above the 0.33 optimum together with a meaningful
    /// L1 miss rate.
    pub fn is_memory_bound(&self) -> bool {
        self.cpi() > 0.8 && self.l1.miss_rate() > 0.01
    }

    /// One formatted table row (label, CPI, miss rates) for the `repro`
    /// harness.
    pub fn row(&self) -> String {
        format!(
            "{:<28} {:>8.3} {:>9.2}% {:>9.2}% {:>9.2}%",
            self.label,
            self.cpi(),
            100.0 * self.l1.miss_rate(),
            100.0 * self.l2.miss_rate(),
            100.0 * self.tlb.miss_rate(),
        )
    }

    /// The table header matching [`MemReport::row`].
    pub fn header() -> String {
        format!(
            "{:<28} {:>8} {:>10} {:>10} {:>10}",
            "function", "CPI", "L1 miss", "L2 miss", "TLB miss"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MemReport {
        MemReport {
            label: "calc_freq".into(),
            machine: "M1".into(),
            instructions: 1000,
            cycles: 2500.0,
            reads: 400,
            writes: 50,
            sw_prefetches: 0,
            l1: LevelStats { hits: 300, misses: 150 },
            l2: LevelStats { hits: 100, misses: 50 },
            tlb: LevelStats { hits: 440, misses: 10 },
            freq_ghz: 3.0,
        }
    }

    #[test]
    fn cpi_and_seconds() {
        let r = sample();
        assert!((r.cpi() - 2.5).abs() < 1e-12);
        assert!((r.seconds() - 2500.0 / 3e9).abs() < 1e-18);
    }

    #[test]
    fn zero_instruction_cpi_is_zero() {
        let mut r = sample();
        r.instructions = 0;
        assert_eq!(r.cpi(), 0.0);
    }

    #[test]
    fn memory_bound_classification() {
        let r = sample();
        assert!(r.is_memory_bound());
        let mut compute = sample();
        compute.cycles = 400.0; // CPI 0.4
        assert!(!compute.is_memory_bound());
    }

    #[test]
    fn row_formats() {
        let r = sample();
        assert!(r.row().contains("calc_freq"));
        assert_eq!(
            MemReport::header().split_whitespace().count(),
            8 // "function CPI L1 miss L2 miss TLB miss"
        );
    }
}
