//! Miss classification — the standard *three-Cs* breakdown (Hill):
//!
//! * **compulsory** — first-ever touch of the line (no cache helps);
//! * **capacity** — would also miss in a *fully-associative* cache of the
//!   same size (the working set is simply too big);
//! * **conflict** — hits fully-associative but misses the real
//!   set-associative cache (set imbalance).
//!
//! The ALSO patterns attack different Cs: lexicographic ordering and
//! compaction shrink the touched-line count (compulsory + capacity),
//! tiling converts capacity misses into hits, aggregation removes
//! accesses altogether. [`ClassifyingCache`] runs the real cache and an
//! LRU fully-associative shadow side by side so `repro`-style analyses
//! can print where a kernel's misses actually come from.

use crate::cache::{CacheGeom, SetAssocCache};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Miss counts by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissBreakdown {
    /// Demand hits.
    pub hits: u64,
    /// First-touch misses.
    pub compulsory: u64,
    /// Misses a fully-associative cache of equal size would also take.
    pub capacity: u64,
    /// Misses caused purely by limited associativity.
    pub conflict: u64,
}

impl MissBreakdown {
    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses()
    }
}

/// A set-associative cache paired with a fully-associative LRU shadow of
/// the same capacity, classifying every miss.
#[derive(Debug)]
pub struct ClassifyingCache {
    real: SetAssocCache,
    /// Fully-associative LRU shadow: line → last-use stamp.
    shadow: HashMap<usize, u64>,
    shadow_lines: usize,
    clock: u64,
    seen: std::collections::HashSet<usize>,
    stats: MissBreakdown,
    line_shift: u32,
}

impl ClassifyingCache {
    /// Builds the pair for `geom`.
    pub fn new(geom: CacheGeom) -> Self {
        ClassifyingCache {
            real: SetAssocCache::new(geom),
            shadow: HashMap::new(),
            shadow_lines: geom.capacity >> geom.line_shift,
            clock: 0,
            seen: std::collections::HashSet::new(),
            stats: MissBreakdown::default(),
            line_shift: geom.line_shift,
        }
    }

    /// Accesses the line containing `addr`; returns `true` on a real-cache
    /// hit and classifies the miss otherwise.
    pub fn access(&mut self, addr: usize) -> bool {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let real_hit = self.real.access(addr);
        // shadow: fully-associative LRU of the same line count
        let shadow_hit = self.shadow.contains_key(&line);
        self.shadow.insert(line, self.clock);
        if self.shadow.len() > self.shadow_lines {
            // evict LRU
            let (&victim, _) = self
                .shadow
                // also-lint: allow(deterministic-iteration) — min_by_key over strictly increasing clock stamps (all unique): the minimum is unique, so hash order cannot change the victim
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .expect("non-empty shadow");
            self.shadow.remove(&victim);
        }
        if real_hit {
            self.stats.hits += 1;
            return true;
        }
        if self.seen.insert(line) {
            self.stats.compulsory += 1;
        } else if !shadow_hit {
            self.stats.capacity += 1;
        } else {
            self.stats.conflict += 1;
        }
        false
    }

    /// The breakdown so far.
    pub fn stats(&self) -> MissBreakdown {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ClassifyingCache {
        // 4 sets × 2 ways × 64 B
        ClassifyingCache::new(CacheGeom {
            capacity: 512,
            ways: 2,
            line_shift: 6,
        })
    }

    #[test]
    fn first_touches_are_compulsory() {
        let mut c = tiny();
        for i in 0..8 {
            assert!(!c.access(i * 64));
        }
        let s = c.stats();
        assert_eq!(s.compulsory, 8);
        assert_eq!(s.capacity + s.conflict, 0);
    }

    #[test]
    fn resident_set_hits() {
        let mut c = tiny();
        for _ in 0..3 {
            for i in 0..8 {
                c.access(i * 64);
            }
        }
        let s = c.stats();
        assert_eq!(s.compulsory, 8);
        assert_eq!(s.hits, 16);
        assert_eq!(s.capacity + s.conflict, 0);
    }

    #[test]
    fn oversized_stream_is_capacity_bound() {
        let mut c = tiny();
        // 32 lines through an 8-line cache, repeatedly: LRU-hostile.
        for _ in 0..4 {
            for i in 0..32 {
                c.access(i * 64);
            }
        }
        let s = c.stats();
        assert_eq!(s.compulsory, 32);
        assert!(s.capacity > 0, "{s:?}");
        assert_eq!(s.conflict, 0, "uniform stream has no set imbalance: {s:?}");
    }

    #[test]
    fn set_hammering_is_conflict_bound() {
        let mut c = tiny();
        // 3 lines mapping to the same set (stride = sets × line = 256 B):
        // fits the 8-line capacity easily, but not 2 ways.
        for _ in 0..5 {
            for k in 0..3 {
                c.access(k * 256);
            }
        }
        let s = c.stats();
        assert_eq!(s.compulsory, 3);
        assert!(s.conflict > 0, "{s:?}");
        assert_eq!(s.capacity, 0, "3 lines fit an 8-line FA cache: {s:?}");
    }

    #[test]
    fn totals_are_consistent() {
        let mut c = tiny();
        for i in 0..100 {
            c.access((i * 37 % 64) * 64);
        }
        let s = c.stats();
        assert_eq!(s.accesses(), 100);
        assert_eq!(s.hits + s.misses(), 100);
    }
}
