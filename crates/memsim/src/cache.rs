//! Set-associative cache and TLB model with true-LRU replacement.
//!
//! One structure serves both roles: a TLB is a cache whose "line" is a
//! 4 KiB page and whose payload is irrelevant — only hit/miss matters.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeom {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Log2 of the line (or page) size in bytes.
    pub line_shift: u32,
}

impl CacheGeom {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity >> self.line_shift >> self.ways.trailing_zeros()
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        1 << self.line_shift
    }
}

/// Hit/miss counters for one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses that had to fill from the next level.
    pub misses: u64,
}

impl LevelStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `0..=1` (0 for an untouched level).
    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags are full line addresses (no aliasing); LRU state is a per-way
/// last-use stamp from a global access counter.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geom: CacheGeom,
    set_mask: usize,
    tags: Vec<usize>,
    stamps: Vec<u64>,
    clock: u64,
    stats: LevelStats,
}

/// Sentinel tag for an invalid (empty) way.
const INVALID: usize = usize::MAX;

impl SetAssocCache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    /// Panics unless sets and ways are powers of two and the capacity is
    /// an exact multiple of `ways * line_bytes`.
    pub fn new(geom: CacheGeom) -> Self {
        let sets = geom.sets();
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(geom.ways.is_power_of_two(), "ways must be a power of two");
        assert_eq!(
            sets * geom.ways * geom.line_bytes(),
            geom.capacity,
            "geometry does not tile the capacity"
        );
        SetAssocCache {
            geom,
            set_mask: sets - 1,
            tags: vec![INVALID; sets * geom.ways],
            stamps: vec![0; sets * geom.ways],
            clock: 0,
            stats: LevelStats::default(),
        }
    }

    /// Geometry.
    pub fn geom(&self) -> CacheGeom {
        self.geom
    }

    /// Accesses the line containing `addr`; returns `true` on hit. A miss
    /// installs the line, evicting the LRU way of its set.
    pub fn access(&mut self, addr: usize) -> bool {
        let hit = self.touch(addr);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Installs the line containing `addr` without counting it in the
    /// demand statistics — used by the hardware-prefetcher model.
    /// Returns `true` if the line was already resident.
    pub fn install(&mut self, addr: usize) -> bool {
        self.touch(addr)
    }

    fn touch(&mut self, addr: usize) -> bool {
        self.clock += 1;
        let line = addr >> self.geom.line_shift;
        let set = line & self.set_mask;
        let base = set * self.geom.ways;
        let ways = &mut self.tags[base..base + self.geom.ways];
        // Hit?
        for (w, &tag) in ways.iter().enumerate() {
            if tag == line {
                self.stamps[base + w] = self.clock;
                return true;
            }
        }
        // Miss: evict LRU (empty ways have stamp 0, oldest possible).
        let lru = (0..self.geom.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways >= 1");
        self.tags[base + lru] = line;
        self.stamps[base + lru] = self.clock;
        false
    }

    /// Whether the line containing `addr` is resident (no state change).
    pub fn contains(&self, addr: usize) -> bool {
        let line = addr >> self.geom.line_shift;
        let set = line & self.set_mask;
        let base = set * self.geom.ways;
        self.tags[base..base + self.geom.ways].contains(&line)
    }

    /// Demand-access statistics.
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(INVALID);
        self.stamps.fill(0);
        self.clock = 0;
        self.stats = LevelStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets × 2 ways × 64 B = 512 B
        SetAssocCache::new(CacheGeom {
            capacity: 512,
            ways: 2,
            line_shift: 6,
        })
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeom {
            capacity: 16 * 1024,
            ways: 8,
            line_shift: 6,
        };
        assert_eq!(g.sets(), 32);
        assert_eq!(g.line_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        SetAssocCache::new(CacheGeom {
            capacity: 3 * 64,
            ways: 1,
            line_shift: 6,
        });
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same line
        assert!(!c.access(0x1040)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to the same set (set = line & 3): lines 0, 4, 8.
        let a = 0usize << 6;
        let b = 4usize << 6;
        let d = 8usize << 6;
        c.access(a); // miss, install
        c.access(b); // miss, install (set full)
        c.access(a); // hit → b is now LRU
        c.access(d); // miss → evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
        assert!(!c.access(b)); // b misses again
    }

    #[test]
    fn full_way_scan_distinguishes_tags() {
        let mut c = tiny();
        // two different lines in the same set must coexist (2 ways)
        c.access(0 << 6);
        c.access(4 << 6);
        assert!(c.contains(0 << 6));
        assert!(c.contains(4 << 6));
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = SetAssocCache::new(CacheGeom {
            capacity: 16 * 1024,
            ways: 8,
            line_shift: 6,
        });
        let lines: Vec<usize> = (0..256).map(|i| 0x10_0000 + i * 64).collect(); // 16 KiB
        for &l in &lines {
            c.access(l);
        }
        let cold_misses = c.stats().misses;
        assert_eq!(cold_misses, 256);
        for _ in 0..10 {
            for &l in &lines {
                c.access(l);
            }
        }
        assert_eq!(c.stats().misses, cold_misses, "steady state must be all hits");
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = SetAssocCache::new(CacheGeom {
            capacity: 1024,
            ways: 2,
            line_shift: 6,
        });
        // 4 KiB streamed repeatedly through a 1 KiB cache: every access a
        // miss under LRU.
        for _ in 0..4 {
            for i in 0..64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn install_does_not_count_stats() {
        let mut c = tiny();
        c.install(0x2000);
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(0x2000), "installed line must hit");
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0x40);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.contains(0x40));
    }

    #[test]
    fn miss_rate_edges() {
        assert_eq!(LevelStats::default().miss_rate(), 0.0);
        let s = LevelStats { hits: 3, misses: 1 };
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }
}
