//! Trace recording and replay: a [`TraceRecorder`] probe captures the
//! access stream of an instrumented run so it can be inspected, filtered
//! or replayed against *different* machine configurations without
//! re-running the kernel — the workflow behind the M1-vs-M2 comparisons
//! (one mining run, two simulations).

use crate::probe::{CacheProbe, Probe};
use crate::Machine;
use serde::{Deserialize, Serialize};

/// One recorded memory event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// Independent read `(addr, len)`.
    Read(usize, u32),
    /// Dependent (pointer-chase) read.
    ReadDep(usize, u32),
    /// Write.
    Write(usize, u32),
    /// `n` computation instructions.
    Instr(u64),
    /// Software prefetch.
    Prefetch(usize),
}

/// A probe that appends every event to an in-memory trace.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    /// The recorded events, in program order.
    pub events: Vec<Event>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays the trace against a fresh simulator for `machine` and
    /// returns its report.
    pub fn replay(&self, machine: Machine, label: &str) -> crate::MemReport {
        let mut sim = CacheProbe::new(machine);
        for &e in &self.events {
            match e {
                Event::Read(a, l) => sim.read(a, l as usize),
                Event::ReadDep(a, l) => sim.read_dep(a, l as usize),
                Event::Write(a, l) => sim.write(a, l as usize),
                Event::Instr(n) => sim.instr(n),
                Event::Prefetch(a) => sim.prefetch(a),
            }
        }
        sim.report(label)
    }

    /// Summary counts per event kind: `(reads, dep_reads, writes,
    /// instructions, prefetches)`.
    pub fn summary(&self) -> (u64, u64, u64, u64, u64) {
        let (mut r, mut d, mut w, mut i, mut p) = (0, 0, 0, 0, 0);
        for e in &self.events {
            match e {
                Event::Read(..) => r += 1,
                Event::ReadDep(..) => d += 1,
                Event::Write(..) => w += 1,
                Event::Instr(n) => i += n,
                Event::Prefetch(..) => p += 1,
            }
        }
        (r, d, w, i, p)
    }
}

impl Probe for TraceRecorder {
    fn read(&mut self, addr: usize, len: usize) {
        self.events.push(Event::Read(addr, len as u32));
    }
    fn read_dep(&mut self, addr: usize, len: usize) {
        self.events.push(Event::ReadDep(addr, len as u32));
    }
    fn write(&mut self, addr: usize, len: usize) {
        self.events.push(Event::Write(addr, len as u32));
    }
    fn instr(&mut self, n: u64) {
        self.events.push(Event::Instr(n));
    }
    fn prefetch(&mut self, addr: usize) {
        self.events.push(Event::Prefetch(addr));
    }
}

/// A probe that forwards to two probes — e.g. record *and* simulate in
/// one run.
pub struct Tee<'a, A, B>(pub &'a mut A, pub &'a mut B);

impl<A: Probe, B: Probe> Probe for Tee<'_, A, B> {
    fn read(&mut self, addr: usize, len: usize) {
        self.0.read(addr, len);
        self.1.read(addr, len);
    }
    fn read_dep(&mut self, addr: usize, len: usize) {
        self.0.read_dep(addr, len);
        self.1.read_dep(addr, len);
    }
    fn write(&mut self, addr: usize, len: usize) {
        self.0.write(addr, len);
        self.1.write(addr, len);
    }
    fn instr(&mut self, n: u64) {
        self.0.instr(n);
        self.1.instr(n);
    }
    fn prefetch(&mut self, addr: usize) {
        self.0.prefetch(addr);
        self.1.prefetch(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::addr_of;

    fn sample_trace() -> TraceRecorder {
        let mut t = TraceRecorder::new();
        let data = vec![0u8; 1 << 16];
        for i in (0..data.len()).step_by(64) {
            t.read(addr_of(&data[i]), 8);
            t.instr(4);
        }
        t.read_dep(addr_of(&data[0]), 8);
        t.prefetch(addr_of(&data[128]));
        t.write(addr_of(&data[0]), 4);
        t
    }

    #[test]
    fn records_in_order() {
        let mut t = TraceRecorder::new();
        t.read(16, 4);
        t.instr(2);
        t.write(32, 8);
        assert_eq!(
            t.events,
            vec![Event::Read(16, 4), Event::Instr(2), Event::Write(32, 8)]
        );
        let (r, d, w, i, p) = t.summary();
        assert_eq!((r, d, w, i, p), (1, 0, 1, 2, 0));
    }

    #[test]
    fn replay_equals_direct_simulation() {
        let trace = sample_trace();
        let replayed = trace.replay(Machine::m1(), "replay");
        // run the identical stream directly
        let mut direct = CacheProbe::new(Machine::m1());
        for &e in &trace.events {
            match e {
                Event::Read(a, l) => direct.read(a, l as usize),
                Event::ReadDep(a, l) => direct.read_dep(a, l as usize),
                Event::Write(a, l) => direct.write(a, l as usize),
                Event::Instr(n) => direct.instr(n),
                Event::Prefetch(a) => direct.prefetch(a),
            }
        }
        let d = direct.report("replay");
        assert_eq!(replayed, d);
    }

    #[test]
    fn one_trace_two_machines() {
        let trace = sample_trace();
        let m1 = trace.replay(Machine::m1(), "m1");
        let m2 = trace.replay(Machine::m2(), "m2");
        assert_eq!(m1.instructions, m2.instructions);
        // M2's 64 KB L1 holds the whole 64 KiB stream; M1's 16 KB cannot
        assert!(m2.l1.misses <= m1.l1.misses);
    }

    #[test]
    fn tee_feeds_both() {
        let mut rec = TraceRecorder::new();
        let mut sim = CacheProbe::new(Machine::m1());
        {
            let mut tee = Tee(&mut rec, &mut sim);
            tee.read(64, 8);
            tee.instr(3);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(sim.report("tee").instructions, 4); // 1 for the read + 3
    }
}
