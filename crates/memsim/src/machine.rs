//! Machine configurations — Table 5 of the paper, plus the latency and
//! issue-width parameters the cycle model needs (drawn from the published
//! microarchitectural characteristics of the two processors).

use crate::cache::CacheGeom;
use serde::{Deserialize, Serialize};

/// Which evaluation platform a [`Machine`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineKind {
    /// Intel Pentium D 830 (dual core, 3 GHz) — column M1 of Table 5.
    M1,
    /// AMD Athlon 64 X2 4200+ — column M2 of Table 5.
    M2,
}

/// A simulated machine: cache/TLB geometry plus the cycle model's
/// latencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Which platform this models.
    pub kind: MachineKind,
    /// Display name, as in Table 5.
    pub name: &'static str,
    /// L1 data cache geometry.
    pub l1: CacheGeom,
    /// L2 unified cache geometry (per core).
    pub l2: CacheGeom,
    /// Data-TLB geometry (line = 4 KiB page).
    pub tlb: CacheGeom,
    /// Cycles per instruction when everything hits L1 (1 / issue width;
    /// both cores retire up to 3 µops per cycle → 0.33).
    pub base_cpi: f64,
    /// Extra cycles for an L1 miss that hits L2.
    pub l2_latency: f64,
    /// Extra cycles for an L2 miss served from memory.
    pub mem_latency: f64,
    /// Extra cycles for a data-TLB miss (page-walk cost).
    pub tlb_latency: f64,
    /// Fraction of a miss's latency that out-of-order execution and
    /// outstanding-miss overlap hide for *independent* accesses, `0..=1`.
    /// Dependent (pointer-chasing) accesses, which the probes flag, pay
    /// full latency.
    pub overlap: f64,
    /// Core frequency in GHz (to convert cycles to seconds in reports).
    pub freq_ghz: f64,
}

impl Machine {
    /// M1: Pentium D 830 — 16 KB 8-way L1D, 1 MB 8-way L2, 64-entry DTLB.
    /// Long memory latency (≈ 240 cycles at 3 GHz FSB-800) and a deep
    /// pipeline that overlaps independent misses moderately well.
    pub fn m1() -> Machine {
        Machine {
            kind: MachineKind::M1,
            name: "Intel Pentium D 830 (3 GHz)",
            l1: CacheGeom {
                capacity: 16 * 1024,
                ways: 8,
                line_shift: 6,
            },
            l2: CacheGeom {
                capacity: 1024 * 1024,
                ways: 8,
                line_shift: 6,
            },
            tlb: CacheGeom {
                capacity: 64 * 4096,
                ways: 4,
                line_shift: 12,
            },
            base_cpi: 1.0 / 3.0,
            l2_latency: 27.0,
            mem_latency: 240.0,
            tlb_latency: 30.0,
            overlap: 0.6,
            freq_ghz: 3.0,
        }
    }

    /// M2: Athlon 64 X2 4200+ — 64 KB 2-way L1D, 512 KB 16-way L2,
    /// on-die memory controller (≈ 200-cycle memory at 2.2 GHz), shorter
    /// L2 latency, slightly less miss overlap (shallower pipeline).
    pub fn m2() -> Machine {
        Machine {
            kind: MachineKind::M2,
            name: "AMD Athlon 64 X2 4200+ (2.2 GHz)",
            l1: CacheGeom {
                capacity: 64 * 1024,
                ways: 2,
                line_shift: 6,
            },
            l2: CacheGeom {
                capacity: 512 * 1024,
                ways: 16,
                line_shift: 6,
            },
            tlb: CacheGeom {
                capacity: 64 * 4096,
                ways: 4,
                line_shift: 12,
            },
            base_cpi: 1.0 / 3.0,
            l2_latency: 12.0,
            mem_latency: 160.0,
            tlb_latency: 25.0,
            overlap: 0.5,
            freq_ghz: 2.2,
        }
    }

    /// Looks a machine up by its Table 5 column label (`"m1"`/`"m2"`,
    /// case-insensitive).
    pub fn by_label(label: &str) -> Option<Machine> {
        match label.to_ascii_lowercase().as_str() {
            "m1" => Some(Machine::m1()),
            "m2" => Some(Machine::m2()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_geometries() {
        let m1 = Machine::m1();
        assert_eq!(m1.l1.capacity, 16 * 1024);
        assert_eq!(m1.l2.capacity, 1024 * 1024);
        let m2 = Machine::m2();
        assert_eq!(m2.l1.capacity, 64 * 1024);
        assert_eq!(m2.l2.capacity, 512 * 1024);
    }

    #[test]
    fn geometries_are_constructible() {
        use crate::cache::SetAssocCache;
        for m in [Machine::m1(), Machine::m2()] {
            SetAssocCache::new(m.l1);
            SetAssocCache::new(m.l2);
            SetAssocCache::new(m.tlb);
        }
    }

    #[test]
    fn optimum_cpi_is_one_third() {
        // "Each core … is able to retire 3 µops per cycle, with an optimum
        // CPI of 0.33" (§2.2).
        assert!((Machine::m1().base_cpi - 0.333).abs() < 0.01);
        assert!((Machine::m2().base_cpi - 0.333).abs() < 0.01);
    }

    #[test]
    fn lookup_by_label() {
        assert_eq!(Machine::by_label("M1").unwrap().kind, MachineKind::M1);
        assert_eq!(Machine::by_label("m2").unwrap().kind, MachineKind::M2);
        assert!(Machine::by_label("m3").is_none());
    }
}
