//! # `fpm-memsim` — trace-driven memory-hierarchy simulator
//!
//! The paper's Figure 2 reports CPI and cache-miss profiles measured with
//! hardware counters on a Pentium D 830 (machine **M1**) and an Athlon 64
//! X2 4200+ (**M2**) — hardware we cannot re-run. This crate substitutes a
//! trace-driven simulator: set-associative L1/L2 caches, a data TLB, an
//! optional next-line hardware prefetcher, and a simple in-order cycle
//! model. The mining kernels are generic over a [`Probe`]; compiled with
//! [`NullProbe`] they are probe-free machine code (benchmarks verify the
//! overhead is below noise), compiled with [`CacheProbe`] every memory
//! touch and instruction estimate flows into the simulator.
//!
//! The model is deliberately simple — the paper's Figure 2 argument is
//! *relative* (LCM and FP-Growth sit far above the 0.33 optimum CPI and
//! are memory bound; Eclat sits near it and is computation bound), and a
//! calibrated latency model preserves that ordering. Absolute cycle
//! counts are not claims.
//!
//! ```
//! use fpm_memsim::{CacheProbe, Machine, Probe};
//!
//! let mut p = CacheProbe::new(Machine::m1());
//! let data = vec![0u8; 1 << 20];
//! for chunk in data.chunks(64) {
//!     p.read(chunk.as_ptr() as usize, chunk.len());
//!     p.instr(8);
//! }
//! let r = p.report("streaming read");
//! assert!(r.l1.misses > 0);          // cold misses
//! assert!(r.cpi() > 0.3);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod cache;
pub mod classify;
pub mod machine;
pub mod probe;
pub mod report;
pub mod trace;

pub use cache::{CacheGeom, SetAssocCache};
pub use classify::{ClassifyingCache, MissBreakdown};
pub use machine::{Machine, MachineKind};
pub use probe::{addr_of, slice_span, CacheProbe, NullProbe, Probe};
pub use report::MemReport;
pub use trace::{Event, Tee, TraceRecorder};
