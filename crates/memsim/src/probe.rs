//! The [`Probe`] instrumentation trait and its two implementations:
//! [`NullProbe`] (native runs, compiles to nothing) and [`CacheProbe`]
//! (simulated runs, drives the cache model and the cycle accounting).

use crate::cache::SetAssocCache;
use crate::machine::Machine;
use crate::report::MemReport;

/// Address of a value, for probing.
#[inline(always)]
pub fn addr_of<T>(x: &T) -> usize {
    x as *const T as usize
}

/// `(address, byte length)` of a slice, for probing bulk accesses.
#[inline(always)]
pub fn slice_span<T>(s: &[T]) -> (usize, usize) {
    (s.as_ptr() as usize, std::mem::size_of_val(s))
}

/// Memory-access instrumentation. Kernels are generic over this; the
/// calls in their hot loops describe what the machine would do:
///
/// * [`Probe::read`] — a read whose address does not depend on a just-
///   loaded value (array streaming); overlappable by the core.
/// * [`Probe::read_dep`] — a *dependent* read (pointer chase); serialized
///   behind the previous load, pays full latency on a miss.
/// * [`Probe::write`] — a store (modelled like an independent read:
///   allocate-on-write caches).
/// * [`Probe::instr`] — `n` retired instructions of pure computation.
/// * [`Probe::prefetch`] — a software prefetch hint (P7): installs the
///   line without a demand stall.
pub trait Probe {
    /// Independent read of `len` bytes at `addr`.
    fn read(&mut self, addr: usize, len: usize);
    /// Dependent (pointer-chasing) read of `len` bytes at `addr`.
    fn read_dep(&mut self, addr: usize, len: usize);
    /// Write of `len` bytes at `addr`.
    fn write(&mut self, addr: usize, len: usize);
    /// `n` instructions of computation retired.
    fn instr(&mut self, n: u64);
    /// Software prefetch of the line at `addr`.
    fn prefetch(&mut self, addr: usize);
}

/// The zero-cost probe: every method is an empty `#[inline(always)]`
/// body, so natively-built kernels contain no trace of the
/// instrumentation (the `probe_overhead` bench pins this down).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline(always)]
    fn read(&mut self, _addr: usize, _len: usize) {}
    #[inline(always)]
    fn read_dep(&mut self, _addr: usize, _len: usize) {}
    #[inline(always)]
    fn write(&mut self, _addr: usize, _len: usize) {}
    #[inline(always)]
    fn instr(&mut self, _n: u64) {}
    #[inline(always)]
    fn prefetch(&mut self, _addr: usize) {}
}

/// The simulating probe: L1 + L2 + TLB with a next-line L2 hardware
/// prefetcher and an overlap-aware cycle model.
///
/// Cycle accounting per line touched:
/// `tlb_miss·tlb_lat + l1_miss·(l2_lat or mem_lat)·f`, where `f = 1` for
/// dependent reads and `1 − overlap` for independent ones — out-of-order
/// cores hide much of an independent miss behind other work, but a
/// pointer chase exposes the full latency (the effect P3/P5/P7 attack).
#[derive(Debug, Clone)]
pub struct CacheProbe {
    machine: Machine,
    l1: SetAssocCache,
    l2: SetAssocCache,
    tlb: SetAssocCache,
    instructions: u64,
    reads: u64,
    writes: u64,
    sw_prefetches: u64,
    cycles: f64,
    last_l2_miss_line: usize,
    /// Enable the next-line L2 hardware prefetcher (on by default; both
    /// evaluation machines had one).
    pub hw_prefetch: bool,
}

impl CacheProbe {
    /// Creates a cold simulator for `machine`.
    pub fn new(machine: Machine) -> Self {
        CacheProbe {
            machine,
            l1: SetAssocCache::new(machine.l1),
            l2: SetAssocCache::new(machine.l2),
            tlb: SetAssocCache::new(machine.tlb),
            instructions: 0,
            reads: 0,
            writes: 0,
            sw_prefetches: 0,
            cycles: 0.0,
            last_l2_miss_line: usize::MAX - 1,
            hw_prefetch: true,
        }
    }

    /// The machine being modelled.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    fn access_lines(&mut self, addr: usize, len: usize, dependent: bool) {
        let line_bytes = self.machine.l1.line_bytes();
        let factor = if dependent {
            1.0
        } else {
            1.0 - self.machine.overlap
        };
        let first = addr >> self.machine.l1.line_shift;
        let last = (addr + len.max(1) - 1) >> self.machine.l1.line_shift;
        let mut a = first << self.machine.l1.line_shift;
        for _ in first..=last {
            if !self.tlb.access(a) {
                self.cycles += self.machine.tlb_latency * factor;
            }
            if !self.l1.access(a) {
                if self.l2.access(a) {
                    self.cycles += self.machine.l2_latency * factor;
                } else {
                    self.cycles += self.machine.mem_latency * factor;
                    // Next-line hardware prefetcher: a second sequential
                    // demand miss triggers a fill of the following line.
                    let line = a >> self.machine.l2.line_shift;
                    if self.hw_prefetch && line == self.last_l2_miss_line + 1 {
                        let next = (line + 1) << self.machine.l2.line_shift;
                        self.l2.install(next);
                        self.l1.install(next);
                    }
                    self.last_l2_miss_line = line;
                }
            }
            a += line_bytes;
        }
    }

    /// Emits the accumulated statistics under `label` (the simulator keeps
    /// counting afterwards; callers reset by constructing a new probe).
    pub fn report(&self, label: impl Into<String>) -> MemReport {
        MemReport {
            label: label.into(),
            machine: self.machine.name.to_string(),
            instructions: self.instructions,
            cycles: self.cycles + self.instructions as f64 * self.machine.base_cpi,
            reads: self.reads,
            writes: self.writes,
            sw_prefetches: self.sw_prefetches,
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            tlb: self.tlb.stats(),
            freq_ghz: self.machine.freq_ghz,
        }
    }
}

impl Probe for CacheProbe {
    fn read(&mut self, addr: usize, len: usize) {
        self.reads += 1;
        self.instructions += 1; // the load itself
        self.access_lines(addr, len, false);
    }

    fn read_dep(&mut self, addr: usize, len: usize) {
        self.reads += 1;
        self.instructions += 1;
        self.access_lines(addr, len, true);
    }

    fn write(&mut self, addr: usize, len: usize) {
        self.writes += 1;
        self.instructions += 1;
        self.access_lines(addr, len, false);
    }

    fn instr(&mut self, n: u64) {
        self.instructions += n;
    }

    fn prefetch(&mut self, addr: usize) {
        self.sw_prefetches += 1;
        self.instructions += 1; // the prefetch instruction issues
        // Fill the hierarchy without demand-stall cycles.
        self.tlb.install(addr);
        self.l2.install(addr);
        self.l1.install(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn null_probe_is_free_to_call() {
        let mut p = NullProbe;
        p.read(0, 8);
        p.read_dep(0, 8);
        p.write(0, 8);
        p.instr(100);
        p.prefetch(0);
    }

    #[test]
    fn streaming_has_low_miss_rate_per_byte() {
        let mut p = CacheProbe::new(Machine::m1());
        let data = vec![0u64; 64 * 1024]; // 512 KiB, fits L2 not L1
        // touch every u64 sequentially
        for x in &data {
            p.read(addr_of(x), 8);
            p.instr(2);
        }
        let r = p.report("stream");
        // one L1 miss per 8 u64 (64-byte line): miss rate ≈ 1/8
        assert!(r.l1.miss_rate() < 0.2, "l1 miss rate {}", r.l1.miss_rate());
        assert!(r.l1.miss_rate() > 0.05);
    }

    #[test]
    fn pointer_chase_costs_more_than_stream() {
        let m = Machine::m1();
        let n = 1 << 16;
        let data = vec![0u8; n * 64];
        // Stream: sequential lines, independent.
        let mut ps = CacheProbe::new(m);
        for i in 0..n {
            ps.read(data.as_ptr() as usize + i * 64, 8);
            ps.instr(2);
        }
        // Chase: strided lines defeating the next-line prefetcher,
        // dependent.
        let mut pc = CacheProbe::new(m);
        for i in 0..n {
            let j = (i * 97) % n;
            pc.read_dep(data.as_ptr() as usize + j * 64, 8);
            pc.instr(2);
        }
        let (rs, rc) = (ps.report("s"), pc.report("c"));
        assert!(
            rc.cpi() > 2.0 * rs.cpi(),
            "chase CPI {} should dwarf stream CPI {}",
            rc.cpi(),
            rs.cpi()
        );
    }

    #[test]
    fn software_prefetch_removes_demand_misses() {
        let m = Machine::m1();
        let data = vec![0u8; 1 << 20];
        let base = data.as_ptr() as usize;
        let stride = 8 * 64; // defeat the next-line prefetcher
        let mut plain = CacheProbe::new(m);
        for i in 0..2048 {
            plain.read_dep(base + i * stride, 8);
            plain.instr(4);
        }
        let mut pf = CacheProbe::new(m);
        for i in 0..2048 {
            pf.prefetch(base + (i + 8) * stride % (1 << 20));
            pf.read_dep(base + i * stride, 8);
            pf.instr(4);
        }
        let (rp, rf) = (plain.report("p"), pf.report("f"));
        assert!(
            rf.cycles < rp.cycles * 0.5,
            "prefetched {} vs plain {}",
            rf.cycles,
            rp.cycles
        );
    }

    #[test]
    fn tlb_misses_show_up_for_page_strides() {
        let m = Machine::m1();
        let mut p = CacheProbe::new(m);
        let data = vec![0u8; 4096 * 1024]; // 1024 pages > 64-entry TLB
        for round in 0..4 {
            let _ = round;
            for page in 0..1024 {
                p.read(data.as_ptr() as usize + page * 4096, 4);
            }
        }
        let r = p.report("pages");
        assert!(r.tlb.misses as f64 > 0.9 * r.tlb.accesses() as f64);
    }

    #[test]
    fn multi_line_access_touches_every_line() {
        let m = Machine::m1();
        let mut p = CacheProbe::new(m);
        let data = vec![0u8; 4096];
        p.read(data.as_ptr() as usize, 4096); // 64 lines (65 if unaligned)
        let r = p.report("span");
        assert!(
            (64..=65).contains(&r.l1.accesses()),
            "expected 64-65 line accesses, got {}",
            r.l1.accesses()
        );
    }

    #[test]
    fn cpi_floor_is_base_cpi() {
        let m = Machine::m1();
        let mut p = CacheProbe::new(m);
        p.instr(3_000_000);
        let r = p.report("compute-only");
        assert!((r.cpi() - m.base_cpi).abs() < 1e-9);
    }

    #[test]
    fn report_seconds_uses_frequency() {
        let m = Machine::m1();
        let mut p = CacheProbe::new(m);
        p.instr(3_000_000_000);
        let r = p.report("one second-ish");
        assert!((r.seconds() - 1.0 / 3.0).abs() < 1e-6);
    }
}
