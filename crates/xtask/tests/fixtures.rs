//! Fixture-based tests for the `also-lint` rules: one good and one bad
//! fixture per rule under `tests/fixtures/`. Bad fixtures must trigger
//! exactly their own rule; good fixtures must lint clean under the same
//! file context.

use std::fs;
use std::path::Path;
use xtask::{lint_source, to_json, FileCtx};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn ctx(name: &str) -> FileCtx {
    FileCtx {
        path: format!("tests/fixtures/{name}"),
        // R2 only fires on crate roots; the r2 fixtures model one.
        is_crate_root: name.starts_with("r2"),
        in_also: false,
        // R3 only fires on emission/merge-path modules.
        emission_path: name.starts_with("r3"),
        // R6 is suspended inside the executor and kernel crates; the
        // fixtures model ordinary caller code.
        kernel_internal: false,
        // R7 is suspended inside crates/chaos and fpm::faults; the
        // fixtures model production code outside that zone.
        chaos_zone: false,
        // R10 only fires on the serve metrics path.
        lockstep_path: name.starts_with("r10"),
        // R11 only fires on panic-free paths.
        panic_free_path: name.starts_with("r11"),
    }
}

fn check(name: &str, expected_rule: &str, expect_bad: bool) {
    let diags = lint_source(&ctx(name), &fixture(name));
    if expect_bad {
        assert!(
            !diags.is_empty(),
            "{name}: expected ≥1 `{expected_rule}` diagnostic, got none"
        );
        for d in &diags {
            assert_eq!(
                d.rule, expected_rule,
                "{name}: expected only `{expected_rule}`, got {d}"
            );
        }
    } else {
        assert!(
            diags.is_empty(),
            "{name}: expected clean, got: {}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

#[test]
fn r1_safety_comments() {
    check("r1_good.rs", "safety-comments", false);
    check("r1_bad.rs", "safety-comments", true);
}

#[test]
fn r2_lint_headers() {
    check("r2_good.rs", "lint-headers", false);
    check("r2_bad.rs", "lint-headers", true);
    // Both headers are missing, so both must be reported.
    let diags = lint_source(&ctx("r2_bad.rs"), &fixture("r2_bad.rs"));
    assert_eq!(diags.len(), 2);
}

#[test]
fn r3_deterministic_iteration() {
    check("r3_good.rs", "deterministic-iteration", false);
    check("r3_bad.rs", "deterministic-iteration", true);
    // Both the `for … in &map` loop and the `.keys()` call are caught.
    let diags = lint_source(&ctx("r3_bad.rs"), &fixture("r3_bad.rs"));
    assert_eq!(diags.len(), 2);
    // Off the emission path the same source is fine.
    let mut off = ctx("r3_bad.rs");
    off.emission_path = false;
    assert!(lint_source(&off, &fixture("r3_bad.rs")).is_empty());
}

#[test]
fn r4_hot_loop_alloc() {
    check("r4_good.rs", "hot-loop-alloc", false);
    check("r4_bad.rs", "hot-loop-alloc", true);
}

#[test]
fn r5_unchecked_indexing() {
    check("r5_good.rs", "unchecked-indexing", false);
    check("r5_bad.rs", "unchecked-indexing", true);
    // The same source inside crates/also is allowed.
    let mut also = ctx("r5_bad.rs");
    also.in_also = true;
    assert!(lint_source(&also, &fixture("r5_bad.rs")).is_empty());
}

#[test]
fn r6_kernel_entry() {
    check("r6_good.rs", "kernel-entry", false);
    check("r6_bad.rs", "kernel-entry", true);
    // The bad fixture names the spine type twice, `root_tasks` once, and
    // the retired controlled entry point once.
    let diags = lint_source(&ctx("r6_bad.rs"), &fixture("r6_bad.rs"));
    assert_eq!(diags.len(), 4);
    // The same source inside the kernel-internal zone is allowed.
    let mut inside = ctx("r6_bad.rs");
    inside.kernel_internal = true;
    assert!(lint_source(&inside, &fixture("r6_bad.rs")).is_empty());
}

#[test]
fn r7_chaos_sites() {
    check("r7_good.rs", "chaos-sites", false);
    check("r7_bad.rs", "chaos-sites", true);
    // FaultPlan + FaultSite + faults::install + the unqualified hook.
    let diags = lint_source(&ctx("r7_bad.rs"), &fixture("r7_bad.rs"));
    assert_eq!(diags.len(), 4);
    // The same source inside the chaos zone is allowed.
    let mut zone = ctx("r7_bad.rs");
    zone.chaos_zone = true;
    assert!(lint_source(&zone, &fixture("r7_bad.rs")).is_empty());
}

#[test]
fn r8_atomic_ordering() {
    check("r8_good.rs", "atomic-ordering", false);
    check("r8_bad.rs", "atomic-ordering", true);
    // The SeqCst store, the Relaxed non-counter load, and the
    // variable-ordering RMW are each reported.
    let diags = lint_source(&ctx("r8_bad.rs"), &fixture("r8_bad.rs"));
    assert_eq!(diags.len(), 3);
}

#[test]
fn r9_lock_order() {
    check("r9_good.rs", "lock-order", false);
    check("r9_bad.rs", "lock-order", true);
    // The diagnostic names the witness cycle with both acquisition
    // sites, so the report is actionable without re-deriving the graph.
    let diags = lint_source(&ctx("r9_bad.rs"), &fixture("r9_bad.rs"));
    assert_eq!(diags.len(), 1);
    let msg = &diags[0].message;
    assert!(
        msg.contains("queue -> cache -> queue") || msg.contains("cache -> queue -> cache"),
        "witness path missing: {msg}"
    );
    assert!(msg.contains("while holding"), "witness sites missing: {msg}");
}

#[test]
fn r10_counter_lockstep() {
    check("r10_good.rs", "counter-lockstep", false);
    check("r10_bad.rs", "counter-lockstep", true);
    // A dropped shard-side increment fails the build, as does the
    // direct bypass of the paired incrementer.
    let diags = lint_source(&ctx("r10_bad.rs"), &fixture("r10_bad.rs"));
    assert_eq!(diags.len(), 2);
    assert!(diags.iter().any(|d| d.message.contains("no shard-side twin")));
    assert!(diags.iter().any(|d| d.message.contains("bypasses the lockstep pair")));
    // Off the lockstep path the same source is fine.
    let mut off = ctx("r10_bad.rs");
    off.lockstep_path = false;
    assert!(lint_source(&off, &fixture("r10_bad.rs")).is_empty());
}

#[test]
fn r11_panic_path() {
    check("r11_good.rs", "panic-path", false);
    check("r11_bad.rs", "panic-path", true);
    // unwrap, expect, panic!, and the indexing are each reported.
    let diags = lint_source(&ctx("r11_bad.rs"), &fixture("r11_bad.rs"));
    assert_eq!(diags.len(), 4);
    // Off the panic-free path the same source is fine.
    let mut off = ctx("r11_bad.rs");
    off.panic_free_path = false;
    assert!(lint_source(&off, &fixture("r11_bad.rs")).is_empty());
}

#[test]
fn r12_guard_across_wait() {
    check("r12_good.rs", "guard-across-await-free-wait", false);
    check("r12_bad.rs", "guard-across-await-free-wait", true);
    let diags = lint_source(&ctx("r12_bad.rs"), &fixture("r12_bad.rs"));
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("guard `q`"));
}

#[test]
fn json_output_round_trips_fixture_diagnostics() {
    let diags = lint_source(&ctx("r5_bad.rs"), &fixture("r5_bad.rs"));
    let json = to_json(&diags);
    assert!(json.contains("\"count\": 1"));
    assert!(json.contains("\"rule\": \"unchecked-indexing\""));
    assert!(json.contains("tests/fixtures/r5_bad.rs"));
}
