//! Self-check: the lint must run clean on the real workspace *modulo
//! the committed baseline* — the same invariant CI enforces with
//! `cargo run -p xtask -- lint` (the ratchet applies by default when
//! `lint-baseline.json` exists).

use std::path::Path;
use std::process::Command;
use xtask::{baseline::Baseline, lint_workspace, BASELINE_FILE};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn workspace_lints_clean_modulo_baseline() {
    let root = repo_root();
    let diags = lint_workspace(root).expect("workspace walk");
    let pinned = match std::fs::read_to_string(root.join(BASELINE_FILE)) {
        Ok(s) => Baseline::parse(&s).expect("parse committed baseline"),
        Err(_) => Baseline::default(),
    };
    let report = pinned.apply(&diags);
    assert!(
        report.fresh.is_empty(),
        "workspace has {} fresh also-lint diagnostic(s) over the baseline:\n{}",
        report.fresh.len(),
        report
            .fresh
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale.is_empty(),
        "baseline pins debt that no longer exists (run `cargo xtask lint \
         --update-baseline`): {:?}",
        report.stale
    );
}

#[test]
fn baseline_only_pins_concurrency_debt_we_expect() {
    // The ratchet is for pre-existing panic-path debt on the serve and
    // par paths — the original seven rules must hold outright, so a new
    // R1–R7 violation can never hide behind `--update-baseline`.
    let root = repo_root();
    let diags = lint_workspace(root).expect("workspace walk");
    for d in &diags {
        assert_eq!(
            d.rule, "panic-path",
            "only panic-path debt may be baselined, found: {d}"
        );
    }
}

#[test]
fn binary_exits_zero_on_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_also-lint"))
        .args(["lint", "--root"])
        .arg(repo_root())
        .output()
        .expect("spawn also-lint");
    assert!(
        out.status.success(),
        "also-lint exited {:?}:\n{}{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn binary_reports_usage_error_without_subcommand() {
    let out = Command::new(env!("CARGO_BIN_EXE_also-lint"))
        .output()
        .expect("spawn also-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn binary_emits_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_also-lint"))
        .args(["lint", "--format", "json", "--root"])
        .arg(repo_root())
        .output()
        .expect("spawn also-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"count\""));
    assert!(stdout.contains("\"diagnostics\""));
}

#[test]
fn binary_emits_sarif_with_all_rules() {
    let out = Command::new(env!("CARGO_BIN_EXE_also-lint"))
        .args(["lint", "--format", "sarif", "--root"])
        .arg(repo_root())
        .output()
        .expect("spawn also-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"version\": \"2.1.0\""));
    assert!(stdout.contains("\"name\": \"also-lint\""));
    for id in xtask::RULE_IDS {
        assert!(stdout.contains(id), "sarif driver missing rule {id}");
    }
}

#[test]
fn binary_explains_every_rule_and_rejects_unknown() {
    for id in xtask::RULE_IDS {
        let out = Command::new(env!("CARGO_BIN_EXE_also-lint"))
            .args(["lint", "--explain", id])
            .output()
            .expect("spawn also-lint");
        assert!(out.status.success(), "--explain {id} failed");
        assert!(
            String::from_utf8_lossy(&out.stdout).starts_with(id),
            "--explain {id} output does not lead with the rule id"
        );
    }
    let out = Command::new(env!("CARGO_BIN_EXE_also-lint"))
        .args(["lint", "--explain", "no-such-rule"])
        .output()
        .expect("spawn also-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn no_baseline_flag_is_clean_now_that_debt_is_zero() {
    // The panic-path paydown emptied the baseline, so `--no-baseline`
    // (raw, no ratchet) must now run clean too: the workspace carries
    // no hidden debt, and the empty committed baseline is load-bearing
    // only as the ratchet that keeps it that way.
    let out = Command::new(env!("CARGO_BIN_EXE_also-lint"))
        .args(["lint", "--no-baseline", "--root"])
        .arg(repo_root())
        .output()
        .expect("spawn also-lint");
    assert!(
        out.status.success(),
        "raw lint must be clean with zero pinned debt:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let pinned = Baseline::parse(
        &std::fs::read_to_string(repo_root().join(BASELINE_FILE))
            .expect("committed lint-baseline.json"),
    )
    .expect("parse committed baseline");
    assert!(pinned.is_empty(), "the committed baseline must stay empty");
}
