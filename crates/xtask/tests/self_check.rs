//! Self-check: the lint must run clean on the real workspace — this is
//! the same invariant CI enforces with `cargo run -p xtask -- lint`.

use std::path::Path;
use std::process::Command;
use xtask::lint_workspace;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn workspace_lints_clean() {
    let diags = lint_workspace(repo_root()).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "workspace has {} also-lint diagnostic(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn binary_exits_zero_on_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_also-lint"))
        .args(["lint", "--root"])
        .arg(repo_root())
        .output()
        .expect("spawn also-lint");
    assert!(
        out.status.success(),
        "also-lint exited {:?}:\n{}{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn binary_reports_usage_error_without_subcommand() {
    let out = Command::new(env!("CARGO_BIN_EXE_also-lint"))
        .output()
        .expect("spawn also-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn binary_emits_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_also-lint"))
        .args(["lint", "--format", "json", "--root"])
        .arg(repo_root())
        .output()
        .expect("spawn also-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"count\""));
    assert!(stdout.contains("\"diagnostics\""));
}
