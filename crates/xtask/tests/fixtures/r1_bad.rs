//! R1 fixture (bad): an `unsafe` block with no SAFETY comment.

static mut COUNTER: u64 = 0;

fn bump() {
    unsafe {
        COUNTER += 1;
    }
}
