//! R11 good: a panic-free path that recovers instead of unwrapping,
//! and one proven indexing site carrying its allow.

use std::sync::Mutex;

/// Fallible access stays fallible.
pub fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

/// Poisoned locks are recovered, not unwrapped.
pub fn read(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|e| e.into_inner())
}

/// An index with a proof carries the allow (and the proof).
pub fn head(v: &[u32]) -> u32 {
    if v.is_empty() {
        return 0;
    }
    // Non-empty checked on the line above.
    // also-lint: allow(panic-path)
    v[0]
}
