//! R5 fixture (bad): unchecked indexing outside `crates/also`.

fn nth(words: &[u64], i: usize) -> u64 {
    debug_assert!(i < words.len());
    // SAFETY: i is checked against len by every caller.
    unsafe { *words.get_unchecked(i) }
}
