//! R4 fixture (bad): a hot function that allocates per element.

// also-lint: hot
fn accumulate(occ: &[u32]) -> Vec<u32> {
    let mut touched = Vec::new();
    for &item in occ {
        touched.push(item);
    }
    touched
}
