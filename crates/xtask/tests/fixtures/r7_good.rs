//! Good fixture for R7 `chaos-sites`: production code crossing chaos
//! injection sites the sanctioned way — fully qualified hook calls that
//! compile to no-op stubs without the `chaos` feature.

fn steal_once(idx: usize) -> bool {
    fpm::faults::steal_delay();
    if fpm::faults::worker_panic(idx) {
        return false;
    }
    // Crate-relative qualification is fine too (the fpm crate itself).
    !crate::faults::admission_flap()
}
