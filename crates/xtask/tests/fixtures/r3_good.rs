//! R3 fixture (good): hash collections on the emission path used only
//! for order-free lookups, plus one justified allow-listed iteration.

use std::collections::HashMap;

struct Index {
    by_prefix: HashMap<Vec<u32>, usize>,
}

impl Index {
    fn lookup(&self, key: &[u32]) -> Option<usize> {
        self.by_prefix.get(key).copied()
    }

    fn total(&self) -> usize {
        // also-lint: allow(deterministic-iteration) — values are summed, a commutative fold
        self.by_prefix.values().sum()
    }
}
