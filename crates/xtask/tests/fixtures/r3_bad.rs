//! R3 fixture (bad): hash-order iteration feeding emission order.

use std::collections::HashMap;

struct Index {
    by_prefix: HashMap<Vec<u32>, usize>,
}

impl Index {
    fn emit_all(&self, out: &mut Vec<usize>) {
        for entry in &self.by_prefix {
            out.push(*entry.1);
        }
    }

    fn keys_in_hash_order(&self) -> usize {
        self.by_prefix.keys().count()
    }
}
