//! R9 good: nested acquisition in one global order (queue before
//! cache), and an out-of-order pair made safe by dropping the first
//! guard before taking the second.

use std::sync::Mutex;

pub struct Shard {
    queue: Mutex<Vec<u32>>,
    cache: Mutex<Vec<u32>>,
}

/// Holds both — in the canonical order.
pub fn drain(s: &Shard) {
    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());
    let c = s.cache.lock().unwrap_or_else(|e| e.into_inner());
    drop(c);
    drop(q);
}

/// Touches cache first, but releases it before taking queue: no edge.
pub fn refresh(s: &Shard) {
    let c = s.cache.lock().unwrap_or_else(|e| e.into_inner());
    drop(c);
    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());
    drop(q);
}
