//! R6 bad: reaches past the executor into the kernel spine, and
//! resurrects a retired controlled entry point.

pub fn bypasses_the_plan(db: &fpm::TransactionDb, minsup: u64) -> usize {
    let cfg = lcm::LcmConfig::all();
    let prepared = lcm::LcmSpine::prepare(db, minsup, &cfg);
    let tasks = lcm::LcmSpine::root_tasks(&prepared);
    tasks.len()
}

pub fn resurrects_dead_api(db: &fpm::TransactionDb, minsup: u64) {
    let control = fpm::MineControl::unlimited();
    let mut sink = fpm::CountSink::default();
    lcm::mine_controlled(db, minsup, &lcm::LcmConfig::all(), &control, &mut sink);
}
