//! R10 good: every global-side increment has a shard-side twin with the
//! same method and arguments in the same body.

pub struct Meters {
    global: MetricSet,
    shard: MetricSet,
}

impl Meters {
    pub fn incr(&self, name: &str) {
        self.global.incr(name);
        self.shard.incr(name);
    }

    pub fn add(&self, name: &str, v: u64) {
        self.global.add(name, v);
        self.shard.add(name, v);
    }
}
