//! R12 good: a condvar wait holding only its own mutex, and a blocking
//! recv issued after the guard is dropped.

use std::sync::{Condvar, Mutex};

pub struct Shard {
    queue: Mutex<Vec<u32>>,
    ready: Condvar,
    rx: Receiver<u32>,
}

pub fn worker(s: &Shard) {
    let mut q = s.queue.lock().unwrap_or_else(|e| e.into_inner());
    while q.is_empty() {
        // The condvar wait consumes and re-acquires its own guard.
        q = s.ready.wait(q).unwrap_or_else(|e| e.into_inner());
    }
    drop(q);
    // Guard released before blocking on the channel.
    let _msg = s.rx.recv();
}
