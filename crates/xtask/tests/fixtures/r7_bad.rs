//! Bad fixture for R7 `chaos-sites`: schedules fault injection from
//! production code and calls a hook unqualified.

fn sabotage(patterns: &mut Vec<(Vec<u32>, u64)>, seed: u64) {
    // Scheduling a plan outside the chaos zone: both the plan type and
    // the site enum are flagged, and so is arming the global slot.
    let plan = fpm::faults::FaultPlan::at(fpm::faults::FaultSite::CacheCorrupt, seed);
    let _guard = fpm::faults::install(plan);
    // An unqualified hook call — a local lookalike would silently dodge
    // the feature gate.
    if worker_panic(3) {
        patterns.clear();
    }
}
