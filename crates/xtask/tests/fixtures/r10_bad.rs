//! R10 bad: a dropped shard-side increment (per-shard sums drift from
//! the globals) and a direct `metrics.…` bypass of the lockstep pair.

pub struct Meters {
    global: MetricSet,
    shard: MetricSet,
}

impl Meters {
    /// The shard twin is missing: shard sums no longer equal globals.
    pub fn incr(&self, name: &str) {
        self.global.incr(name);
    }
}

/// Bypasses the paired incrementer entirely.
pub fn record(inner: &Inner) {
    inner.metrics.incr("requests_total");
}
