//! R4 fixture (good): a hot function that only writes into
//! preallocated storage, plus one justified allow-listed push.

// also-lint: hot
fn accumulate(counts: &mut [u64], occ: &[u32], touched: &mut Vec<u32>) {
    for &item in occ {
        counts[item as usize] += 1;
        if counts[item as usize] == 1 {
            // also-lint: allow(hot-loop-alloc) — touched preallocated to n_ranks by the caller
            touched.push(item);
        }
    }
}

fn cold_setup(n: usize) -> Vec<u64> {
    vec![0; n]
}
