//! R2 fixture (good): a crate root carrying both required headers.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

/// A documented item, as `missing_docs` demands.
pub fn answer() -> u32 {
    42
}
