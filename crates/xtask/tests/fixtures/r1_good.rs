//! R1 fixture (good): every `unsafe` carries a SAFETY justification.

static mut COUNTER: u64 = 0;

fn bump() {
    // SAFETY: single-threaded fixture; no aliasing of COUNTER.
    unsafe {
        COUNTER += 1;
    }
}

/// Adds one to the value behind `p`.
///
/// # Safety
/// `p` must be valid for reads and writes and properly aligned.
#[inline]
pub unsafe fn bump_raw(p: *mut u64) {
    // SAFETY: caller upholds the contract documented above.
    unsafe {
        *p += 1;
    }
}

struct Token(*const u8);

// SAFETY: Token is a read-only tag; the pointer is never dereferenced.
unsafe impl Send for Token {}

// SAFETY: same argument as Send — no interior mutation through the pointer.
unsafe impl Sync for Token {}
