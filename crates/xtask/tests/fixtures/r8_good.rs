//! R8 good: every atomic op names its ordering; Relaxed appears only on
//! counters or under an ORDERING proof; Acquire/Release are
//! self-describing; non-atomic `swap` is not confused for an atomic.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Counters exempt themselves by receiving `fetch_add` in this file.
pub fn count(hits: &AtomicU64) -> u64 {
    hits.fetch_add(1, Ordering::Relaxed);
    hits.load(Ordering::Relaxed)
}

/// Publication with self-describing orderings needs no comment.
pub fn publish(ready: &AtomicBool) {
    ready.store(true, Ordering::Release);
}

/// Matching consume side.
pub fn consume(ready: &AtomicBool) -> bool {
    ready.load(Ordering::Acquire)
}

/// A Relaxed latch with its proof attached.
pub fn cancel(flag: &AtomicBool) {
    // ORDERING: Relaxed — monotonic control-flow latch; no payload is
    // published through the flag.
    flag.store(true, Ordering::Relaxed);
}

/// `Vec::swap` has no `Ordering` argument, so it is not an atomic op.
pub fn shuffle(v: &mut [u32]) {
    v.swap(0, 1);
}
