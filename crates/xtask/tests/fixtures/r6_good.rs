//! R6 good: mining goes through the `MinePlan` executor — no spine
//! vocabulary, no retired per-kernel entry points.

pub fn count_frequent(db: &fpm::TransactionDb, minsup: u64) -> u64 {
    let mut sink = fpm::CountSink::default();
    let summary = exec::MinePlan::by_label("lcm", minsup)
        .expect("known kernel")
        .threads(4)
        .execute(db, &mut sink);
    assert!(summary.complete);
    sink.count
}

/// The kernels' own serial `mine` stays public API — naming it is fine.
pub fn serial_reference(db: &fpm::TransactionDb, minsup: u64) -> u64 {
    let mut sink = fpm::CountSink::default();
    lcm::mine(db, minsup, &lcm::LcmConfig::all(), &mut sink);
    sink.count
}
