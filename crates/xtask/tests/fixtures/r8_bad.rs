//! R8 bad: an unjustified SeqCst, an unjustified Relaxed on a
//! non-counter, and an RMW whose ordering hides behind a variable.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// SeqCst without a proof that a single global order is required.
pub fn gate(hold: &AtomicBool) {
    hold.store(true, Ordering::SeqCst);
}

/// Relaxed on a flag that never takes `fetch_add` — not a counter.
pub fn peek(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}

/// The ordering must be named literally at the call site.
pub fn bump(n: &AtomicU64, o: Ordering) {
    n.fetch_add(1, o);
}
