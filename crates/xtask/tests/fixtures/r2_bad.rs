//! R2 fixture (bad): a crate root with neither required header.

pub fn answer() -> u32 {
    42
}
