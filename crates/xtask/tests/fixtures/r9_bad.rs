//! R9 bad: two functions acquire the same pair of locks in opposite
//! orders — the classic cross-thread deadlock. The diagnostic must name
//! the witness cycle.

use std::sync::Mutex;

pub struct Shard {
    queue: Mutex<Vec<u32>>,
    cache: Mutex<Vec<u32>>,
}

/// queue, then cache…
pub fn drain(s: &Shard) {
    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());
    let c = s.cache.lock().unwrap_or_else(|e| e.into_inner());
    drop(c);
    drop(q);
}

/// …and cache, then queue.
pub fn refresh(s: &Shard) {
    let c = s.cache.lock().unwrap_or_else(|e| e.into_inner());
    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());
    drop(q);
    drop(c);
}
