//! R12 bad: blocking on a channel recv while a mutex guard is live —
//! every thread that needs `queue` now waits on this recv too.

use std::sync::Mutex;

pub struct Shard {
    queue: Mutex<Vec<u32>>,
    rx: Receiver<u32>,
}

pub fn stalls(s: &Shard) {
    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());
    let _msg = s.rx.recv();
    drop(q);
}
