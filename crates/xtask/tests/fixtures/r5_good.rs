//! R5 fixture (good): bounds-checked indexing outside `crates/also`.

fn first(words: &[u64]) -> u64 {
    words.first().copied().unwrap_or(0)
}

fn nth(words: &[u64], i: usize) -> u64 {
    words.get(i).copied().unwrap_or(0)
}
