//! R11 bad: unwrap, expect, a panic macro, and unguarded indexing on a
//! panic-free path — each one can strand in-flight work.

pub fn broken(v: &[u32], o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = v.get(0).expect("present");
    if a > *b {
        panic!("boom");
    }
    v[0]
}
