//! Lexer hardening: dedicated edge-case tests for the constructs a
//! token-stream linter must never mis-scan. A lexing error here is not a
//! cosmetic bug — a string that swallows trailing code, or a comment
//! that loses a line, makes every downstream rule silently skip (or
//! misreport) real violations. Each test pins either a fixed bug or a
//! behavior the rules depend on.

use xtask::lexer::{lex, Tok, TokKind};

fn idents(toks: &[Tok]) -> Vec<&str> {
    toks.iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect()
}

fn line_of(toks: &[Tok], ident: &str) -> u32 {
    toks.iter()
        .find(|t| t.is_ident(ident))
        .unwrap_or_else(|| panic!("no ident `{ident}`"))
        .line
}

// --- raw strings -----------------------------------------------------------

#[test]
fn raw_string_hash_depths() {
    // One token per literal; the code after each survives.
    for src in [
        "let a = r\"x \\ y\"; after",
        "let a = r#\"x \" y\"#; after",
        "let a = r##\"x \"# y\"##; after",
        "let a = r###\"quotes \"\" hashes ## \"## end\"###; after",
    ] {
        let toks = lex(src);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1,
            "{src}"
        );
        assert!(toks.iter().any(|t| t.is_ident("after")), "{src}");
    }
}

#[test]
fn raw_string_partial_hash_close_does_not_end_literal() {
    // `"#` inside an `r##"…"##` literal is content, not a terminator.
    let toks = lex("let a = r##\"a\"#b\"##; y");
    let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
    assert_eq!(s.text, "r##\"a\"#b\"##");
    assert!(toks.iter().any(|t| t.is_ident("y")));
}

#[test]
fn multiline_raw_string_counts_lines() {
    let toks = lex("let a = r#\"one\ntwo\nthree\"#;\nfn f() {}");
    assert_eq!(line_of(&toks, "fn"), 4);
}

#[test]
fn unterminated_raw_string_swallows_rest_without_panicking() {
    let toks = lex("let a = r#\"never closed\nunsafe { }");
    // The dangling literal extends to EOF: no `unsafe` ident escapes it.
    assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
}

#[test]
fn adjacent_raw_strings_stay_separate() {
    let toks = lex(r##"let p = (r#"a"#, r#"b"#); tail"##);
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    assert!(toks.iter().any(|t| t.is_ident("tail")));
}

#[test]
fn byte_and_c_string_prefixes() {
    // b"…" and c"…" process escapes: an escaped quote must not close
    // the literal early (regression: `c` was treated as a raw prefix,
    // so `c"a\"b"` closed at the `\"` and swallowed the code after it).
    for src in ["let s = b\"a\\\"b\"; guard", "let s = c\"a\\\"b\"; guard"] {
        let toks = lex(src);
        let strs: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1, "{src}");
        assert!(strs[0].text.ends_with("b\""), "literal runs to the real close: {src}");
        assert!(toks.iter().any(|t| t.is_ident("guard")), "{src}");
    }
    // br/cr are raw: backslash is content and does not escape the close.
    for src in ["let s = br\"a\\\"; guard", "let s = cr\"a\\\"; guard"] {
        let toks = lex(src);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1, "{src}");
        assert!(toks.iter().any(|t| t.is_ident("guard")), "{src}");
    }
}

#[test]
fn string_line_continuation_counts_the_newline() {
    // Regression: the `\` + newline escape consumed the newline without
    // advancing the line counter, shifting every later line number (and
    // therefore every `also-lint: allow` match) off by one.
    let toks = lex("let s = \"a\\\nb\";\nfn f() {}");
    assert_eq!(line_of(&toks, "fn"), 3);
}

#[test]
fn ident_hash_that_is_not_a_raw_string_rewinds() {
    // `r # !` (e.g. from macro fragments) must not eat the hash.
    let toks = lex("r # x");
    assert_eq!(idents(&toks), vec!["r", "x"]);
    assert!(toks.iter().any(|t| t.is_punct('#')));
}

// --- nested block comments -------------------------------------------------

#[test]
fn deeply_nested_block_comments_balance() {
    let toks = lex("/* 1 /* 2 /* 3 */ 2 */ 1 */ x");
    assert_eq!(toks.len(), 2);
    assert_eq!(toks[0].kind, TokKind::BlockComment);
    assert!(toks[1].is_ident("x"));
}

#[test]
fn nested_block_comment_counts_interior_lines() {
    let toks = lex("/* a\n/* b\n*/\nc */\nfn f() {}");
    assert_eq!(line_of(&toks, "fn"), 5);
}

#[test]
fn unterminated_nested_comment_swallows_rest() {
    let toks = lex("/* open /* still open */ unsafe { }");
    assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
}

#[test]
fn block_comment_with_crlf_line_endings() {
    let toks = lex("/* a\r\n b */\r\nfn f() {}");
    assert_eq!(line_of(&toks, "fn"), 3);
}

#[test]
fn star_slash_inside_string_inside_code_is_not_a_close() {
    // The comment scanner is not string-aware (rustc's isn't either):
    // `*/` inside a comment closes it regardless of quotes. But `/*`
    // inside a *string* must not open a comment.
    let toks = lex("let s = \"/* not a comment */\"; x");
    assert!(toks.iter().all(|t| t.kind != TokKind::BlockComment));
    assert!(toks.iter().any(|t| t.is_ident("x")));
}

// --- char literals ---------------------------------------------------------

#[test]
fn escaped_quote_char_literal_closes_correctly() {
    // Regression: `'\''` closed at the escaped quote, leaving a
    // spurious dangling token behind.
    for src in ["if c == '\\'' { x() }", "if c == b'\\'' { x() }"] {
        let toks = lex(src);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            1,
            "{src}"
        );
        assert!(toks.iter().any(|t| t.is_ident("x")), "{src}");
        assert!(
            toks.iter().all(|t| t.kind != TokKind::Lifetime),
            "no spurious lifetime: {src}"
        );
    }
}

#[test]
fn multi_char_escapes_in_char_literals() {
    for src in ["'\\x41'", "'\\u{1F600}'", "'\\n'", "'\\\\'", "b'\\x00'"] {
        let toks = lex(&format!("let c = {src}; y"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            1,
            "{src}"
        );
        assert!(toks.iter().any(|t| t.is_ident("y")), "{src}");
    }
}

#[test]
fn lifetime_before_string_does_not_merge() {
    let toks = lex("fn f<'a>() -> &'a str { \"s\" }");
    assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
}
