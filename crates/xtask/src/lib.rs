//! `also-lint`: project-specific static analysis for the ALSO workspace.
//!
//! The ALSO patterns (prefetch pointers, wave-front prefetch, SIMD
//! popcount kernels) force this codebase into `unsafe` intrinsics and raw
//! allocation, and the parallel runtime promises byte-identical-to-serial
//! output. Those invariants are cheap to break silently, so this crate
//! machine-checks them at the source level on every CI run:
//!
//! - **safety-comments** (R1): every `unsafe` block/fn/impl carries a
//!   `// SAFETY:` comment.
//! - **lint-headers** (R2): every crate root denies
//!   `unsafe_op_in_unsafe_fn` and warns on `missing_docs`.
//! - **deterministic-iteration** (R3): no hash-order iteration on the
//!   emission/merge path (see [`workspace::EMISSION_PATHS`]).
//! - **hot-loop-alloc** (R4): `// also-lint: hot` functions do not
//!   allocate; `fpm::alloc_guard` proves the same at runtime.
//! - **unchecked-indexing** (R5): `get_unchecked` stays inside
//!   `crates/also`.
//! - **kernel-entry** (R6): the `KernelSpine` machinery (and the retired
//!   per-kernel entry points) stays inside `crates/exec` and the kernel
//!   crates; everyone else mines through `exec::MinePlan`.
//! - **chaos-sites** (R7): fault *scheduling* (`FaultPlan` & co.) stays
//!   inside `crates/chaos` and `fpm::faults`; production code only ever
//!   crosses injection hooks fully qualified, `faults::<site>(…)`, so
//!   every chaos seam is greppable and resolves to the feature-gated
//!   no-op stubs.
//!
//! Run with `cargo run -p xtask -- lint [--format json]`. Suppress a
//! finding with `// also-lint: allow(<rule>)` on the offending line or
//! the line above — the comment is also where the justification lives.
//!
//! Deliberately std-only (no registry or vendored deps) so the lint
//! builds in seconds and can run first in CI.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use diag::{to_json, Diagnostic, RULE_IDS};
pub use rules::{lint_source, FileCtx};
pub use workspace::{
    classify, lint_workspace, lintable_files, CHAOS_ZONE_FILES, CHAOS_ZONE_PREFIXES,
    EMISSION_PATHS, KERNEL_INTERNAL_FILES, KERNEL_INTERNAL_PREFIXES,
};
