//! `also-lint`: project-specific static analysis for the ALSO workspace.
//!
//! The ALSO patterns (prefetch pointers, wave-front prefetch, SIMD
//! popcount kernels) force this codebase into `unsafe` intrinsics and raw
//! allocation, and the parallel runtime promises byte-identical-to-serial
//! output. Those invariants are cheap to break silently, so this crate
//! machine-checks them at the source level on every CI run:
//!
//! - **safety-comments** (R1): every `unsafe` block/fn/impl carries a
//!   `// SAFETY:` comment.
//! - **lint-headers** (R2): every crate root denies
//!   `unsafe_op_in_unsafe_fn` and warns on `missing_docs`.
//! - **deterministic-iteration** (R3): no hash-order iteration on the
//!   emission/merge path (see [`workspace::EMISSION_PATHS`]).
//! - **hot-loop-alloc** (R4): `// also-lint: hot` functions do not
//!   allocate; `fpm::alloc_guard` proves the same at runtime.
//! - **unchecked-indexing** (R5): `get_unchecked` stays inside
//!   `crates/also`.
//! - **kernel-entry** (R6): the `KernelSpine` machinery (and the retired
//!   per-kernel entry points) stays inside `crates/exec` and the kernel
//!   crates; everyone else mines through `exec::MinePlan`.
//! - **chaos-sites** (R7): fault *scheduling* (`FaultPlan` & co.) stays
//!   inside `crates/chaos` and `fpm::faults`; production code only ever
//!   crosses injection hooks fully qualified, `faults::<site>(…)`, so
//!   every chaos seam is greppable and resolves to the feature-gated
//!   no-op stubs.
//!
//! The concurrency-audit layer ([`concurrency`], built on the
//! token-stream analyses in [`analysis`]) adds:
//!
//! - **atomic-ordering** (R8): every atomic op names its `Ordering`;
//!   `Relaxed` on a non-counter, and every `SeqCst`, needs an adjacent
//!   `// ORDERING:` justification comment.
//! - **lock-order** (R9): the per-file lock-acquisition graph is
//!   acyclic; cycles are reported with a witness path.
//! - **counter-lockstep** (R10): on the serve metrics path, global and
//!   shard counters increment in the same body with the same args.
//! - **panic-path** (R11): no `unwrap`/`expect`/panic macros/indexing
//!   in non-test code on the serve worker, poll frontend, or par steal
//!   paths.
//! - **guard-across-await-free-wait** (R12): no lock guard held across
//!   `Condvar::wait`/`recv`/`park` except a condvar's own mutex.
//!
//! Run with `cargo run -p xtask -- lint [--format json|sarif]`.
//! Suppress a finding with `// also-lint: allow(<rule>)` on the
//! offending line or the line above — the comment is also where the
//! justification lives. Pre-existing debt is pinned in
//! `lint-baseline.json` ([`baseline`]): the ratchet fails on *new*
//! findings and on *stale* pins (debt paid down without tightening the
//! file — regenerate with `cargo xtask lint --update-baseline`).
//! `--explain <rule>` prints the full rationale for any rule.
//!
//! Deliberately std-only (no registry or vendored deps) so the lint
//! builds in seconds and can run first in CI.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod concurrency;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use baseline::{group, Baseline, RatchetReport, BASELINE_FILE};
pub use diag::{explain, to_json, to_sarif, Diagnostic, RULE_IDS};
pub use rules::{lint_source, FileCtx};
pub use workspace::{
    classify, lint_workspace, lintable_files, CHAOS_ZONE_FILES, CHAOS_ZONE_PREFIXES,
    EMISSION_PATHS, KERNEL_INTERNAL_FILES, KERNEL_INTERNAL_PREFIXES, LOCKSTEP_PATHS,
    PANIC_FREE_PATHS,
};
