//! Workspace discovery: find every `.rs` file the lint should see and
//! classify it into a [`FileCtx`].
//!
//! The walk starts at the repo root and skips `target/`, `vendor/`
//! (offline dependency stand-ins we do not own), `.git/`, and the lint's
//! own `tests/fixtures/` corpus (those files *intentionally* violate
//! rules).

use crate::diag::Diagnostic;
use crate::rules::{lint_source, FileCtx};
use std::fs;
use std::path::{Path, PathBuf};

/// Modules on the emission/merge path, where iteration order becomes
/// output order: pattern sinks, the closed/maximal post-filter, the
/// parallel runtime's merge, the plan executor (whose driver owns the
/// rank-ordered prefix replay), and the whole serve layer (its cache
/// eviction, response rendering, and prefix merge all feed
/// caller-visible output), plus the artifact store's encoder/decoder
/// and incremental-append patcher (persisted bytes must be a pure
/// function of the artifact, or checksums and warm-start byte-identity
/// break). These carry PR 1's byte-identical-to-serial determinism
/// guarantee, so R3 (deterministic-iteration) applies to them.
pub const EMISSION_PATHS: &[&str] = &[
    "crates/fpm/src/sink.rs",
    "crates/fpm/src/postfilter.rs",
    "crates/fpm/src/query.rs",
    "crates/par/src/lib.rs",
    "crates/exec/src/lib.rs",
    "crates/apriori/src/lib.rs",
    "crates/memsim/src/classify.rs",
    "crates/serve/src/cache.rs",
    "crates/serve/src/service.rs",
    "crates/serve/src/request.rs",
    "crates/serve/src/json.rs",
    "crates/serve/src/frontend.rs",
    "crates/serve/src/loadgen.rs",
    "crates/store/src/fmt.rs",
    "crates/store/src/artifact.rs",
    "crates/store/src/append.rs",
    // The hybrid-container vertical path (DESIGN.md §16): container
    // layout and the chunk walk determine the tid order every kernel
    // emits from, so iteration here must be deterministic.
    "crates/also/src/containers.rs",
    "crates/fpm/src/vertical.rs",
    "crates/eclat/src/hybrid.rs",
];

/// Path prefixes allowed to touch the `KernelSpine` machinery directly
/// (R6 `kernel-entry` does not apply inside them): the executor and the
/// kernel crates that implement spines.
pub const KERNEL_INTERNAL_PREFIXES: &[&str] = &[
    "crates/exec/",
    "crates/lcm/",
    "crates/eclat/",
    "crates/fpgrowth/",
];

/// Single files outside those prefixes that also own spine vocabulary:
/// the `fpm` module *defining* the `KernelSpine` trait.
pub const KERNEL_INTERNAL_FILES: &[&str] = &["crates/fpm/src/exec.rs"];

/// The chaos zone (R7 `chaos-sites` does not apply): the fault-injection
/// harness itself.
pub const CHAOS_ZONE_PREFIXES: &[&str] = &["crates/chaos/"];

/// Single files in the chaos zone outside those prefixes: the `fpm`
/// module defining the fault plans and hook stubs.
pub const CHAOS_ZONE_FILES: &[&str] = &["crates/fpm/src/faults.rs"];

/// The serve metrics path, where R10 (counter-lockstep) applies: the
/// global and per-shard `MetricSet` must increment in the same body,
/// and only through the paired incrementer. This is the static form of
/// the chaos-campaign invariant "shard counter sums equal the globals".
pub const LOCKSTEP_PATHS: &[&str] = &["crates/serve/src/service.rs"];

/// Panic-free paths, where R11 (panic-path) applies: the serve worker
/// loop and single-flight machinery, the poll frontend's state machine,
/// and the par runtime's steal path. A panic here poisons locks and
/// strands in-flight jobs; pre-existing debt is pinned in
/// `lint-baseline.json` and may only shrink.
pub const PANIC_FREE_PATHS: &[&str] = &[
    "crates/serve/src/service.rs",
    "crates/serve/src/frontend.rs",
    "crates/par/src/lib.rs",
];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "node_modules"];

/// Builds the [`FileCtx`] for a repo-relative path (forward slashes).
pub fn classify(root: &Path, rel: &str) -> FileCtx {
    let is_crate_root = (rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs"))
        && Path::new(rel)
            .parent() // src/
            .and_then(Path::parent) // package dir
            .map(|pkg| root.join(pkg).join("Cargo.toml").is_file())
            .unwrap_or(false);
    FileCtx {
        path: rel.to_string(),
        is_crate_root,
        in_also: rel.starts_with("crates/also/") || rel.contains("/crates/also/"),
        emission_path: EMISSION_PATHS.iter().any(|p| rel == *p || rel.ends_with(&format!("/{p}"))),
        kernel_internal: KERNEL_INTERNAL_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p) || rel.contains(&format!("/{p}")))
            || KERNEL_INTERNAL_FILES
                .iter()
                .any(|p| rel == *p || rel.ends_with(&format!("/{p}"))),
        chaos_zone: CHAOS_ZONE_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p) || rel.contains(&format!("/{p}")))
            || CHAOS_ZONE_FILES
                .iter()
                .any(|p| rel == *p || rel.ends_with(&format!("/{p}"))),
        lockstep_path: LOCKSTEP_PATHS
            .iter()
            .any(|p| rel == *p || rel.ends_with(&format!("/{p}"))),
        panic_free_path: PANIC_FREE_PATHS
            .iter()
            .any(|p| rel == *p || rel.ends_with(&format!("/{p}"))),
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            // The fixture corpus violates rules on purpose.
            if name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Collects every lintable `.rs` file under `root`, sorted, repo-relative
/// with forward slashes.
pub fn lintable_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut abs = Vec::new();
    walk(root, &mut abs)?;
    let mut rels: Vec<String> = abs
        .into_iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rels.sort();
    Ok(rels)
}

/// Lints the whole workspace rooted at `root`; returns sorted diagnostics.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for rel in lintable_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        let ctx = classify(root, &rel);
        diags.extend(lint_source(&ctx, &src));
    }
    diags.sort();
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf()
    }

    #[test]
    fn classify_marks_crate_roots_and_also() {
        let root = repo_root();
        let c = classify(&root, "crates/also/src/lib.rs");
        assert!(c.is_crate_root);
        assert!(c.in_also);
        assert!(!c.emission_path);
        let c = classify(&root, "crates/also/src/bits.rs");
        assert!(!c.is_crate_root);
        assert!(c.in_also);
        let c = classify(&root, "crates/par/src/lib.rs");
        assert!(c.is_crate_root);
        assert!(c.emission_path);
        assert!(!c.in_also);
        let c = classify(&root, "crates/fpm/src/sink.rs");
        assert!(c.emission_path);
        // The query surface (class/rules/top-k filters) feeds
        // caller-visible output directly, so it carries R3 too.
        assert!(classify(&root, "crates/fpm/src/query.rs").emission_path);
        // The serve layer renders caller-visible output, so all of it
        // carries R3.
        let c = classify(&root, "crates/serve/src/cache.rs");
        assert!(c.emission_path);
        // The store persists bytes that must round-trip exactly, so its
        // encoder, decoder and append patcher carry R3 too.
        let c = classify(&root, "crates/store/src/artifact.rs");
        assert!(c.emission_path);
        assert!(classify(&root, "crates/store/src/fmt.rs").emission_path);
        assert!(classify(&root, "crates/store/src/append.rs").emission_path);
        assert!(!classify(&root, "crates/store/src/lib.rs").emission_path);
        // The hybrid-container chunk walk fixes the emitted tid order,
        // so the container module and its consumers carry R3 (and the
        // container kernels, being in crates/also, carry R4 as well).
        let c = classify(&root, "crates/also/src/containers.rs");
        assert!(c.emission_path);
        assert!(c.in_also);
        assert!(classify(&root, "crates/fpm/src/vertical.rs").emission_path);
        let c = classify(&root, "crates/eclat/src/hybrid.rs");
        assert!(c.emission_path);
        assert!(c.kernel_internal);
        let c = classify(&root, "crates/serve/src/lib.rs");
        assert!(c.is_crate_root);
        assert!(!c.emission_path, "the crate root holds no iteration");
        assert!(!c.kernel_internal, "serve must go through MinePlan");
    }

    #[test]
    fn classify_marks_kernel_internal_zone() {
        let root = repo_root();
        assert!(classify(&root, "crates/exec/src/lib.rs").kernel_internal);
        assert!(classify(&root, "crates/exec/src/lib.rs").emission_path);
        assert!(classify(&root, "crates/lcm/src/spine.rs").kernel_internal);
        assert!(classify(&root, "crates/eclat/src/lib.rs").kernel_internal);
        assert!(classify(&root, "crates/fpgrowth/src/spine.rs").kernel_internal);
        assert!(classify(&root, "crates/fpm/src/exec.rs").kernel_internal);
        assert!(!classify(&root, "crates/fpm/src/lib.rs").kernel_internal);
        assert!(!classify(&root, "crates/cli/src/main.rs").kernel_internal);
        assert!(!classify(&root, "tests/exec_conformance.rs").kernel_internal);
    }

    #[test]
    fn classify_marks_chaos_zone() {
        let root = repo_root();
        assert!(classify(&root, "crates/chaos/src/campaign.rs").chaos_zone);
        assert!(classify(&root, "crates/chaos/tests/panic_every_task.rs").chaos_zone);
        assert!(classify(&root, "crates/fpm/src/faults.rs").chaos_zone);
        assert!(!classify(&root, "crates/fpm/src/control.rs").chaos_zone);
        assert!(!classify(&root, "crates/par/src/lib.rs").chaos_zone);
        assert!(!classify(&root, "crates/serve/src/cache.rs").chaos_zone);
    }

    #[test]
    fn classify_marks_concurrency_paths() {
        let root = repo_root();
        let c = classify(&root, "crates/serve/src/service.rs");
        assert!(c.lockstep_path);
        assert!(c.panic_free_path);
        assert!(classify(&root, "crates/serve/src/frontend.rs").panic_free_path);
        assert!(!classify(&root, "crates/serve/src/frontend.rs").lockstep_path);
        assert!(classify(&root, "crates/par/src/lib.rs").panic_free_path);
        assert!(!classify(&root, "crates/serve/src/cache.rs").panic_free_path);
        assert!(!classify(&root, "crates/fpm/src/metrics.rs").lockstep_path);
    }

    #[test]
    fn walk_skips_vendor_target_and_fixtures() {
        let root = repo_root();
        let files = lintable_files(&root).unwrap();
        assert!(!files.is_empty());
        assert!(files.iter().all(|f| !f.starts_with("vendor/")));
        assert!(files.iter().all(|f| !f.starts_with("target/")));
        assert!(files.iter().all(|f| !f.contains("tests/fixtures/")));
        assert!(files.iter().any(|f| f == "crates/also/src/bits.rs"));
    }
}
