//! The seven `also-lint` rules, implemented as token-stream visitors.
//!
//! Each rule is a pure function from a lexed token stream (plus a
//! [`FileCtx`] saying what kind of file this is) to diagnostics. A final
//! pass drops any diagnostic covered by an
//! `// also-lint: allow(<rule>[, <rule>…])` comment on the same line or
//! the line directly above — that comment doubles as the written
//! justification the rules demand.
//!
//! | id                        | invariant                                               |
//! |---------------------------|---------------------------------------------------------|
//! | `safety-comments`         | every `unsafe` is preceded by `// SAFETY:` prose        |
//! | `lint-headers`            | crate roots deny `unsafe_op_in_unsafe_fn`, warn docs    |
//! | `deterministic-iteration` | no hash-order iteration on the emission/merge path      |
//! | `hot-loop-alloc`          | `// also-lint: hot` functions do not allocate           |
//! | `unchecked-indexing`      | `get_unchecked{,_mut}` only inside `crates/also`        |
//! | `kernel-entry`            | spine internals stay inside `crates/exec` + kernels     |
//! | `chaos-sites`             | fault *scheduling* stays inside the chaos zone; hooks   |
//! |                           | are crossed only as `faults::<site>(…)`                 |

use crate::diag::Diagnostic;
use crate::lexer::{lex, Tok, TokKind};
use std::collections::{HashMap, HashSet};

/// What the linter needs to know about a file beyond its bytes.
#[derive(Debug, Clone, Default)]
pub struct FileCtx {
    /// Repo-relative path with forward slashes, used in diagnostics.
    pub path: String,
    /// `src/lib.rs` or `src/main.rs` of some package → R2 applies.
    pub is_crate_root: bool,
    /// Inside `crates/also` → R5 does not apply (that crate is the one
    /// place allowed to hold `unsafe` micro-optimizations).
    pub in_also: bool,
    /// On the emission/merge path (sinks, postfilter, par runtime, the
    /// plan executor) → R3 applies.
    pub emission_path: bool,
    /// Inside the executor (`crates/exec`), a kernel crate, or the
    /// `fpm` spine-contract module → R6 does not apply (these *own*
    /// the `KernelSpine` machinery everyone else must reach through
    /// `MinePlan`).
    pub kernel_internal: bool,
    /// Inside `crates/chaos` or the `fpm::faults` module → R7 does not
    /// apply (the harness and hook definitions *are* the chaos zone;
    /// everyone else only crosses `faults::<site>` hooks and never
    /// schedules faults).
    pub chaos_zone: bool,
    /// On the serve metrics path → R10 (counter-lockstep) applies:
    /// global and shard counters must increment in the same body.
    pub lockstep_path: bool,
    /// On a panic-free path (serve worker loop, poll frontend, par
    /// steal path) → R11 (panic-path) applies.
    pub panic_free_path: bool,
}

/// Lints one file's source text and returns its (sorted, suppression-
/// filtered) diagnostics.
pub fn lint_source(ctx: &FileCtx, src: &str) -> Vec<Diagnostic> {
    let toks = lex(src);
    let mut diags = Vec::new();
    rule_safety_comments(ctx, &toks, &mut diags);
    if ctx.is_crate_root {
        rule_lint_headers(ctx, &toks, &mut diags);
    }
    if ctx.emission_path {
        rule_deterministic_iteration(ctx, &toks, &mut diags);
    }
    rule_hot_loop_alloc(ctx, &toks, &mut diags);
    if !ctx.in_also {
        rule_unchecked_indexing(ctx, &toks, &mut diags);
    }
    if !ctx.kernel_internal {
        rule_kernel_entry(ctx, &toks, &mut diags);
    }
    if !ctx.chaos_zone {
        rule_chaos_sites(ctx, &toks, &mut diags);
    }
    crate::concurrency::rule_atomic_ordering(ctx, &toks, &mut diags);
    crate::concurrency::rule_lock_order(ctx, &toks, &mut diags);
    if ctx.lockstep_path {
        crate::concurrency::rule_counter_lockstep(ctx, &toks, &mut diags);
    }
    if ctx.panic_free_path {
        crate::concurrency::rule_panic_path(ctx, &toks, &mut diags);
    }
    crate::concurrency::rule_guard_across_wait(ctx, &toks, &mut diags);
    let allows = collect_allows(&toks);
    diags.retain(|d| !is_allowed(&allows, d.line, d.rule));
    diags.sort();
    diags
}

// ---------------------------------------------------------------------------
// Suppression directives
// ---------------------------------------------------------------------------

/// Parses `// also-lint: …` comments. Returns `(allow_map, hot_lines)`
/// via [`collect_allows`] / [`hot_marker_indices`].
fn directive_payload(text: &str) -> Option<&str> {
    let body = text
        .trim_start_matches('/')
        .trim_start_matches('*')
        .trim_start();
    let rest = body.strip_prefix("also-lint:")?;
    Some(rest.trim())
}

/// Map from line number to the set of rule ids allowed on that line (and
/// the next one).
fn collect_allows(toks: &[Tok]) -> HashMap<u32, HashSet<String>> {
    let mut map: HashMap<u32, HashSet<String>> = HashMap::new();
    for t in toks {
        if !t.is_comment() {
            continue;
        }
        let Some(payload) = directive_payload(&t.text) else {
            continue;
        };
        let Some(inner) = payload
            .strip_prefix("allow(")
            .and_then(|r| r.split(')').next())
        else {
            continue;
        };
        let entry = map.entry(t.line).or_default();
        for rule in inner.split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                entry.insert(rule.to_string());
            }
        }
    }
    map
}

/// An allow on line L covers diagnostics on L (trailing comment) and
/// L + 1 (comment on its own line above the code).
fn is_allowed(allows: &HashMap<u32, HashSet<String>>, line: u32, rule: &str) -> bool {
    let hit = |l: u32| allows.get(&l).is_some_and(|s| s.contains(rule));
    hit(line) || (line > 0 && hit(line - 1))
}

// ---------------------------------------------------------------------------
// R1: safety-comments
// ---------------------------------------------------------------------------

/// Skips an attribute group ending at `toks[j]` (which is `]`), returning
/// the index just before the opening `#` (or `#!`). Returns `None` if the
/// brackets never balance.
fn skip_attr_backwards(toks: &[Tok], mut j: usize) -> Option<usize> {
    debug_assert!(toks[j].is_punct(']'));
    let mut depth = 0isize;
    loop {
        match toks[j].kind {
            TokKind::Punct(']') => depth += 1,
            TokKind::Punct('[') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    // Optional `!` (inner attribute), then the `#`.
    if j > 0 && toks[j - 1].is_punct('!') {
        j -= 1;
    }
    if j > 0 && toks[j - 1].is_punct('#') {
        j -= 1;
    }
    j.checked_sub(1)
}

/// True if the contiguous comment group ending at `toks[j]` satisfies R1
/// for an `unsafe` item of kind `kind` ("fn"/"trait" additionally accept
/// a `# Safety` doc section, the std convention for unsafe functions).
fn comment_group_has_safety(toks: &[Tok], j: usize, kind: &str) -> bool {
    let accept_doc_section = matches!(kind, "fn" | "trait");
    let mut k = j;
    loop {
        let t = &toks[k];
        if !t.is_comment() {
            break;
        }
        if t.text.contains("SAFETY:") {
            return true;
        }
        if accept_doc_section && t.text.contains("# Safety") {
            return true;
        }
        if k == 0 {
            break;
        }
        k -= 1;
    }
    false
}

fn rule_safety_comments(ctx: &FileCtx, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // Classify by the next significant token.
        let kind = match toks[i + 1..].iter().find(|t| !t.is_comment()) {
            Some(n) if n.is_punct('{') => "block",
            Some(n) if n.is_ident("fn") => "fn",
            Some(n) if n.is_ident("impl") => "impl",
            Some(n) if n.is_ident("trait") => "trait",
            Some(n) if n.is_ident("extern") => "extern block",
            _ => continue,
        };
        let line = t.line;
        let mut ok = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let p = &toks[j];
            if p.is_comment() {
                // Same-line trailing comments of *previous* statements do
                // not vouch for this one unless they actually carry the
                // marker; the group check handles both.
                ok = comment_group_has_safety(toks, j, kind);
                break;
            }
            if p.line == line {
                // Tokens of the same statement (`let x = unsafe …`,
                // `pub unsafe fn`) — keep walking.
                continue;
            }
            if p.is_punct(']') {
                // An attribute between the comment and the keyword
                // (`#[target_feature(…)]`, `#[cfg(…)]`).
                match skip_attr_backwards(toks, j) {
                    Some(prev) => {
                        j = prev + 1;
                        continue;
                    }
                    None => break,
                }
            }
            break; // any other token: no comment directly above
        }
        if !ok {
            diags.push(Diagnostic {
                file: ctx.path.clone(),
                line,
                rule: "safety-comments",
                message: format!(
                    "`unsafe {kind}` is not immediately preceded by a `// SAFETY:` comment{}",
                    if kind == "fn" || kind == "trait" {
                        " (or a `# Safety` doc section)"
                    } else {
                        ""
                    }
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R2: lint-headers
// ---------------------------------------------------------------------------

fn rule_lint_headers(ctx: &FileCtx, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    let mut has_deny_unsafe_op = false;
    let mut has_warn_missing_docs = false;
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_punct('#') && toks[i + 1].is_punct('!') && toks[i + 2].is_punct('[') {
            // Collect the inner tokens of this `#![…]` attribute.
            let mut depth = 0isize;
            let mut j = i + 2;
            let mut inner: Vec<&Tok> = Vec::new();
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if depth > 0 && j > i + 2 {
                    inner.push(&toks[j]);
                }
                j += 1;
            }
            let level = inner.first().map(|t| t.text.as_str()).unwrap_or("");
            let strict = matches!(level, "deny" | "forbid");
            let lenient = strict || level == "warn";
            if strict && inner.iter().any(|t| t.is_ident("unsafe_op_in_unsafe_fn")) {
                has_deny_unsafe_op = true;
            }
            if lenient && inner.iter().any(|t| t.is_ident("missing_docs")) {
                has_warn_missing_docs = true;
            }
            i = j;
        }
        i += 1;
    }
    if !has_deny_unsafe_op {
        diags.push(Diagnostic {
            file: ctx.path.clone(),
            line: 1,
            rule: "lint-headers",
            message: "crate root lacks `#![deny(unsafe_op_in_unsafe_fn)]`".into(),
        });
    }
    if !has_warn_missing_docs {
        diags.push(Diagnostic {
            file: ctx.path.clone(),
            line: 1,
            rule: "lint-headers",
            message: "crate root lacks `#![warn(missing_docs)]`".into(),
        });
    }
}

// ---------------------------------------------------------------------------
// R3: deterministic-iteration
// ---------------------------------------------------------------------------

/// Methods whose call on a hash collection observes hash order.
const HASH_ORDER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Finds the names bound to `HashMap`/`HashSet` values in this file:
/// struct fields and `let` bindings with an explicit hash type
/// (`name: HashMap<…>`), and `let name = HashMap::new()`-style inits.
fn hash_binding_names(toks: &[Tok]) -> HashSet<String> {
    let mut names = HashSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk backwards over `path::to::` prefixes, references
        // (`&`, `&'a mut`) and single-level wrappers (`Option<…>`).
        let mut j = i;
        loop {
            if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
                j -= 2;
                if j > 0 && toks[j - 1].kind == TokKind::Ident && !toks[j - 1].is_ident("use") {
                    j -= 1;
                }
                continue;
            }
            if j >= 1
                && (toks[j - 1].is_punct('&')
                    || toks[j - 1].is_ident("mut")
                    || toks[j - 1].kind == TokKind::Lifetime)
            {
                j -= 1;
                continue;
            }
            if j >= 2
                && toks[j - 1].is_punct('<')
                && toks[j - 2].kind == TokKind::Ident
                && !toks[j - 2].is_ident("use")
            {
                j -= 2;
                continue;
            }
            break;
        }
        if j == 0 {
            continue;
        }
        let prev = &toks[j - 1];
        if prev.is_punct(':') {
            // `name: HashMap<…>` — field, param, or typed let.
            if j >= 2 && toks[j - 2].kind == TokKind::Ident {
                names.insert(toks[j - 2].text.clone());
            }
        } else if prev.is_punct('=') {
            // `let [mut] name = HashMap::new()`.
            let mut k = j - 1;
            while k > 0 {
                k -= 1;
                match toks[k].kind {
                    TokKind::Ident if toks[k].is_ident("mut") => continue,
                    TokKind::Ident => {
                        names.insert(toks[k].text.clone());
                        break;
                    }
                    _ => break,
                }
            }
        }
    }
    names
}

fn rule_deterministic_iteration(ctx: &FileCtx, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    let bindings = hash_binding_names(toks);
    if bindings.is_empty() {
        return;
    }
    let sig: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    for w in 0..sig.len() {
        let t = sig[w];
        // `recv.iter()` and friends.
        if t.is_punct('.')
            && w + 2 < sig.len()
            && sig[w + 1].kind == TokKind::Ident
            && HASH_ORDER_METHODS.contains(&sig[w + 1].text.as_str())
            && sig[w + 2].is_punct('(')
            && w > 0
            && bindings.contains(&sig[w - 1].text)
        {
            diags.push(Diagnostic {
                file: ctx.path.clone(),
                line: sig[w + 1].line,
                rule: "deterministic-iteration",
                message: format!(
                    "`{}.{}()` iterates a hash collection in hash order on the emission/merge \
                     path; sort first, use a BTreeMap, or allow-list with a sortedness \
                     justification",
                    sig[w - 1].text,
                    sig[w + 1].text
                ),
            });
        }
        // `for pat in [&][mut][self.]binding {` — direct IntoIterator use.
        if t.is_ident("in") {
            let mut k = w + 1;
            while k < sig.len()
                && (sig[k].is_punct('&')
                    || sig[k].is_ident("mut")
                    || sig[k].is_ident("self")
                    || sig[k].is_punct('.'))
            {
                k += 1;
            }
            if k + 1 < sig.len()
                && sig[k].kind == TokKind::Ident
                && bindings.contains(&sig[k].text)
                && sig[k + 1].is_punct('{')
            {
                diags.push(Diagnostic {
                    file: ctx.path.clone(),
                    line: sig[k].line,
                    rule: "deterministic-iteration",
                    message: format!(
                        "`for … in {}` iterates a hash collection in hash order on the \
                         emission/merge path; sort first, use a BTreeMap, or allow-list with a \
                         sortedness justification",
                        sig[k].text
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R4: hot-loop-alloc
// ---------------------------------------------------------------------------

/// Methods that (re)allocate when called on std collections/strings.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "push_str",
    "extend",
    "extend_from_slice",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
];

fn rule_hot_loop_alloc(ctx: &FileCtx, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    for (ci, c) in toks.iter().enumerate() {
        if !c.is_comment() {
            continue;
        }
        if directive_payload(&c.text) != Some("hot") {
            continue;
        }
        // Find the `fn` this marker annotates, then its body.
        let Some(fn_rel) = toks[ci + 1..].iter().position(|t| t.is_ident("fn")) else {
            continue;
        };
        let fn_idx = ci + 1 + fn_rel;
        let Some(open_rel) = toks[fn_idx..].iter().position(|t| t.is_punct('{')) else {
            continue;
        };
        let open = fn_idx + open_rel;
        let mut depth = 0isize;
        let mut close = open;
        for (k, t) in toks.iter().enumerate().skip(open) {
            match t.kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        let body: Vec<&Tok> = toks[open..=close].iter().filter(|t| !t.is_comment()).collect();
        let report = |diags: &mut Vec<Diagnostic>, line: u32, what: &str| {
            diags.push(Diagnostic {
                file: ctx.path.clone(),
                line,
                rule: "hot-loop-alloc",
                message: format!(
                    "`{what}` allocates inside a `// also-lint: hot` function; preallocate \
                     outside the loop or allow-list with a capacity argument"
                ),
            });
        };
        for w in 0..body.len() {
            let t = body[w];
            // `.push(…)`, `.collect::<…>()`, …
            if t.is_punct('.')
                && w + 1 < body.len()
                && body[w + 1].kind == TokKind::Ident
                && ALLOC_METHODS.contains(&body[w + 1].text.as_str())
                && w + 2 < body.len()
                && (body[w + 2].is_punct('(') || body[w + 2].is_punct(':'))
            {
                report(diags, body[w + 1].line, &format!(".{}", body[w + 1].text));
            }
            // `Box::new(…)`, `String::from(…)`, `Vec::new()` is fine (no
            // alloc until first push, which is itself flagged).
            if (t.is_ident("Box") || t.is_ident("String") || t.is_ident("Rc") || t.is_ident("Arc"))
                && w + 3 < body.len()
                && body[w + 1].is_punct(':')
                && body[w + 2].is_punct(':')
                && (body[w + 3].is_ident("new") || body[w + 3].is_ident("from"))
            {
                report(
                    diags,
                    t.line,
                    &format!("{}::{}", t.text, body[w + 3].text),
                );
            }
            // `format!(…)`, `vec![…]`.
            if (t.is_ident("format") || t.is_ident("vec"))
                && w + 1 < body.len()
                && body[w + 1].is_punct('!')
            {
                report(diags, t.line, &format!("{}!", t.text));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R5: unchecked-indexing
// ---------------------------------------------------------------------------

fn rule_unchecked_indexing(ctx: &FileCtx, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    for t in toks {
        if t.is_ident("get_unchecked") || t.is_ident("get_unchecked_mut") {
            diags.push(Diagnostic {
                file: ctx.path.clone(),
                line: t.line,
                rule: "unchecked-indexing",
                message: format!(
                    "`{}` outside `crates/also`; bounds-check here and keep unchecked \
                     indexing inside the audited kernel crate",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R6: kernel-entry
// ---------------------------------------------------------------------------

/// Identifiers that belong to the kernel-spine contract (or to retired
/// per-kernel entry points). Everything outside `crates/exec` and the
/// kernel crates mines through `exec::MinePlan` instead; naming one of
/// these is either a layering violation or a resurrected dead API.
const KERNEL_ENTRY_IDENTS: &[&str] = &[
    "KernelSpine",
    "LcmSpine",
    "EclatSpine",
    "FpSpine",
    "root_tasks",
    "mine_task",
    "mine_controlled",
    "mine_probed_controlled",
    "mine_parallel",
    "mine_parallel_into",
    "mine_parallel_controlled_into",
];

fn rule_kernel_entry(ctx: &FileCtx, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    for t in toks {
        if t.kind == TokKind::Ident && KERNEL_ENTRY_IDENTS.contains(&t.text.as_str()) {
            diags.push(Diagnostic {
                file: ctx.path.clone(),
                line: t.line,
                rule: "kernel-entry",
                message: format!(
                    "`{}` is kernel-spine internal; build an `exec::MinePlan` instead \
                     (only `crates/exec` and the kernel crates may touch the spine)",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R7: chaos-sites
// ---------------------------------------------------------------------------

/// Fault-*scheduling* vocabulary. Building or installing a plan outside
/// the chaos zone would let production code inject its own failures.
const CHAOS_PLAN_IDENTS: &[&str] = &["FaultPlan", "FaultSite", "PlanGuard"];

/// The injection hooks. Production code crosses them, but only fully
/// qualified as `faults::<site>(…)`: the path keeps every chaos seam
/// greppable and guarantees the call resolves to the feature-gated
/// no-op stubs, never a local lookalike.
const CHAOS_HOOK_IDENTS: &[&str] = &[
    "worker_panic",
    "steal_delay",
    "spurious_trip",
    "corrupt_patterns",
    "admission_flap",
    "shard_stall",
    "corrupt_artifact",
];

fn rule_chaos_sites(ctx: &FileCtx, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    let sig: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    for (w, t) in sig.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // `faults::<name>` ⇔ the three preceding tokens are `faults ::`.
        let faults_qualified = w >= 3
            && sig[w - 1].is_punct(':')
            && sig[w - 2].is_punct(':')
            && sig[w - 3].is_ident("faults");
        if CHAOS_PLAN_IDENTS.contains(&t.text.as_str()) {
            diags.push(Diagnostic {
                file: ctx.path.clone(),
                line: t.line,
                rule: "chaos-sites",
                message: format!(
                    "`{}` schedules fault injection; plans belong to `crates/chaos` and \
                     `fpm::faults` — production code only crosses `faults::<site>` hooks",
                    t.text
                ),
            });
        } else if t.is_ident("install") && faults_qualified {
            diags.push(Diagnostic {
                file: ctx.path.clone(),
                line: t.line,
                rule: "chaos-sites",
                message: "`faults::install` arms a fault plan outside the chaos zone; only \
                          `crates/chaos` may install plans"
                    .into(),
            });
        } else if CHAOS_HOOK_IDENTS.contains(&t.text.as_str()) && !faults_qualified {
            diags.push(Diagnostic {
                file: ctx.path.clone(),
                line: t.line,
                rule: "chaos-sites",
                message: format!(
                    "`{0}` shadows a chaos injection hook; cross the site as \
                     `fpm::faults::{0}` (a feature-gated no-op without `chaos`)",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileCtx {
        FileCtx {
            path: "test.rs".into(),
            ..FileCtx::default()
        }
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn r1_flags_bare_unsafe_block() {
        let d = lint_source(&ctx(), "fn f() {\n    let x = unsafe { g() };\n}\n");
        assert_eq!(rules_of(&d), vec!["safety-comments"]);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn r1_accepts_safety_comment_above_statement() {
        let src = "fn f() {\n    // SAFETY: g has no preconditions here.\n    let x = unsafe { g() };\n}\n";
        assert!(lint_source(&ctx(), src).is_empty());
    }

    #[test]
    fn r1_accepts_safety_doc_section_through_attributes() {
        let src = "/// Does x.\n///\n/// # Safety\n/// Caller must pass valid pointers.\n#[cfg(feature = \"x\")]\n#[inline]\npub unsafe fn f(p: *const u8) {}\n";
        assert!(lint_source(&ctx(), src).is_empty());
    }

    #[test]
    fn r1_requires_separate_comment_per_impl() {
        let src = "// SAFETY: only raw pointers, owned exclusively.\nunsafe impl Send for X {}\nunsafe impl Sync for X {}\n";
        let d = lint_source(&ctx(), src);
        assert_eq!(rules_of(&d), vec!["safety-comments"]);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn r1_ignores_unsafe_in_strings_and_comments() {
        let src = "// unsafe impl Send for Y {}\nfn f() -> &'static str { \"unsafe { }\" }\n";
        assert!(lint_source(&ctx(), src).is_empty());
    }

    #[test]
    fn r2_flags_missing_headers_only_on_crate_roots() {
        let src = "//! Crate docs.\npub fn f() {}\n";
        assert!(lint_source(&ctx(), src).is_empty());
        let root = FileCtx {
            is_crate_root: true,
            ..ctx()
        };
        let d = lint_source(&root, src);
        assert_eq!(rules_of(&d), vec!["lint-headers", "lint-headers"]);
    }

    #[test]
    fn r2_accepts_both_headers() {
        let src = "//! Docs.\n#![deny(unsafe_op_in_unsafe_fn)]\n#![warn(missing_docs)]\n";
        let root = FileCtx {
            is_crate_root: true,
            ..ctx()
        };
        assert!(lint_source(&root, src).is_empty());
    }

    #[test]
    fn r3_flags_iteration_only_on_emission_path() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> u32 {\n    m.values().sum()\n}\n";
        assert!(lint_source(&ctx(), src).is_empty());
        let emit = FileCtx {
            emission_path: true,
            ..ctx()
        };
        let d = lint_source(&emit, src);
        assert_eq!(rules_of(&d), vec!["deterministic-iteration"]);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn r3_flags_for_loop_over_hash_field() {
        let src = "struct S { shadow: std::collections::HashMap<u32, u32> }\nimpl S {\n    fn f(&self) { for x in &self.shadow {} }\n}\n";
        let emit = FileCtx {
            emission_path: true,
            ..ctx()
        };
        assert_eq!(rules_of(&lint_source(&emit, src)), vec!["deterministic-iteration"]);
    }

    #[test]
    fn r3_lookups_are_fine() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> Option<&u32> {\n    m.get(&3)\n}\n";
        let emit = FileCtx {
            emission_path: true,
            ..ctx()
        };
        assert!(lint_source(&emit, src).is_empty());
    }

    #[test]
    fn r3_trailing_allow_suppresses() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> u32 {\n    // also-lint: allow(deterministic-iteration) — result is summed, order-free\n    m.values().sum()\n}\n";
        let emit = FileCtx {
            emission_path: true,
            ..ctx()
        };
        assert!(lint_source(&emit, src).is_empty());
    }

    #[test]
    fn r4_flags_push_in_hot_fn() {
        let src = "// also-lint: hot\nfn f(v: &mut Vec<u32>) {\n    v.push(1);\n}\n";
        let d = lint_source(&ctx(), src);
        assert_eq!(rules_of(&d), vec!["hot-loop-alloc"]);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn r4_ignores_unmarked_fns_and_allows() {
        let cold = "fn f(v: &mut Vec<u32>) { v.push(1); }\n";
        assert!(lint_source(&ctx(), cold).is_empty());
        let allowed = "// also-lint: hot\nfn f(v: &mut Vec<u32>) {\n    // also-lint: allow(hot-loop-alloc) — v preallocated to n_ranks\n    v.push(1);\n}\n";
        assert!(lint_source(&ctx(), allowed).is_empty());
    }

    #[test]
    fn r4_flags_macro_and_box_allocs() {
        let src = "// also-lint: hot\nfn f() -> Box<u32> {\n    let s = format!(\"x\");\n    Box::new(1)\n}\n";
        let d = lint_source(&ctx(), src);
        assert_eq!(rules_of(&d), vec!["hot-loop-alloc", "hot-loop-alloc"]);
    }

    #[test]
    fn r5_respects_crate_boundary() {
        let src = "fn f(s: &[u32]) -> u32 { unsafe { *s.get_unchecked(0) } }\n";
        let d = lint_source(&ctx(), src);
        assert!(d.iter().any(|d| d.rule == "unchecked-indexing"));
        let also = FileCtx {
            in_also: true,
            ..ctx()
        };
        let d = lint_source(&also, src);
        assert!(d.iter().all(|d| d.rule != "unchecked-indexing"));
    }

    #[test]
    fn r6_flags_spine_identifiers_outside_kernel_zone() {
        let src = "fn f(db: &fpm::TransactionDb) {\n    let t = lcm::LcmSpine::root_tasks(&p);\n}\n";
        let d = lint_source(&ctx(), src);
        assert_eq!(rules_of(&d), vec!["kernel-entry", "kernel-entry"]);
        assert_eq!(d[0].line, 2);
        let inside = FileCtx {
            kernel_internal: true,
            ..ctx()
        };
        assert!(lint_source(&inside, src).is_empty());
    }

    #[test]
    fn r6_skips_comments_strings_and_plain_mine() {
        let src = "// mine_parallel was retired in favour of MinePlan\nfn f() -> &'static str {\n    lcm::mine(db, 2, &cfg, sink);\n    \"mine_controlled\"\n}\n";
        assert!(lint_source(&ctx(), src).is_empty());
    }

    #[test]
    fn r7_flags_scheduling_and_unqualified_hooks_outside_zone() {
        let src = "fn f() {\n    let p = fpm::faults::FaultPlan::from_seed(7);\n    let _g = fpm::faults::install(p);\n    if worker_panic(0) {}\n}\n";
        let d = lint_source(&ctx(), src);
        assert_eq!(rules_of(&d), vec!["chaos-sites", "chaos-sites", "chaos-sites"]);
        let zone = FileCtx {
            chaos_zone: true,
            ..ctx()
        };
        assert!(lint_source(&zone, src).is_empty());
    }

    #[test]
    fn r7_accepts_qualified_hook_crossings() {
        let src = "fn f(idx: usize) -> bool {\n    fpm::faults::steal_delay();\n    crate::faults::spurious_trip() || fpm::faults::worker_panic(idx)\n}\n";
        assert!(lint_source(&ctx(), src).is_empty());
    }

    #[test]
    fn allow_does_not_leak_to_later_lines() {
        let src = "fn f(s: &[u32]) -> u32 {\n    // also-lint: allow(unchecked-indexing)\n    // SAFETY: len checked by caller.\n    unsafe { *s.get_unchecked(0) }\n}\n";
        // The allow sits two lines above the violation, so it must NOT apply.
        let d = lint_source(&ctx(), src);
        assert_eq!(rules_of(&d), vec!["unchecked-indexing"]);
    }
}
