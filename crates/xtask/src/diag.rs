//! Diagnostic type and output formats.
//!
//! Every rule reports through [`Diagnostic`]; the driver sorts them and
//! renders either the grep-friendly text form (`file:line: rule-id:
//! message`) or a JSON array (`--format json`) for machine consumption.

use std::fmt;

/// The stable identifiers of the rules `also-lint` enforces.
pub const RULE_IDS: &[&str] = &[
    "safety-comments",
    "lint-headers",
    "deterministic-iteration",
    "hot-loop-alloc",
    "unchecked-indexing",
    "kernel-entry",
    "chaos-sites",
    "atomic-ordering",
    "lock-order",
    "counter-lockstep",
    "panic-path",
    "guard-across-await-free-wait",
];

/// One finding: a rule violated at a specific file and line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative path (forward slashes) of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule identifier, one of [`RULE_IDS`].
    pub rule: &'static str,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `diags` as a stable JSON document:
/// `{"count": N, "diagnostics": [{file, line, rule, message}, …]}`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"count\": ");
    out.push_str(&diags.len().to_string());
    out.push_str(",\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"file\": \"");
        out.push_str(&json_escape(&d.file));
        out.push_str("\", \"line\": ");
        out.push_str(&d.line.to_string());
        out.push_str(", \"rule\": \"");
        out.push_str(d.rule);
        out.push_str("\", \"message\": \"");
        out.push_str(&json_escape(&d.message));
        out.push_str("\"}");
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders `diags` as a minimal SARIF 2.1.0 log, one run with one
/// result per diagnostic, for upload into code-scanning UIs.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n",
    );
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"also-lint\",\n          \"rules\": [");
    for (i, id) in RULE_IDS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n            {\"id\": \"");
        out.push_str(id);
        out.push_str("\"}");
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n        {\n          \"ruleId\": \"");
        out.push_str(d.rule);
        out.push_str("\",\n          \"level\": \"error\",\n          \"message\": {\"text\": \"");
        out.push_str(&json_escape(&d.message));
        out.push_str("\"},\n          \"locations\": [\n            {\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"");
        out.push_str(&json_escape(&d.file));
        out.push_str("\"}, \"region\": {\"startLine\": ");
        out.push_str(&d.line.to_string());
        out.push_str("}}}\n          ]\n        }");
    }
    if !diags.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// Returns the embedded documentation for a rule id, for
/// `also-lint --explain <rule>`.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "safety-comments" => {
            "safety-comments (R1)\n\nEvery `unsafe` block, function, or impl must carry an adjacent\n`// SAFETY:` comment stating the invariant that makes it sound. The\nALSO kernels lean on raw pointers and SIMD intrinsics; an unsafe\nwithout its proof is unreviewable."
        }
        "lint-headers" => {
            "lint-headers (R2)\n\nEvery crate root must `#![deny(unsafe_op_in_unsafe_fn)]` and\n`#![warn(missing_docs)]`, so unsafety stays explicit per-operation\nand the public surface stays documented."
        }
        "deterministic-iteration" => {
            "deterministic-iteration (R3)\n\nNo `HashMap`/`HashSet` iteration on the emission/merge path. The\nparallel runtime promises byte-identical-to-serial output; hash-order\niteration silently breaks it. Use `BTreeMap`/`BTreeSet` or sort first."
        }
        "hot-loop-alloc" => {
            "hot-loop-alloc (R4)\n\nFunctions annotated `// also-lint: hot` must not allocate\n(`Vec::new`, `to_vec`, `collect`, `Box::new`, `format!` …). Mirrors\nthe runtime `fpm::alloc_guard`; buffers are carried in scratch\nstructs allocated outside the loop."
        }
        "unchecked-indexing" => {
            "unchecked-indexing (R5)\n\n`get_unchecked`/`get_unchecked_mut` are confined to `crates/also`,\nwhere the bounds proofs live next to the kernels. Everywhere else,\nchecked indexing is fast enough."
        }
        "kernel-entry" => {
            "kernel-entry (R6)\n\nKernel dispatch goes through `exec::MinePlan`. The `KernelSpine`\nmachinery and retired per-kernel entry points are internal to\n`crates/exec` and the kernel crates; callers that bypass the plan\nlose budgeting, faults, and metrics."
        }
        "chaos-sites" => {
            "chaos-sites (R7)\n\nFault scheduling (`FaultPlan` & co.) stays inside `crates/chaos` and\n`fpm::faults`. Production code crosses injection hooks only fully\nqualified (`faults::<site>(…)`) so every chaos seam is greppable and\nresolves to the feature-gated no-op stubs."
        }
        "atomic-ordering" => {
            "atomic-ordering (R8)\n\nEvery atomic operation must name its `Ordering` literally at the\ncall site. `Relaxed` is accepted without comment only on pure\ncounters (receivers that take `fetch_add`/`fetch_sub` in the same\nfile); any other `Relaxed`, and every `SeqCst`, needs an adjacent\n`// ORDERING:` comment proving either that no data is published\nthrough the atomic (Relaxed) or that a single global order is truly\nrequired (SeqCst — usually it is not, and the fix is a downgrade).\nAcquire/Release/AcqRel are self-describing and need no comment."
        }
        "lock-order" => {
            "lock-order (R9)\n\nBuilds a per-file lock-acquisition graph: an edge A -> B whenever a\nguard of A is still live when B is locked (guards tracked through\n`let` bindings, `drop()`, and temporary-lifetime rules; lock names\nresolved through receiver chains like `shard.queue.lock()`). A cycle\nin that graph — including a self-edge, i.e. re-locking a mutex\nalready held — is a deadlock seed; the diagnostic prints the witness\npath. Fix by choosing one global acquisition order, or by dropping\nthe first guard before taking the second."
        }
        "counter-lockstep" => {
            "counter-lockstep (R10)\n\nOn the serve metrics path, the global and the per-shard `MetricSet`\nmust move in lockstep: every `global.incr/add(…)` needs a\n`shard.incr/add(…)` twin with the same arguments in the same\nfunction body, and vice versa; incrementing `metrics.…` directly\nbypasses the pair. This is the static form of the chaos-campaign\ninvariant \"the sum of shard counters equals the global counter\"."
        }
        "panic-path" => {
            "panic-path (R11)\n\nOn panic-free paths (serve worker loop, poll frontend, par steal\npath) non-test code must not `unwrap`/`expect`, use the panic\nmacros, or index/slice with `[…]`. A panicking worker poisons locks\nand strands in-flight jobs. Recover instead (for poisoned locks:\n`unwrap_or_else(|e| e.into_inner())`), or carry the impossibility\nproof in an `// also-lint: allow(panic-path)` comment. Pre-existing\ndebt is pinned in lint-baseline.json and may only shrink."
        }
        "guard-across-await-free-wait" => {
            "guard-across-await-free-wait (R12)\n\nNo lock guard may be live across a blocking suspension point —\n`Condvar::wait*`, channel `recv*`, `thread::park` — except the one\nmutex a condvar wait consumes as its own argument. This runtime is\nawait-free (std threads only), so these calls are its suspension\npoints; sleeping on one while holding an unrelated lock stalls every\nthread that needs it. Drop or scope the guard before blocking."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_grep_format() {
        let d = Diagnostic {
            file: "crates/also/src/bits.rs".into(),
            line: 45,
            rule: "safety-comments",
            message: "x".into(),
        };
        assert_eq!(d.to_string(), "crates/also/src/bits.rs:45: safety-comments: x");
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let d = Diagnostic {
            file: "a\\b.rs".into(),
            line: 1,
            rule: "lint-headers",
            message: "needs \"quotes\"".into(),
        };
        let j = to_json(&[d]);
        assert!(j.contains("a\\\\b.rs"));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"count\": 1"));
    }

    #[test]
    fn empty_list_is_valid_json() {
        assert_eq!(to_json(&[]), "{\n  \"count\": 0,\n  \"diagnostics\": []\n}\n");
    }

    #[test]
    fn sarif_names_every_rule_and_locates_results() {
        let d = Diagnostic {
            file: "crates/par/src/lib.rs".into(),
            line: 315,
            rule: "atomic-ordering",
            message: "needs \"proof\"".into(),
        };
        let s = to_sarif(&[d]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        for id in RULE_IDS {
            assert!(s.contains(&format!("{{\"id\": \"{id}\"}}")), "{id}");
        }
        assert!(s.contains("\"startLine\": 315"));
        assert!(s.contains("\\\"proof\\\""));
    }

    #[test]
    fn every_rule_id_has_an_explanation() {
        for id in RULE_IDS {
            let doc = explain(id).unwrap_or_else(|| panic!("no --explain for {id}"));
            assert!(doc.starts_with(id), "{id} doc leads with its id");
        }
        assert!(explain("no-such-rule").is_none());
    }
}
