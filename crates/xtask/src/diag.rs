//! Diagnostic type and output formats.
//!
//! Every rule reports through [`Diagnostic`]; the driver sorts them and
//! renders either the grep-friendly text form (`file:line: rule-id:
//! message`) or a JSON array (`--format json`) for machine consumption.

use std::fmt;

/// The stable identifiers of the rules `also-lint` enforces.
pub const RULE_IDS: &[&str] = &[
    "safety-comments",
    "lint-headers",
    "deterministic-iteration",
    "hot-loop-alloc",
    "unchecked-indexing",
    "kernel-entry",
    "chaos-sites",
];

/// One finding: a rule violated at a specific file and line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative path (forward slashes) of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule identifier, one of [`RULE_IDS`].
    pub rule: &'static str,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `diags` as a stable JSON document:
/// `{"count": N, "diagnostics": [{file, line, rule, message}, …]}`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"count\": ");
    out.push_str(&diags.len().to_string());
    out.push_str(",\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"file\": \"");
        out.push_str(&json_escape(&d.file));
        out.push_str("\", \"line\": ");
        out.push_str(&d.line.to_string());
        out.push_str(", \"rule\": \"");
        out.push_str(d.rule);
        out.push_str("\", \"message\": \"");
        out.push_str(&json_escape(&d.message));
        out.push_str("\"}");
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_grep_format() {
        let d = Diagnostic {
            file: "crates/also/src/bits.rs".into(),
            line: 45,
            rule: "safety-comments",
            message: "x".into(),
        };
        assert_eq!(d.to_string(), "crates/also/src/bits.rs:45: safety-comments: x");
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let d = Diagnostic {
            file: "a\\b.rs".into(),
            line: 1,
            rule: "lint-headers",
            message: "needs \"quotes\"".into(),
        };
        let j = to_json(&[d]);
        assert!(j.contains("a\\\\b.rs"));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"count\": 1"));
    }

    #[test]
    fn empty_list_is_valid_json() {
        assert_eq!(to_json(&[]), "{\n  \"count\": 0,\n  \"diagnostics\": []\n}\n");
    }
}
