//! R8–R12: the concurrency-audit rules.
//!
//! PR 6 grew a real concurrency surface — sharded worker pools,
//! global+shard lockstep counters, single-flight tables, a poll
//! frontend — whose invariants were previously only *tested*
//! dynamically (the chaos campaign). These rules check them statically
//! at the PR boundary:
//!
//! | id                             | invariant                                                |
//! |--------------------------------|----------------------------------------------------------|
//! | `atomic-ordering`              | every atomic op names its `Ordering`; `Relaxed` on a     |
//! |                                | non-counter, and every `SeqCst`, carries `// ORDERING:`  |
//! | `lock-order`                   | the per-file lock-acquisition graph is acyclic           |
//! | `counter-lockstep`             | global and shard metrics increment in the same body      |
//! | `panic-path`                   | no unwrap/expect/panic!/indexing on serve/steal paths    |
//! | `guard-across-await-free-wait` | no guard held across a blocking wait, except a condvar's |
//! |                                | own mutex                                                |
//!
//! All five rules skip `#[cfg(test)]` / `#[test]` spans
//! ([`crate::analysis::test_mask`]): tests legitimately spin, unwrap,
//! and park holding locks.

use crate::analysis::{
    fn_bodies, is_non_indexing_keyword, lock_acquisitions, matching_close, receiver_name,
    sig_view, test_mask,
};
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::rules::FileCtx;
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// R8: atomic-ordering
// ---------------------------------------------------------------------------

/// Atomic read-modify-write methods (unambiguous — only atomics have
/// them, so a missing explicit ordering is reportable).
const ATOMIC_RMW: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Atomic methods that collide with common non-atomic names
/// (`Vec::swap`, custom `load`/`store`): they are treated as atomic
/// only when an `Ordering` variant appears in the argument list.
const ATOMIC_AMBIGUOUS: &[&str] = &["load", "store", "swap"];

const ORDERING_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Lines carrying an `// ORDERING:` justification comment.
fn ordering_comment_lines(toks: &[Tok]) -> BTreeSet<u32> {
    // A contiguous run of line comments is one justification block: if
    // any line of it says `ORDERING:`, every line of the block counts
    // (long proofs keep working without squeezing onto the last line).
    let mut out = BTreeSet::new();
    let comments: Vec<&Tok> = toks.iter().filter(|t| t.is_comment()).collect();
    let mut i = 0;
    while i < comments.len() {
        let mut j = i;
        while j + 1 < comments.len() && comments[j + 1].line == comments[j].line + 1 {
            j += 1;
        }
        if comments[i..=j].iter().any(|t| t.text.contains("ORDERING:")) {
            for t in &comments[i..=j] {
                out.insert(t.line);
            }
        }
        i = j + 1;
    }
    out
}

/// An `// ORDERING:` comment justifies atomic ops on its own line and
/// up to two lines below — mirroring how `// SAFETY:` comments attach.
/// Checked against both the op token's line and its statement's first
/// line, so a comment above `let _ = self\n.tripped\n.compare_exchange(…)`
/// still attaches even though the op sits lines into the statement.
fn ordering_justified(lines: &BTreeSet<u32>, at: u32) -> bool {
    lines.range(at.saturating_sub(2)..=at).next().is_some()
}

/// Line on which the statement containing sig index `w` starts: the
/// first token after the previous `;`, `{`, or `}`.
fn statement_start_line(sig: &[&Tok], w: usize) -> u32 {
    let mut k = w;
    while k > 0 {
        let p = sig[k - 1];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            break;
        }
        k -= 1;
    }
    sig[k].line
}

/// Per-file set of receiver names that behave as pure counters: they
/// receive `fetch_add`/`fetch_sub` somewhere in the file. `Relaxed`
/// increments and reads of a counter need no justification — per-key
/// totals are exact regardless of interleaving and no other data is
/// published through them.
fn counter_receivers(sig: &[&Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for w in 1..sig.len() {
        if (sig[w].is_ident("fetch_add") || sig[w].is_ident("fetch_sub"))
            && sig[w - 1].is_punct('.')
            && sig.get(w + 1).is_some_and(|t| t.is_punct('('))
        {
            if let Some(name) = receiver_name(sig, w - 1) {
                out.insert(name);
            }
        }
    }
    out
}

pub(crate) fn rule_atomic_ordering(ctx: &FileCtx, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    let sig = sig_view(toks);
    let mask = test_mask(&sig);
    let comments = ordering_comment_lines(toks);
    let counters = counter_receivers(&sig);
    for w in 1..sig.len() {
        if mask[w] {
            continue;
        }
        let t = sig[w];
        if t.kind != TokKind::Ident || !sig[w - 1].is_punct('.') {
            continue;
        }
        let method = t.text.as_str();
        let rmw = ATOMIC_RMW.contains(&method);
        let ambiguous = ATOMIC_AMBIGUOUS.contains(&method);
        if !rmw && !ambiguous {
            continue;
        }
        let Some(next) = sig.get(w + 1) else { continue };
        if !next.is_punct('(') {
            continue;
        }
        let args_close = matching_close(&sig, w + 1, '(', ')');
        let orderings: Vec<&str> = sig[w + 2..args_close]
            .iter()
            .filter(|a| a.kind == TokKind::Ident)
            .map(|a| a.text.as_str())
            .filter(|a| ORDERING_VARIANTS.contains(a))
            .collect();
        if orderings.is_empty() {
            if rmw {
                diags.push(Diagnostic {
                    file: ctx.path.clone(),
                    line: t.line,
                    rule: "atomic-ordering",
                    message: format!(
                        "`.{method}(…)` does not name its `Ordering` in the argument list; \
                         pass the variant literally so the required ordering is auditable \
                         at the call site"
                    ),
                });
            }
            continue; // ambiguous name without an Ordering: not atomic
        }
        let recv = receiver_name(&sig, w - 1).unwrap_or_default();
        let seqcst = orderings.contains(&"SeqCst");
        let counter_op = matches!(method, "fetch_add" | "fetch_sub" | "load");
        let relaxed_non_counter = orderings.contains(&"Relaxed")
            && !(counter_op && counters.contains(&recv));
        let justified = ordering_justified(&comments, t.line)
            || ordering_justified(&comments, statement_start_line(&sig, w));
        if (seqcst || relaxed_non_counter) && !justified {
            let (what, why) = if seqcst {
                (
                    "SeqCst",
                    "prove the global order is required — or downgrade it",
                )
            } else {
                (
                    "Relaxed",
                    "prove no data is published through this atomic (counters exempt \
                     themselves by receiving `fetch_add`/`fetch_sub`)",
                )
            };
            diags.push(Diagnostic {
                file: ctx.path.clone(),
                line: t.line,
                rule: "atomic-ordering",
                message: format!(
                    "`{recv}.{method}({what})` needs an adjacent `// ORDERING:` comment: {why}"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R9: lock-order
// ---------------------------------------------------------------------------

/// One held→acquired edge with its witness source lines.
#[derive(Debug, Clone)]
struct LockEdge {
    held: String,
    held_line: u32,
    acquired: String,
    acquired_line: u32,
}

pub(crate) fn rule_lock_order(ctx: &FileCtx, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    let sig = sig_view(toks);
    let mask = test_mask(&sig);
    // Collect held→acquired edges per function, union them per file:
    // a cycle split across two functions (f locks A then B, g locks B
    // then A) is exactly the deadlock the rule exists to catch.
    let mut edges: Vec<LockEdge> = Vec::new();
    for body in fn_bodies(&sig) {
        if mask[body.open] {
            continue;
        }
        let acqs = lock_acquisitions(&sig, body.open, body.close);
        for (i, a) in acqs.iter().enumerate() {
            if mask[a.at] {
                continue;
            }
            for h in &acqs[..i] {
                if h.at < a.at && a.at <= h.live_until {
                    edges.push(LockEdge {
                        held: h.lock.clone(),
                        held_line: h.line,
                        acquired: a.lock.clone(),
                        acquired_line: a.line,
                    });
                }
            }
        }
    }
    if edges.is_empty() {
        return;
    }
    // Adjacency (first witness per edge), then DFS for a cycle.
    let mut adj: BTreeMap<&str, BTreeMap<&str, &LockEdge>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.held.as_str())
            .or_default()
            .entry(e.acquired.as_str())
            .or_insert(e);
    }
    if let Some(cycle) = find_cycle(&adj) {
        let path = cycle
            .iter()
            .map(|e| e.held.as_str())
            .chain(std::iter::once(cycle[0].held.as_str()))
            .collect::<Vec<_>>()
            .join(" -> ");
        let witness = cycle
            .iter()
            .map(|e| {
                format!(
                    "`{}` taken at line {} while holding `{}` (line {})",
                    e.acquired, e.acquired_line, e.held, e.held_line
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        diags.push(Diagnostic {
            file: ctx.path.clone(),
            line: cycle[0].acquired_line,
            rule: "lock-order",
            message: format!(
                "lock acquisition cycle {path}: {witness}; pick one global order and \
                 release before re-acquiring"
            ),
        });
    }
}

/// Finds one cycle in the lock graph, returned as its edge list (the
/// witness path). Self-edges — re-locking a mutex already held, which
/// std's non-reentrant `Mutex` turns into a guaranteed deadlock — are
/// length-1 cycles.
fn find_cycle<'a>(
    adj: &BTreeMap<&'a str, BTreeMap<&'a str, &'a LockEdge>>,
) -> Option<Vec<&'a LockEdge>> {
    for &start in adj.keys() {
        // DFS with an explicit path stack of (node, edge-into-node).
        let mut path: Vec<(&str, Option<&LockEdge>)> = vec![(start, None)];
        let mut iters: Vec<std::collections::btree_map::Iter<'_, &str, &LockEdge>> =
            vec![adj[start].iter()];
        let mut on_path: BTreeSet<&str> = [start].into();
        while let Some(it) = iters.last_mut() {
            match it.next() {
                Some((&next, &edge)) => {
                    if on_path.contains(next) {
                        // Close the cycle: edges from `next`'s position.
                        let from = path.iter().position(|(n, _)| *n == next).unwrap();
                        let mut cycle: Vec<&LockEdge> =
                            path[from + 1..].iter().filter_map(|(_, e)| *e).collect();
                        cycle.push(edge);
                        return Some(cycle);
                    }
                    if let Some(neigh) = adj.get(next) {
                        on_path.insert(next);
                        path.push((next, Some(edge)));
                        iters.push(neigh.iter());
                    }
                }
                None => {
                    let (n, _) = path.pop().unwrap();
                    on_path.remove(n);
                    iters.pop();
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// R10: counter-lockstep
// ---------------------------------------------------------------------------

pub(crate) fn rule_counter_lockstep(ctx: &FileCtx, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    let sig = sig_view(toks);
    let mask = test_mask(&sig);
    for body in fn_bodies(&sig) {
        if mask[body.open] {
            continue;
        }
        // (method, args) → lines of global-side / shard-side calls.
        let mut global: BTreeMap<(String, String), Vec<u32>> = BTreeMap::new();
        let mut shard: BTreeMap<(String, String), Vec<u32>> = BTreeMap::new();
        for w in body.open..body.close {
            let t = sig[w];
            if mask[w]
                || t.kind != TokKind::Ident
                || !(t.is_ident("incr") || t.is_ident("add"))
                || !sig[w - 1].is_punct('.')
                || !sig.get(w + 1).is_some_and(|n| n.is_punct('('))
            {
                continue;
            }
            let args_close = matching_close(&sig, w + 1, '(', ')');
            let args: String = sig[w + 2..args_close]
                .iter()
                .map(|a| a.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            match receiver_name(&sig, w - 1).as_deref() {
                Some("metrics") => diags.push(Diagnostic {
                    file: ctx.path.clone(),
                    line: t.line,
                    rule: "counter-lockstep",
                    message: format!(
                        "direct `metrics.{}({args})` bypasses the lockstep pair; increment \
                         through the global+shard incrementer so per-shard sums stay equal \
                         to the globals",
                        t.text
                    ),
                }),
                Some("global") => global
                    .entry((t.text.clone(), args))
                    .or_default()
                    .push(t.line),
                Some("shard") => shard
                    .entry((t.text.clone(), args))
                    .or_default()
                    .push(t.line),
                _ => {}
            }
        }
        for (key, lines) in &global {
            let paired = shard.get(key).map_or(0, Vec::len);
            for &line in lines.iter().skip(paired) {
                diags.push(Diagnostic {
                    file: ctx.path.clone(),
                    line,
                    rule: "counter-lockstep",
                    message: format!(
                        "`global.{}({})` has no shard-side twin in `{}`; increment both \
                         sides in the same body or per-shard sums drift from the globals",
                        key.0, key.1, body.name
                    ),
                });
            }
        }
        for (key, lines) in &shard {
            let paired = global.get(key).map_or(0, Vec::len);
            for &line in lines.iter().skip(paired) {
                diags.push(Diagnostic {
                    file: ctx.path.clone(),
                    line,
                    rule: "counter-lockstep",
                    message: format!(
                        "`shard.{}({})` has no global-side twin in `{}`; increment both \
                         sides in the same body or per-shard sums drift from the globals",
                        key.0, key.1, body.name
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R11: panic-path
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub(crate) fn rule_panic_path(ctx: &FileCtx, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    let sig = sig_view(toks);
    let mask = test_mask(&sig);
    let report = |diags: &mut Vec<Diagnostic>, line: u32, what: &str| {
        diags.push(Diagnostic {
            file: ctx.path.clone(),
            line,
            rule: "panic-path",
            message: format!(
                "{what} can panic on a panic-free serve/steal path; handle the failure \
                 (poisoned locks: `unwrap_or_else(|e| e.into_inner())`) or carry the proof \
                 in an `// also-lint: allow(panic-path)` comment"
            ),
        });
    };
    for w in 0..sig.len() {
        if mask[w] {
            continue;
        }
        let t = sig[w];
        // `.unwrap()` / `.expect(…)`.
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && w > 0
            && sig[w - 1].is_punct('.')
            && sig.get(w + 1).is_some_and(|n| n.is_punct('('))
        {
            report(diags, t.line, &format!("`.{}(…)`", t.text));
        }
        // `panic!` and friends.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && sig.get(w + 1).is_some_and(|n| n.is_punct('!'))
        {
            report(diags, t.line, &format!("`{}!`", t.text));
        }
        // Indexing / slicing: `expr[…]` — an out-of-bounds index or a
        // backwards range panics. Postfix `[` follows an identifier
        // (not a keyword), a `)` or a `]`.
        if t.is_punct('[') && w > 0 {
            let prev = sig[w - 1];
            let postfix = match prev.kind {
                TokKind::Ident => !is_non_indexing_keyword(&prev.text),
                TokKind::Punct(')') | TokKind::Punct(']') => true,
                _ => false,
            };
            if postfix {
                let what = if prev.kind == TokKind::Ident {
                    format!("indexing `{}[…]`", prev.text)
                } else {
                    "indexing `…[…]`".to_string()
                };
                report(diags, t.line, &what);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R12: guard-across-await-free-wait
// ---------------------------------------------------------------------------

/// Blocking calls a lock guard must not be held across: condvar waits,
/// thread parking, and blocking channel receives. (This runtime is
/// await-free by design — `std` threads only — so these are its
/// suspension points.)
const BLOCKING_WAITS: &[&str] = &["wait", "wait_timeout", "wait_while", "recv", "recv_timeout", "park"];

pub(crate) fn rule_guard_across_wait(ctx: &FileCtx, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    let sig = sig_view(toks);
    let mask = test_mask(&sig);
    for body in fn_bodies(&sig) {
        if mask[body.open] {
            continue;
        }
        let acqs = lock_acquisitions(&sig, body.open, body.close);
        if acqs.is_empty() {
            continue;
        }
        for w in body.open..body.close {
            let t = sig[w];
            if mask[w]
                || t.kind != TokKind::Ident
                || !BLOCKING_WAITS.contains(&t.text.as_str())
                || !sig.get(w + 1).is_some_and(|n| n.is_punct('('))
            {
                continue;
            }
            // A condvar wait consumes its own guard as the first
            // argument: that guard is the one lock it may (must) hold.
            let args_close = matching_close(&sig, w + 1, '(', ')');
            let own_guard: Option<&str> = if t.text.starts_with("wait") {
                sig[w + 2..args_close]
                    .iter()
                    .find(|a| a.kind == TokKind::Ident)
                    .map(|a| a.text.as_str())
            } else {
                None
            };
            for a in &acqs {
                if !(a.at < w && w <= a.live_until) {
                    continue;
                }
                if own_guard.is_some() && a.guard.as_deref() == own_guard {
                    continue;
                }
                let held = a
                    .guard
                    .as_deref()
                    .map(|g| format!("guard `{g}` of lock `{}`", a.lock))
                    .unwrap_or_else(|| format!("a temporary guard of lock `{}`", a.lock));
                diags.push(Diagnostic {
                    file: ctx.path.clone(),
                    line: t.line,
                    rule: "guard-across-await-free-wait",
                    message: format!(
                        "`.{}(…)` blocks while {held} (acquired line {}) is still live; \
                         a parked thread holding a lock is a deadlock seed — drop the \
                         guard first (a condvar wait may hold only its own mutex)",
                        t.text, a.line
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lint_source;

    fn ctx() -> FileCtx {
        FileCtx {
            path: "test.rs".into(),
            ..FileCtx::default()
        }
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn r8_flags_seqcst_and_bare_relaxed_but_not_counters() {
        let src = "fn f(a: &AtomicBool, n: &AtomicU64) {\n    a.store(true, Ordering::SeqCst);\n    n.fetch_add(1, Ordering::Relaxed);\n    let _ = n.load(Ordering::Relaxed);\n    if a.load(Ordering::Relaxed) {}\n}\n";
        let d = lint_source(&ctx(), src);
        assert_eq!(rules_of(&d), vec!["atomic-ordering", "atomic-ordering"]);
        assert_eq!(d[0].line, 2); // the SeqCst store
        assert_eq!(d[1].line, 5); // the Relaxed non-counter load
    }

    #[test]
    fn r8_accepts_ordering_comments_and_acquire_release() {
        let src = "fn f(a: &AtomicBool) {\n    // ORDERING: monotonic latch; readers only gate control flow.\n    a.store(true, Ordering::Relaxed);\n    a.store(true, Ordering::Release);\n    if a.load(Ordering::Acquire) {}\n}\n";
        assert!(lint_source(&ctx(), src).is_empty());
    }

    #[test]
    fn r8_requires_literal_ordering_on_rmw() {
        let src = "fn f(n: &AtomicU64, o: Ordering) {\n    n.fetch_add(1, o);\n}\n";
        let d = lint_source(&ctx(), src);
        assert_eq!(rules_of(&d), vec!["atomic-ordering"]);
        assert!(d[0].message.contains("name its `Ordering`"));
    }

    #[test]
    fn r8_ignores_vec_swap_and_test_modules() {
        let src = "fn f(v: &mut Vec<u32>) {\n    v.swap(0, 1);\n}\n#[cfg(test)]\nmod tests {\n    fn t(a: &AtomicBool) { a.store(true, Ordering::SeqCst); }\n}\n";
        assert!(lint_source(&ctx(), src).is_empty());
    }

    #[test]
    fn r9_reports_cycle_with_witness_path() {
        let src = "fn a(s: &S) {\n    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());\n    let c = s.cache.lock().unwrap_or_else(|e| e.into_inner());\n    drop(c); drop(q);\n}\nfn b(s: &S) {\n    let c = s.cache.lock().unwrap_or_else(|e| e.into_inner());\n    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());\n    drop(q); drop(c);\n}\n";
        let d = lint_source(&ctx(), src);
        assert_eq!(rules_of(&d), vec!["lock-order"]);
        assert!(d[0].message.contains("cache -> queue -> cache") || d[0].message.contains("queue -> cache -> queue"), "{}", d[0].message);
        assert!(d[0].message.contains("while holding"));
    }

    #[test]
    fn r9_accepts_nested_but_acyclic_and_drop_breaks_liveness() {
        let src = "fn a(s: &S) {\n    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());\n    let c = s.cache.lock().unwrap_or_else(|e| e.into_inner());\n}\nfn b(s: &S) {\n    let c = s.cache.lock().unwrap_or_else(|e| e.into_inner());\n    drop(c);\n    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());\n}\n";
        assert!(lint_source(&ctx(), src).is_empty());
    }

    #[test]
    fn r9_flags_relocking_the_same_mutex() {
        let src = "fn f(s: &S) {\n    let a = s.queue.lock().unwrap_or_else(|e| e.into_inner());\n    let b = s.queue.lock().unwrap_or_else(|e| e.into_inner());\n}\n";
        let d = lint_source(&ctx(), src);
        assert_eq!(rules_of(&d), vec!["lock-order"]);
        assert!(d[0].message.contains("queue -> queue"));
    }

    #[test]
    fn r10_flags_dropped_shard_side_and_direct_bypass() {
        let src = "impl M {\n    fn incr(&self, name: &str) {\n        self.global.incr(name);\n    }\n    fn record(&self, inner: &Inner) {\n        inner.metrics.incr(\"requests\");\n    }\n}\n";
        let c = FileCtx {
            lockstep_path: true,
            ..ctx()
        };
        let d = lint_source(&c, src);
        assert_eq!(rules_of(&d), vec!["counter-lockstep", "counter-lockstep"]);
        assert!(d[0].message.contains("no shard-side twin"));
        assert!(d[1].message.contains("bypasses the lockstep pair"));
        // Off the lockstep path the same source is fine.
        assert!(lint_source(&ctx(), src).is_empty());
    }

    #[test]
    fn r10_accepts_paired_increments() {
        let src = "impl M {\n    fn incr(&self, name: &str) {\n        self.global.incr(name);\n        self.shard.incr(name);\n    }\n    fn add(&self, name: &str, n: u64) {\n        self.global.add(name, n);\n        self.shard.add(name, n);\n    }\n}\n";
        let c = FileCtx {
            lockstep_path: true,
            ..ctx()
        };
        assert!(lint_source(&c, src).is_empty());
    }

    #[test]
    fn r11_flags_unwrap_expect_macros_and_indexing() {
        let src = "fn f(v: &[u32], o: Option<u32>) -> u32 {\n    let a = o.unwrap();\n    let b = v[0];\n    if a > b { panic!(\"no\") }\n    a\n}\n";
        let c = FileCtx {
            panic_free_path: true,
            ..ctx()
        };
        let d = lint_source(&c, src);
        assert_eq!(rules_of(&d), vec!["panic-path"; 3]);
        // Off the panic-free path the same source is fine.
        assert!(lint_source(&ctx(), src).is_empty());
    }

    #[test]
    fn r11_skips_tests_attributes_and_allows() {
        let src = "fn f(v: &[u32]) -> Option<&u32> {\n    #[allow(dead_code)]\n    // also-lint: allow(panic-path) — index is len-checked two lines up\n    let x = &v[0];\n    v.first()\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        let c = FileCtx {
            panic_free_path: true,
            ..ctx()
        };
        assert!(lint_source(&c, src).is_empty());
    }

    #[test]
    fn r12_flags_guard_held_across_recv_but_not_condvars_own_mutex() {
        let src = "fn bad(s: &S) {\n    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());\n    let msg = s.rx.recv();\n}\nfn good(s: &S) {\n    let mut q = s.queue.lock().unwrap_or_else(|e| e.into_inner());\n    q = s.ready.wait(q).unwrap_or_else(|e| e.into_inner());\n    drop(q);\n    let msg = s.rx.recv();\n}\n";
        let d = lint_source(&ctx(), src);
        assert_eq!(rules_of(&d), vec!["guard-across-await-free-wait"]);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("guard `q`"));
    }

    #[test]
    fn r12_flags_second_guard_during_condvar_wait() {
        let src = "fn f(s: &S) {\n    let c = s.cache.lock().unwrap_or_else(|e| e.into_inner());\n    let mut q = s.queue.lock().unwrap_or_else(|e| e.into_inner());\n    q = s.ready.wait(q).unwrap_or_else(|e| e.into_inner());\n}\n";
        let d = lint_source(&ctx(), src);
        assert!(d.iter().any(|d| d.rule == "guard-across-await-free-wait"
            && d.message.contains("guard `c`")));
    }
}
