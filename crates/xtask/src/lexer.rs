//! A small, comment- and string-aware Rust lexer.
//!
//! `also-lint` deliberately does not parse Rust — a full grammar would
//! dwarf the rules it serves. What every rule actually needs is a token
//! stream in which comments and string/char literals are *recognized*
//! (so an `unsafe` inside a doc comment or a `"HashMap"` inside a string
//! can never trigger a rule) and line numbers are preserved (so
//! diagnostics and `// also-lint:` suppressions can be matched by line).
//!
//! The lexer understands: line and (nested) block comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//! depth), byte/C string prefixes, char literals vs lifetimes, raw
//! identifiers (`r#fn`), identifiers, numbers, and single-character
//! punctuation. Multi-character operators arrive as adjacent punctuation
//! tokens (`::` is `:`,`:`), which the rules handle explicitly.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A single punctuation character.
    Punct(char),
    /// Numeric literal (integer or one side of a float).
    Num,
    /// String literal of any flavour (plain, raw, byte, C).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`) — kept distinct from [`TokKind::Char`].
    Lifetime,
    /// `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment (including doc block comments), possibly nested.
    BlockComment,
}

/// One token with its source text and 1-based starting line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token kind.
    pub kind: TokKind,
    /// The raw source text of the token (comments keep their markers).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Tok {
    /// `true` for comment tokens (which rules usually skip).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// `true` if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Tokenizes `src`. Never fails: unterminated constructs simply extend to
/// the end of input, which is good enough for a linter (the compiler is
/// the authority on well-formedness).
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.push(Tok {
                kind: TokKind::LineComment,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.push(Tok {
                kind: TokKind::BlockComment,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // String literal.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n {
                match b[i] {
                    '\\' => {
                        // A line-continuation escape (`"a\` newline `b"`)
                        // swallows the newline; it still advances the line
                        // counter or every later token misreports its line.
                        if i + 1 < n && b[i + 1] == '\n' {
                            line += 1;
                        }
                        i += 2;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            out.push(Tok {
                kind: TokKind::Str,
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let start = i;
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char: step over the escaped character itself
                // (it may be `'`, as in `'\''`), then scan to the
                // closing quote.
                i += 3;
                while i < n && b[i] != '\'' {
                    i += 1;
                }
                i = (i + 1).min(n);
                out.push(Tok {
                    kind: TokKind::Char,
                    text: b[start..i].iter().collect(),
                    line,
                });
            } else if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                i += 3;
                out.push(Tok {
                    kind: TokKind::Char,
                    text: b[start..i].iter().collect(),
                    line,
                });
            } else {
                // Lifetime: consume identifier characters.
                i += 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }
        // Identifier / keyword — with raw-string and raw-ident prefixes.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            let ident: String = b[start..i].iter().collect();
            // Raw identifier r#name: consume the hash and the name.
            if ident == "r"
                && i + 1 < n
                && b[i] == '#'
                && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
            {
                i += 1;
                let name_start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: b[name_start..i].iter().collect(),
                    line,
                });
                continue;
            }
            // Raw / byte / C string prefixes: r"…", r#"…"#, b"…", c"…",
            // br"…", cr"…". Only the r-forms are raw; plain b"…" and
            // c"…" process escapes like ordinary strings (treating
            // `c"a\"b"` as raw would close the literal at the escaped
            // quote and swallow the code after it).
            if matches!(ident.as_str(), "r" | "b" | "c" | "br" | "cr")
                && i < n
                && (b[i] == '"' || b[i] == '#')
            {
                let raw = ident.contains('r');
                let start_line = line;
                let mut hashes = 0usize;
                while i < n && b[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                if i < n && b[i] == '"' {
                    i += 1;
                    'scan: while i < n {
                        match b[i] {
                            '\n' => {
                                line += 1;
                                i += 1;
                            }
                            '\\' if !raw => {
                                if i + 1 < n && b[i + 1] == '\n' {
                                    line += 1;
                                }
                                i += 2;
                            }
                            '"' => {
                                let mut k = 0usize;
                                while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                                    k += 1;
                                }
                                if k == hashes {
                                    i += 1 + hashes;
                                    break 'scan;
                                }
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                    out.push(Tok {
                        kind: TokKind::Str,
                        text: b[start..i.min(n)].iter().collect(),
                        line: start_line,
                    });
                    continue;
                }
                // `ident #` that wasn't a string after all: emit the ident,
                // rewind to the hashes and let the main loop re-lex them.
                i -= hashes;
            }
            // Byte char literal b'x'.
            if ident == "b" && i < n && b[i] == '\'' {
                let cstart = i;
                i += 1;
                if i < n && b[i] == '\\' {
                    // Skip the escaped character too: in `b'\''` it is
                    // itself a quote, not the closing one.
                    i += 2;
                }
                while i < n && b[i] != '\'' {
                    i += 1;
                }
                i = (i + 1).min(n);
                out.push(Tok {
                    kind: TokKind::Char,
                    text: b[cstart..i].iter().collect(),
                    line,
                });
                continue;
            }
            out.push(Tok {
                kind: TokKind::Ident,
                text: ident,
                line,
            });
            continue;
        }
        // Number: digits plus alphanumeric tail (0xFF, 1_000u64). Floats
        // lex as Num '.' Num, which no rule confuses with a method call.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.push(Tok {
                kind: TokKind::Num,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        out.push(Tok {
            kind: TokKind::Punct(c),
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = lex("// unsafe in a comment\nlet s = \"unsafe { }\"; /* unsafe */");
        let unsafe_idents = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == "unsafe")
            .count();
        assert_eq!(unsafe_idents, 0);
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert_eq!(toks.last().unwrap().kind, TokKind::BlockComment);
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = lex(r####"let x = r#"a " b"#; y"####);
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
        assert!(toks.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn raw_identifiers_keep_their_name() {
        let toks = lex("let r#fn = 1;");
        assert!(toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let toks = lex("/* a\nb\nc */\nfn f() {}");
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(kinds("/* a /* b */ c */ x"), vec![
            TokKind::BlockComment,
            TokKind::Ident
        ]);
    }
}
