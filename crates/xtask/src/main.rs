//! Workspace task driver:
//!
//! * `cargo run -p xtask -- lint [--format text|json] [--root DIR]` —
//!   the `also-lint` static analysis pass.
//! * `cargo run -p xtask -- regen-goldens` — rewrite the golden corpus
//!   under `tests/goldens/` (shells out to the `chaos` crate's
//!   release-built `regen-goldens` bin; the CI-scale datasets are
//!   minutes-slow unoptimized, and xtask itself stays dependency-free).
//!
//! Exit codes: 0 = clean, 1 = diagnostics found, 2 = usage/IO error.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::{lint_workspace, to_json};

const USAGE: &str = "usage: cargo run -p xtask -- <lint [--format text|json] [--root DIR] | regen-goldens>";

/// Rebuilds `tests/goldens/` by delegating to the chaos crate's bin.
fn regen_goldens() -> ExitCode {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let status = std::process::Command::new(cargo)
        .args(["run", "--release", "-p", "chaos", "--bin", "regen-goldens"])
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(s) => {
            eprintln!("xtask: regen-goldens exited {:?}", s.code());
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("xtask: cannot spawn cargo: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut saw_lint = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "lint" => saw_lint = true,
            "regen-goldens" => return regen_goldens(),
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" => format = f.clone(),
                _ => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("also-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !saw_lint {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    // Default root: the workspace containing this crate (CARGO_MANIFEST_DIR
    // is crates/xtask at compile time; at run time prefer the cargo-provided
    // workspace cwd so `--root` stays optional under `cargo run`).
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("also-lint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        print!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            eprintln!("also-lint: workspace clean");
        } else {
            eprintln!("also-lint: {} diagnostic(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
