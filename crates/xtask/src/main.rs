//! Workspace task driver:
//!
//! * `cargo run -p xtask -- lint [--format text|json|sarif] [--root DIR]
//!   [--update-baseline | --no-baseline]` — the `also-lint` static
//!   analysis pass. When `<root>/lint-baseline.json` exists, the
//!   ratchet applies by default: pinned debt is suppressed, *fresh*
//!   findings and *stale* pins fail. `--update-baseline` rewrites the
//!   file from the current findings; `--no-baseline` lints raw.
//! * `cargo run -p xtask -- lint --explain <rule>` — print the full
//!   rationale for one rule.
//! * `cargo run -p xtask -- regen-goldens` — rewrite the golden corpus
//!   under `tests/goldens/` (shells out to the `chaos` crate's
//!   release-built `regen-goldens` bin; the CI-scale datasets are
//!   minutes-slow unoptimized, and xtask itself stays dependency-free).
//!
//! Exit codes: 0 = clean, 1 = diagnostics found, 2 = usage/IO error.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::{baseline, explain, lint_workspace, to_json, to_sarif, BASELINE_FILE, RULE_IDS};

const USAGE: &str = "usage: cargo run -p xtask -- <lint [--format text|json|sarif] [--root DIR] [--update-baseline | --no-baseline] [--explain RULE] | regen-goldens>";

/// Rebuilds `tests/goldens/` by delegating to the chaos crate's bin.
fn regen_goldens() -> ExitCode {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let status = std::process::Command::new(cargo)
        .args(["run", "--release", "-p", "chaos", "--bin", "regen-goldens"])
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(s) => {
            eprintln!("xtask: regen-goldens exited {:?}", s.code());
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("xtask: cannot spawn cargo: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut saw_lint = false;
    let mut update_baseline = false;
    let mut no_baseline = false;
    let mut explain_rule: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "lint" => saw_lint = true,
            "regen-goldens" => return regen_goldens(),
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" || f == "sarif" => format = f.clone(),
                _ => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => update_baseline = true,
            "--no-baseline" => no_baseline = true,
            "--explain" => match it.next() {
                Some(r) => explain_rule = Some(r.clone()),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("also-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !saw_lint {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if update_baseline && no_baseline {
        eprintln!("also-lint: --update-baseline and --no-baseline are mutually exclusive");
        return ExitCode::from(2);
    }
    if let Some(rule) = explain_rule {
        return match explain(&rule) {
            Some(doc) => {
                println!("{doc}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "also-lint: unknown rule `{rule}`; known rules: {}",
                    RULE_IDS.join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    // Default root: the workspace containing this crate (CARGO_MANIFEST_DIR
    // is crates/xtask at compile time; at run time prefer the cargo-provided
    // workspace cwd so `--root` stays optional under `cargo run`).
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("also-lint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = root.join(BASELINE_FILE);
    if update_baseline {
        let rendered = baseline::group(&diags).render();
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("also-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "also-lint: pinned {} finding(s) into {}",
            diags.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    // Ratchet by default when a committed baseline exists.
    let pinned = if !no_baseline && baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|s| baseline::Baseline::parse(&s))
        {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!(
                    "also-lint: malformed {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    let (reported, stale): (Vec<_>, Vec<_>) = match &pinned {
        Some(b) => {
            let report = b.apply(&diags);
            (report.fresh, report.stale)
        }
        None => (diags, Vec::new()),
    };

    match format.as_str() {
        "json" => print!("{}", to_json(&reported)),
        "sarif" => print!("{}", to_sarif(&reported)),
        _ => {
            for d in &reported {
                println!("{d}");
            }
            for (file, rule, pinned, observed) in &stale {
                println!(
                    "{file}: stale baseline: {rule} pinned at {pinned} but only {observed} \
                     observed — run `cargo xtask lint --update-baseline` to ratchet down"
                );
            }
            if reported.is_empty() && stale.is_empty() {
                eprintln!("also-lint: workspace clean");
            } else {
                eprintln!(
                    "also-lint: {} fresh diagnostic(s), {} stale baseline entr(ies)",
                    reported.len(),
                    stale.len()
                );
            }
        }
    }
    if reported.is_empty() && stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
