//! The ratcheted lint baseline.
//!
//! New rules land on an old codebase with pre-existing findings. Rather
//! than blanket `allow` comments (which hide *new* violations in the
//! same file) or fixing everything in one PR (which couples the lint to
//! a risky rewrite), known debt is pinned in `lint-baseline.json` at
//! the repo root as `(file, rule) -> count` entries. The ratchet then
//! enforces both directions:
//!
//! - **fresh**: observed > pinned for an entry (or any unpinned
//!   finding) fails the build — new debt never lands.
//! - **stale**: observed < pinned — someone paid debt down but left the
//!   baseline loose enough for regressions to hide under. That fails
//!   too, with a hint to run `cargo xtask lint --update-baseline`,
//!   so the pinned counts only ever ratchet toward zero.
//!
//! The file is committed; CI re-generates it and fails on drift, the
//! same way the proptest-regressions check works.

use crate::diag::Diagnostic;
use std::collections::BTreeMap;

/// Name of the baseline file, resolved against the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Pinned debt: `(file, rule) -> count`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), u64>,
}

/// Outcome of ratcheting observed diagnostics against a [`Baseline`].
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// Diagnostics over the pinned count (pinned entries suppress the
    /// first `count` findings per `(file, rule)` in line order).
    pub fresh: Vec<Diagnostic>,
    /// Pinned entries observed *below* their count, as
    /// `(file, rule, pinned, observed)`.
    pub stale: Vec<(String, String, u64, u64)>,
}

impl RatchetReport {
    /// `true` when the ratchet passes: no fresh findings, no stale pins.
    pub fn is_clean(&self) -> bool {
        self.fresh.is_empty() && self.stale.is_empty()
    }
}

/// Groups diagnostics into baseline form: `(file, rule) -> count`.
pub fn group(diags: &[Diagnostic]) -> Baseline {
    let mut entries: BTreeMap<(String, String), u64> = BTreeMap::new();
    for d in diags {
        *entries
            .entry((d.file.clone(), d.rule.to_string()))
            .or_insert(0) += 1;
    }
    Baseline { entries }
}

impl Baseline {
    /// `true` when no debt is pinned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ratchets `diags` against this baseline.
    pub fn apply(&self, diags: &[Diagnostic]) -> RatchetReport {
        let mut report = RatchetReport::default();
        let mut seen: BTreeMap<(String, String), u64> = BTreeMap::new();
        // Suppress the first `pinned` findings per key in emission
        // order (which lint_workspace keeps sorted by file and line):
        // pinned debt is identified by count, not line, so unrelated
        // edits that shift lines do not invalidate the baseline.
        for d in diags {
            let key = (d.file.clone(), d.rule.to_string());
            let n = seen.entry(key.clone()).or_insert(0);
            *n += 1;
            if *n > self.entries.get(&key).copied().unwrap_or(0) {
                report.fresh.push(d.clone());
            }
        }
        for (key, &pinned) in &self.entries {
            let observed = seen.get(key).copied().unwrap_or(0);
            if observed < pinned {
                report
                    .stale
                    .push((key.0.clone(), key.1.clone(), pinned, observed));
            }
        }
        report
    }

    /// Renders the baseline as stable, committed JSON (sorted keys,
    /// one entry per line — diff-friendly).
    pub fn render(&self) -> String {
        if self.entries.is_empty() {
            return "{\n  \"entries\": []\n}\n".to_string();
        }
        let mut out = String::from("{\n  \"entries\": [\n");
        let lines: Vec<String> = self
            .entries
            .iter()
            .map(|((file, rule), count)| {
                format!(
                    "    {{ \"file\": \"{}\", \"rule\": \"{}\", \"count\": {} }}",
                    crate::diag::json_escape(file),
                    crate::diag::json_escape(rule),
                    count
                )
            })
            .collect();
        out.push_str(&lines.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses the committed JSON form. Accepts exactly what
    /// [`Baseline::render`] writes (plus whitespace variation); a
    /// malformed file is an error, not an empty baseline — silently
    /// ignoring a corrupt ratchet would let fresh findings through.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        // Hand-rolled like diag::to_json, and intentionally minimal: we
        // scan for `"file"`, `"rule"`, `"count"` triples per `{…}`
        // object. Keys may come in any order within an object.
        let mut rest = src;
        let Some(start) = rest.find('[') else {
            return Err("no `entries` array".into());
        };
        rest = &rest[start + 1..];
        let Some(end) = rest.rfind(']') else {
            return Err("unterminated `entries` array".into());
        };
        rest = &rest[..end];
        let mut chars = rest.char_indices().peekable();
        while let Some((i, c)) = chars.next() {
            if c != '{' {
                continue;
            }
            let Some(obj_end) = rest[i..].find('}') else {
                return Err("unterminated entry object".into());
            };
            let obj = &rest[i + 1..i + obj_end];
            while chars.peek().is_some_and(|&(j, _)| j < i + obj_end) {
                chars.next();
            }
            let file = json_str_field(obj, "file")?;
            let rule = json_str_field(obj, "rule")?;
            let count = json_num_field(obj, "count")?;
            if entries.insert((file.clone(), rule.clone()), count).is_some() {
                return Err(format!("duplicate entry for {file} / {rule}"));
            }
        }
        Ok(Baseline { entries })
    }
}

fn json_str_field(obj: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\"");
    let Some(k) = obj.find(&pat) else {
        return Err(format!("entry missing `{key}`"));
    };
    let after = &obj[k + pat.len()..];
    let Some(colon) = after.find(':') else {
        return Err(format!("`{key}` without value"));
    };
    let after = after[colon + 1..].trim_start();
    let Some(stripped) = after.strip_prefix('"') else {
        return Err(format!("`{key}` is not a string"));
    };
    let mut out = String::new();
    let mut chars = stripped.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(e) => out.push(e),
                None => break,
            },
            _ => out.push(c),
        }
    }
    Err(format!("unterminated string for `{key}`"))
}

fn json_num_field(obj: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\"");
    let Some(k) = obj.find(&pat) else {
        return Err(format!("entry missing `{key}`"));
    };
    let after = &obj[k + pat.len()..];
    let Some(colon) = after.find(':') else {
        return Err(format!("`{key}` without value"));
    };
    let digits: String = after[colon + 1..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|_| format!("`{key}` is not a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(file: &str, rule: &'static str, line: u32) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            message: "m".into(),
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let b = group(&[
            d("a.rs", "panic-path", 1),
            d("a.rs", "panic-path", 2),
            d("b.rs", "lock-order", 9),
        ]);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(
            Baseline::parse(&Baseline::default().render()).unwrap(),
            Baseline::default()
        );
    }

    #[test]
    fn exact_match_is_clean() {
        let diags = [d("a.rs", "panic-path", 1), d("a.rs", "panic-path", 7)];
        let b = group(&diags);
        assert!(b.apply(&diags).is_clean());
    }

    #[test]
    fn extra_finding_is_fresh_even_when_lines_shift() {
        let b = group(&[d("a.rs", "panic-path", 1)]);
        // Same debt on a different line plus one new finding.
        let now = [d("a.rs", "panic-path", 40), d("a.rs", "panic-path", 55)];
        let report = b.apply(&now);
        assert_eq!(report.fresh.len(), 1);
        assert_eq!(report.fresh[0].line, 55);
        assert!(report.stale.is_empty());
    }

    #[test]
    fn unpinned_rule_and_file_are_fresh() {
        let b = group(&[d("a.rs", "panic-path", 1)]);
        let report = b.apply(&[d("a.rs", "lock-order", 2), d("c.rs", "panic-path", 3)]);
        assert_eq!(report.fresh.len(), 2);
    }

    #[test]
    fn paid_down_debt_is_stale() {
        let b = group(&[
            d("a.rs", "panic-path", 1),
            d("a.rs", "panic-path", 2),
            d("b.rs", "lock-order", 3),
        ]);
        let report = b.apply(&[d("a.rs", "panic-path", 1)]);
        assert!(report.fresh.is_empty());
        assert_eq!(
            report.stale,
            vec![
                ("a.rs".into(), "panic-path".into(), 2, 1),
                ("b.rs".into(), "lock-order".into(), 1, 0),
            ]
        );
    }

    #[test]
    fn committed_baseline_is_empty() {
        // The panic-path paydown ratcheted the committed baseline to
        // zero entries. It must never grow again: a new finding fails
        // the lint as fresh, and this test fails any attempt to re-pin
        // debt instead of fixing it.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(BASELINE_FILE);
        let src = std::fs::read_to_string(&path).expect("committed lint-baseline.json");
        let baseline = Baseline::parse(&src).expect("committed baseline must parse");
        assert!(
            baseline.is_empty(),
            "lint-baseline.json must stay empty — fix findings, don't pin them"
        );
        assert_eq!(
            src,
            baseline.render(),
            "committed baseline must be in canonical render form"
        );
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{ \"entries\": [ { \"file\": \"a\" } ] }").is_err());
    }
}
