//! Token-stream analysis helpers shared by the concurrency rules
//! (R8–R12).
//!
//! The original seven rules get by on flat token windows. Auditing
//! atomics and locks needs three things beyond that:
//!
//! * **receiver resolution** — `shard.queue.lock()` acquires the lock
//!   *field* `queue`, and `self.counter(name).fetch_add(…)` operates on
//!   whatever `counter(…)` returned; [`receiver_name`] walks method-call
//!   chains backwards (over `(…)` and `[…]` groups) to the last named
//!   component before the final `.`.
//! * **test masking** — `#[cfg(test)]` modules and `#[test]` functions
//!   legitimately unwrap, spin on `SeqCst`, and park holding locks;
//!   [`test_mask`] marks their token spans so the concurrency rules
//!   audit only code that ships.
//! * **scope structure** — guard liveness ("is a `MutexGuard` still
//!   alive here?") follows Rust's drop rules closely enough for a
//!   linter: a `let`-bound guard lives to the end of its enclosing
//!   block (or an explicit `drop(name)`), a temporary guard to the end
//!   of its statement — extended through the following `{…}` block when
//!   it is the scrutinee of an `if let`/`while`/`match` (temporaries in
//!   scrutinee position outlive the block they head).
//!
//! Everything here operates on the *non-comment* token view returned by
//! [`sig_view`]; comments carry suppressions and justifications, not
//! code.

use crate::lexer::{Tok, TokKind};

/// The non-comment token view the analyses run on.
pub fn sig_view(toks: &[Tok]) -> Vec<&Tok> {
    toks.iter().filter(|t| !t.is_comment()).collect()
}

/// Index of the close bracket matching the open bracket at `open`, or
/// `sig.len() - 1` when unbalanced (unterminated input).
pub fn matching_close(sig: &[&Tok], open: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0isize;
    for (k, t) in sig.iter().enumerate().skip(open) {
        if t.is_punct(open_ch) {
            depth += 1;
        } else if t.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    sig.len().saturating_sub(1)
}

/// Index of the open bracket matching the close bracket at `close`,
/// scanning backwards. `None` when unbalanced.
pub fn matching_open(sig: &[&Tok], close: usize, open_ch: char, close_ch: char) -> Option<usize> {
    let mut depth = 0isize;
    let mut k = close;
    loop {
        let t = sig[k];
        if t.is_punct(close_ch) {
            depth += 1;
        } else if t.is_punct(open_ch) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
}

/// Resolves the receiver of the method call whose `.` sits at `dot`:
/// the last named component before the dot, looking through one or
/// more trailing `(…)` / `[…]` groups. `shard.queue.lock()` → `queue`;
/// `self.counter(name).fetch_add(…)` → `counter`; `deques[w].pop()` →
/// `deques`. `None` when the receiver is not a named chain (a literal,
/// a block expression, …).
pub fn receiver_name(sig: &[&Tok], dot: usize) -> Option<String> {
    let mut k = dot;
    loop {
        if k == 0 {
            return None;
        }
        k -= 1;
        match sig[k].kind {
            TokKind::Punct(')') => k = matching_open(sig, k, '(', ')')?,
            TokKind::Punct(']') => k = matching_open(sig, k, '[', ']')?,
            TokKind::Ident => return Some(sig[k].text.clone()),
            _ => return None,
        }
    }
}

/// `true` when `ident` is a Rust keyword that can directly precede a
/// `[` without forming an index expression (`let [a, b] = …`,
/// `return [x]`, `in [..]`, …).
pub fn is_non_indexing_keyword(ident: &str) -> bool {
    matches!(
        ident,
        "let"
            | "ref"
            | "mut"
            | "in"
            | "return"
            | "break"
            | "continue"
            | "if"
            | "else"
            | "match"
            | "move"
            | "as"
            | "static"
            | "const"
            | "use"
            | "pub"
            | "crate"
            | "where"
            | "for"
            | "while"
            | "loop"
            | "impl"
            | "fn"
            | "enum"
            | "struct"
            | "type"
            | "trait"
            | "mod"
            | "unsafe"
            | "dyn"
            | "async"
            | "await"
            | "yield"
            | "box"
    )
}

/// Marks every sig-index belonging to test-only code: an attribute
/// mentioning `test` (`#[cfg(test)]`, `#[test]`, `#[cfg(any(test, …))]`
/// — but not `#[cfg(not(test))]`) plus the item it annotates, through
/// the item's closing brace (or terminating `;`). Later attributes and
/// visibility tokens between the attribute and the item body are
/// included in the span.
pub fn test_mask(sig: &[&Tok]) -> Vec<bool> {
    let mut mask = vec![false; sig.len()];
    let mut i = 0;
    while i + 1 < sig.len() {
        if !(sig[i].is_punct('#') && sig[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let rb = matching_close(sig, i + 1, '[', ']');
        let inner = &sig[i + 2..rb];
        let mentions_test = inner.iter().enumerate().any(|(j, t)| {
            t.is_ident("test")
                && !(j >= 2 && inner[j - 1].is_punct('(') && inner[j - 2].is_ident("not"))
        });
        if !mentions_test {
            i = rb + 1;
            continue;
        }
        // Span: from the attribute through the annotated item. Walk
        // past further attributes and header tokens to the first `{`
        // (mask through its matching `}`) or `;`.
        let mut j = rb + 1;
        let mut end = sig.len() - 1;
        while j < sig.len() {
            if sig[j].is_punct('#') && j + 1 < sig.len() && sig[j + 1].is_punct('[') {
                j = matching_close(sig, j + 1, '[', ']') + 1;
                continue;
            }
            if sig[j].is_punct('{') {
                end = matching_close(sig, j, '{', '}');
                break;
            }
            if sig[j].is_punct(';') {
                end = j;
                break;
            }
            j += 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// One function body found in the stream: brace span (sig indices,
/// inclusive) and the function's name.
#[derive(Debug)]
pub struct FnBody {
    /// The function's name (the identifier after `fn`).
    pub name: String,
    /// Sig index of the body's opening `{`.
    pub open: usize,
    /// Sig index of the body's matching `}`.
    pub close: usize,
}

/// Finds every `fn name … { … }` body. Bodyless declarations (trait
/// methods ending in `;`) are skipped; nested functions are reported as
/// their own (overlapping) bodies.
pub fn fn_bodies(sig: &[&Tok]) -> Vec<FnBody> {
    let mut out = Vec::new();
    for i in 0..sig.len() {
        if !sig[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = sig.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Scan to the body's `{`, or to `;` for a bodyless declaration.
        // Parameter lists are skipped as balanced groups so a closure
        // parameter's braces cannot be mistaken for the body.
        let mut j = i + 2;
        let mut open = None;
        while j < sig.len() {
            if sig[j].is_punct('(') {
                j = matching_close(sig, j, '(', ')') + 1;
                continue;
            }
            if sig[j].is_punct('{') {
                open = Some(j);
                break;
            }
            if sig[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        if let Some(open) = open {
            out.push(FnBody {
                name: name_tok.text.clone(),
                open,
                close: matching_close(sig, open, '{', '}'),
            });
        }
    }
    out
}

/// One lock acquisition inside a function body.
#[derive(Debug)]
pub struct LockAcq {
    /// The lock's resolved name: the receiver field for `x.y.lock()`,
    /// the first argument's base name for a free `lock(&x[i])` helper.
    pub lock: String,
    /// Name of the `let`-bound guard, if the acquisition is bound.
    pub guard: Option<String>,
    /// Sig index of the `lock` identifier.
    pub at: usize,
    /// Source line of the acquisition.
    pub line: u32,
    /// Sig index (inclusive) up to which the guard is considered live.
    pub live_until: usize,
}

/// Finds the `.lock()` / free `lock(…)` acquisitions in `sig[open..=close]`
/// and models each guard's liveness (see the module docs for the rules).
pub fn lock_acquisitions(sig: &[&Tok], open: usize, close: usize) -> Vec<LockAcq> {
    let mut out = Vec::new();
    for w in open..close {
        if !sig[w].is_ident("lock") {
            continue;
        }
        let Some(next) = sig.get(w + 1) else { continue };
        if !next.is_punct('(') {
            continue;
        }
        let args_close = matching_close(sig, w + 1, '(', ')');
        let lock = if w > open && sig[w - 1].is_punct('.') {
            // Method call: resolve the receiver chain.
            match receiver_name(sig, w - 1) {
                Some(n) => n,
                None => continue,
            }
        } else if w > open && sig[w - 1].is_ident("fn") {
            // The definition of a `lock` helper, not an acquisition.
            continue;
        } else {
            // Free helper `lock(&deques[v])`: the last component of the
            // argument's leading field chain is the lock.
            let mut k = w + 2;
            while k < args_close && (sig[k].is_punct('&') || sig[k].is_ident("mut")) {
                k += 1;
            }
            let mut name = None;
            while k < args_close && sig[k].kind == TokKind::Ident {
                name = Some(sig[k].text.clone());
                if k + 1 < args_close && sig[k + 1].is_punct('.') {
                    k += 2;
                } else {
                    break;
                }
            }
            match name {
                Some(n) => n,
                None => continue,
            }
        };
        let (guard, live_until) = guard_liveness(sig, open, close, w, args_close);
        out.push(LockAcq {
            lock,
            guard,
            at: w,
            line: sig[w].line,
            live_until,
        });
    }
    out
}

/// Determines how long the guard produced by the lock call at `w`
/// (arguments ending at `args_close`) stays live, and its binding name
/// if `let`-bound. See the module docs for the liveness model.
fn guard_liveness(
    sig: &[&Tok],
    open: usize,
    close: usize,
    w: usize,
    args_close: usize,
) -> (Option<String>, usize) {
    // Walk the method chain after the lock call. Result adapters
    // (`unwrap`, `expect`, `unwrap_or_else`, …) still yield the guard;
    // any other method *consumes* it — `cache.lock().unwrap().probe(&k)`
    // binds probe's result, not the guard, so a `let` on such a
    // statement does not extend the guard's life (it remains a
    // temporary, dropped at the statement end — or after the scrutinee
    // block it heads).
    let mut consumed = false;
    let mut j = args_close + 1;
    while j + 2 < sig.len() && sig[j].is_punct('.') && sig[j + 2].is_punct('(') {
        let m = sig[j + 1];
        if matches!(
            m.text.as_str(),
            "unwrap" | "expect" | "unwrap_or" | "unwrap_or_else" | "unwrap_or_default"
        ) && m.kind == TokKind::Ident
        {
            j = matching_close(sig, j + 2, '(', ')') + 1;
        } else {
            consumed = true;
            break;
        }
    }
    // Backward scan for `let [mut] NAME = …` within the statement.
    let mut k = w;
    let mut bound: Option<String> = None;
    while !consumed && k > open {
        k -= 1;
        let t = sig[k];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("let") {
            let mut n = k + 1;
            if n < sig.len() && sig[n].is_ident("mut") {
                n += 1;
            }
            if n < sig.len() && sig[n].kind == TokKind::Ident {
                bound = Some(sig[n].text.clone());
            }
            break;
        }
    }
    if let Some(name) = bound {
        // Live to the end of the enclosing block — or an explicit
        // `drop(name)`. The enclosing block is the innermost `{` whose
        // span contains `w`.
        let mut block_close = close;
        let mut depth = 0isize;
        for j in (open..w).rev() {
            if sig[j].is_punct('}') {
                depth += 1;
            } else if sig[j].is_punct('{') {
                if depth == 0 {
                    block_close = matching_close(sig, j, '{', '}');
                    break;
                }
                depth -= 1;
            }
        }
        let mut until = block_close;
        let mut j = args_close + 1;
        while j + 2 <= block_close {
            if sig[j].is_ident("drop")
                && sig[j + 1].is_punct('(')
                && sig[j + 2].is_ident(&name)
            {
                until = j;
                break;
            }
            j += 1;
        }
        return (Some(name), until);
    }
    // Temporary: live to the end of its statement — or, when a `{`
    // opens first at the same depth (scrutinee of `if let` / `while` /
    // `match`), through that block.
    let mut depth = 0isize;
    let mut j = args_close + 1;
    while j <= close {
        let t = sig[j];
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => {
                if depth == 0 {
                    return (None, j); // end of enclosing call/args
                }
                depth -= 1;
            }
            TokKind::Punct(';') if depth == 0 => return (None, j),
            TokKind::Punct('{') if depth == 0 => {
                return (None, matching_close(sig, j, '{', '}'));
            }
            TokKind::Punct('}') if depth == 0 => return (None, j),
            _ => {}
        }
        j += 1;
    }
    (None, close)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn owned(src: &str) -> Vec<Tok> {
        lex(src)
    }

    #[test]
    fn receiver_resolves_chains_calls_and_indexing() {
        let toks = owned("shard.queue.lock(); self.counter(name).fetch_add(1); deques[w].pop();");
        let sig = sig_view(&toks);
        let dots: Vec<usize> = sig
            .iter()
            .enumerate()
            .filter(|(k, t)| {
                t.is_punct('.')
                    && sig
                        .get(k + 1)
                        .is_some_and(|n| n.is_ident("lock") || n.is_ident("fetch_add") || n.is_ident("pop"))
            })
            .map(|(k, _)| k)
            .collect();
        let names: Vec<String> = dots
            .iter()
            .map(|&d| receiver_name(&sig, d).unwrap())
            .collect();
        assert_eq!(names, vec!["queue", "counter", "deques"]);
    }

    #[test]
    fn test_mask_covers_cfg_test_mod_but_not_cfg_not_test() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n#[cfg(not(test))]\nfn also_live() {}\n";
        let toks = owned(src);
        let sig = sig_view(&toks);
        let mask = test_mask(&sig);
        let unwrap_at = sig.iter().position(|t| t.is_ident("unwrap")).unwrap();
        let live_at = sig.iter().position(|t| t.is_ident("live")).unwrap();
        let also_at = sig.iter().position(|t| t.is_ident("also_live")).unwrap();
        assert!(mask[unwrap_at]);
        assert!(!mask[live_at]);
        assert!(!mask[also_at]);
    }

    #[test]
    fn let_bound_guard_lives_to_block_end_or_drop() {
        let src = "fn f(s: &S) {\n    let q = s.queue.lock().unwrap();\n    use_it(&q);\n    drop(q);\n    more();\n}\n";
        let toks = owned(src);
        let sig = sig_view(&toks);
        let body = &fn_bodies(&sig)[0];
        let acqs = lock_acquisitions(&sig, body.open, body.close);
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].lock, "queue");
        assert_eq!(acqs[0].guard.as_deref(), Some("q"));
        let drop_at = sig.iter().position(|t| t.is_ident("drop")).unwrap();
        assert_eq!(acqs[0].live_until, drop_at);
    }

    #[test]
    fn temporary_guard_ends_at_statement_or_spans_scrutinee_block() {
        let src = "fn f(s: &S) {\n    s.queue.lock().unwrap().push(1);\n    match lock(&s.deques[0]).pop() {\n        Some(x) => eat(x),\n        None => {}\n    }\n}\n";
        let toks = owned(src);
        let sig = sig_view(&toks);
        let body = &fn_bodies(&sig)[0];
        let acqs = lock_acquisitions(&sig, body.open, body.close);
        assert_eq!(acqs.len(), 2);
        // Statement temporary: dead at the `;`.
        assert!(sig[acqs[0].live_until].is_punct(';'));
        // Scrutinee temporary: live through the match block's `}`.
        assert_eq!(acqs[1].lock, "deques");
        assert!(sig[acqs[1].live_until].is_punct('}'));
        let eat_at = sig.iter().position(|t| t.is_ident("eat")).unwrap();
        assert!(acqs[1].live_until > eat_at);
    }

    #[test]
    fn consumed_guard_is_a_temporary_despite_the_let() {
        // The single-flight double-check pattern: the guard is eaten by
        // `.probe(&key)` inside the statement, so `looked` binds the
        // probe result — the guard must not be considered live past the
        // `;` (a later re-lock of `cache` is NOT a self-deadlock).
        let src = "fn f(s: &S) {\n    let looked = s.cache.lock().expect(\"poisoned\").probe(&key);\n    consume(looked);\n    let again = s.cache.lock().expect(\"poisoned\").probe(&key);\n}\n";
        let toks = owned(src);
        let sig = sig_view(&toks);
        let body = &fn_bodies(&sig)[0];
        let acqs = lock_acquisitions(&sig, body.open, body.close);
        assert_eq!(acqs.len(), 2);
        assert_eq!(acqs[0].guard, None);
        assert!(sig[acqs[0].live_until].is_punct(';'));
        assert!(acqs[1].at > acqs[0].live_until, "no overlap, no cycle");
    }

    #[test]
    fn free_lock_helper_definition_is_not_an_acquisition() {
        let src = "fn lock<T>(q: &Deque<T>) -> Guard<'_, T> {\n    q.lock().unwrap_or_else(|e| e.into_inner())\n}\n";
        let toks = owned(src);
        let sig = sig_view(&toks);
        let body = &fn_bodies(&sig)[0];
        let acqs = lock_acquisitions(&sig, body.open, body.close);
        // Only the `q.lock()` inside the body counts — and its
        // temporary guard dies at the body's closing brace.
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].lock, "q");
    }
}
