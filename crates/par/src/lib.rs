//! Work-stealing parallel mining runtime.
//!
//! All three mining kernels parallelise the same way: the search space
//! splits at the root into independent first-item subtrees (LCM: first-rank
//! projections; Eclat: equivalence classes; FP-growth: per-item conditional
//! trees), each subtree is mined serially by whichever worker picks it up,
//! and per-worker outputs are merged back in subtree rank order so the
//! result is bit-identical to a serial run. This crate owns the middle of
//! that sandwich: a fixed-task work-stealing scheduler with a deterministic
//! merge, built on `std::thread::scope` only (no external dependencies).
//!
//! Scheduling model:
//!
//! * Tasks are fixed up front — mining a subtree never spawns new tasks —
//!   so termination is simply "every deque is empty" and no worker ever
//!   blocks on another. No condition variables, no deadlock.
//! * Tasks are dealt round-robin in rank order. Kernels order subtrees so
//!   low ranks are the biggest (most frequent first item), and round-robin
//!   spreads those hot subtrees across workers, the same static balance the
//!   original per-kernel code used.
//! * An idle worker first drains its own deque from the front, then steals
//!   up to [`ParConfig::steal_granularity`] tasks from the *back* of the
//!   nearest non-empty victim. Stealing from the back takes the tasks the
//!   owner would reach last, minimising contention on the deque front.
//! * Each worker records `(task_index, result)` pairs; after the scoped
//!   join the results are re-slotted by task index, so callers observe
//!   task order — never thread interleaving order.
//!
//! Panic safety: a panicking task poisons nothing. Each task closure runs
//! inside a per-task unwind catch; the first failure is recorded as a
//! [`TaskPanic`] (task index + payload), the failed task's result slot
//! stays `None` — explicitly incomplete, so a prefix replay can never
//! treat it as finished — and every worker abandons its remaining queue.
//! [`run_with_state_until_settled`] hands the failure back as a value;
//! [`run_with_state_until`] and [`run_with_state`] re-raise the payload on
//! the calling thread via [`std::panic::resume_unwind`] after the join, so
//! propagation can never deadlock.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The first task panic of a settled run: which task failed and the
/// unwind payload its closure raised.
pub struct TaskPanic {
    /// Index (in the submitted task list) of the task whose closure
    /// panicked. Its result slot is `None`.
    pub task_index: usize,
    /// The captured panic payload, as [`std::thread::JoinHandle::join`]
    /// would deliver it.
    pub payload: Box<dyn std::any::Any + Send + 'static>,
}

impl std::fmt::Debug for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskPanic")
            .field("task_index", &self.task_index)
            .finish_non_exhaustive()
    }
}

/// Parallel runtime configuration, shared by every kernel through the
/// `fpm-exec` plan executor and surfaced via the CLI `--threads` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Worker thread count. `0` means "pick for me": the host's available
    /// parallelism. The effective count is also clamped to the task count,
    /// so oversubscription is harmless.
    pub n_threads: usize,
    /// Maximum tasks taken from a victim per steal. `1` (the default)
    /// maximises balance; larger values amortise lock traffic when tasks
    /// are tiny and plentiful.
    pub steal_granularity: usize,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            n_threads: 0,
            steal_granularity: 1,
        }
    }
}

impl ParConfig {
    /// A config with an explicit thread count and default stealing.
    pub fn with_threads(n_threads: usize) -> Self {
        ParConfig {
            n_threads,
            ..Default::default()
        }
    }

    /// Single-threaded config (still runs through the scheduler, which
    /// degenerates to a plain in-order loop).
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// The worker count actually used for `n_tasks` tasks.
    ///
    /// Total for every input: clamped to the task count from above and to
    /// `1` from below, so `n_tasks == 0` (and any `n_threads`) yields `1`
    /// — callers sizing a pool before they know whether work exists (the
    /// serve layer does) can call this unconditionally and never receive
    /// a zero-width pool. Locked in by `effective_threads_with_no_tasks`.
    pub fn effective_threads(&self, n_tasks: usize) -> usize {
        let requested = if self.n_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.n_threads
        };
        requested.min(n_tasks).max(1)
    }
}

/// One worker's deque of `(task_index, task)` pairs.
type Deque<T> = Mutex<VecDeque<(usize, T)>>;

/// Locks a deque, ignoring poisoning: a panicked sibling can only leave
/// the deque in a consistent state (push/pop are single operations), and
/// the panic itself is re-raised after the join.
fn lock<T>(q: &Deque<T>) -> std::sync::MutexGuard<'_, VecDeque<(usize, T)>> {
    q.lock().unwrap_or_else(|e| e.into_inner())
}

/// Scans victims nearest-first and moves up to `steal_max` tasks from the
/// back of the first non-empty victim deque into `stolen`. Returns whether
/// anything was taken.
///
/// This is the hottest part of an idle worker's life, so it must not
/// allocate: `stolen` is preallocated to `steal_max` by the worker and is
/// always drained before the next steal, so the pushes below stay within
/// capacity (proven at runtime by `steal_path_is_allocation_free`).
// also-lint: hot
fn steal_batch<T>(
    deques: &[Deque<T>],
    w: usize,
    steal_max: usize,
    stolen: &mut VecDeque<(usize, T)>,
) -> bool {
    let n_workers = deques.len();
    let mut got = false;
    for d in 1..n_workers {
        let v = (w + d) % n_workers;
        // In range by the modulo; a missing deque just means no victim.
        let Some(victim) = deques.get(v) else {
            continue;
        };
        let mut victim = lock(victim);
        for _ in 0..steal_max {
            match victim.pop_back() {
                Some(t) => {
                    // also-lint: allow(hot-loop-alloc) — within capacity: stolen is preallocated to steal_max and drained between steals
                    stolen.push_back(t);
                    got = true;
                }
                None => break,
            }
        }
        if got {
            break;
        }
    }
    got
}

/// Runs `f` over every task on a work-stealing pool and returns the
/// results **in task order**, regardless of which worker ran what.
///
/// Convenience wrapper over [`run_with_state`] for stateless workers.
pub fn run_tasks<T, R, F>(tasks: Vec<T>, par: &ParConfig, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    run_with_state(tasks, par, |_worker| (), |(), task| f(task))
}

/// Runs `f` over every task on a work-stealing pool, giving each worker a
/// private state value built by `init` (a per-worker sink, scratch miner,
/// …) that is reused across all tasks that worker executes. Returns the
/// results **in task order**.
///
/// `init` receives the worker index (0-based). Results are deterministic
/// in the task list: the merge re-slots each `(task_index, result)` pair
/// after the join, so neither the thread count nor steal timing can
/// reorder output.
///
/// # Panics
///
/// Re-raises the first worker panic on the calling thread after all
/// workers have been joined. Workers never wait on each other, so a panic
/// cannot deadlock the pool.
pub fn run_with_state<T, S, R, I, F>(tasks: Vec<T>, par: &ParConfig, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    run_with_state_until(tasks, par, || false, init, f)
        .into_iter()
        // Unreachable: with the constant `false` stop predicate every
        // slot is filled on return (a task panic re-raises out of the
        // scheduler before this map runs).
        // also-lint: allow(panic-path)
        .map(|r| r.expect("scheduler completed with an unexecuted task"))
        .collect()
}

/// [`run_with_state`] with a cooperative stop predicate — the
/// cancellation hook of the serve layer.
///
/// Every worker polls `stop()` before executing each task and before
/// scanning victims to steal; once it returns `true`, workers finish the
/// task they are on, abandon everything still queued, and join. The
/// result vector therefore has `Some` in the slot of every task that ran
/// and `None` for the abandoned ones. `stop` must be monotonic (once
/// `true`, stays `true`) — `fpm`'s `MineControl::should_stop` is, and it
/// is the intended predicate: pass `|| control.should_stop()`.
///
/// Which tasks are abandoned depends on steal timing and is *not*
/// deterministic; callers that need a deterministic output (the kernels'
/// controlled parallel drivers) must handle that at merge time — e.g.
/// replay completed task buffers in rank order only up to the first
/// incomplete task.
///
/// # Panics
///
/// Re-raises the first task panic on the calling thread after the join
/// (see [`run_with_state_until_settled`] for the non-raising form).
pub fn run_with_state_until<T, S, R, C, I, F>(
    tasks: Vec<T>,
    par: &ParConfig,
    stop: C,
    init: I,
    f: F,
) -> Vec<Option<R>>
where
    T: Send,
    R: Send,
    C: Fn() -> bool + Sync,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let (slots, panic) = run_with_state_until_settled(tasks, par, stop, init, f);
    if let Some(p) = panic {
        std::panic::resume_unwind(p.payload);
    }
    slots
}

/// [`run_with_state_until`] that *settles* instead of unwinding: a task
/// panic is caught at the task boundary and returned as a value.
///
/// On the first panic, the failed task's slot is left `None` —
/// explicitly incomplete, so `replay_merged_prefix` can never replay a
/// task that did not finish — every worker abandons its remaining
/// queue, and the `(task index, payload)` pair comes back as the second
/// tuple element. Completed sibling results (including tasks *after*
/// the failed index that finished before the failure was observed) keep
/// their slots, exactly like a cooperative stop.
///
/// This is the executor's entry point: `fpm-exec` converts the returned
/// failure into a `StopCause::TaskPanicked` summary rather than letting
/// the unwind cross the mining API boundary.
pub fn run_with_state_until_settled<T, S, R, C, I, F>(
    tasks: Vec<T>,
    par: &ParConfig,
    stop: C,
    init: I,
    f: F,
) -> (Vec<Option<R>>, Option<TaskPanic>)
where
    T: Send,
    R: Send,
    C: Fn() -> bool + Sync,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n_tasks = tasks.len();
    if n_tasks == 0 {
        return (Vec::new(), None);
    }
    let n_workers = par.effective_threads(n_tasks);
    let steal_max = par.steal_granularity.max(1);

    // Deal tasks round-robin in rank order: task i -> deque i % n_workers.
    let deques: Vec<Deque<T>> = (0..n_workers)
        .map(|_| Mutex::new(VecDeque::new()))
        .collect();
    for (idx, task) in tasks.into_iter().enumerate() {
        // idx % n_workers is in range by construction of `deques`.
        if let Some(q) = deques.get(idx % n_workers) {
            lock(q).push_back((idx, task));
        }
    }

    let mut slots: Vec<Option<R>> = (0..n_tasks).map(|_| None).collect();

    // Task failure bookkeeping, shared by both scheduling paths: the
    // flag makes every worker bail like a cooperative stop, the mutex
    // records the first (task index, payload) pair.
    let failed = AtomicBool::new(false);
    let first_panic: Mutex<Option<TaskPanic>> = Mutex::new(None);

    // Runs one task inside an unwind catch. `None` means the task
    // panicked (its slot must stay incomplete); the chaos worker-panic
    // site lives inside the catch so an injected panic takes the same
    // path a real kernel bug would.
    let run_one = |state: &mut S, idx: usize, task: T| -> Option<R> {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if fpm::faults::worker_panic(idx) {
                // The chaos injection site itself: the panic is raised
                // *inside* this catch_unwind on purpose, taking the
                // exact path a real kernel bug would.
                // also-lint: allow(panic-path)
                panic!("chaos: injected worker panic at task {idx}");
            }
            f(state, task)
        }));
        match result {
            Ok(r) => Some(r),
            Err(payload) => {
                // ORDERING: Relaxed — advisory early-exit flag; the
                // authoritative panic payload travels under the
                // `first_panic` mutex and the scope join, so nothing
                // is published through this store.
                failed.store(true, Ordering::Relaxed);
                let mut slot = first_panic.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(TaskPanic {
                        task_index: idx,
                        payload,
                    });
                }
                None
            }
        }
    };

    if n_workers == 1 {
        // Serial fast path: same code path shape, no thread spawn.
        let mut state = init(0);
        loop {
            // ORDERING: Relaxed — monotonic flag, control-flow only; a
            // stale read runs at most one extra task.
            if stop() || failed.load(Ordering::Relaxed) {
                break;
            }
            match deques.first().and_then(|q| lock(q).pop_front()) {
                Some((idx, task)) => {
                    if let Some(r) = run_one(&mut state, idx, task) {
                        if let Some(slot) = slots.get_mut(idx) {
                            *slot = Some(r);
                        }
                    }
                }
                None => break,
            }
        }
    } else {
        let deques = &deques;
        let stop = &stop;
        let init = &init;
        let run_one = &run_one;
        let failed = &failed;
        let mut done: Vec<Vec<(usize, R)>> = Vec::with_capacity(n_workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut state = init(w);
                        let mut out: Vec<(usize, R)> = Vec::new();
                        let mut stolen: VecDeque<(usize, T)> =
                            VecDeque::with_capacity(steal_max);
                        // w < n_workers by the spawn range; a missing
                        // deque means this worker was dealt nothing.
                        let Some(own_queue) = deques.get(w) else {
                            return out;
                        };
                        loop {
                            // Cooperative cancellation — or a sibling's
                            // task failure: abandon whatever is still
                            // queued. Other workers observe the same
                            // (monotonic) predicates and do likewise.
                            // ORDERING: Relaxed — same advisory flag; a
                            // stale read costs one extra task, never
                            // correctness (results merge after join).
                            if stop() || failed.load(Ordering::Relaxed) {
                                return out;
                            }
                            // Own deque first, front to back.
                            let own = lock(own_queue).pop_front();
                            if let Some((idx, task)) = own {
                                if let Some(r) = run_one(&mut state, idx, task) {
                                    out.push((idx, r));
                                }
                                continue;
                            }
                            // Then locally buffered steals.
                            if let Some((idx, task)) = stolen.pop_front() {
                                if let Some(r) = run_one(&mut state, idx, task) {
                                    out.push((idx, r));
                                }
                                continue;
                            }
                            // Chaos injection site: steal-timing latency
                            // (constant no-op without the feature; must
                            // never change merged output).
                            fpm::faults::steal_delay();
                            // Then scan victims, nearest first, taking up
                            // to steal_max tasks from the victim's back.
                            if !steal_batch(deques, w, steal_max, &mut stolen) {
                                // Every deque empty and tasks are never
                                // spawned dynamically: we are done.
                                return out;
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    // Task panics are caught inside run_one; a join
                    // error means `init` itself panicked — an
                    // infrastructure bug, not a task failure, so it
                    // propagates.
                    Ok(out) => done.push(out),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        for (idx, r) in done.into_iter().flatten() {
            if let Some(slot) = slots.get_mut(idx) {
                debug_assert!(slot.is_none(), "task {idx} ran twice");
                *slot = Some(r);
            }
        }
    }

    let panic = first_panic
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    (slots, panic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_task_list_returns_empty() {
        for threads in [1, 4] {
            let out = run_tasks(
                Vec::<u32>::new(),
                &ParConfig::with_threads(threads),
                |x| x * 2,
            );
            assert!(out.is_empty());
        }
    }

    #[test]
    fn single_task_single_result() {
        for threads in [1, 2, 8] {
            let out = run_tasks(vec![21u64], &ParConfig::with_threads(threads), |x| x * 2);
            assert_eq!(out, vec![42]);
        }
    }

    #[test]
    fn more_threads_than_tasks() {
        // 7 threads, 3 tasks: effective pool clamps to 3, all complete.
        let out = run_tasks(vec![1, 2, 3], &ParConfig::with_threads(7), |x| x + 10);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn results_are_in_task_order_for_any_thread_count() {
        let tasks: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = tasks.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 4, 7, 16] {
            let cfg = ParConfig {
                n_threads: threads,
                steal_granularity: 1 + threads % 3,
            };
            let out = run_tasks(tasks.clone(), &cfg, |x| x * x);
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn stealing_rebalances_skewed_work() {
        // Worker 0's deque gets the slow task plus half the quick ones;
        // other workers run dry and must steal to finish. Completion of
        // all tasks in order proves the steal path terminates correctly.
        let tasks: Vec<u64> = (0..64).collect();
        let out = run_tasks(tasks, &ParConfig::with_threads(4), |x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn per_worker_state_is_private_and_reused() {
        // Each worker counts its own tasks; totals must equal the task
        // count without any cross-worker interference.
        let grand_total = AtomicUsize::new(0);
        let n = 100;
        let out = run_with_state(
            (0..n).collect::<Vec<usize>>(),
            &ParConfig::with_threads(4),
            |_w| 0usize,
            |local, task| {
                *local += 1;
                grand_total.fetch_add(1, Ordering::Relaxed);
                task
            },
        );
        assert_eq!(out, (0..n).collect::<Vec<usize>>());
        assert_eq!(grand_total.load(Ordering::Relaxed), n);
    }

    #[test]
    fn panicking_task_propagates_instead_of_deadlocking() {
        for threads in [1, 4] {
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_tasks(
                    (0..32u32).collect::<Vec<u32>>(),
                    &ParConfig::with_threads(threads),
                    |x| {
                        if x == 13 {
                            panic!("boom at task 13");
                        }
                        x
                    },
                )
            }));
            let payload = result.expect_err("panic must propagate to the caller");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(String::from)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(msg.contains("boom"), "threads={threads}: payload {msg:?}");
        }
    }

    #[test]
    fn settled_marks_the_panicked_task_incomplete_at_every_index() {
        // The replay-prefix contract depends on a panicked task's slot
        // being None — explicitly incomplete — never a phantom result.
        // Sweep the panic across every task index at several thread
        // counts; whatever else completes, slot k must stay empty and
        // the failure must name task k.
        let n = 12usize;
        for threads in [1usize, 2, 4] {
            for k in 0..n {
                let (slots, panic) = run_with_state_until_settled(
                    (0..n).collect::<Vec<usize>>(),
                    &ParConfig::with_threads(threads),
                    || false,
                    |_w| (),
                    |(), x| {
                        if x == k {
                            panic!("boom at task {x}");
                        }
                        x * 10
                    },
                );
                assert_eq!(slots.len(), n, "threads={threads} k={k}");
                assert!(
                    slots[k].is_none(),
                    "threads={threads} k={k}: panicked task must stay incomplete"
                );
                let p = panic.expect("the failure must be reported");
                assert_eq!(p.task_index, k, "threads={threads} k={k}");
                let msg = p
                    .payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_default();
                assert!(msg.contains("boom"), "threads={threads} k={k}: {msg:?}");
                // Slots that did complete hold the right values.
                for (i, s) in slots.iter().enumerate() {
                    if let Some(v) = s {
                        assert_eq!(*v, i * 10, "threads={threads} k={k} slot={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn settled_without_a_panic_behaves_like_until() {
        for threads in [1usize, 3] {
            let (slots, panic) = run_with_state_until_settled(
                (0..40u32).collect::<Vec<u32>>(),
                &ParConfig::with_threads(threads),
                || false,
                |_w| (),
                |(), x| x + 1,
            );
            assert!(panic.is_none(), "threads={threads}");
            assert_eq!(
                slots,
                (1..=40u32).map(Some).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn steal_path_is_allocation_free() {
        // Build four deques, pile tasks onto every victim, and drain them
        // all through worker 0's steal path under the alloc guard: the
        // `// also-lint: hot` claim on steal_batch, proven at runtime.
        let n_workers = 4;
        let steal_max = 3;
        let deques: Vec<Deque<u64>> = (0..n_workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..48 {
            lock(&deques[i % n_workers]).push_back((i, i as u64));
        }
        let mut stolen: VecDeque<(usize, u64)> = VecDeque::with_capacity(steal_max);
        let mut seen = 0u64;
        fpm::alloc_guard::assert_no_alloc(|| {
            while steal_batch(&deques, 0, steal_max, &mut stolen) {
                while let Some((_, t)) = stolen.pop_front() {
                    seen += t;
                }
            }
        });
        // Worker 0 never steals from itself, so its own 12 tasks remain.
        let own: u64 = (0..48).filter(|i| i % n_workers == 0).map(|i| i as u64).sum();
        assert_eq!(seen, (0..48u64).sum::<u64>() - own);
        assert_eq!(lock(&deques[0]).len(), 12);
    }

    #[test]
    fn zero_threads_means_auto() {
        let cfg = ParConfig::default();
        assert!(cfg.effective_threads(64) >= 1);
        assert_eq!(cfg.effective_threads(0), 1);
        // Explicit counts clamp to the task count.
        assert_eq!(ParConfig::with_threads(100).effective_threads(3), 3);
    }

    #[test]
    fn effective_threads_with_no_tasks() {
        // The serve worker pool sizes itself before knowing whether any
        // work exists; n_tasks == 0 must be total and never return 0,
        // whatever the configured thread count.
        for n_threads in [0usize, 1, 2, 7, 100] {
            assert_eq!(
                ParConfig::with_threads(n_threads).effective_threads(0),
                1,
                "n_threads={n_threads}"
            );
        }
        // And the scheduler accepts the degenerate call outright.
        let out = run_tasks(Vec::<u8>::new(), &ParConfig::default(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn stop_predicate_abandons_remaining_tasks() {
        use std::sync::atomic::AtomicBool;
        for threads in [1usize, 4] {
            let hit = AtomicBool::new(false);
            let out = run_with_state_until(
                (0..128u32).collect::<Vec<u32>>(),
                &ParConfig::with_threads(threads),
                || hit.load(Ordering::Relaxed),
                |_w| (),
                |(), x| {
                    // Small per-task pause so the trip lands while other
                    // workers still have queued work to abandon.
                    std::thread::sleep(std::time::Duration::from_micros(500));
                    if x == 5 {
                        hit.store(true, Ordering::Relaxed);
                    }
                    x
                },
            );
            assert_eq!(out.len(), 128);
            let ran = out.iter().flatten().count();
            assert!(ran < 128, "threads={threads}: stop must abandon work");
            // Task 5 itself always completes (stop is polled *between*
            // tasks, never mid-task).
            assert_eq!(out[5], Some(5), "threads={threads}");
        }
    }

    #[test]
    fn never_stopping_predicate_runs_everything() {
        let out = run_with_state_until(
            (0..64u32).collect::<Vec<u32>>(),
            &ParConfig::with_threads(3),
            || false,
            |_w| (),
            |(), x| x * 2,
        );
        assert_eq!(
            out,
            (0..64u32).map(|x| Some(x * 2)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pre_tripped_stop_runs_nothing() {
        for threads in [1usize, 4] {
            let out = run_with_state_until(
                (0..32u32).collect::<Vec<u32>>(),
                &ParConfig::with_threads(threads),
                || true,
                |_w| (),
                |(), x| x,
            );
            assert!(out.iter().all(|r| r.is_none()), "threads={threads}");
        }
    }
}
