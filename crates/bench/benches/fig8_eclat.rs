//! Figure 8 bench for the eclat kernel: every named variant on every
//! dataset (smoke scale — the `repro fig8` binary runs larger scales).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpm::CountSink;
use fpm_bench::fig8::{variant_set, KernelConfig};
use quest::{Dataset, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_eclat");
    g.sample_size(10);
    // DS1 and DS4 are the two extremes the paper's analysis contrasts
    // (clustered synthetic vs sparse scattered); the `repro fig8` binary
    // covers all four datasets.
    for ds in [Dataset::Ds1, Dataset::Ds4] {
        let db = ds.generate(Scale::Smoke);
        let minsup = ds.support(Scale::Smoke);
        for (label, cfg) in variant_set("eclat", false) {
            g.bench_with_input(
                BenchmarkId::new(ds.label(), &label),
                &cfg,
                |b, cfg| {
                    b.iter(|| {
                        let mut sink = CountSink::default();
                        match cfg {
                            KernelConfig::Lcm(c) => {
                                lcm::mine(&db, minsup, c, &mut sink);
                            }
                            KernelConfig::Eclat(c) => {
                                eclat::mine(&db, minsup, c, &mut sink);
                            }
                            KernelConfig::Fp(c) => {
                                fpgrowth::mine(&db, minsup, c, &mut sink);
                            }
                        }
                        sink.count
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
