//! Ablation benches for the design choices DESIGN.md §6 calls out:
//!
//! * `supernode_size` — aggregation chunk capacity (paper: one cache
//!   line is optimal);
//! * `tile_size` — LCM tile rows (paper: fit L1);
//! * `wavefront_distance` — prefetch depth (paper Figure 5 uses 3);
//! * `fptree_node_layout` — AoS vs delta-encoded traversal (P2);
//! * `threads_{lcm,eclat,fpgrowth}` — worker count on the `fpm-par`
//!   work-stealing runtime (thread-scaling of the shared scheduler).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use also::aggregate::{ChunkPool, ChunkedList};
use fpm::CountSink;
use par::ParConfig;
use quest::{Dataset, Scale};

/// Builds many short chunked lists and times a full traversal — the
/// rm_dup_trans access pattern — for one chunk capacity `K`.
fn chunked_traverse<const K: usize>(n_lists: usize, per_list: usize) -> u64 {
    let mut pool: ChunkPool<u32, K> = ChunkPool::with_capacity(n_lists * per_list);
    let mut lists = vec![ChunkedList::new(); n_lists];
    // interleave pushes so chunks of one list are NOT adjacent (the
    // realistic bucket-fill order)
    for round in 0..per_list {
        for (li, l) in lists.iter_mut().enumerate() {
            l.push(&mut pool, (round * n_lists + li) as u32);
        }
    }
    let mut sum = 0u64;
    for l in &lists {
        l.for_each(&pool, |v| sum = sum.wrapping_add(v as u64));
    }
    std::hint::black_box(sum)
}

fn bench_supernode(c: &mut Criterion) {
    let mut g = c.benchmark_group("supernode_size");
    g.sample_size(20);
    // capacities ≈ 32 B, 64 B (one line), 128 B, 256 B supernodes
    g.bench_function("32B(k=6)", |b| b.iter(|| chunked_traverse::<6>(4096, 12)));
    g.bench_function("64B(k=14)", |b| b.iter(|| chunked_traverse::<14>(4096, 12)));
    g.bench_function("128B(k=30)", |b| b.iter(|| chunked_traverse::<30>(4096, 12)));
    g.bench_function("256B(k=62)", |b| b.iter(|| chunked_traverse::<62>(4096, 12)));
    g.finish();
}

fn bench_tile(c: &mut Criterion) {
    // DS4 keeps single iterations fast; the tile-size *shape* (overhead
    // at tiny tiles, flat beyond cache) is scale-free.
    let db = Dataset::Ds4.generate(Scale::Smoke);
    let minsup = Dataset::Ds4.support(Scale::Smoke);
    let mut g = c.benchmark_group("tile_size");
    g.sample_size(10);
    for rows in [64usize, 256, 1024, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            let cfg = lcm::LcmConfig {
                tile_rows: Some(rows),
                ..lcm::LcmConfig::baseline()
            };
            b.iter(|| {
                let mut sink = CountSink::default();
                lcm::mine(&db, minsup, &cfg, &mut sink);
                sink.count
            })
        });
    }
    g.finish();
}

fn bench_wavefront(c: &mut Criterion) {
    let db = Dataset::Ds4.generate(Scale::Smoke);
    let minsup = Dataset::Ds4.support(Scale::Smoke);
    let mut g = c.benchmark_group("wavefront_distance");
    g.sample_size(10);
    for dist in [0usize, 1, 3, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(dist), &dist, |b, &dist| {
            let cfg = lcm::LcmConfig {
                prefetch: dist,
                ..lcm::LcmConfig::baseline()
            };
            b.iter(|| {
                let mut sink = CountSink::default();
                lcm::mine(&db, minsup, &cfg, &mut sink);
                sink.count
            })
        });
    }
    g.finish();
}

fn bench_node_layout(c: &mut Criterion) {
    let db = Dataset::Ds4.generate(Scale::Smoke);
    let minsup = Dataset::Ds4.support(Scale::Smoke);
    let mut g = c.benchmark_group("fptree_node_layout");
    g.sample_size(10);
    for (name, cfg) in [
        ("aos24", fpgrowth::FpConfig::baseline()),
        (
            "delta5",
            fpgrowth::FpConfig {
                adapt: true,
                ..fpgrowth::FpConfig::baseline()
            },
        ),
        (
            "delta5+agg",
            fpgrowth::FpConfig {
                adapt: true,
                aggregate: true,
                ..fpgrowth::FpConfig::baseline()
            },
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sink = CountSink::default();
                fpgrowth::mine(&db, minsup, &cfg, &mut sink);
                sink.count
            })
        });
    }
    g.finish();
}

fn bench_threads(c: &mut Criterion) {
    let db = Dataset::Ds1.generate(Scale::Smoke);
    let minsup = Dataset::Ds1.support(Scale::Smoke);
    let kernels: [(&str, exec::KernelConfig); 3] = [
        ("threads_lcm", exec::KernelConfig::Lcm(lcm::LcmConfig::all())),
        (
            "threads_eclat",
            exec::KernelConfig::Eclat(eclat::EclatConfig::all()),
        ),
        (
            "threads_fpgrowth",
            exec::KernelConfig::FpGrowth(fpgrowth::FpConfig::all()),
        ),
    ];
    for (group, cfg) in kernels {
        let mut g = c.benchmark_group(group);
        g.sample_size(10);
        for threads in [1usize, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::from_parameter(threads),
                &threads,
                |b, &threads| {
                    let plan = exec::MinePlan::new(cfg, minsup)
                        .par_config(ParConfig::with_threads(threads));
                    b.iter(|| {
                        let mut sink = CountSink::default();
                        plan.execute(&db, &mut sink);
                        sink.count
                    })
                },
            );
        }
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_supernode,
    bench_tile,
    bench_wavefront,
    bench_node_layout,
    bench_threads
);
criterion_main!(benches);
