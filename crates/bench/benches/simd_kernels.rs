//! P8 micro-benchmark: the fused AND + popcount ladder (table lookup →
//! scalar popcount → SSE2 → AVX2) on raw bit-vector words, plus the
//! 0-escaped kernel — the speedup source behind Figure 8(c)'s SIMD bars.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use also::bits::BitVec;
use also::simd::{and_count, and_count_escaped, Popcount};

fn bench(c: &mut Criterion) {
    let n_bits = 512 * 1024; // 64 KiB per vector: larger than L1
    let a = BitVec::from_indices(
        n_bits,
        &(0..n_bits as u32).step_by(3).collect::<Vec<_>>(),
    );
    let b = BitVec::from_indices(
        n_bits,
        &(0..n_bits as u32).step_by(5).collect::<Vec<_>>(),
    );
    let words = a.words().min(b.words());

    let mut g = c.benchmark_group("simd_and_count");
    g.sample_size(20);
    g.throughput(Throughput::Bytes((words * 16) as u64));
    for s in Popcount::available() {
        g.bench_with_input(BenchmarkId::new("full", s.label()), &s, |bch, &s| {
            bch.iter(|| and_count(&a, &b, 0..words, s))
        });
    }
    g.finish();

    // 0-escaping benefit: 1s clustered in the first 1/8 of the vectors
    let head = BitVec::from_indices(
        n_bits,
        &(0..(n_bits / 8) as u32).step_by(2).collect::<Vec<_>>(),
    );
    let head2 = BitVec::from_indices(
        n_bits,
        &(0..(n_bits / 8) as u32).step_by(3).collect::<Vec<_>>(),
    );
    // 1-ranges are maintained incrementally by the miner (updated on each
    // AND), so they are precomputed here — timing them inside the loop
    // would charge two full vector scans to the escaped kernel.
    let (r1, r2) = (head.one_range(), head2.one_range());
    let mut g = c.benchmark_group("zero_escaping");
    g.sample_size(20);
    g.bench_function("full_span", |bch| {
        bch.iter(|| and_count(&head, &head2, 0..words, Popcount::best()))
    });
    g.bench_function("escaped", |bch| {
        bch.iter(|| and_count_escaped(&head, &r1, &head2, &r2, Popcount::best()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
