//! Figure 2 bench: native wall time of each kernel's hottest function
//! (the drivers behind the simulated CPI table). Prints the simulated
//! M1 CPI table once before the timed runs.

use criterion::{criterion_group, criterion_main, Criterion};
use fpm_bench::fig2;
use memsim::{Machine, NullProbe};
use quest::{Dataset, Scale};

fn bench(c: &mut Criterion) {
    let rows = fig2::run(Dataset::Ds1, Scale::Smoke, Machine::m1());
    eprintln!("\n{}", fig2::render(&rows, &Machine::m1()));

    let db = Dataset::Ds1.generate(Scale::Smoke);
    let minsup = Dataset::Ds1.support(Scale::Smoke);
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("lcm_calc_freq", |b| {
        b.iter(|| fig2::drive_lcm_calc_freq(&db, minsup, &mut NullProbe))
    });
    g.bench_function("lcm_rm_dup_trans", |b| {
        b.iter(|| fig2::drive_lcm_rm_dup(&db, minsup, &mut NullProbe))
    });
    g.bench_function("eclat_and_count", |b| {
        b.iter(|| fig2::drive_eclat_and_count(&db, minsup, &mut NullProbe))
    });
    g.bench_function("fpgrowth_traverse", |b| {
        b.iter(|| fig2::drive_fpg_traverse(&db, minsup, &mut NullProbe))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
