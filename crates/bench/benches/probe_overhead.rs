//! Verifies the zero-cost claim of the probe instrumentation: a kernel
//! compiled with `NullProbe` must run at the speed of the same loop with
//! no probe parameter at all (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, Criterion};
use fpm::CountSink;
use memsim::{NullProbe, Probe};
use quest::{Dataset, Scale};

/// The calc_freq-shaped loop, hand-written without any probe.
fn bare_loop(occ: &[(u32, u32)], heads: &[(u32, u32, u32)], items: &[u32]) -> u64 {
    let mut sum = 0u64;
    for &(tid, pos) in occ {
        let (off, len, w) = heads[tid as usize];
        for &it in &items[pos as usize + 1..(off + len) as usize] {
            sum = sum.wrapping_add((it as u64).wrapping_mul(w as u64));
        }
    }
    sum
}

/// The same loop, probed with `NullProbe` (all calls must compile away).
fn probed_loop<P: Probe>(
    occ: &[(u32, u32)],
    heads: &[(u32, u32, u32)],
    items: &[u32],
    probe: &mut P,
) -> u64 {
    let mut sum = 0u64;
    for &(tid, pos) in occ {
        probe.read(occ.as_ptr() as usize, 8);
        let (off, len, w) = heads[tid as usize];
        probe.read_dep(&heads[tid as usize] as *const _ as usize, 12);
        for &it in &items[pos as usize + 1..(off + len) as usize] {
            probe.instr(3);
            probe.write(&sum as *const _ as usize, 8);
            sum = sum.wrapping_add((it as u64).wrapping_mul(w as u64));
        }
    }
    sum
}

fn bench(c: &mut Criterion) {
    // synthetic arrays shaped like a projected database
    let n = 50_000usize;
    let len = 12u32;
    let items: Vec<u32> = (0..n as u32 * len).map(|i| i % 97).collect();
    let heads: Vec<(u32, u32, u32)> = (0..n as u32).map(|t| (t * len, len, 1)).collect();
    let occ: Vec<(u32, u32)> = (0..n as u32).map(|t| (t, t * len)).collect();

    let mut g = c.benchmark_group("probe_overhead");
    g.sample_size(30);
    g.bench_function("bare", |b| b.iter(|| bare_loop(&occ, &heads, &items)));
    g.bench_function("null_probe", |b| {
        b.iter(|| probed_loop(&occ, &heads, &items, &mut NullProbe))
    });
    g.finish();

    // And at the whole-miner level: mine() IS the NullProbe build.
    let db = Dataset::Ds1.generate(Scale::Smoke);
    let minsup = Dataset::Ds1.support(Scale::Smoke);
    let mut g = c.benchmark_group("miner_nullprobe");
    g.sample_size(10);
    g.bench_function("lcm_base", |b| {
        b.iter(|| {
            let mut sink = CountSink::default();
            lcm::mine(&db, minsup, &lcm::LcmConfig::baseline(), &mut sink);
            sink.count
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
