//! Tables 1–6 of the paper, regenerated from the machine-readable
//! catalogues so documentation and code cannot drift.

use also::catalog::{Applicability, Kernel, Pattern};
use memsim::Machine;
use quest::{Dataset, Scale};

/// Table 1 — the lexicographic ordering example, executed live on the
/// paper's toy database.
pub fn table1() -> String {
    let mut out = String::from("Table 1: lexicographic ordering (paper's example)\n");
    // a..f with the paper's frequencies; print both sides of the arrow.
    let raw: Vec<Vec<char>> = vec![
        vec!['a', 'c', 'f'],
        vec!['b', 'c', 'f'],
        vec!['a', 'c', 'f'],
        vec!['d', 'e'],
        vec!['a', 'b', 'c', 'd', 'e', 'f'],
    ];
    // rank alphabet: c f a b d e (freqs 4 4 3 2 2 2)
    let alphabet = ['c', 'f', 'a', 'b', 'd', 'e'];
    let rank_of = |ch: char| alphabet.iter().position(|&a| a == ch).unwrap() as u32;
    let mut ranked: Vec<Vec<u32>> = raw
        .iter()
        .map(|t| t.iter().map(|&c| rank_of(c)).collect())
        .collect();
    also::lexorder::lex_order(&mut ranked);
    out.push_str("  tid  before            tid  after (alphabet c,f,a,b,d,e)\n");
    for (i, (before, after)) in raw.iter().zip(&ranked).enumerate() {
        let b: String = before.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",");
        let a: String = after
            .iter()
            .map(|&r| alphabet[r as usize].to_string())
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!("  {i}    {{{b:<14}}}   {i}    {{{a}}}\n"));
    }
    out
}

/// Table 2 — pattern → benefit matrix.
pub fn table2() -> String {
    let mut out = String::from(
        "Table 2: ALSO patterns\n  pattern                      spatial  temporal  latency  compute\n",
    );
    for p in Pattern::ALL {
        let b = p.benefit();
        let mark = |v: bool| if v { "   √   " } else { "       " };
        out.push_str(&format!(
            "  {:<28} {} {} {} {}\n",
            p.name(),
            mark(b.spatial_locality),
            mark(b.temporal_locality),
            mark(b.memory_latency),
            mark(b.computation),
        ));
    }
    out
}

/// Table 3 — kernel characteristics.
pub fn table3() -> String {
    let mut out = String::from(
        "Table 3: kernel characteristics\n  kernel      database    structure           bound\n",
    );
    for k in Kernel::ALL {
        let (db, ds, bound) = k.characteristics();
        out.push_str(&format!("  {:<11} {:<11} {:<19} {}\n", k.name(), db, ds, bound));
    }
    out
}

/// Table 4 — pattern applicability per kernel.
pub fn table4() -> String {
    let mut out = String::from(
        "Table 4: optimization patterns studied per kernel\n  pattern                      LCM    Eclat  FP-Growth\n",
    );
    for p in Pattern::ALL {
        let cell = |k: Kernel| match p.applicability(k) {
            Applicability::Applied => "√",
            Applicability::PriorWork => "()",
            Applicability::NotStudied => "—",
        };
        out.push_str(&format!(
            "  {:<28} {:<6} {:<6} {}\n",
            p.name(),
            cell(Kernel::Lcm),
            cell(Kernel::Eclat),
            cell(Kernel::FpGrowth),
        ));
    }
    out
}

/// Table 5 — the simulated machines.
pub fn table5() -> String {
    let mut out = String::from("Table 5: experimental platforms (simulated)\n");
    for m in [Machine::m1(), Machine::m2()] {
        out.push_str(&format!(
            "  {:<4} {}\n       L1D {} KB {}-way | L2 {} KB {}-way | DTLB {} entries | mem ≈{} cyc\n",
            format!("{:?}", m.kind),
            m.name,
            m.l1.capacity / 1024,
            m.l1.ways,
            m.l2.capacity / 1024,
            m.l2.ways,
            m.tlb.capacity / 4096,
            m.mem_latency,
        ));
    }
    out
}

/// Table 6 — datasets and supports, at both paper and current scale.
pub fn table6(scale: Scale) -> String {
    let mut out = format!(
        "Table 6: data sets and supports (scale: {scale:?}, factor 1/{})\n  id   name          paper #tx  paper sup | run #tx    run sup\n",
        scale.factor()
    );
    for ds in Dataset::ALL {
        out.push_str(&format!(
            "  {}  {:<13} {:>9}  {:>9} | {:>8}  {:>8}\n",
            ds.label(),
            ds.name(),
            ds.paper_transactions(),
            ds.paper_support(),
            ds.transactions(scale),
            ds.support(scale),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shows_ordered_result() {
        let t = table1();
        assert!(t.contains("{c,f,a}"), "{t}");
        assert!(t.contains("{d,e}"), "{t}");
    }

    #[test]
    fn tables_render() {
        assert!(table2().contains("SIMDization"));
        assert!(table3().contains("bit vector"));
        assert!(table4().contains("√"));
        assert!(table5().contains("Pentium"));
        assert!(table6(Scale::Ci).contains("T60I10D300K"));
    }
}
