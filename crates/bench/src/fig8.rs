//! Figure 8 — speedups of the ALSO-tuned kernel variants over their
//! untuned baselines, per dataset, on the native host and on the
//! simulated M1/M2 machines.
//!
//! The paper's figure clusters, per dataset: one bar per single pattern
//! (`Lex`, `Reorg`, `Pref`, `Tile`, `SIMD` as applicable), an `all` bar
//! (every applicable pattern), and a `best` bar (the best *combination*,
//! annotated with which combination won). `--exhaustive` reproduces the
//! `best` search over the full pattern power set; the default searches
//! the named variants only.

use fpm::{CountSink, TransactionDb};
use memsim::{CacheProbe, Machine};
use quest::{Dataset, Scale};

/// How a variant is costed.
#[derive(Debug, Clone, Copy)]
pub enum Timing {
    /// Wall-clock on the host, best of `runs`.
    Native {
        /// Timed repetitions (after one warm-up).
        runs: usize,
        /// Worker threads on the `fpm-par` runtime: `1` runs the plain
        /// serial kernel, `0` auto-detects, `n` pins the pool size. The
        /// simulated machines are single-core, so this only affects
        /// native timing.
        threads: usize,
    },
    /// Simulated cycles on a Table 5 machine.
    Simulated(Machine),
}

/// One measured variant.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Variant label (`base`, `lex`, …, or a `+`-joined combination).
    pub label: String,
    /// Seconds (native) or cycles (simulated).
    pub cost: f64,
    /// Patterns emitted (identical across variants — checked).
    pub patterns: u64,
}

/// One dataset's cluster of bars.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The dataset.
    pub dataset: Dataset,
    /// Baseline cost.
    pub base_cost: f64,
    /// `(label, speedup)` per non-baseline variant, in variant order,
    /// ending with `all`.
    pub speedups: Vec<(String, f64)>,
    /// The winning combination and its speedup (the paper's `best` bar).
    pub best: (String, f64),
}

/// Enumerates variant configurations for `kernel`: the named Figure 8
/// columns, plus (when `exhaustive`) every pattern subset.
pub fn variant_set(kernel: &str, exhaustive: bool) -> Vec<(String, KernelConfig)> {
    match kernel {
        "lcm" => {
            if exhaustive {
                let mut v = Vec::new();
                for lex in [false, true] {
                    for reorg in [false, true] {
                        for pref in [false, true] {
                            for tile in [false, true] {
                                v.push((
                                    combo_label(&[
                                        ("lex", lex),
                                        ("reorg", reorg),
                                        ("pref", pref),
                                        ("tile", tile),
                                    ]),
                                    KernelConfig::Lcm(lcm::LcmConfig {
                                        lex,
                                        aggregate: reorg,
                                        compact_counters: reorg,
                                        prefetch: if pref { 3 } else { 0 },
                                        tile_rows: tile.then_some(0),
                                    }),
                                ));
                            }
                        }
                    }
                }
                v
            } else {
                lcm::variants()
                    .into_iter()
                    .map(|(n, c)| (n.to_string(), KernelConfig::Lcm(c)))
                    .collect()
            }
        }
        "eclat" => {
            if exhaustive {
                let mut v = Vec::new();
                for lex in [false, true] {
                    for simd in [false, true] {
                        v.push((
                            combo_label(&[("lex", lex), ("simd", simd)]),
                            KernelConfig::Eclat(eclat::EclatConfig {
                                lex,
                                zero_escape: lex,
                                popcount: if simd {
                                    also::simd::Popcount::best()
                                } else {
                                    also::simd::Popcount::Table16
                                },
                            }),
                        ));
                    }
                }
                v
            } else {
                eclat::variants()
                    .into_iter()
                    .map(|(n, c)| (n.to_string(), KernelConfig::Eclat(c)))
                    .collect()
            }
        }
        "fpgrowth" => {
            if exhaustive {
                let mut v = Vec::new();
                for lex in [false, true] {
                    for reorg in [false, true] {
                        for pref in [false, true] {
                            v.push((
                                combo_label(&[("lex", lex), ("reorg", reorg), ("pref", pref)]),
                                KernelConfig::Fp(fpgrowth::FpConfig {
                                    lex,
                                    adapt: reorg,
                                    aggregate: reorg,
                                    prefetch: pref,
                                }),
                            ));
                        }
                    }
                }
                v
            } else {
                fpgrowth::variants()
                    .into_iter()
                    .map(|(n, c)| (n.to_string(), KernelConfig::Fp(c)))
                    .collect()
            }
        }
        other => panic!("unknown kernel {other:?}"),
    }
}

fn combo_label(parts: &[(&str, bool)]) -> String {
    let on: Vec<&str> = parts.iter().filter(|(_, b)| *b).map(|(n, _)| *n).collect();
    if on.is_empty() {
        "base".to_string()
    } else {
        on.join("+")
    }
}

/// A kernel-config union for the harness.
#[derive(Debug, Clone, Copy)]
pub enum KernelConfig {
    /// LCM configuration.
    Lcm(lcm::LcmConfig),
    /// Eclat configuration.
    Eclat(eclat::EclatConfig),
    /// FP-Growth configuration.
    Fp(fpgrowth::FpConfig),
}

impl KernelConfig {
    /// The executor-side equivalent, for plan-driven (parallel) runs.
    fn to_exec(self) -> exec::KernelConfig {
        match self {
            KernelConfig::Lcm(c) => exec::KernelConfig::Lcm(c),
            KernelConfig::Eclat(c) => exec::KernelConfig::Eclat(c),
            KernelConfig::Fp(c) => exec::KernelConfig::FpGrowth(c),
        }
    }
}

/// Runs one variant under one costing; returns `(cost, patterns)`.
pub fn run_variant(
    cfg: &KernelConfig,
    db: &TransactionDb,
    minsup: u64,
    timing: Timing,
) -> (f64, u64) {
    match timing {
        Timing::Native { runs, threads } => {
            let mut patterns = 0u64;
            let cost = crate::time_best_of(runs, || {
                let mut sink = CountSink::default();
                if threads == 1 {
                    match cfg {
                        KernelConfig::Lcm(c) => {
                            lcm::mine(db, minsup, c, &mut sink);
                        }
                        KernelConfig::Eclat(c) => {
                            eclat::mine(db, minsup, c, &mut sink);
                        }
                        KernelConfig::Fp(c) => {
                            fpgrowth::mine(db, minsup, c, &mut sink);
                        }
                    }
                } else {
                    let plan = exec::MinePlan::new(cfg.to_exec(), minsup)
                        .par_config(par::ParConfig::with_threads(threads));
                    plan.execute(db, &mut sink);
                }
                patterns = sink.count;
                patterns
            });
            (cost, patterns)
        }
        Timing::Simulated(machine) => {
            let mut probe = CacheProbe::new(machine);
            let mut sink = CountSink::default();
            match cfg {
                KernelConfig::Lcm(c) => {
                    lcm::mine_probed(db, minsup, c, &mut probe, &mut sink);
                }
                KernelConfig::Eclat(c) => {
                    eclat::mine_probed(db, minsup, c, &mut probe, &mut sink);
                }
                KernelConfig::Fp(c) => {
                    fpgrowth::mine_probed(db, minsup, c, &mut probe, &mut sink);
                }
            }
            (probe.report("variant").cycles, sink.count)
        }
    }
}

/// Runs the full Figure 8 cluster for `kernel` on `dataset`.
pub fn run_cluster(
    kernel: &str,
    dataset: Dataset,
    scale: Scale,
    timing: Timing,
    exhaustive: bool,
) -> Cluster {
    let db = quest::generate_cached(dataset, scale);
    let minsup = dataset.support(scale);
    let variants = variant_set(kernel, exhaustive);
    let mut measured: Vec<Measurement> = variants
        .iter()
        .map(|(label, cfg)| {
            let (cost, patterns) = run_variant(cfg, &db, minsup, timing);
            Measurement {
                label: label.clone(),
                cost,
                patterns,
            }
        })
        .collect();
    // all variants must agree on the mined pattern count
    let p0 = measured[0].patterns;
    for m in &measured {
        assert_eq!(
            m.patterns, p0,
            "variant {} disagrees on pattern count",
            m.label
        );
    }
    let base = measured
        .iter()
        .find(|m| m.label == "base")
        .expect("baseline present")
        .cost;
    let best = measured
        .iter()
        .filter(|m| m.label != "base")
        .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("no NaN"))
        .expect("non-baseline variant present");
    let best = (best.label.clone(), base / best.cost);
    measured.retain(|m| m.label != "base");
    Cluster {
        dataset,
        base_cost: base,
        speedups: measured
            .into_iter()
            .map(|m| (m.label, base / m.cost))
            .collect(),
        best,
    }
}

/// Renders a kernel's Figure 8 panel (all four datasets).
pub fn render(kernel: &str, clusters: &[Cluster], timing: Timing) -> String {
    let unit = match timing {
        Timing::Native { .. } => "s (host wall-clock)",
        Timing::Simulated(m) => match m.kind {
            memsim::MachineKind::M1 => "cycles (simulated M1)",
            memsim::MachineKind::M2 => "cycles (simulated M2)",
        },
    };
    let mut out = format!("Figure 8 [{kernel}] — speedup over baseline; baseline in {unit}\n");
    for c in clusters {
        out.push_str(&format!(
            "  {} ({}): base {:.4}\n",
            c.dataset.label(),
            c.dataset.name(),
            c.base_cost
        ));
        for (label, s) in &c.speedups {
            out.push_str(&format!("      {label:<14} {s:>6.3}×\n"));
        }
        out.push_str(&format!(
            "      best = {} at {:.3}×\n",
            c.best.0, c.best.1
        ));
    }
    out
}

/// Renders a kernel's clusters as CSV (`kernel,dataset,variant,speedup,
/// base_cost`) for downstream plotting.
pub fn render_csv(kernel: &str, clusters: &[Cluster]) -> String {
    let mut out = String::from("kernel,dataset,variant,speedup,base_cost\n");
    for c in clusters {
        for (label, s) in &c.speedups {
            out.push_str(&format!(
                "{kernel},{},{label},{s:.4},{:.6}\n",
                c.dataset.label(),
                c.base_cost
            ));
        }
        out.push_str(&format!(
            "{kernel},{},best[{}],{:.4},{:.6}\n",
            c.dataset.label(),
            c.best.0,
            c.best.1,
            c.base_cost
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_sets_have_baselines() {
        for k in ["lcm", "eclat", "fpgrowth"] {
            for ex in [false, true] {
                let v = variant_set(k, ex);
                assert!(v.iter().any(|(n, _)| n == "base"), "{k} ex={ex}");
                assert!(v.len() >= 4, "{k} ex={ex}");
            }
        }
    }

    #[test]
    fn combo_labels() {
        assert_eq!(combo_label(&[("a", false), ("b", false)]), "base");
        assert_eq!(combo_label(&[("a", true), ("b", true)]), "a+b");
    }

    #[test]
    fn cluster_runs_and_agrees() {
        let c = run_cluster(
            "eclat",
            Dataset::Ds1,
            Scale::Smoke,
            Timing::Native { runs: 1, threads: 1 },
            false,
        );
        assert!(c.base_cost > 0.0);
        assert_eq!(c.speedups.len(), 3); // lex, simd, all
        assert!(c.best.1 > 0.0);
    }

    #[test]
    fn parallel_cluster_counts_match_serial() {
        // The pattern-count cross-check inside run_cluster applies to the
        // parallel path too: pattern counts per variant must be identical
        // to the serial run's for every kernel.
        for k in ["lcm", "eclat", "fpgrowth"] {
            let serial = run_cluster(
                k,
                Dataset::Ds1,
                Scale::Smoke,
                Timing::Native { runs: 1, threads: 1 },
                false,
            );
            let parallel = run_cluster(
                k,
                Dataset::Ds1,
                Scale::Smoke,
                Timing::Native { runs: 1, threads: 4 },
                false,
            );
            assert_eq!(
                serial.speedups.len(),
                parallel.speedups.len(),
                "{k}: variant sets must match"
            );
        }
    }
}
