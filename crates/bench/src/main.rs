//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro table1 … table6          # the static/derived tables
//! repro fig2 [--machine m1|m2] [--scale …] [--dataset …]
//! repro fig8 [--kernel lcm|eclat|fpgrowth] [--machine native|m1|m2]
//!            [--scale smoke|ci|full] [--exhaustive] [--runs N]
//!            [--threads N]   # native timing on the fpm-par runtime (0 = auto)
//! repro claims [--scale …] [--runs N]
//! repro all   [--scale …]        # everything, in paper order
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use fpm_bench::{claims, fig2, fig8, tables};
use memsim::Machine;
use quest::{Dataset, Scale};

struct Opts {
    scale: Scale,
    machine: String,
    kernel: Option<String>,
    dataset: Dataset,
    exhaustive: bool,
    runs: usize,
    csv: bool,
    threads: usize,
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        scale: Scale::Smoke,
        machine: "native".into(),
        kernel: None,
        dataset: Dataset::Ds1,
        exhaustive: false,
        runs: 3,
        csv: false,
        threads: 1,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                o.scale = Scale::by_label(&args[i]).expect("bad --scale");
            }
            "--machine" => {
                i += 1;
                o.machine = args[i].clone();
            }
            "--kernel" => {
                i += 1;
                o.kernel = Some(args[i].clone());
            }
            "--dataset" => {
                i += 1;
                o.dataset = Dataset::by_label(&args[i]).expect("bad --dataset");
            }
            "--exhaustive" => o.exhaustive = true,
            "--csv" => o.csv = true,
            "--runs" => {
                i += 1;
                o.runs = args[i].parse().expect("bad --runs");
            }
            "--threads" => {
                i += 1;
                o.threads = args[i].parse().expect("bad --threads");
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    o
}

fn fig8_timing(o: &Opts) -> fig8::Timing {
    match o.machine.as_str() {
        "native" => fig8::Timing::Native {
            runs: o.runs,
            threads: o.threads,
        },
        m => fig8::Timing::Simulated(Machine::by_label(m).expect("bad --machine")),
    }
}

fn do_fig8(o: &Opts) {
    let kernels: Vec<String> = match &o.kernel {
        Some(k) => vec![k.clone()],
        None => vec!["lcm".into(), "eclat".into(), "fpgrowth".into()],
    };
    for k in kernels {
        let clusters: Vec<fig8::Cluster> = Dataset::ALL
            .iter()
            .map(|&d| fig8::run_cluster(&k, d, o.scale, fig8_timing(o), o.exhaustive))
            .collect();
        if o.csv {
            print!("{}", fig8::render_csv(&k, &clusters));
        } else {
            print!("{}", fig8::render(&k, &clusters, fig8_timing(o)));
            println!();
        }
    }
}

fn do_fig2(o: &Opts) {
    let machine = if o.machine == "native" {
        Machine::m1()
    } else {
        Machine::by_label(&o.machine).expect("bad --machine")
    };
    let rows = fig2::run(o.dataset, o.scale, machine);
    print!("{}", fig2::render(&rows, &machine));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!(
            "usage: repro <table1|table2|table3|table4|table5|table6|fig2|fig8|claims|all> [options]"
        );
        std::process::exit(2);
    };
    let o = parse(rest);
    match cmd.as_str() {
        "table1" => print!("{}", tables::table1()),
        "table2" => print!("{}", tables::table2()),
        "table3" => print!("{}", tables::table3()),
        "table4" => print!("{}", tables::table4()),
        "table5" => print!("{}", tables::table5()),
        "table6" => print!("{}", tables::table6(o.scale)),
        "fig2" => do_fig2(&o),
        "fig8" => do_fig8(&o),
        "claims" => print!("{}", claims::render(&claims::check(o.scale, o.runs))),
        "all" => {
            print!("{}", tables::table1());
            println!();
            print!("{}", tables::table2());
            println!();
            print!("{}", tables::table3());
            println!();
            print!("{}", tables::table4());
            println!();
            print!("{}", tables::table5());
            println!();
            print!("{}", tables::table6(o.scale));
            println!();
            do_fig2(&o);
            println!();
            do_fig8(&o);
            print!("{}", claims::render(&claims::check(o.scale, o.runs)));
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}
