//! The paper's headline quantitative claims (§4.4), checked against
//! measurements on the current host / simulator. Absolute factors are
//! platform-dependent (our substrate is a 2026 host plus a simulator,
//! not a 2006 Pentium D), so each claim records the paper's number, the
//! measured number, and whether the *directional* statement holds.

use crate::fig8::{run_cluster, Cluster, Timing};
use memsim::Machine;
use quest::{Dataset, Scale};

/// One checked claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Short name.
    pub name: &'static str,
    /// What the paper reports.
    pub paper: &'static str,
    /// What we measured.
    pub measured: String,
    /// Whether the directional claim holds here.
    pub holds: bool,
}

fn speedup_of(c: &Cluster, label: &str) -> f64 {
    c.speedups
        .iter()
        .find(|(l, _)| l == label)
        .map(|(_, s)| *s)
        .unwrap_or(f64::NAN)
}

/// Runs the full claims battery at `scale`.
///
/// Costing is **simulated M1 cycles**: the paper's speedups were measured
/// on 2006 hardware whose cache pressure a modern host does not recreate
/// at reproduction scale, so the simulator (DESIGN.md substitution #2) is
/// the faithful stand-in. `runs` is kept for the native comparison the
/// `repro fig8` command offers; simulation is deterministic and ignores
/// it.
pub fn check(scale: Scale, runs: usize) -> Vec<Claim> {
    let _ = runs;
    let timing = Timing::Simulated(Machine::m1());
    let lcm: Vec<Cluster> = Dataset::ALL
        .iter()
        .map(|&d| run_cluster("lcm", d, scale, timing, false))
        .collect();
    let eclat: Vec<Cluster> = Dataset::ALL
        .iter()
        .map(|&d| run_cluster("eclat", d, scale, timing, false))
        .collect();
    let fpg: Vec<Cluster> = Dataset::ALL
        .iter()
        .map(|&d| run_cluster("fpgrowth", d, scale, timing, false))
        .collect();

    let mut claims = Vec::new();

    // "overall performance improvement for the best combination of
    // patterns, ranging from 1.05 to 2.1"
    let best_all: Vec<f64> = lcm
        .iter()
        .chain(&eclat)
        .chain(&fpg)
        .map(|c| c.best.1)
        .collect();
    let (lo, hi) = (
        best_all.iter().cloned().fold(f64::INFINITY, f64::min),
        best_all.iter().cloned().fold(0.0, f64::max),
    );
    claims.push(Claim {
        name: "best-combination speedup range",
        paper: "1.05 – 2.1×",
        measured: format!("{lo:.2} – {hi:.2}×"),
        holds: hi > 1.0,
    });

    // "the lexicographic ordering provides up to 1.5 speedup"
    let lex_max = lcm
        .iter()
        .chain(&eclat)
        .chain(&fpg)
        .map(|c| speedup_of(c, "lex"))
        .fold(0.0, f64::max);
    claims.push(Claim {
        name: "lexicographic ordering helps",
        paper: "up to 1.5×",
        measured: format!("up to {lex_max:.2}×"),
        holds: lex_max > 1.0,
    });

    // "SIMDization provides a speedup between 1.25 and 1.45 on M1"
    let simd_max = eclat.iter().map(|c| speedup_of(c, "simd")).fold(0.0, f64::max);
    claims.push(Claim {
        name: "SIMDization accelerates Eclat",
        paper: "1.25 – 1.45× (M1)",
        measured: format!("up to {simd_max:.2}×"),
        holds: simd_max > 1.0,
    });

    // "Tiling in LCM gives a speedup of up to 1.75" — tiling's win
    // requires the repeatedly-rescanned database to exceed the cache
    // (temporal locality is what it buys); below that it only costs loop
    // overhead. The claim is checked at the mechanism level: the same
    // clustered workload, sized below vs above the simulated L2.
    let (tile_small, tile_large) = tiling_crossover();
    claims.push(Claim {
        name: "tiling pays once the database exceeds cache (crossover)",
        paper: "up to 1.75× on large clustered inputs",
        measured: format!(
            "cache-resident {tile_small:.2}× vs beyond-L2 {tile_large:.2}×"
        ),
        holds: tile_large > tile_small && tile_large > 1.0,
    });

    // "data structure adaptation and tree aggregation gives a speedup of
    // 1.6" (FP-Growth Reorg)
    let reorg_max = fpg.iter().map(|c| speedup_of(c, "reorg")).fold(0.0, f64::max);
    claims.push(Claim {
        name: "FP-Growth data-structure reorg helps",
        paper: "≈1.6×",
        measured: format!("up to {reorg_max:.2}×"),
        holds: reorg_max > 1.0,
    });

    // "Prefetch gives up to 1.3 speedup" — and the paper's own surprise:
    // it is *moderate* ("far from the speedup up to 2.9 in some existing
    // work")
    let pref_max = lcm
        .iter()
        .chain(&fpg)
        .map(|c| speedup_of(c, "pref"))
        .fold(0.0, f64::max);
    claims.push(Claim {
        name: "software prefetch is a moderate win",
        paper: "up to 1.3× (not 2.9×)",
        measured: format!("up to {pref_max:.2}×"),
        holds: pref_max < 2.0,
    });

    // "there is no single best algorithm" — compare kernels' baselines
    // per dataset
    let mut winners = std::collections::BTreeSet::new();
    for i in 0..Dataset::ALL.len() {
        let costs = [
            ("lcm", lcm[i].base_cost),
            ("eclat", eclat[i].base_cost),
            ("fpgrowth", fpg[i].base_cost),
        ];
        let w = costs
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
            .expect("three kernels")
            .0;
        winners.insert(w);
    }
    claims.push(Claim {
        name: "no single best algorithm across datasets",
        paper: "Eclat wins DS3; LCM wins the others",
        measured: format!("winners: {winners:?}"),
        holds: true, // informational; winner sets are platform-dependent
    });

    claims
}

/// The tiling crossover mini-experiment: one clustered Quest-like
/// workload at two sizes, simulated on M1; returns `(speedup_small,
/// speedup_large)` of the tiled LCM over the untiled baseline.
fn tiling_crossover() -> (f64, f64) {
    let speedup = |n_transactions: usize, minsup: u64| -> f64 {
        let db = quest::quest_generate(&quest::QuestParams {
            n_transactions,
            avg_transaction_len: 20.0,
            avg_pattern_len: 6.0,
            n_items: 600,
            n_patterns: 400,
            seed: 777,
            ..quest::QuestParams::default()
        });
        let base = crate::fig8::run_variant(
            &crate::fig8::KernelConfig::Lcm(lcm::LcmConfig::baseline()),
            &db,
            minsup,
            Timing::Simulated(Machine::m1()),
        )
        .0;
        let tiled = crate::fig8::run_variant(
            &crate::fig8::KernelConfig::Lcm(lcm::LcmConfig::tile()),
            &db,
            minsup,
            Timing::Simulated(Machine::m1()),
        )
        .0;
        base / tiled
    };
    // ~0.25 MB arena (fits M1's 1 MB L2) vs ~3.6 MB (exceeds it);
    // supports at a fixed 1.5% relative threshold.
    (speedup(3_000, 45), speedup(45_000, 675))
}

/// Formats the claim table.
pub fn render(claims: &[Claim]) -> String {
    let mut out = String::from("Headline claims — paper vs measured\n");
    for c in claims {
        out.push_str(&format!(
            "  [{}] {}\n        paper: {:<24} measured: {}\n",
            if c.holds { "ok" } else { "!!" },
            c.name,
            c.paper,
            c.measured
        ));
    }
    out
}
