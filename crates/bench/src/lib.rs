//! # `fpm-bench` — the reproduction harness
//!
//! Shared machinery behind the `repro` binary and the Criterion benches:
//! per-figure drivers ([`fig2`], [`fig8`]), the static tables ([`tables`])
//! and the headline-claims checker ([`claims`]). Every table and figure
//! of the paper maps to one entry point here (see DESIGN.md §3 for the
//! index).

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod claims;
pub mod fig2;
pub mod fig8;
pub mod tables;

use std::time::Instant;

/// Times `f` by the best of `runs` executions (after one warm-up), in
/// seconds. Mining runs are deterministic, so min-of-N is the standard
/// noise filter.
pub fn time_best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let t = Instant::now();
        let r = f();
        let dt = t.elapsed().as_secs_f64();
        std::hint::black_box(r);
        best = best.min(dt);
    }
    best
}
