//! Figure 2 — CPI of the most time-consuming functions of the three
//! kernels, on the simulated M1 (Pentium D).
//!
//! The paper measured these with hardware counters; we drive each hot
//! function in isolation against the trace simulator (DESIGN.md
//! substitution #2). Drivers are generic over [`memsim::Probe`], so the
//! same code is Criterion-timed natively (`NullProbe`) and CPI-profiled
//! (`CacheProbe`).
//!
//! | paper function           | driver |
//! |--------------------------|--------|
//! | LCM `CALC_FREQ` (54.4%)  | [`drive_lcm_calc_freq`] |
//! | LCM `RM_DUP_TRANS` (25.5%)| [`drive_lcm_rm_dup`] |
//! | Eclat AND + count (98%)  | [`drive_eclat_and_count`] |
//! | FP-Growth link traversal | [`drive_fpg_traverse`] |

use also::simd::{and_count_words, Popcount};
use fpm::vertical::VerticalBitDb;
use fpm::TransactionDb;
use lcm::projdb::ProjDb;
use lcm::rmdup::{rm_dup_trans, BucketImpl};
use memsim::{CacheProbe, Machine, MemReport, Probe};
use quest::{Dataset, Scale};

/// Builds the root projected database (baseline path: no lex ordering).
fn root_pdb<P: Probe>(db: &TransactionDb, minsup: u64, probe: &mut P) -> (ProjDb, usize) {
    let ranked = fpm::remap(db, minsup);
    let mut pdb = ProjDb::from_ranked(&ranked.transactions);
    pdb.heads = rm_dup_trans(&pdb.items, std::mem::take(&mut pdb.heads), BucketImpl::Linked, probe);
    pdb.build_occ(ranked.n_ranks(), probe);
    (pdb, ranked.n_ranks())
}

/// One full `calc_freq` sweep: for every item column, walk the
/// occurrences, dereference the transaction header, and count every
/// suffix item into baseline-layout (32-byte slot) counters. Returns a
/// checksum so the optimizer cannot elide the walk.
pub fn drive_lcm_calc_freq<P: Probe>(db: &TransactionDb, minsup: u64, probe: &mut P) -> u64 {
    let (pdb, n_ranks) = root_pdb(db, minsup, &mut memsim::NullProbe);
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Slot {
        count: u32,
        _pad: [u32; 7],
    }
    let mut slots = vec![Slot { count: 0, _pad: [0; 7] }; n_ranks];
    let mut sum = 0u64;
    for j in 0..n_ranks as u32 {
        let col = pdb.occ(j);
        for (k, &e) in col.iter().enumerate() {
            probe.read(memsim::addr_of(&col[k]), 8);
            let h = &pdb.heads[e.tid as usize];
            probe.read_dep(memsim::addr_of(h), 12);
            let w = h.weight;
            let suffix = pdb.suffix(e);
            let (sa, sl) = memsim::slice_span(suffix);
            probe.read(sa, sl);
            probe.instr(10);
            for &it in suffix {
                probe.instr(4);
                probe.write(memsim::addr_of(&slots[it as usize]), 8);
                slots[it as usize].count = slots[it as usize].count.wrapping_add(w);
            }
        }
        sum = sum.wrapping_add(slots[j as usize].count as u64);
    }
    std::hint::black_box(sum)
}

/// One `rm_dup_trans` pass over the root database with the baseline
/// linked-bucket structure.
pub fn drive_lcm_rm_dup<P: Probe>(db: &TransactionDb, minsup: u64, probe: &mut P) -> usize {
    let ranked = fpm::remap(db, minsup);
    let pdb = ProjDb::from_ranked(&ranked.transactions);
    let merged = rm_dup_trans(&pdb.items, pdb.heads.clone(), BucketImpl::Linked, probe);
    std::hint::black_box(merged.len())
}

/// Pairwise AND + popcount over the densest columns of the vertical bit
/// matrix, with the baseline 16-bit-table popcount — Eclat's 98% loop.
pub fn drive_eclat_and_count<P: Probe>(db: &TransactionDb, minsup: u64, probe: &mut P) -> u64 {
    let ranked = fpm::remap(db, minsup);
    let vdb = VerticalBitDb::from_ranked(&ranked.transactions, ranked.n_ranks());
    let top = ranked.n_ranks().min(48);
    let mut total = 0u64;
    for i in 0..top as u32 {
        for j in i + 1..top as u32 {
            let a = vdb.column(i).as_words();
            let b = vdb.column(j).as_words();
            let words = a.len().min(b.len());
            let (pa, _) = memsim::slice_span(&a[..words]);
            let (pb, _) = memsim::slice_span(&b[..words]);
            probe.read(pa, words * 8);
            probe.read(pb, words * 8);
            probe.instr(words as u64 * 15);
            eclat::probe_table_lookups(probe, words as u64);
            total += and_count_words(&a[..words], &b[..words], Popcount::Table16);
        }
    }
    std::hint::black_box(total)
}

/// FP-Growth's dominant access pattern: follow every header node-link
/// chain and walk each node's path to the root (baseline AoS nodes).
pub fn drive_fpg_traverse<P: Probe>(db: &TransactionDb, minsup: u64, probe: &mut P) -> u64 {
    use fpgrowth::tree::{FpTree, TreeRepr};
    let ranked = fpm::remap(db, minsup);
    let mut tree = FpTree::new(
        ranked.n_ranks(),
        TreeRepr {
            adapt: false,
            aggregate: false,
            jump_pointers: false,
        },
    );
    for t in &ranked.transactions {
        tree.insert(t, 1, &mut memsim::NullProbe);
    }
    tree.finalize();
    let mut levels = 0u64;
    let mut chain: Vec<(u32, u32)> = Vec::new();
    let mut path: Vec<u32> = Vec::new();
    for item in 0..ranked.n_ranks() as u32 {
        chain.clear();
        tree.for_each_chain_node(item, probe, |n, c| chain.push((n, c)));
        for &(n, _) in &chain {
            path.clear();
            tree.path_to_root(n, item, probe, &mut path);
            levels += path.len() as u64;
        }
    }
    std::hint::black_box(levels)
}

/// A Figure 2 row: the function name and its simulated report.
pub struct Fig2Row {
    /// Driver label.
    pub label: &'static str,
    /// Which kernel it belongs to.
    pub kernel: &'static str,
    /// Simulated memory report.
    pub report: MemReport,
}

/// Runs all four drivers on `machine` and returns the CPI table.
pub fn run(dataset: Dataset, scale: Scale, machine: Machine) -> Vec<Fig2Row> {
    let db = quest::generate_cached(dataset, scale);
    let minsup = dataset.support(scale);
    let mut rows = Vec::new();
    {
        let mut p = CacheProbe::new(machine);
        drive_lcm_calc_freq(&db, minsup, &mut p);
        rows.push(Fig2Row {
            label: "LCM::calc_freq",
            kernel: "LCM",
            report: p.report("LCM::calc_freq"),
        });
    }
    {
        let mut p = CacheProbe::new(machine);
        drive_lcm_rm_dup(&db, minsup, &mut p);
        rows.push(Fig2Row {
            label: "LCM::rm_dup_trans",
            kernel: "LCM",
            report: p.report("LCM::rm_dup_trans"),
        });
    }
    {
        let mut p = CacheProbe::new(machine);
        drive_eclat_and_count(&db, minsup, &mut p);
        rows.push(Fig2Row {
            label: "Eclat::and_count",
            kernel: "Eclat",
            report: p.report("Eclat::and_count"),
        });
    }
    {
        let mut p = CacheProbe::new(machine);
        drive_fpg_traverse(&db, minsup, &mut p);
        rows.push(Fig2Row {
            label: "FPGrowth::traverse",
            kernel: "FP-Growth",
            report: p.report("FPGrowth::traverse"),
        });
    }
    rows
}

/// Formats the Figure 2 table.
pub fn render(rows: &[Fig2Row], machine: &Machine) -> String {
    let mut out = format!(
        "Figure 2: CPI of the most time-consuming functions ({}; optimum CPI 0.33)\n{}\n",
        machine.name,
        MemReport::header()
    );
    for r in rows {
        out.push_str(&r.report.row());
        out.push('\n');
    }
    out.push_str(
        "\n(memory-bound kernels sit far above the 0.33 optimum; Eclat sits near it)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_holds() {
        // The paper's claim: LCM and FP-Growth are memory bound (high
        // CPI), Eclat is computation bound (CPI near the optimum).
        let rows = run(Dataset::Ds1, Scale::Smoke, Machine::m1());
        let cpi = |label: &str| {
            rows.iter()
                .find(|r| r.label == label)
                .map(|r| r.report.cpi())
                .unwrap()
        };
        let eclat = cpi("Eclat::and_count");
        let lcm = cpi("LCM::calc_freq");
        let fpg = cpi("FPGrowth::traverse");
        assert!(eclat < 1.0, "eclat CPI {eclat}");
        assert!(lcm > 1.5 * eclat, "lcm {lcm} vs eclat {eclat}");
        assert!(fpg > 1.5 * eclat, "fpg {fpg} vs eclat {eclat}");
    }

    #[test]
    fn drivers_return_nonzero_work() {
        let db = Dataset::Ds1.generate(Scale::Smoke);
        let s = Dataset::Ds1.support(Scale::Smoke);
        assert!(drive_lcm_calc_freq(&db, s, &mut memsim::NullProbe) > 0);
        assert!(drive_lcm_rm_dup(&db, s, &mut memsim::NullProbe) > 0);
        assert!(drive_eclat_and_count(&db, s, &mut memsim::NullProbe) > 0);
        assert!(drive_fpg_traverse(&db, s, &mut memsim::NullProbe) > 0);
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = run(Dataset::Ds1, Scale::Smoke, Machine::m1());
        let s = render(&rows, &Machine::m1());
        for r in &rows {
            assert!(s.contains(r.label));
        }
    }
}
