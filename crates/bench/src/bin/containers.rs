//! Sparse-shape ablation for the hybrid-container vertical path
//! (DESIGN.md §16): per-chunk adaptive containers ([`AutoMode::PerChunk`],
//! roaring-style array/bitmap/run chunks) against the global-pick
//! baseline ([`AutoMode::Global`], one representation for the whole
//! database — flat `Vec<u32>` tid-lists on sparse shapes, the bit matrix
//! on dense ones).
//!
//! Usage: `cargo run --release --bin containers [out.json]`
//!
//! Three QUEST shapes probe the three container regimes:
//!
//! * `sparse-uniform` — many items, low per-chunk density: every chunk is
//!   a sorted-u16 array, so the win is bytes-per-tid (2 vs 4) and
//!   galloping skewed intersections;
//! * `sparse-skewed` — fewer items, heavier columns: skewed operand sizes
//!   bitmap chunks and the per-chunk rule splits where a global pick
//!   cannot;
//! * `sparse-clustered` — the same transactions sorted lexicographically,
//!   concentrating each item's tids into contiguous spans: run containers
//!   collapse the columns.
//!
//! The JSON report (committed as `BENCH_containers.json`) records, per
//! shape, wall time and vertical-structure bytes for both modes plus the
//! realized container census. Methodology in EXPERIMENTS.md.

use also::advisor::AutoMode;
use eclat::tidlist::mine_auto_mode;
use fpm::vertical::{VerticalBitDb, VerticalHybridDb};
use fpm::{remap, CountSink, TransactionDb};
use fpm_bench::time_best_of;
use quest::quest::{generate, QuestParams};
use std::fmt::Write as _;

struct Shape {
    name: &'static str,
    note: &'static str,
    db: TransactionDb,
    minsup: u64,
}

fn shapes() -> Vec<Shape> {
    let sparse = QuestParams {
        n_transactions: 60_000,
        avg_transaction_len: 10.0,
        avg_pattern_len: 4.0,
        n_items: 20_000,
        n_patterns: 4_000,
        ..QuestParams::default()
    };
    let skewed = QuestParams {
        n_transactions: 60_000,
        avg_transaction_len: 10.0,
        avg_pattern_len: 4.0,
        n_items: 2_000,
        n_patterns: 1_000,
        ..QuestParams::default()
    };
    let clustered_db = {
        let mut t = generate(&sparse).transactions().to_vec();
        // Lexicographic transaction reorder: the tid-axis analogue of the
        // paper's lexicographic item order — rows sharing a prefix become
        // neighbours, so each item's tid-set collapses into runs.
        t.sort_unstable();
        TransactionDb::from_transactions(t)
    };
    vec![
        Shape {
            name: "sparse-uniform",
            note: "T10I4D60K, 20000 items: all-array chunks",
            db: generate(&sparse),
            minsup: 60,
        },
        Shape {
            name: "sparse-skewed",
            note: "T10I4D60K, 2000 items: heavier columns, skewed pair sizes (gallop regime)",
            db: generate(&skewed),
            minsup: 120,
        },
        Shape {
            name: "sparse-clustered",
            note: "T10I4D60K, 20000 items, lex-sorted tids: run chunks",
            db: clustered_db,
            minsup: 60,
        },
    ]
}

/// Bytes of the vertical structure the *global* pick would build over the
/// ranked view: the bit matrix for `Repr::Bits`, flat `Vec<u32>` tid-lists
/// otherwise (tid-lists and diffsets start from the same root lists).
fn global_bytes(db: &TransactionDb, minsup: u64, repr: also::adapt::Repr) -> usize {
    let ranked = remap(db, minsup);
    match repr {
        also::adapt::Repr::VerticalBits => {
            VerticalBitDb::from_ranked(&ranked.transactions, ranked.n_ranks()).bytes()
        }
        _ => ranked
            .transactions
            .iter()
            .map(|t| t.len() * std::mem::size_of::<u32>())
            .sum(),
    }
}

struct Census {
    array: usize,
    bitmap: usize,
    runs: usize,
    bytes: usize,
}

fn census(db: &TransactionDb, minsup: u64) -> Census {
    let ranked = remap(db, minsup);
    let hdb = VerticalHybridDb::from_ranked(&ranked.transactions, ranked.n_ranks());
    let mut c = Census {
        array: 0,
        bitmap: 0,
        runs: 0,
        bytes: hdb.bytes(),
    };
    for i in 0..hdb.n_items() {
        for (_, kind, _) in hdb.column(i as u32).chunk_kinds() {
            match kind {
                also::adapt::ContainerKind::Array => c.array += 1,
                also::adapt::ContainerKind::Bitmap => c.bitmap += 1,
                also::adapt::ContainerKind::Runs => c.runs += 1,
            }
        }
    }
    c
}

fn json_str(out: &mut String, indent: usize, key: &str, val: &str, last: bool) {
    let comma = if last { "" } else { "," };
    let _ = writeln!(out, "{:indent$}\"{key}\": \"{val}\"{comma}", "");
}

fn json_num(out: &mut String, indent: usize, key: &str, val: f64, last: bool) {
    let comma = if last { "" } else { "," };
    if val.fract() == 0.0 && val.abs() < 9.0e15 {
        let _ = writeln!(out, "{:indent$}\"{key}\": {}{comma}", "", val as i64);
    } else {
        let _ = writeln!(out, "{:indent$}\"{key}\": {val:.4}{comma}", "");
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_containers.json".to_string());
    let runs = 3;
    let mut report = String::from("{\n");
    json_str(&mut report, 2, "benchmark", "container-ablation", false);
    json_str(
        &mut report,
        2,
        "baseline",
        "AutoMode::Global (one repr for the whole db) vs AutoMode::PerChunk (hybrid containers)",
        false,
    );
    json_num(&mut report, 2, "timing_runs_best_of", runs as f64, false);
    report.push_str("  \"shapes\": [\n");

    let all = shapes();
    let n_shapes = all.len();
    let mut gate_pass = false;
    for (si, shape) in all.into_iter().enumerate() {
        let db = &shape.db;
        let minsup = shape.minsup;

        let mut count_g = CountSink::default();
        let picked = mine_auto_mode(db, minsup, AutoMode::Global, &mut count_g);
        let mut count_p = CountSink::default();
        mine_auto_mode(db, minsup, AutoMode::PerChunk, &mut count_p);
        assert_eq!(
            count_g.count, count_p.count,
            "{}: modes must mine identical pattern sets",
            shape.name
        );

        let t_global = time_best_of(runs, || {
            let mut s = CountSink::default();
            mine_auto_mode(db, minsup, AutoMode::Global, &mut s);
            s.count
        });
        let t_chunk = time_best_of(runs, || {
            let mut s = CountSink::default();
            mine_auto_mode(db, minsup, AutoMode::PerChunk, &mut s);
            s.count
        });
        let b_global = global_bytes(db, minsup, picked);
        let c = census(db, minsup);
        let speedup = t_global / t_chunk;
        let mem_ratio = b_global as f64 / c.bytes as f64;
        if speedup >= 1.5 || mem_ratio >= 2.0 {
            gate_pass = true;
        }

        report.push_str("    {\n");
        json_str(&mut report, 6, "name", shape.name, false);
        json_str(&mut report, 6, "note", shape.note, false);
        json_num(&mut report, 6, "n_transactions", db.transactions().len() as f64, false);
        json_num(&mut report, 6, "minsup", minsup as f64, false);
        json_num(&mut report, 6, "patterns", count_g.count as f64, false);
        json_str(&mut report, 6, "global_pick", &format!("{picked:?}"), false);
        json_num(&mut report, 6, "global_time_s", t_global, false);
        json_num(&mut report, 6, "per_chunk_time_s", t_chunk, false);
        json_num(&mut report, 6, "speedup", speedup, false);
        json_num(&mut report, 6, "global_bytes", b_global as f64, false);
        json_num(&mut report, 6, "per_chunk_bytes", c.bytes as f64, false);
        json_num(&mut report, 6, "memory_ratio", mem_ratio, false);
        json_num(&mut report, 6, "array_chunks", c.array as f64, false);
        json_num(&mut report, 6, "bitmap_chunks", c.bitmap as f64, false);
        json_num(&mut report, 6, "run_chunks", c.runs as f64, true);
        report.push_str(if si + 1 == n_shapes { "    }\n" } else { "    },\n" });

        eprintln!(
            "{:>16}: {:>7} patterns | global {:.3}s / {} B ({:?}) | per-chunk {:.3}s / {} B | speedup {:.2}x mem {:.2}x",
            shape.name, count_g.count, t_global, b_global, picked, t_chunk, c.bytes, speedup, mem_ratio
        );
    }
    report.push_str("  ],\n");
    let _ = writeln!(
        report,
        "  \"gate_speedup_1_5x_or_memory_2x\": {gate_pass}\n}}"
    );
    assert!(
        gate_pass,
        "no shape reached the 1.5x speed / 2x memory acceptance gate"
    );
    std::fs::write(&out_path, &report).expect("write report");
    eprintln!("wrote {out_path}");
}
