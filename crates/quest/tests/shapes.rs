//! Validates that the four datasets' *shapes* match what the paper's
//! analysis assumes about them (DESIGN.md substitution #1): DS1/DS2 are
//! long-transaction pattern data, DS3 is dense/clustered/Zipf-headed,
//! DS4 is sparse/scattered with short transactions.

use fpm::stats::shape;
use fpm_quest::{Dataset, Scale};

#[test]
fn ds1_ds2_transaction_lengths_track_t_parameter() {
    let s1 = shape(&Dataset::Ds1.generate(Scale::Smoke));
    let s2 = shape(&Dataset::Ds2.generate(Scale::Smoke));
    assert!(
        (40.0..80.0).contains(&s1.mean_len),
        "T60 mean {}",
        s1.mean_len
    );
    assert!(
        (48.0..92.0).contains(&s2.mean_len),
        "T70 mean {}",
        s2.mean_len
    );
    assert!(s2.mean_len > s1.mean_len);
}

#[test]
fn ds3_is_dense_and_zipf_headed() {
    let db = Dataset::Ds3.generate(Scale::Smoke);
    let s = shape(&db);
    // long-ish documents with a heavy tail
    assert!(s.mean_len > 10.0, "mean {}", s.mean_len);
    assert!(s.len_percentiles[2] > 2 * s.len_percentiles[0], "heavy tail");
    // strong head dominance under Zipf
    assert!(s.head_to_median > 20.0, "head/median {}", s.head_to_median);
    assert!(s.item_gini > 0.5, "gini {}", s.item_gini);
}

#[test]
fn ds4_is_sparse_short_and_scattered() {
    let db = Dataset::Ds4.generate(Scale::Smoke);
    let s = shape(&db);
    assert!(s.mean_len < 15.0, "mean {}", s.mean_len);
    let density = db.nnz() as f64 / (db.len() as f64 * db.n_items() as f64);
    assert!(density < 0.005, "density {density}");
    // DS4's defining property in the paper: occurrences scattered over
    // the transaction sequence
    let ranked = fpm::remap(&db, Dataset::Ds4.support(Scale::Smoke));
    let p = also::advisor::InputProfile::measure(&ranked.transactions, ranked.n_ranks());
    assert!(p.scatter > 0.3, "scatter {}", p.scatter);
}

#[test]
fn ds3_is_more_clustered_than_ds4() {
    // DS3's topical structure must show up as lower scatter than DS4 at
    // comparable support percentile
    let p3 = fpm::metrics::profile(
        &Dataset::Ds3.generate(Scale::Smoke),
        Dataset::Ds3.support(Scale::Smoke),
    );
    let p4 = fpm::metrics::profile(
        &Dataset::Ds4.generate(Scale::Smoke),
        Dataset::Ds4.support(Scale::Smoke),
    );
    assert!(
        p3.density > 5.0 * p4.density,
        "DS3 density {} vs DS4 {}",
        p3.density,
        p4.density
    );
}

#[test]
fn scales_are_proportional() {
    let smoke = Dataset::Ds1.generate(Scale::Smoke);
    let ci = Dataset::Ds1.generate(Scale::Ci);
    assert_eq!(ci.len(), 10 * smoke.len());
    let (s1, s2) = (shape(&smoke), shape(&ci));
    // same generator shape at both scales
    assert!((s1.mean_len - s2.mean_len).abs() < 6.0);
}
