//! WebDocs stand-in (DS3). The real WebDocs corpus (Lucchese et al.) is a
//! 1.48 GB crawl-derived transactional dataset: ~1.7 M transactions over
//! ~5.3 M items with a mean length around 177 and strong topical
//! clustering; the paper mines a 500 K-transaction slice at support
//! 50 000 (10%). What the paper's analysis uses is its *shape*: long,
//! dense, heavily overlapping transactions over a Zipf vocabulary, on
//! which the vertical bit-matrix (Eclat) shines and 0-escaping ranges are
//! long-but-clusterable.
//!
//! The stand-in models documents as **topic mixtures**: each transaction
//! draws one topic, takes most of its items from that topic's preferred
//! item block and the rest from a global Zipf background. This yields the
//! high pairwise overlap and clustered co-occurrence of real document
//! data, with transaction count / vocabulary / length scaled by the
//! caller.

use fpm::TransactionDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the WebDocs-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WebDocsParams {
    /// Number of transactions (paper slice: 500 K).
    pub n_transactions: usize,
    /// Vocabulary size.
    pub n_items: usize,
    /// Mean transaction length (real WebDocs ≈ 177; scale with the rest).
    pub mean_len: f64,
    /// Number of topics (controls clustering strength).
    pub n_topics: usize,
    /// Fraction of a transaction drawn from its topic block.
    pub topic_affinity: f64,
    /// Zipf exponent of the background item distribution.
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebDocsParams {
    fn default() -> Self {
        WebDocsParams {
            n_transactions: 50_000,
            n_items: 5_000,
            mean_len: 30.0,
            n_topics: 40,
            topic_affinity: 0.7,
            zipf_s: 1.1,
            seed: 3,
        }
    }
}

/// Samples an item from a Zipf(s) distribution over `0..n` via inverse
/// transform on the precomputed CDF.
pub(crate) struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub(crate) fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub(crate) fn sample(&self, rng: &mut StdRng) -> u32 {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1) as u32,
        }
    }
}

/// Generates the WebDocs-like database. Deterministic in `params.seed`.
pub fn generate(params: &WebDocsParams) -> TransactionDb {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let background = Zipf::new(params.n_items, params.zipf_s);
    // Each topic owns a contiguous block of the *mid-frequency* item range
    // plus its own internal Zipf, so topics share the global head items
    // but differ in the tail they emphasize — like real term distributions.
    let topic_block = (params.n_items / params.n_topics.max(1)).max(1);
    let topic_zipf = Zipf::new(topic_block, 0.9);
    let topic_popularity = Zipf::new(params.n_topics.max(1), 1.0);
    let mut transactions = Vec::with_capacity(params.n_transactions);
    let mut t: Vec<u32> = Vec::new();
    for _ in 0..params.n_transactions {
        let topic = topic_popularity.sample(&mut rng) as usize;
        // Lognormal-ish heavy-tail length around the mean.
        let u: f64 = rng.random::<f64>().max(1e-12);
        let v: f64 = rng.random();
        let z = (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        let len = (params.mean_len * (0.45 * z).exp()).round().max(1.0) as usize;
        t.clear();
        for _ in 0..len {
            let item = if rng.random::<f64>() < params.topic_affinity {
                (topic * topic_block) as u32 + topic_zipf.sample(&mut rng)
            } else {
                background.sample(&mut rng)
            };
            t.push(item.min(params.n_items as u32 - 1));
        }
        t.sort_unstable();
        t.dedup();
        transactions.push(t.clone());
    }
    TransactionDb::from_transactions(transactions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WebDocsParams {
        WebDocsParams {
            n_transactions: 3000,
            n_items: 1000,
            mean_len: 25.0,
            ..WebDocsParams::default()
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&small()), generate(&small()));
    }

    #[test]
    fn shape() {
        let db = generate(&small());
        assert_eq!(db.len(), 3000);
        let mean = db.mean_len();
        assert!((14.0..32.0).contains(&mean), "mean length {mean}");
        assert!(db.n_items() <= 1000);
    }

    #[test]
    fn zipf_head_dominates() {
        let db = generate(&small());
        let ranked = fpm::remap(&db, 1);
        let head = ranked.map.support(0);
        let mid = ranked.map.support((ranked.n_ranks() / 2) as u32);
        assert!(
            head > 5 * mid.max(1),
            "head {head} should dwarf median {mid} under Zipf"
        );
    }

    #[test]
    fn topical_clustering_beats_independence() {
        // two items of the same topic block must co-occur far above the
        // independence expectation
        let db = generate(&small());
        let block = 1000 / WebDocsParams::default().n_topics;
        // items 0 and 1 share topic 0's block AND the Zipf head; use two
        // mid-block items of topic 3 to isolate the topic effect
        let (a, b) = ((3 * block + 1) as u32, (3 * block + 2) as u32);
        let n = db.len() as f64;
        let (mut ca, mut cb, mut cab) = (0f64, 0f64, 0f64);
        for t in db.transactions() {
            let ha = t.binary_search(&a).is_ok();
            let hb = t.binary_search(&b).is_ok();
            if ha {
                ca += 1.0;
            }
            if hb {
                cb += 1.0;
            }
            if ha && hb {
                cab += 1.0;
            }
        }
        assert!(ca > 0.0 && cb > 0.0, "topic items must occur");
        let indep = ca * cb / n;
        assert!(
            cab > 1.5 * indep,
            "clustering too weak: joint {cab} vs independent {indep:.1}"
        );
    }

    #[test]
    fn zipf_sampler_is_monotone_decreasing() {
        let mut rng = StdRng::seed_from_u64(9);
        let z = Zipf::new(100, 1.1);
        let mut counts = [0u32; 100];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }
}
