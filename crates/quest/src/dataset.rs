//! The paper's evaluation datasets (Table 6) at selectable scale.

use crate::ap::{self, ApParams};
use crate::quest::{generate as quest_generate, QuestParams};
use crate::webdocs::{self, WebDocsParams};
use fpm::TransactionDb;
use serde::{Deserialize, Serialize};

/// Reproduction scale. The paper's full sizes (300 K – 1.8 M
/// transactions) are available, but the default reproduction runs 10×
/// smaller — the locality effects under study are cache-line-granular and
/// the scaled working sets still exceed the simulated L2, so speedup
/// *shape* is preserved (DESIGN.md §4.4). Supports scale with the
/// transaction count so relative frequency thresholds match the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// ~100× down — seconds-fast; unit/integration tests.
    Smoke,
    /// ~10× down — the default for benches and the `repro` harness.
    Ci,
    /// Paper-sized.
    Full,
}

impl Scale {
    /// Division factor applied to transaction counts and supports.
    pub fn factor(&self) -> usize {
        match self {
            Scale::Smoke => 100,
            Scale::Ci => 10,
            Scale::Full => 1,
        }
    }

    /// Parses `smoke` / `ci` / `full`.
    pub fn by_label(label: &str) -> Option<Scale> {
        match label.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "ci" => Some(Scale::Ci),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The wire label ([`by_label`](Scale::by_label)'s inverse); the
    /// store layer keys persisted artifacts by it.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Ci => "ci",
            Scale::Full => "full",
        }
    }
}

/// One of the paper's four evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// T60I10D300K (IBM Quest synthetic).
    Ds1,
    /// T70I10D300K (IBM Quest synthetic).
    Ds2,
    /// WebDocs slice, 500 K transactions (stand-in generator).
    Ds3,
    /// AP / TIPSTER, 1.8 M transactions (stand-in generator).
    Ds4,
}

impl Dataset {
    /// All four, in Table 6 order.
    pub const ALL: [Dataset; 4] = [Dataset::Ds1, Dataset::Ds2, Dataset::Ds3, Dataset::Ds4];

    /// The Table 6 name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Ds1 => "T60I10D300K",
            Dataset::Ds2 => "T70I10D300K",
            Dataset::Ds3 => "WebDocs",
            Dataset::Ds4 => "AP",
        }
    }

    /// The Table 6 label (DS1..DS4).
    pub fn label(&self) -> &'static str {
        match self {
            Dataset::Ds1 => "DS1",
            Dataset::Ds2 => "DS2",
            Dataset::Ds3 => "DS3",
            Dataset::Ds4 => "DS4",
        }
    }

    /// Parses a `ds1..ds4` label.
    pub fn by_label(label: &str) -> Option<Dataset> {
        match label.to_ascii_lowercase().as_str() {
            "ds1" => Some(Dataset::Ds1),
            "ds2" => Some(Dataset::Ds2),
            "ds3" => Some(Dataset::Ds3),
            "ds4" => Some(Dataset::Ds4),
            _ => None,
        }
    }

    /// Paper transaction count (Table 6).
    pub fn paper_transactions(&self) -> usize {
        match self {
            Dataset::Ds1 | Dataset::Ds2 => 300_000,
            Dataset::Ds3 => 500_000,
            Dataset::Ds4 => 1_800_000,
        }
    }

    /// Paper support threshold (Table 6).
    pub fn paper_support(&self) -> u64 {
        match self {
            Dataset::Ds1 | Dataset::Ds2 => 3000,
            Dataset::Ds3 => 50_000,
            Dataset::Ds4 => 2000,
        }
    }

    /// The support threshold at `scale` (proportional to the transaction
    /// count, minimum 2).
    pub fn support(&self, scale: Scale) -> u64 {
        (self.paper_support() / scale.factor() as u64).max(2)
    }

    /// Number of transactions at `scale`.
    pub fn transactions(&self, scale: Scale) -> usize {
        self.paper_transactions() / scale.factor()
    }

    /// Generates the dataset at `scale` (deterministic).
    pub fn generate(&self, scale: Scale) -> TransactionDb {
        let n = self.transactions(scale);
        match self {
            Dataset::Ds1 => quest_generate(&QuestParams {
                n_transactions: n,
                avg_transaction_len: 60.0,
                avg_pattern_len: 10.0,
                n_items: 1000,
                n_patterns: 2000,
                seed: 61,
                ..QuestParams::default()
            }),
            Dataset::Ds2 => quest_generate(&QuestParams {
                n_transactions: n,
                avg_transaction_len: 70.0,
                avg_pattern_len: 10.0,
                n_items: 1000,
                n_patterns: 2000,
                seed: 71,
                ..QuestParams::default()
            }),
            Dataset::Ds3 => webdocs::generate(&WebDocsParams {
                n_transactions: n,
                ..WebDocsParams::default()
            }),
            Dataset::Ds4 => ap::generate(&ApParams {
                n_transactions: n,
                ..ApParams::default()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_numbers() {
        assert_eq!(Dataset::Ds1.paper_transactions(), 300_000);
        assert_eq!(Dataset::Ds3.paper_support(), 50_000);
        assert_eq!(Dataset::Ds4.paper_transactions(), 1_800_000);
        assert_eq!(Dataset::Ds1.name(), "T60I10D300K");
    }

    #[test]
    fn scale_labels_roundtrip() {
        for scale in [Scale::Smoke, Scale::Ci, Scale::Full] {
            assert_eq!(Scale::by_label(scale.label()), Some(scale));
        }
        assert_eq!(Scale::by_label("nope"), None);
    }

    #[test]
    fn scaled_supports_track_scale() {
        assert_eq!(Dataset::Ds1.support(Scale::Full), 3000);
        assert_eq!(Dataset::Ds1.support(Scale::Ci), 300);
        assert_eq!(Dataset::Ds1.support(Scale::Smoke), 30);
        assert_eq!(Dataset::Ds3.transactions(Scale::Ci), 50_000);
    }

    #[test]
    fn smoke_generation_all_datasets() {
        for ds in Dataset::ALL {
            let db = ds.generate(Scale::Smoke);
            assert_eq!(db.len(), ds.transactions(Scale::Smoke), "{}", ds.label());
            assert!(!db.is_empty());
            // the scaled support must keep a meaningful number of
            // frequent items alive
            let ranked = fpm::remap(&db, ds.support(Scale::Smoke));
            assert!(
                ranked.n_ranks() >= 10,
                "{}: only {} frequent items at smoke scale",
                ds.label(),
                ranked.n_ranks()
            );
        }
    }

    #[test]
    fn labels_roundtrip() {
        for ds in Dataset::ALL {
            assert_eq!(Dataset::by_label(ds.label()), Some(ds));
        }
        assert_eq!(Scale::by_label("CI"), Some(Scale::Ci));
        assert_eq!(Scale::by_label("nope"), None);
    }

    #[test]
    fn ds1_ds2_differ_in_length() {
        let a = Dataset::Ds1.generate(Scale::Smoke);
        let b = Dataset::Ds2.generate(Scale::Smoke);
        assert!(b.mean_len() > a.mean_len(), "T70 must be longer than T60");
    }
}
