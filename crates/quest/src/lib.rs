//! # `fpm-quest` — dataset generators for the paper's evaluation inputs
//!
//! Table 6 of the paper evaluates on four datasets:
//!
//! | id  | name        | transactions | support |
//! |-----|-------------|--------------|---------|
//! | DS1 | T60I10D300K | 300 K        | 3000    |
//! | DS2 | T70I10D300K | 300 K        | 3000    |
//! | DS3 | WebDocs     | 500 K        | 50000   |
//! | DS4 | AP (TIPSTER)| 1.8 M        | 2000    |
//!
//! DS1/DS2 come from the **IBM Quest synthetic generator** (Agrawal &
//! Srikant's `T..I..D..` parameterisation), reimplemented here in
//! [`quest`]. DS3/DS4 are real corpora we cannot redistribute; the
//! [`webdocs`] and [`ap`] modules generate statistical stand-ins that
//! match the properties the paper's analysis actually depends on —
//! WebDocs: long, heavily overlapping (topic-clustered) transactions over
//! a Zipf vocabulary; AP: very many short, sparse, scattered transactions
//! (the dataset on which tiling finds no reuse and lexicographic
//! preprocessing costs too much).
//!
//! [`Dataset`] ties it together: each paper dataset at a chosen
//! [`Scale`], with the support threshold scaled proportionally.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod ap;
pub mod cache;
pub mod dataset;
pub mod dense;
pub mod quest;
pub mod webdocs;

pub use cache::generate_cached;
pub use dataset::{Dataset, Scale};
pub use quest::{generate as quest_generate, QuestParams};
