//! Reimplementation of the IBM Quest synthetic transaction generator
//! (Agrawal & Srikant, VLDB'94 §Experiments), the source of the paper's
//! DS1 (`T60I10D300K`) and DS2 (`T70I10D300K`).
//!
//! The model: a pool of `n_patterns` *maximal potentially large itemsets*
//! is drawn first — sizes Poisson around `avg_pattern_len`, items partly
//! inherited from the previous pattern (to model cross-pattern
//! correlation), pattern weights exponential. Each transaction then has a
//! Poisson length around `avg_transaction_len` and is assembled by
//! drawing patterns by weight, *corrupting* each (dropping a random
//! suffix of its items with per-pattern corruption level) before
//! insertion; a pattern that overflows the remaining budget is kept
//! anyway in half the cases and deferred otherwise.

use fpm::TransactionDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters in the classic `T..I..D..` notation plus the pool knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestParams {
    /// `D` — number of transactions.
    pub n_transactions: usize,
    /// `T` — average transaction length.
    pub avg_transaction_len: f64,
    /// `I` — average size of the maximal potentially large itemsets.
    pub avg_pattern_len: f64,
    /// `N` — number of distinct items.
    pub n_items: usize,
    /// `L` — number of maximal potentially large itemsets in the pool.
    pub n_patterns: usize,
    /// Fraction of a pattern's items inherited from its predecessor.
    pub correlation: f64,
    /// Mean per-pattern corruption level.
    pub corruption_mean: f64,
    /// RNG seed — generation is fully deterministic given the parameters.
    pub seed: u64,
}

impl Default for QuestParams {
    fn default() -> Self {
        QuestParams {
            n_transactions: 10_000,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            n_items: 1000,
            n_patterns: 2000,
            correlation: 0.5,
            corruption_mean: 0.5,
            seed: 20070415,
        }
    }
}

impl QuestParams {
    /// The `TxxIyyDzzzK` name of this configuration.
    pub fn name(&self) -> String {
        format!(
            "T{}I{}D{}K",
            self.avg_transaction_len.round() as u64,
            self.avg_pattern_len.round() as u64,
            (self.n_transactions as f64 / 1000.0).round() as u64
        )
    }
}

/// Draws from Poisson(mean) by inversion (mean values here are small
/// enough that the naive product method is fine and exact).
fn poisson(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        // Normal approximation for large means (transaction length 60/70).
        let std = mean.sqrt();
        let n: f64 = rng.sample(rand::distr::StandardUniform);
        let m: f64 = rng.sample(rand::distr::StandardUniform);
        // Box-Muller
        let z = (-2.0 * n.max(1e-12).ln()).sqrt() * (2.0 * std::f64::consts::PI * m).cos();
        return (mean + std * z).round().max(0.0) as usize;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Exponential(1) variate.
fn exponential(rng: &mut StdRng) -> f64 {
    -(rng.random::<f64>().max(1e-300)).ln()
}

struct PatternPool {
    items: Vec<Vec<u32>>,
    /// Cumulative weights for roulette selection.
    cum_weights: Vec<f64>,
    corruption: Vec<f64>,
}

impl PatternPool {
    fn generate(p: &QuestParams, rng: &mut StdRng) -> Self {
        let mut items: Vec<Vec<u32>> = Vec::with_capacity(p.n_patterns);
        let mut weights = Vec::with_capacity(p.n_patterns);
        let mut corruption = Vec::with_capacity(p.n_patterns);
        for k in 0..p.n_patterns {
            let size = poisson(rng, p.avg_pattern_len).max(1).min(p.n_items);
            let mut set = Vec::with_capacity(size);
            if k > 0 {
                // Inherit an exponentially-distributed fraction (mean =
                // correlation) of items from the previous pattern.
                let prev = items[k - 1].clone();
                let frac = (exponential(rng) * p.correlation).min(1.0);
                let inherit = ((size as f64 * frac).round() as usize).min(prev.len());
                for _ in 0..inherit {
                    let pick = prev[rng.random_range(0..prev.len())];
                    if !set.contains(&pick) {
                        set.push(pick);
                    }
                }
            }
            while set.len() < size {
                let pick = rng.random_range(0..p.n_items as u32);
                if !set.contains(&pick) {
                    set.push(pick);
                }
            }
            set.sort_unstable();
            items.push(set);
            weights.push(exponential(rng));
            // Corruption level: normal(mean, 0.1) clamped to [0, 1].
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            corruption.push((p.corruption_mean + 0.1 * z).clamp(0.0, 1.0));
        }
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cum_weights = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        PatternPool {
            items,
            cum_weights,
            corruption,
        }
    }

    fn pick(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        match self
            .cum_weights
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.items.len() - 1),
        }
    }
}

/// Generates a database from Quest parameters. Deterministic in
/// `params.seed`.
pub fn generate(params: &QuestParams) -> TransactionDb {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let pool = PatternPool::generate(params, &mut rng);
    let mut transactions = Vec::with_capacity(params.n_transactions);
    let mut scratch: Vec<u32> = Vec::new();
    for _ in 0..params.n_transactions {
        let budget = poisson(&mut rng, params.avg_transaction_len).max(1);
        scratch.clear();
        let mut attempts = 0;
        while scratch.len() < budget && attempts < 4 * budget + 8 {
            attempts += 1;
            let pi = pool.pick(&mut rng);
            let pattern = &pool.items[pi];
            let c = pool.corruption[pi];
            // Corrupt: repeatedly drop one random item while u < c.
            let mut kept: Vec<u32> = pattern.clone();
            while kept.len() > 1 && rng.random::<f64>() < c {
                let at = rng.random_range(0..kept.len());
                kept.swap_remove(at);
            }
            if scratch.len() + kept.len() > budget && rng.random::<bool>() {
                continue; // defer oversize pattern half the time
            }
            scratch.extend_from_slice(&kept);
        }
        scratch.sort_unstable();
        scratch.dedup();
        transactions.push(scratch.clone());
    }
    TransactionDb::from_transactions(transactions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> QuestParams {
        QuestParams {
            n_transactions: 2000,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            n_items: 200,
            n_patterns: 100,
            ..QuestParams::default()
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a, b);
        let mut other = small();
        other.seed += 1;
        assert_ne!(generate(&other), a);
    }

    #[test]
    fn shape_matches_parameters() {
        let db = generate(&small());
        assert_eq!(db.len(), 2000);
        assert!(db.n_items() <= 200);
        let mean = db.mean_len();
        assert!(
            (6.0..14.0).contains(&mean),
            "mean transaction length {mean} far from T=10"
        );
    }

    #[test]
    fn long_transactions_via_normal_approximation() {
        let mut p = small();
        p.n_transactions = 300;
        p.avg_transaction_len = 60.0;
        p.n_items = 1000;
        let db = generate(&p);
        let mean = db.mean_len();
        assert!(
            (40.0..80.0).contains(&mean),
            "mean transaction length {mean} far from T=60"
        );
    }

    #[test]
    fn correlation_produces_frequent_co_occurrence() {
        // A pattern-based generator must yield 2-itemsets whose support is
        // far above the independence baseline.
        let db = generate(&small());
        let ranked = fpm::remap(&db, 1);
        let top = 15u32.min(ranked.n_ranks() as u32);
        let n = ranked.transactions.len() as f64;
        let mut single = vec![0u64; top as usize];
        let mut joint = vec![vec![0u64; top as usize]; top as usize];
        for t in &ranked.transactions {
            let present: Vec<u32> = t.iter().copied().filter(|&r| r < top).collect();
            for &a in &present {
                single[a as usize] += 1;
            }
            for (i, &a) in present.iter().enumerate() {
                for &b in &present[i + 1..] {
                    joint[a as usize][b as usize] += 1;
                }
            }
        }
        // The pattern pool guarantees that *some* frequent pair co-occurs
        // far above independence (lift ≫ 1); find the best lift.
        let mut best_lift = 0.0f64;
        for a in 0..top as usize {
            for b in a + 1..top as usize {
                if single[a] > 0 && single[b] > 0 {
                    let indep = single[a] as f64 * single[b] as f64 / n;
                    if indep >= 5.0 {
                        best_lift = best_lift.max(joint[a][b] as f64 / indep);
                    }
                }
            }
        }
        assert!(best_lift > 1.5, "no correlated pair: best lift {best_lift:.2}");
    }

    #[test]
    fn name_formatting() {
        let p = QuestParams {
            n_transactions: 300_000,
            avg_transaction_len: 60.0,
            avg_pattern_len: 10.0,
            ..QuestParams::default()
        };
        assert_eq!(p.name(), "T60I10D300K");
    }

    #[test]
    fn poisson_mean_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        for mean in [0.5f64, 4.0, 10.0, 60.0] {
            let n = 3000;
            let total: usize = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let got = total as f64 / n as f64;
            assert!(
                (got - mean).abs() < mean.max(1.0) * 0.15,
                "poisson({mean}) sample mean {got}"
            );
        }
    }

    #[test]
    fn zero_transactions() {
        let mut p = small();
        p.n_transactions = 0;
        assert!(generate(&p).is_empty());
    }
}
