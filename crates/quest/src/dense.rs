//! Dense UCI-style benchmark stand-ins: `chess` and `mushroom`.
//!
//! The FIMI repositories pair the sparse market-basket data with two
//! famously *dense* inputs — Chess (3 196 transactions × 75 items, every
//! transaction exactly 37 items, ≈49% density) and Mushroom (8 124 × 119,
//! uniform length 23). Dense inputs stress the opposite end of the
//! representation spectrum from AP: vertical bit matrices dominate,
//! diffsets shine, and prefix trees compress massively. The generators
//! here match those shapes (attribute-value encoding: each transaction
//! picks one value per attribute), giving the representation-adaptation
//! machinery (`also::adapt::choose_repr`, `eclat::tidlist::mine_auto`)
//! realistic dense targets without redistributing UCI data.

use fpm::TransactionDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the attribute-value dense generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseParams {
    /// Number of transactions.
    pub n_transactions: usize,
    /// Number of attributes (= transaction length; every transaction has
    /// exactly one item per attribute).
    pub n_attributes: usize,
    /// Values per attribute (item universe = `n_attributes × n_values`).
    pub n_values: usize,
    /// Skew of the per-attribute value distribution: probability of the
    /// attribute's *dominant* value. High skew ⇒ long shared prefixes and
    /// strong frequent structure, like real classification data.
    pub dominant_p: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DenseParams {
    /// Chess-like: 3 196 × 37 attributes × 2 values, heavily skewed.
    pub fn chess_like() -> Self {
        DenseParams {
            n_transactions: 3_196,
            n_attributes: 37,
            n_values: 2,
            dominant_p: 0.8,
            seed: 1989,
        }
    }

    /// Mushroom-like: 8 124 × 23 attributes × ~5 values.
    pub fn mushroom_like() -> Self {
        DenseParams {
            n_transactions: 8_124,
            n_attributes: 23,
            n_values: 5,
            dominant_p: 0.6,
            seed: 8124,
        }
    }
}

/// Generates the dense attribute-value database. Item id of attribute
/// `a` taking value `v` is `a * n_values + v`. Deterministic in the seed.
pub fn generate(p: &DenseParams) -> TransactionDb {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut transactions = Vec::with_capacity(p.n_transactions);
    // Per attribute, a random permutation of values decides which is
    // dominant; the rest split the remainder geometrically.
    let dominant: Vec<usize> = (0..p.n_attributes)
        .map(|_| rng.random_range(0..p.n_values))
        .collect();
    for _ in 0..p.n_transactions {
        let mut t = Vec::with_capacity(p.n_attributes);
        for (a, &dom) in dominant.iter().enumerate() {
            let v = if rng.random::<f64>() < p.dominant_p {
                dom
            } else {
                // uniform over the non-dominant values (or the dominant
                // again when n_values == 1)
                let mut v = rng.random_range(0..p.n_values);
                if v == dom && p.n_values > 1 {
                    v = (v + 1) % p.n_values;
                }
                v
            };
            t.push((a * p.n_values + v) as u32);
        }
        transactions.push(t);
    }
    TransactionDb::from_transactions(transactions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chess_shape() {
        let db = generate(&DenseParams::chess_like());
        assert_eq!(db.len(), 3_196);
        // every transaction has exactly one item per attribute
        assert!(db.transactions().iter().all(|t| t.len() == 37));
        let density = db.nnz() as f64 / (db.len() as f64 * db.n_items() as f64);
        assert!(density > 0.3, "chess-like density {density}");
    }

    #[test]
    fn mushroom_shape() {
        let db = generate(&DenseParams::mushroom_like());
        assert_eq!(db.len(), 8_124);
        assert!(db.transactions().iter().all(|t| t.len() == 23));
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(&DenseParams::chess_like()),
            generate(&DenseParams::chess_like())
        );
    }

    #[test]
    fn dense_inputs_choose_bit_matrix() {
        let db = generate(&DenseParams::mushroom_like());
        let ranked = fpm::remap(&db, db.len() as u64 / 5);
        let nnz: u64 = ranked.transactions.iter().map(|t| t.len() as u64).sum();
        let repr = also::adapt::choose_repr(
            ranked.transactions.len(),
            ranked.n_ranks(),
            nnz,
            1.0,
        );
        assert_eq!(repr, also::adapt::Repr::VerticalBits);
    }

    #[test]
    fn dominant_values_are_frequent() {
        let p = DenseParams::chess_like();
        let db = generate(&p);
        let ranked = fpm::remap(&db, 1);
        // the most frequent item should appear in ~dominant_p of rows
        let top = ranked.map.support(0) as f64 / db.len() as f64;
        assert!(top > 0.7, "top item frequency {top}");
    }

    #[test]
    fn prefix_sharing_is_high() {
        // Skewed attribute values ⇒ long shared prefixes once the
        // database is rank-remapped and lexicographically ordered (the
        // precondition for FP-tree compression). Full transactions stay
        // mostly distinct — like the real chess data.
        let db = generate(&DenseParams::chess_like());
        let ranked = fpm::remap(&db, 1);
        let mut ts = ranked.transactions;
        also::lexorder::lex_order(&mut ts);
        let mut shared = 0usize;
        let mut total = 0usize;
        for w in ts.windows(2) {
            let common = w[0]
                .iter()
                .zip(&w[1])
                .take_while(|(a, b)| a == b)
                .count();
            shared += common;
            total += w[1].len();
        }
        let frac = shared as f64 / total as f64;
        assert!(frac > 0.25, "consecutive shared-prefix fraction {frac}");
    }
}
