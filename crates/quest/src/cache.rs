//! On-disk dataset cache: generation is deterministic, so each
//! `(dataset, scale)` pair is generated once and memoized as a binary
//! file ([`fpm::io::write_bin_file`]). CI-scale DS4 takes seconds to
//! generate; the bench harness reads it back in milliseconds.
//!
//! The cache directory defaults to `<tmp>/also-fpm-cache` and can be
//! redirected with the `FPM_DATA_DIR` environment variable. Files are
//! keyed by dataset label, scale and generator version — bump
//! [`CACHE_VERSION`] whenever a generator changes so stale files are
//! ignored.

use crate::dataset::{Dataset, Scale};
use fpm::TransactionDb;
use std::path::PathBuf;

/// Bump when any generator's output changes for the same parameters.
pub const CACHE_VERSION: u32 = 1;

/// The cache directory (created on demand).
pub fn cache_dir() -> PathBuf {
    match std::env::var_os("FPM_DATA_DIR") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join("also-fpm-cache"),
    }
}

fn cache_path(dataset: Dataset, scale: Scale) -> PathBuf {
    cache_dir().join(format!(
        "{}-{:?}-v{}.fpmdb",
        dataset.label(),
        scale,
        CACHE_VERSION
    ))
}

/// Like [`Dataset::generate`], but memoized on disk. Falls back to plain
/// generation when the cache directory is unusable (read-only CI etc.).
pub fn generate_cached(dataset: Dataset, scale: Scale) -> TransactionDb {
    let path = cache_path(dataset, scale);
    if let Ok(db) = fpm::io::read_bin_file(&path) {
        return db;
    }
    let db = dataset.generate(scale);
    if std::fs::create_dir_all(cache_dir()).is_ok() {
        // write through a temp name so concurrent readers never see a
        // partial file
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        if fpm::io::write_bin_file(&tmp, &db).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_equals_generated() {
        // isolate this test's cache
        let dir = std::env::temp_dir().join(format!("fpm-cache-test-{}", std::process::id()));
        std::env::set_var("FPM_DATA_DIR", &dir);
        let fresh = Dataset::Ds1.generate(Scale::Smoke);
        let first = generate_cached(Dataset::Ds1, Scale::Smoke); // miss → write
        let second = generate_cached(Dataset::Ds1, Scale::Smoke); // hit → read
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        assert!(cache_path(Dataset::Ds1, Scale::Smoke).exists());
        std::fs::remove_dir_all(&dir).ok();
        std::env::remove_var("FPM_DATA_DIR");
    }
}
