//! AP stand-in (DS4). The paper's AP dataset comes from the TIPSTER Text
//! Research Collection (Associated Press newswire): ~1.8 M transactions,
//! mined at support 2000. Its defining properties in the paper's analysis
//! are **sparsity and scatter**: a very large vocabulary, short
//! transactions, occurrences of any one item spread thinly over the whole
//! database — the input on which tiling "does not introduce much data
//! reuse" and lexicographic reordering is expensive relative to its
//! benefit.
//!
//! The stand-in draws short transactions straight from a global Zipf
//! vocabulary with *no* topic structure and shuffles nothing — items of
//! one kind appear scattered uniformly across the transaction sequence,
//! maximizing the scatter metric the advisor keys on.

use crate::webdocs::Zipf;
use fpm::TransactionDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the AP-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ApParams {
    /// Number of transactions (paper: 1.8 M).
    pub n_transactions: usize,
    /// Vocabulary size (large relative to transaction count).
    pub n_items: usize,
    /// Mean transaction length (short: newswire articles' keyword sets).
    pub mean_len: f64,
    /// Zipf exponent.
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ApParams {
    fn default() -> Self {
        ApParams {
            n_transactions: 180_000,
            n_items: 20_000,
            mean_len: 9.0,
            zipf_s: 1.05,
            seed: 4,
        }
    }
}

/// Generates the AP-like database. Deterministic in `params.seed`.
pub fn generate(params: &ApParams) -> TransactionDb {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let zipf = Zipf::new(params.n_items, params.zipf_s);
    let mut transactions = Vec::with_capacity(params.n_transactions);
    let mut t: Vec<u32> = Vec::new();
    for _ in 0..params.n_transactions {
        // Geometric-ish short lengths around the mean.
        let mut len = 1usize;
        let p_continue = 1.0 - 1.0 / params.mean_len.max(1.0);
        while rng.random::<f64>() < p_continue && len < 80 {
            len += 1;
        }
        t.clear();
        for _ in 0..len {
            t.push(zipf.sample(&mut rng));
        }
        t.sort_unstable();
        t.dedup();
        transactions.push(t.clone());
    }
    TransactionDb::from_transactions(transactions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ApParams {
        ApParams {
            n_transactions: 5000,
            n_items: 4000,
            mean_len: 9.0,
            ..ApParams::default()
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&small()), generate(&small()));
    }

    #[test]
    fn short_and_sparse() {
        let db = generate(&small());
        assert_eq!(db.len(), 5000);
        let mean = db.mean_len();
        assert!((5.0..12.0).contains(&mean), "mean length {mean}");
        // density well under 1%
        let density = db.nnz() as f64 / (db.len() as f64 * db.n_items() as f64);
        assert!(density < 0.01, "density {density}");
    }

    #[test]
    fn occurrences_are_scattered() {
        // The profile's scatter metric must be high relative to the
        // clustered WebDocs stand-in: this is the property DS4's analysis
        // rests on.
        let ap = generate(&small());
        let ranked = fpm::remap(&ap, 2);
        let p = also::advisor::InputProfile::measure(&ranked.transactions, ranked.n_ranks());
        assert!(p.scatter > 0.3, "AP-like scatter {} too low", p.scatter);
    }
}
