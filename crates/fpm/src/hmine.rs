//! H-Mine (Pei et al., ICDM'01 — the paper's reference \[25\]):
//! hyper-structure mining of frequent patterns.
//!
//! H-Mine is the fourth algorithm family the paper's related-work section
//! draws its kernel space from: neither an occurrence-deliver array
//! (LCM), nor a bit matrix (Eclat), nor a prefix tree (FP-Growth), but an
//! **H-struct** — the flattened transaction arena plus, per frequent
//! item, a *queue* threading every transaction whose projection starts at
//! that item. Mining an item's projection re-threads the queues one
//! position to the right instead of copying the database, which is the
//! structure's selling point: near-zero projection memory.
//!
//! It lives in `fpm-core` (not its own crate) because this reproduction
//! uses it as a *fourth independent oracle* for the cross-kernel
//! equivalence tests and as the baseline subject of the `also` patterns'
//! generality argument ("the patterns are not tied to particular
//! implementations", §6) — it is deliberately left untuned.

use crate::remap::remap;
use crate::sink::{PatternSink, TranslateSink};
use crate::types::Item;
use crate::TransactionDb;

/// One threaded cell: an occurrence of an item inside a transaction,
/// linked to the next occurrence of the same item in queue order.
#[derive(Debug, Clone, Copy)]
struct Cell {
    /// Arena position of this occurrence.
    pos: u32,
    /// Next cell index in the same item queue (`NONE` ends the queue).
    next: u32,
}

const NONE: u32 = u32::MAX;

/// Mines every frequent itemset of `db` at `minsup`, emitting patterns
/// in **original item ids** (sorted) to `sink`.
pub fn mine<S: PatternSink>(db: &TransactionDb, minsup: u64, sink: &mut S) {
    let ranked = remap(db, minsup);
    let minsup = minsup.max(1);
    let n_ranks = ranked.n_ranks();
    if n_ranks == 0 {
        return;
    }
    // Flatten the arena; each transaction keeps weight 1 (H-Mine does
    // not merge duplicates — that is LCM's trick).
    let mut items: Vec<u32> = Vec::new();
    let mut trans_end: Vec<u32> = Vec::new(); // arena end per transaction
    let mut cell_of_pos: Vec<Cell> = Vec::new();
    for t in &ranked.transactions {
        items.extend_from_slice(t);
        trans_end.push(items.len() as u32);
    }
    cell_of_pos.resize(items.len(), Cell { pos: 0, next: NONE });
    // `end_of(pos)` — the arena end of the transaction containing pos —
    // via binary search over trans_end.
    let end_of = |pos: u32| -> u32 {
        let i = trans_end.partition_point(|&e| e <= pos);
        trans_end[i]
    };

    // Initial queues: thread every occurrence of each item.
    let mut heads = vec![NONE; n_ranks];
    let mut tails = vec![NONE; n_ranks];
    for (p, &it) in items.iter().enumerate() {
        let p = p as u32;
        cell_of_pos[p as usize] = Cell { pos: p, next: NONE };
        let it = it as usize;
        if heads[it] == NONE {
            heads[it] = p;
        } else {
            cell_of_pos[tails[it] as usize].next = p;
        }
        tails[it] = p;
    }

    let mut translate = TranslateSink::new(&ranked.map, Fwd(sink));
    let mut miner = HMiner {
        items: &items,
        end_of: &end_of,
        minsup,
        n_ranks,
        sink: &mut translate,
        prefix: Vec::new(),
    };
    // Process items ascending; the projection of item i threads queues
    // for items > i over the suffixes of i's transactions.
    let root: Vec<(u32, Vec<u32>)> = (0..n_ranks as u32)
        .filter(|&r| heads[r as usize] != NONE)
        .map(|r| {
            let mut q = Vec::new();
            let mut cur = heads[r as usize];
            while cur != NONE {
                q.push(cell_of_pos[cur as usize].pos);
                cur = cell_of_pos[cur as usize].next;
            }
            (r, q)
        })
        .collect();
    for (r, queue) in root {
        let support = queue.len() as u64;
        if support >= minsup {
            miner.descend(r, &queue, support);
        }
    }
}

struct Fwd<'a, S>(&'a mut S);
impl<S: PatternSink> PatternSink for Fwd<'_, S> {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.0.emit(itemset, support);
    }
}

struct HMiner<'a, S, F: Fn(u32) -> u32> {
    items: &'a [u32],
    end_of: &'a F,
    minsup: u64,
    n_ranks: usize,
    sink: &'a mut S,
    prefix: Vec<u32>,
}

impl<S: PatternSink, F: Fn(u32) -> u32> HMiner<'_, S, F> {
    /// Processes the projection on `item`, whose queue holds the arena
    /// positions of `item` in every transaction containing the current
    /// prefix ∪ {item}.
    fn descend(&mut self, item: u32, queue: &[u32], support: u64) {
        self.prefix.push(item);
        self.sink.emit(&self.prefix, support);
        // Re-thread: for every position in the queue, every later item in
        // the same transaction joins that item's sub-queue.
        let mut sub: Vec<Vec<u32>> = vec![Vec::new(); self.n_ranks];
        let mut seen: Vec<u32> = Vec::new();
        for &pos in queue {
            let end = (self.end_of)(pos);
            for p in pos + 1..end {
                let it = self.items[p as usize] as usize;
                if sub[it].is_empty() {
                    seen.push(it as u32);
                }
                sub[it].push(p);
            }
        }
        seen.sort_unstable();
        for &r in &seen {
            let q = std::mem::take(&mut sub[r as usize]);
            let s = q.len() as u64;
            if s >= self.minsup {
                self.descend(r, &q, s);
            }
        }
        self.prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::types::canonicalize;
    use crate::CollectSink;

    fn run(db: &TransactionDb, minsup: u64) -> Vec<crate::ItemsetCount> {
        let mut sink = CollectSink::default();
        mine(db, minsup, &mut sink);
        canonicalize(sink.patterns)
    }

    fn toy() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    #[test]
    fn matches_naive_on_toy() {
        for minsup in 1..=5u64 {
            assert_eq!(
                run(&toy(), minsup),
                canonicalize(naive::mine(&toy(), minsup)),
                "minsup={minsup}"
            );
        }
    }

    #[test]
    fn matches_naive_on_pseudorandom() {
        let mut s = 61u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let db = TransactionDb::from_transactions(
            (0..200)
                .map(|_| (0..14u32).filter(|_| rnd() % 3 == 0).collect::<Vec<_>>())
                .collect(),
        );
        assert_eq!(run(&db, 6), canonicalize(naive::mine(&db, 6)));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(run(&TransactionDb::default(), 1).is_empty());
        let single = TransactionDb::from_transactions(vec![vec![4, 7]]);
        let out = run(&single, 1);
        assert_eq!(out.len(), 3); // {4}, {7}, {4,7}
    }

    #[test]
    fn weighted_support_semantics_match() {
        // H-Mine counts transactions (weight 1 each) — duplicates must
        // still sum correctly against the oracle.
        let db = TransactionDb::from_transactions(vec![vec![0, 1]; 7]);
        let out = run(&db, 7);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|p| p.support == 7));
    }
}
