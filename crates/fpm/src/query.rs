//! First-class pattern queries: class (all/closed/maximal), top-k by
//! support, and association-rule thresholds, with a stable canonical
//! encoding shared by the cache key, the single-flight table, and the
//! store's on-disk result tags (DESIGN.md §15).
//!
//! A [`PatternQuery`] names *which slice* of the frequent set a caller
//! wants; the executor always mines the complete set first (the prefix
//! contract lives there), then applies the query as a deterministic
//! pure function of that serial-order list:
//!
//! 1. **class** — closed/maximal filtering via FastLMFI-style superset
//!    checking over a prefix-ordered [`SetTrie`] (PAPERS.md), replacing
//!    the old quadratic one-item-removed scan;
//! 2. **rules** — keep only rule-bearing itemsets: `Z` survives iff
//!    some single-consequent rule `Z∖{c} ⇒ c` clears the confidence and
//!    lift thresholds (subset supports come from the complete set, per
//!    the anti-monotone property they are always present);
//! 3. **top-k** — the `k` best survivors by `(support desc, serial
//!    rank asc)`, emitted in that order, so `top-k(k)` is byte-identical
//!    to the first `k` lines of `top-k(∞)`.
//!
//! The same pipeline runs at every thread count because it consumes the
//! merged serial-order list — byte-identity across threads is inherited
//! from the executor's replay contract, not re-proven here.

use crate::control::MineControl;
use crate::sink::PatternSink;
use crate::types::{Item, ItemsetCount, MineKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Association-rule thresholds: a pattern (or generated rule) qualifies
/// when confidence and lift both clear their minimums.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct RuleSpec {
    /// Minimum confidence `sup(Z) / sup(antecedent)` in `[0, 1]`.
    pub min_confidence: f64,
    /// Minimum lift `confidence / (sup(consequent) / N)`; `1.0` means
    /// "no better than independence".
    pub min_lift: f64,
}

impl RuleSpec {
    /// A spec that thresholds confidence only (`min_lift = 0`).
    pub fn confidence(min_confidence: f64) -> RuleSpec {
        RuleSpec { min_confidence, min_lift: 0.0 }
    }
}

/// Which slice of the frequent set a caller wants.
///
/// The default query (`All`, no top-k, no rules) is the identity — the
/// executor's streaming fast path — and encodes as [`code`] 0 so
/// pre-query cache keys and artifacts stay meaningful.
///
/// [`code`]: PatternQuery::code
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternQuery {
    /// Pattern class: every frequent itemset, only closed, only maximal.
    pub class: MineKind,
    /// Keep only the `k` best by `(support desc, serial rank asc)`.
    pub top_k: Option<u64>,
    /// Keep only rule-bearing itemsets (see module docs).
    pub rules: Option<RuleSpec>,
}

impl Default for PatternQuery {
    fn default() -> Self {
        PatternQuery { class: MineKind::All, top_k: None, rules: None }
    }
}

/// A `PatternQuery` flattened to hashable/orderable primitives (`f64`
/// thresholds as IEEE bit patterns): the form that widens the serve
/// cache key and the single-flight table. Lossless — see
/// [`PatternQuery::from_key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QueryKey {
    /// [`MineKind::code`] of the class.
    pub class: u8,
    /// The top-k bound, if any.
    pub top_k: Option<u64>,
    /// `(min_confidence.to_bits(), min_lift.to_bits())`, if any.
    pub rules: Option<(u64, u64)>,
}

impl PatternQuery {
    /// The identity query: every frequent itemset, unfiltered.
    pub fn all() -> PatternQuery {
        PatternQuery::default()
    }

    /// A query for a pattern class with no top-k or rule thresholds.
    pub fn class(class: MineKind) -> PatternQuery {
        PatternQuery { class, ..PatternQuery::default() }
    }

    /// Sets the top-k bound.
    pub fn top_k(mut self, k: u64) -> PatternQuery {
        self.top_k = Some(k);
        self
    }

    /// Sets the rule thresholds.
    pub fn rules(mut self, spec: RuleSpec) -> PatternQuery {
        self.rules = Some(spec);
        self
    }

    /// `true` iff this is the identity query — the executor streams
    /// without collecting when it is.
    pub fn is_all(&self) -> bool {
        self.class == MineKind::All && self.top_k.is_none() && self.rules.is_none()
    }

    /// The hashable cache-key form. Lossless: [`from_key`] inverts it.
    ///
    /// [`from_key`]: PatternQuery::from_key
    pub fn key(&self) -> QueryKey {
        QueryKey {
            class: self.class.code(),
            top_k: self.top_k,
            rules: self
                .rules
                .map(|r| (r.min_confidence.to_bits(), r.min_lift.to_bits())),
        }
    }

    /// Reconstructs the query from its cache-key form; `None` iff the
    /// class code is unknown (a corrupt or future artifact tag).
    pub fn from_key(key: QueryKey) -> Option<PatternQuery> {
        Some(PatternQuery {
            class: MineKind::from_code(key.class)?,
            top_k: key.top_k,
            rules: key.rules.map(|(c, l)| RuleSpec {
                min_confidence: f64::from_bits(c),
                min_lift: f64::from_bits(l),
            }),
        })
    }

    /// The stable canonical byte encoding — the on-disk query tag
    /// (store results section) and the input to [`code`].
    ///
    /// Layout: class code `u8`, top-k flag `u8` (+ `u64` LE when set),
    /// rules flag `u8` (+ two `f64` bit patterns LE when set).
    ///
    /// [`code`]: PatternQuery::code
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.class.code()];
        match self.top_k {
            Some(k) => {
                out.push(1);
                out.extend_from_slice(&k.to_le_bytes());
            }
            None => out.push(0),
        }
        match self.rules {
            Some(r) => {
                out.push(1);
                out.extend_from_slice(&r.min_confidence.to_bits().to_le_bytes());
                out.extend_from_slice(&r.min_lift.to_bits().to_le_bytes());
            }
            None => out.push(0),
        }
        out
    }

    /// Decodes [`encode`](PatternQuery::encode)'s layout; `None` on any
    /// malformed tail (truncation, unknown class code, bad flag byte).
    pub fn decode(bytes: &[u8]) -> Option<PatternQuery> {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Option<&[u8]> {
            let s = bytes.get(pos..pos + n)?;
            pos += n;
            Some(s)
        };
        let class = MineKind::from_code(*take(1)?.first()?)?;
        let top_k = match *take(1)?.first()? {
            0 => None,
            1 => Some(u64::from_le_bytes(take(8)?.try_into().ok()?)),
            _ => return None,
        };
        let rules = match *take(1)?.first()? {
            0 => None,
            1 => {
                let c = u64::from_le_bytes(take(8)?.try_into().ok()?);
                let l = u64::from_le_bytes(take(8)?.try_into().ok()?);
                Some(RuleSpec {
                    min_confidence: f64::from_bits(c),
                    min_lift: f64::from_bits(l),
                })
            }
            _ => return None,
        };
        if pos != bytes.len() {
            return None;
        }
        Some(PatternQuery { class, top_k, rules })
    }

    /// A stable 64-bit digest of the canonical encoding (FNV-1a), with
    /// the identity query pinned to `0` — the display/bench form of the
    /// key, mirroring [`Kernel::code`](crate::Kernel::code) in spirit.
    pub fn code(&self) -> u64 {
        if self.is_all() {
            return 0;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.encode() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// A compact human-readable label, e.g. `closed+top10+rules(c0.6,l1.2)`.
    pub fn label(&self) -> String {
        let mut s = self.class.name().to_string();
        if let Some(k) = self.top_k {
            s.push_str(&format!("+top{k}"));
        }
        if let Some(r) = self.rules {
            s.push_str(&format!("+rules(c{},l{})", r.min_confidence, r.min_lift));
        }
        s
    }

    /// Applies the query to a **complete** All-class frequent set in
    /// serial emission order, yielding the answer in output order. The
    /// rules filter indexes the full set before class filtering so
    /// subset supports are always resolvable.
    pub fn apply(&self, all: Vec<ItemsetCount>, n_transactions: u64) -> Vec<ItemsetCount> {
        if self.is_all() {
            return all;
        }
        // deterministic-iteration audit: this map is probed with `get`
        // only; output order comes from walking the serial-order Vec.
        let index: Option<HashMap<Vec<Item>, u64>> = self.rules.map(|_| support_index(&all));
        let classed = match self.class {
            MineKind::All => all,
            MineKind::Closed => closed(all),
            MineKind::Maximal => maximal(all),
        };
        let ruled = match (self.rules, &index) {
            (Some(spec), Some(index)) => classed
                .into_iter()
                .filter(|p| bears_rule(p, index, n_transactions, &spec))
                .collect(),
            _ => classed,
        };
        match self.top_k {
            Some(k) => top_k_select(ruled, k),
            None => ruled,
        }
    }
}

/// Indexes a pattern list by sorted itemset for support lookups.
fn support_index(patterns: &[ItemsetCount]) -> HashMap<Vec<Item>, u64> {
    patterns
        .iter()
        .map(|p| {
            let mut k = p.items.clone();
            k.sort_unstable();
            (k, p.support)
        })
        .collect()
}

/// `true` iff some single-consequent rule `Z∖{c} ⇒ c` over itemset `p`
/// clears both thresholds. Subset supports come from `index` (built over
/// the complete frequent set, so they are always present).
fn bears_rule(
    p: &ItemsetCount,
    index: &HashMap<Vec<Item>, u64>,
    n_transactions: u64,
    spec: &RuleSpec,
) -> bool {
    let mut items = p.items.clone();
    items.sort_unstable();
    if items.len() < 2 || n_transactions == 0 {
        return false;
    }
    let n = n_transactions as f64;
    let mut antecedent = Vec::with_capacity(items.len() - 1);
    for drop in 0..items.len() {
        antecedent.clear();
        antecedent.extend_from_slice(&items[..drop]);
        antecedent.extend_from_slice(&items[drop + 1..]);
        let (Some(&sup_a), Some(&sup_c)) =
            (index.get(antecedent.as_slice()), index.get(&items[drop..=drop]))
        else {
            continue;
        };
        let confidence = p.support as f64 / sup_a as f64;
        let lift = confidence * n / sup_c as f64;
        if confidence >= spec.min_confidence && lift >= spec.min_lift {
            return true;
        }
    }
    false
}

/// One generated association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The antecedent itemset (sorted ascending, non-empty).
    pub antecedent: Vec<Item>,
    /// The single consequent item.
    pub consequent: Item,
    /// Support of `antecedent ∪ {consequent}` (weighted transactions).
    pub support: u64,
    /// `sup(Z) / sup(antecedent)`.
    pub confidence: f64,
    /// `confidence / (sup(consequent) / N)`.
    pub lift: f64,
}

/// Generates every single-consequent rule over a **complete** frequent
/// set that clears `spec`, in deterministic order: serial rank of the
/// source itemset, then consequent position.
pub fn rules(
    all: &[ItemsetCount],
    n_transactions: u64,
    spec: &RuleSpec,
) -> Vec<Rule> {
    // deterministic-iteration audit: probed with `get` only; output
    // order walks the serial-order slice.
    let index = support_index(all);
    let mut out = Vec::new();
    if n_transactions == 0 {
        return out;
    }
    let n = n_transactions as f64;
    for p in all {
        let mut items = p.items.clone();
        items.sort_unstable();
        if items.len() < 2 {
            continue;
        }
        let mut antecedent = Vec::with_capacity(items.len() - 1);
        for drop in 0..items.len() {
            antecedent.clear();
            antecedent.extend_from_slice(&items[..drop]);
            antecedent.extend_from_slice(&items[drop + 1..]);
            let (Some(&sup_a), Some(&sup_c)) =
                (index.get(antecedent.as_slice()), index.get(&items[drop..=drop]))
            else {
                continue;
            };
            let confidence = p.support as f64 / sup_a as f64;
            let lift = confidence * n / sup_c as f64;
            if confidence >= spec.min_confidence && lift >= spec.min_lift {
                out.push(Rule {
                    antecedent: antecedent.clone(),
                    consequent: items[drop],
                    support: p.support,
                    confidence,
                    lift,
                });
            }
        }
    }
    out
}

/// Keeps the `k` best patterns by `(support desc, serial rank asc)` and
/// emits them in that order — so the output for `k` is byte-identical to
/// the first `k` lines of the output for any larger bound.
fn top_k_select(patterns: Vec<ItemsetCount>, k: u64) -> Vec<ItemsetCount> {
    let mut acc = TopKHeap::new(k);
    for p in patterns {
        acc.offer(p);
    }
    acc.finish()
}

/// The bounded selection heap behind top-k, usable either after the fact
/// (`top_k_select` inside [`PatternQuery::apply`]) or as a streaming
/// [`PatternSink`] via [`TopKSink`]. Tracks the dynamic support floor:
/// once `k` patterns are held, a candidate needs support strictly above
/// the worst kept entry to displace it (ties lose to the earlier serial
/// rank), so the floor is `worst + 1`.
#[derive(Debug)]
pub struct TopKHeap {
    k: u64,
    next_rank: usize,
    /// Max-heap by "badness": the top is the worst kept entry
    /// (smallest support, then largest serial rank).
    heap: BinaryHeap<(Reverse<u64>, usize, ItemsetCount)>,
}

impl TopKHeap {
    /// An empty selection for the `k` best patterns.
    pub fn new(k: u64) -> TopKHeap {
        TopKHeap { k, next_rank: 0, heap: BinaryHeap::new() }
    }

    /// The support a candidate must meet to possibly place (0 until the
    /// heap is full).
    pub fn floor(&self) -> u64 {
        if self.heap.len() as u64 == self.k {
            match self.heap.peek() {
                Some((Reverse(worst), _, _)) => worst.saturating_add(1),
                None => 0, // k == 0: nothing ever places, floor stays moot
            }
        } else {
            0
        }
    }

    /// Offers the next pattern in serial order.
    pub fn offer(&mut self, p: ItemsetCount) {
        let rank = self.next_rank;
        self.next_rank += 1;
        if self.k == 0 {
            return;
        }
        if (self.heap.len() as u64) < self.k {
            self.heap.push((Reverse(p.support), rank, p));
            return;
        }
        if p.support >= self.floor() {
            self.heap.pop();
            self.heap.push((Reverse(p.support), rank, p));
        }
    }

    /// The selection in output order: `(support desc, serial rank asc)`.
    pub fn finish(self) -> Vec<ItemsetCount> {
        let mut kept: Vec<(u64, usize, ItemsetCount)> = self
            .heap
            .into_iter()
            .map(|(Reverse(s), rank, p)| (s, rank, p))
            .collect();
        kept.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        kept.into_iter().map(|(_, _, p)| p).collect()
    }
}

/// A streaming top-k collector: the executor's serial fast path for
/// `class = All, rules = None, top_k = Some(k)` queries. Every floor
/// raise is published through the shared [`MineControl`]
/// ([`MineControl::raise_support_floor`]), and candidates already below
/// the published floor are skipped before touching the heap.
pub struct TopKSink<'c> {
    control: &'c MineControl,
    heap: TopKHeap,
}

impl<'c> TopKSink<'c> {
    /// A streaming selection of the `k` best patterns under `control`.
    pub fn new(k: u64, control: &'c MineControl) -> TopKSink<'c> {
        TopKSink { control, heap: TopKHeap::new(k) }
    }

    /// The selection in output order.
    pub fn finish(self) -> Vec<ItemsetCount> {
        self.heap.finish()
    }
}

impl PatternSink for TopKSink<'_> {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        if support < self.control.support_floor() {
            // Provably outside the answer; still consumes a serial rank
            // so tie-breaking matches the collect-then-select path.
            self.heap.next_rank += 1;
            return;
        }
        self.heap.offer(ItemsetCount { items: itemset.to_vec(), support });
        let floor = self.heap.floor();
        if floor > 0 {
            self.control.raise_support_floor(floor);
        }
    }
}

/// A prefix-ordered set-trie over itemsets (items sorted ascending along
/// every path), supporting FastLMFI-style superset existence checks with
/// max-subtree-support pruning — the engine behind [`closed`] and
/// [`maximal`].
#[derive(Debug, Default)]
pub struct SetTrie {
    nodes: Vec<TrieNode>,
}

#[derive(Debug)]
struct TrieNode {
    /// Children sorted ascending by item — deterministic and
    /// prefix-ordered, so superset search can prune on item order.
    children: Vec<(Item, u32)>,
    /// Support of the itemset terminating here, if any does.
    support: Option<u64>,
    /// Max terminal support in this subtree (pruning bound: supports are
    /// anti-monotone, so an equal-support superset search can skip any
    /// subtree whose bound is below the target).
    max_sub: u64,
}

impl TrieNode {
    fn new() -> TrieNode {
        TrieNode { children: Vec::new(), support: None, max_sub: 0 }
    }
}

impl SetTrie {
    /// An empty trie.
    pub fn new() -> SetTrie {
        SetTrie { nodes: vec![TrieNode::new()] }
    }

    /// Builds a trie over a pattern list (itemsets are sorted per entry;
    /// the input order does not matter).
    pub fn build(patterns: &[ItemsetCount]) -> SetTrie {
        let mut trie = SetTrie::new();
        let mut key = Vec::new();
        for p in patterns {
            key.clear();
            key.extend_from_slice(&p.items);
            key.sort_unstable();
            trie.insert(&key, p.support);
        }
        trie
    }

    /// Inserts `items` (must be sorted ascending) with its support.
    pub fn insert(&mut self, items: &[Item], support: u64) {
        let mut node = 0usize;
        self.nodes[node].max_sub = self.nodes[node].max_sub.max(support);
        for &item in items {
            let next = match self.nodes[node].children.binary_search_by_key(&item, |c| c.0) {
                Ok(i) => self.nodes[node].children[i].1 as usize,
                Err(i) => {
                    let id = self.nodes.len() as u32;
                    self.nodes.push(TrieNode::new());
                    self.nodes[node].children.insert(i, (item, id));
                    id as usize
                }
            };
            node = next;
            self.nodes[node].max_sub = self.nodes[node].max_sub.max(support);
        }
        self.nodes[node].support = Some(support);
    }

    /// `true` iff the trie holds a **strict** superset of `items` (which
    /// must be sorted ascending), regardless of support.
    pub fn has_strict_superset(&self, items: &[Item]) -> bool {
        self.search(0, items, false, None)
    }

    /// `true` iff the trie holds a strict superset of `items` whose
    /// support equals `support` — the closedness refutation. Prunes on
    /// the per-subtree support bound.
    pub fn has_equal_support_superset(&self, items: &[Item], support: u64) -> bool {
        self.search(0, items, false, Some(support))
    }

    /// Core superset search. `extra` records whether the path already
    /// took an item outside `items` (strictness); `target` restricts
    /// hits to terminals of exactly that support.
    fn search(&self, node: usize, items: &[Item], extra: bool, target: Option<u64>) -> bool {
        let n = &self.nodes[node];
        if let Some(t) = target {
            if n.max_sub < t {
                return false;
            }
        }
        if items.is_empty() {
            if extra {
                match target {
                    // Every subtree of an inserted path contains a
                    // terminal, so any strict superset position is a hit.
                    None => return true,
                    Some(t) => {
                        if n.support == Some(t) {
                            return true;
                        }
                    }
                }
            }
            return n
                .children
                .iter()
                .any(|&(_, c)| self.search(c as usize, items, true, target));
        }
        let next = items[0];
        for &(item, child) in &n.children {
            if item > next {
                // Children are ascending: nothing deeper can contain `next`.
                break;
            }
            let hit = if item == next {
                self.search(child as usize, &items[1..], extra, target)
            } else {
                self.search(child as usize, items, true, target)
            };
            if hit {
                return true;
            }
        }
        false
    }
}

/// Filters a complete frequent set down to the closed itemsets (no
/// strict superset of equal support), preserving input order.
pub fn closed(patterns: Vec<ItemsetCount>) -> Vec<ItemsetCount> {
    let trie = SetTrie::build(&patterns);
    let mut key = Vec::new();
    patterns
        .into_iter()
        .filter(|p| {
            key.clear();
            key.extend_from_slice(&p.items);
            key.sort_unstable();
            !trie.has_equal_support_superset(&key, p.support)
        })
        .collect()
}

/// Filters a complete frequent set down to the maximal itemsets (no
/// strict frequent superset), preserving input order.
pub fn maximal(patterns: Vec<ItemsetCount>) -> Vec<ItemsetCount> {
    let trie = SetTrie::build(&patterns);
    let mut key = Vec::new();
    patterns
        .into_iter()
        .filter(|p| {
            key.clear();
            key.extend_from_slice(&p.items);
            key.sort_unstable();
            !trie.has_strict_superset(&key)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::TransactionDb;
    use crate::naive;
    use crate::types::canonicalize;

    fn toy() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    #[test]
    fn default_query_is_identity() {
        let q = PatternQuery::default();
        assert!(q.is_all());
        assert_eq!(q.code(), 0);
        let all = naive::mine(&toy(), 2);
        assert_eq!(q.apply(all.clone(), 5), all);
    }

    #[test]
    fn key_and_encode_roundtrip() {
        let queries = [
            PatternQuery::all(),
            PatternQuery::class(MineKind::Closed),
            PatternQuery::class(MineKind::Maximal).top_k(7),
            PatternQuery::all()
                .top_k(3)
                .rules(RuleSpec { min_confidence: 0.6, min_lift: 1.1 }),
            PatternQuery::all().rules(RuleSpec::confidence(0.9)),
        ];
        let mut codes = Vec::new();
        for q in queries {
            assert_eq!(PatternQuery::from_key(q.key()), Some(q), "{}", q.label());
            assert_eq!(PatternQuery::decode(&q.encode()), Some(q), "{}", q.label());
            codes.push(q.code());
        }
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), queries.len(), "codes must be distinct");
    }

    #[test]
    fn decode_rejects_malformed() {
        let good = PatternQuery::class(MineKind::Closed).top_k(4).encode();
        assert!(PatternQuery::decode(&good).is_some());
        // truncation, trailing garbage, bad class, bad flag
        assert_eq!(PatternQuery::decode(&good[..good.len() - 1]), None);
        let mut long = good.clone();
        long.push(0);
        assert_eq!(PatternQuery::decode(&long), None);
        let mut bad_class = good.clone();
        bad_class[0] = 9;
        assert_eq!(PatternQuery::decode(&bad_class), None);
        let mut bad_flag = good;
        bad_flag[1] = 2;
        assert_eq!(PatternQuery::decode(&bad_flag), None);
        assert_eq!(PatternQuery::from_key(QueryKey { class: 7, ..QueryKey::default() }), None);
    }

    #[test]
    fn trie_filters_match_naive_oracle() {
        for minsup in 1..=4u64 {
            let all = naive::mine(&toy(), minsup);
            assert_eq!(
                canonicalize(closed(all.clone())),
                canonicalize(naive::mine_kind(&toy(), minsup, MineKind::Closed)),
                "closed minsup={minsup}"
            );
            assert_eq!(
                canonicalize(maximal(all)),
                canonicalize(naive::mine_kind(&toy(), minsup, MineKind::Maximal)),
                "maximal minsup={minsup}"
            );
        }
    }

    #[test]
    fn trie_filters_match_naive_on_pseudorandom() {
        let mut s = 17u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let db = TransactionDb::from_transactions(
            (0..80)
                .map(|_| (0..11u32).filter(|_| rnd() % 3 == 0).collect::<Vec<_>>())
                .collect(),
        );
        for minsup in [2u64, 5, 9] {
            let all = naive::mine(&db, minsup);
            assert_eq!(
                canonicalize(closed(all.clone())),
                canonicalize(naive::mine_kind(&db, minsup, MineKind::Closed)),
                "minsup={minsup}"
            );
            assert_eq!(
                canonicalize(maximal(all)),
                canonicalize(naive::mine_kind(&db, minsup, MineKind::Maximal)),
                "minsup={minsup}"
            );
        }
    }

    #[test]
    fn top_k_is_truncation_of_larger_k() {
        let all = naive::mine(&toy(), 1);
        let full = PatternQuery::all().top_k(u64::MAX).apply(all.clone(), 5);
        assert_eq!(full.len(), all.len());
        for k in 0..=all.len() as u64 {
            let got = PatternQuery::all().top_k(k).apply(all.clone(), 5);
            assert_eq!(got.as_slice(), &full[..k as usize], "k={k}");
        }
        // Sorted by support desc; ties broken by serial rank (stable).
        for w in full.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn streaming_top_k_matches_select_and_raises_floor() {
        let all = naive::mine(&toy(), 1);
        for k in [0u64, 1, 3, 10, 1000] {
            let control = MineControl::unlimited();
            let mut sink = TopKSink::new(k, &control);
            for p in &all {
                sink.emit(&p.items, p.support);
            }
            let streamed = sink.finish();
            let selected = PatternQuery::all().top_k(k).apply(all.clone(), 5);
            assert_eq!(streamed, selected, "k={k}");
            if k > 0 && (k as usize) < all.len() {
                assert!(control.support_floor() > 0, "floor must rise for k={k}");
            }
        }
    }

    #[test]
    fn rules_filter_keeps_only_rule_bearing_itemsets() {
        let db = toy();
        let all = naive::mine(&db, 2);
        let n = db.len() as u64;
        // Threshold nothing: every itemset of size >= 2 bears some rule
        // with confidence >= 0 and lift >= 0.
        let loose = PatternQuery::all()
            .rules(RuleSpec { min_confidence: 0.0, min_lift: 0.0 })
            .apply(all.clone(), n);
        assert!(loose.iter().all(|p| p.items.len() >= 2));
        assert_eq!(
            loose.len(),
            all.iter().filter(|p| p.items.len() >= 2).count()
        );
        // Impossible confidence: nothing survives.
        let none = PatternQuery::all()
            .rules(RuleSpec::confidence(1.1))
            .apply(all.clone(), n);
        assert!(none.is_empty());
        // Perfect-confidence rules exist in the toy: {c,f} sup 4, {c} sup 4.
        let perfect = PatternQuery::all()
            .rules(RuleSpec::confidence(1.0))
            .apply(all.clone(), n);
        assert!(perfect.iter().any(|p| {
            let mut k = p.items.clone();
            k.sort_unstable();
            k == vec![2, 5]
        }));
    }

    #[test]
    fn rule_generation_matches_definitions() {
        let db = toy();
        let all = naive::mine(&db, 2);
        let n = db.len() as u64;
        let rs = rules(&all, n, &RuleSpec { min_confidence: 0.0, min_lift: 0.0 });
        // Every rule's numbers recompute from first principles.
        let index = support_index(&all);
        for r in &rs {
            let mut z = r.antecedent.clone();
            z.push(r.consequent);
            z.sort_unstable();
            assert_eq!(index.get(&z), Some(&r.support));
            let sup_a = index[r.antecedent.as_slice()];
            let sup_c = index[&[r.consequent][..]];
            assert!((r.confidence - r.support as f64 / sup_a as f64).abs() < 1e-12);
            assert!(
                (r.lift - r.confidence * n as f64 / sup_c as f64).abs() < 1e-12
            );
        }
        // {c} => {f}: sup 4 / sup 4 = confidence 1, lift 1 * 5 / 4 = 1.25.
        let cf = rs
            .iter()
            .find(|r| r.antecedent == vec![2] && r.consequent == 5)
            .expect("{c} => {f} must be generated");
        assert_eq!(cf.support, 4);
        assert!((cf.confidence - 1.0).abs() < 1e-12);
        assert!((cf.lift - 1.25).abs() < 1e-12);
        // Thresholds prune: min_lift > 1 keeps only positively
        // correlated rules (at minsup 1 the toy has negatively
        // correlated ones, e.g. {d} => {a} with lift 5/6).
        let all1 = naive::mine(&db, 1);
        let rs1 = rules(&all1, n, &RuleSpec { min_confidence: 0.0, min_lift: 0.0 });
        let lifted = rules(&all1, n, &RuleSpec { min_confidence: 0.0, min_lift: 1.0 + 1e-9 });
        assert!(lifted.iter().all(|r| r.lift > 1.0));
        assert!(!lifted.is_empty() && lifted.len() < rs1.len());
    }

    #[test]
    fn composed_query_applies_class_then_rules_then_top_k() {
        let db = toy();
        let all = naive::mine(&db, 2);
        let n = db.len() as u64;
        let q = PatternQuery::class(MineKind::Closed)
            .rules(RuleSpec { min_confidence: 0.5, min_lift: 0.0 })
            .top_k(2);
        let got = q.apply(all.clone(), n);
        // Reference: filter step by step.
        let step = closed(all.clone());
        let index = support_index(&all);
        let spec = RuleSpec { min_confidence: 0.5, min_lift: 0.0 };
        let step: Vec<_> = step
            .into_iter()
            .filter(|p| bears_rule(p, &index, n, &spec))
            .collect();
        let mut want = PatternQuery::all().top_k(2).apply(step, n);
        want.truncate(2);
        assert_eq!(got, want);
        assert!(got.len() <= 2);
    }

    #[test]
    fn trie_superset_checks_directly() {
        let mut trie = SetTrie::new();
        trie.insert(&[1, 2, 3], 4);
        trie.insert(&[2, 3], 4);
        trie.insert(&[5], 9);
        assert!(trie.has_strict_superset(&[2, 3]));
        assert!(trie.has_strict_superset(&[1, 3]));
        assert!(trie.has_strict_superset(&[]), "empty set has supersets");
        assert!(!trie.has_strict_superset(&[1, 2, 3]));
        assert!(!trie.has_strict_superset(&[5]));
        assert!(!trie.has_strict_superset(&[6]));
        assert!(trie.has_equal_support_superset(&[2, 3], 4));
        assert!(!trie.has_equal_support_superset(&[2, 3], 3), "support must match exactly");
        assert!(!trie.has_equal_support_superset(&[5], 9), "no strict superset of {{5}}");
    }

    #[test]
    fn empty_inputs() {
        assert!(closed(vec![]).is_empty());
        assert!(maximal(vec![]).is_empty());
        assert!(PatternQuery::all().top_k(5).apply(vec![], 10).is_empty());
        assert!(rules(&[], 10, &RuleSpec::confidence(0.0)).is_empty());
    }
}
