//! A brute-force reference miner: enumerates the itemset lattice by
//! depth-first extension and counts each candidate's support with a full
//! database scan. Exponential and proud of it — its only job is to be
//! *obviously correct* so the real miners (and the Apriori oracle itself)
//! can be validated against it on small inputs.

use crate::db::TransactionDb;
use crate::types::{Item, ItemsetCount, MineKind};

/// Mines every frequent itemset of `db` at threshold `minsup`
/// (`minsup == 0` is treated as 1, matching [`crate::remap()`]).
///
/// Only use on small inputs: the candidate space is pruned by the Apriori
/// property (an infrequent itemset has no frequent extensions) but support
/// counting is a full scan per candidate.
pub fn mine(db: &TransactionDb, minsup: u64) -> Vec<ItemsetCount> {
    mine_kind(db, minsup, MineKind::All)
}

/// Mines with an output family filter; `Closed` and `Maximal` are
/// computed by post-filtering the full frequent set (quadratic, fine for
/// an oracle).
pub fn mine_kind(db: &TransactionDb, minsup: u64, kind: MineKind) -> Vec<ItemsetCount> {
    let minsup = minsup.max(1);
    let items: Vec<Item> = (0..db.n_items() as u32).collect();
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    extend(db, minsup, &items, 0, &mut prefix, &mut out);
    match kind {
        MineKind::All => out,
        MineKind::Closed => filter_closed(out),
        MineKind::Maximal => filter_maximal(out),
    }
}

fn support(db: &TransactionDb, itemset: &[Item]) -> u64 {
    db.transactions()
        .iter()
        .filter(|t| itemset.iter().all(|i| t.binary_search(i).is_ok()))
        .count() as u64
}

fn extend(
    db: &TransactionDb,
    minsup: u64,
    items: &[Item],
    from: usize,
    prefix: &mut Vec<Item>,
    out: &mut Vec<ItemsetCount>,
) {
    for k in from..items.len() {
        prefix.push(items[k]);
        let s = support(db, prefix);
        if s >= minsup {
            out.push(ItemsetCount {
                items: prefix.clone(),
                support: s,
            });
            extend(db, minsup, items, k + 1, prefix, out);
        }
        prefix.pop();
    }
}

fn filter_closed(all: Vec<ItemsetCount>) -> Vec<ItemsetCount> {
    all.iter()
        .filter(|p| {
            !all.iter().any(|q| {
                q.support == p.support
                    && q.items.len() > p.items.len()
                    && is_subset(&p.items, &q.items)
            })
        })
        .cloned()
        .collect()
}

fn filter_maximal(all: Vec<ItemsetCount>) -> Vec<ItemsetCount> {
    all.iter()
        .filter(|p| {
            !all.iter()
                .any(|q| q.items.len() > p.items.len() && is_subset(&p.items, &q.items))
        })
        .cloned()
        .collect()
}

fn is_subset(small: &[Item], big: &[Item]) -> bool {
    small.iter().all(|i| big.binary_search(i).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::canonicalize;

    fn toy() -> TransactionDb {
        // The paper's Table 1 database (a=0..f=5).
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    #[test]
    fn singleton_supports() {
        let out = mine(&toy(), 1);
        let find = |items: &[Item]| {
            out.iter()
                .find(|p| p.items == items)
                .map(|p| p.support)
        };
        assert_eq!(find(&[2]), Some(4)); // c
        assert_eq!(find(&[5]), Some(4)); // f
        assert_eq!(find(&[0]), Some(3)); // a
        assert_eq!(find(&[2, 5]), Some(4)); // {c,f}
        assert_eq!(find(&[0, 2, 5]), Some(3)); // {a,c,f}
        assert_eq!(find(&[3, 4]), Some(2)); // {d,e}
    }

    #[test]
    fn threshold_prunes() {
        let all = mine(&toy(), 1);
        let some = mine(&toy(), 3);
        assert!(some.len() < all.len());
        assert!(some.iter().all(|p| p.support >= 3));
        // {c}, {f}, {a}, {c,f}, {a,c}, {a,f}, {a,c,f} — 7 sets with sup >= 3
        assert_eq!(some.len(), 7);
    }

    #[test]
    fn closed_and_maximal_nest() {
        let all = canonicalize(mine_kind(&toy(), 2, MineKind::All));
        let closed = canonicalize(mine_kind(&toy(), 2, MineKind::Closed));
        let maximal = canonicalize(mine_kind(&toy(), 2, MineKind::Maximal));
        assert!(maximal.len() <= closed.len());
        assert!(closed.len() <= all.len());
        // every maximal is closed; every closed is frequent
        for m in &maximal {
            assert!(closed.contains(m));
        }
        for c in &closed {
            assert!(all.contains(c));
        }
        // {d,e} with support 2 is maximal (no frequent superset)
        assert!(maximal.iter().any(|p| p.items == vec![3, 4]));
    }

    #[test]
    fn closed_drops_subsumed_equal_support() {
        // {c,f} sup 4 and {c} sup 4, {f} sup 4: the singletons are not
        // closed, {c,f} is.
        let closed = mine_kind(&toy(), 2, MineKind::Closed);
        assert!(!closed.iter().any(|p| p.items == vec![2]));
        assert!(!closed.iter().any(|p| p.items == vec![5]));
        assert!(closed.iter().any(|p| p.items == vec![2, 5]));
    }

    #[test]
    fn empty_db_mines_nothing() {
        assert!(mine(&TransactionDb::default(), 1).is_empty());
    }

    #[test]
    fn output_count_matches_lattice_on_dense_toy() {
        // 3 transactions {0,1}, {0,1}, {0,1}: frequent itemsets at minsup 3
        // are {0}, {1}, {0,1}.
        let db = TransactionDb::from_transactions(vec![vec![0, 1]; 3]);
        let out = mine(&db, 3);
        assert_eq!(out.len(), 3);
    }
}
