//! Debug-only counting allocator guard: runtime proof that hot loops do
//! not allocate.
//!
//! The `also-lint` rule `hot-loop-alloc` (R4) checks the *source* of
//! functions marked `// also-lint: hot` for allocating calls; this module
//! is the matching *runtime* check. In debug/test builds a counting
//! [`GlobalAlloc`] wraps the system allocator, and
//! [`assert_no_alloc`] arms a thread-local counter around a closure:
//!
//! ```
//! let mut buf = Vec::with_capacity(16); // preallocate outside
//! fpm_core::alloc_guard::assert_no_alloc(|| {
//!     for i in 0..16u32 {
//!         buf.push(i); // within capacity: no allocation
//!     }
//! });
//! ```
//!
//! In release builds (`debug_assertions` off) the wrapper allocator is not
//! installed and [`assert_no_alloc`] degenerates to a plain call — zero
//! cost in benchmarks, real teeth in `cargo test`.
//!
//! The counters are per-thread, so allocations made by sibling threads
//! (e.g. other workers of the `fpm-par` pool) never leak into a guarded
//! region's count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Whether the current thread is inside a counting region.
    static ARMED: Cell<bool> = const { Cell::new(false) };
    /// Allocations (alloc + grow-realloc) observed while armed.
    static HITS: Cell<u64> = const { Cell::new(0) };
    /// Bytes requested by those allocations.
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A [`GlobalAlloc`] that delegates to [`System`] and, while the current
/// thread is armed by [`count_allocs`], counts every allocation.
///
/// Installed as the global allocator only under `debug_assertions`; the
/// type itself is always available so the API is uniform.
pub struct CountingAlloc;

// The counter bump must itself never allocate or re-enter the allocator:
// the `thread_local!` cells are const-initialized (no lazy allocation) and
// accessed with `try_with` so first-use and thread-teardown edge cases
// degrade to "not counted" instead of recursing or aborting.
fn note(size: usize) {
    let _ = ARMED.try_with(|armed| {
        if armed.get() {
            let _ = HITS.try_with(|h| h.set(h.get() + 1));
            let _ = BYTES.try_with(|b| b.set(b.get() + size as u64));
        }
    });
}

// SAFETY: every method forwards to `System`, which satisfies the
// GlobalAlloc contract; the added bookkeeping touches only plain
// thread-local `Cell`s and never allocates, so layout/pointer obligations
// are exactly System's.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        // SAFETY: same contract as ours, forwarded verbatim.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        // SAFETY: same contract as ours, forwarded verbatim.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // Frees are not counted: a hot loop that only returns memory is
        // not a latency hazard the guard cares about.
        // SAFETY: ptr/layout pair comes from a previous alloc of ours,
        // which came from System.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        // SAFETY: ptr/layout pair comes from a previous alloc of ours;
        // new_size obligations are the caller's, forwarded verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(debug_assertions)]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// What a counting region observed. Returned by [`count_allocs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCount {
    /// Number of allocation events (alloc, alloc_zeroed, grow/shrink
    /// realloc) on this thread while armed.
    pub allocations: u64,
    /// Total bytes requested by those events.
    pub bytes: u64,
}

/// `true` when the counting allocator is actually installed (debug/test
/// builds). When `false`, [`count_allocs`] always reports zero and
/// [`assert_no_alloc`] cannot fail.
pub fn guard_active() -> bool {
    cfg!(debug_assertions)
}

/// Restores the previous armed state even if the closure panics.
struct Rearm(bool);

impl Drop for Rearm {
    fn drop(&mut self) {
        let prev = self.0;
        let _ = ARMED.try_with(|a| a.set(prev));
    }
}

/// Runs `f` with allocation counting armed on this thread and returns its
/// result plus the number of allocations it performed. Nestable (the
/// inner region's events are also visible to the outer) and panic-safe.
pub fn count_allocs<R>(f: impl FnOnce() -> R) -> (R, AllocCount) {
    let prev = ARMED.with(|a| a.replace(true));
    let hits0 = HITS.with(|c| c.get());
    let bytes0 = BYTES.with(|c| c.get());
    let rearm = Rearm(prev);
    let result = f();
    drop(rearm);
    let count = AllocCount {
        allocations: HITS.with(|c| c.get()) - hits0,
        bytes: BYTES.with(|c| c.get()) - bytes0,
    };
    (result, count)
}

/// Runs `f` and, in debug/test builds, panics if it allocated on this
/// thread. The runtime half of the `hot-loop-alloc` lint: wrap the body
/// of a `// also-lint: hot` function's test invocation in this to prove
/// the preallocation discipline actually holds.
///
/// # Panics
///
/// When [`guard_active`] and `f` performed any allocation.
pub fn assert_no_alloc<R>(f: impl FnOnce() -> R) -> R {
    let (result, count) = count_allocs(f);
    assert!(
        count.allocations == 0 || !guard_active(),
        "assert_no_alloc: closure performed {} allocation(s) totalling {} byte(s)",
        count.allocations,
        count.bytes
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sees_vec_growth() {
        let ((), count) = count_allocs(|| {
            let mut v: Vec<u64> = Vec::new();
            for i in 0..100 {
                v.push(i);
            }
            std::hint::black_box(&v);
        });
        if guard_active() {
            assert!(count.allocations > 0);
            assert!(count.bytes >= 100 * 8);
        }
    }

    #[test]
    fn preallocated_push_is_alloc_free() {
        let mut v: Vec<u64> = Vec::with_capacity(128);
        assert_no_alloc(|| {
            for i in 0..128 {
                v.push(i);
            }
        });
        assert_eq!(v.len(), 128);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "assert_no_alloc")]
    fn allocation_inside_guard_panics() {
        assert_no_alloc(|| {
            let v = vec![1u8, 2, 3];
            std::hint::black_box(&v);
        });
    }

    #[test]
    fn guard_rearms_after_panic() {
        let caught = std::panic::catch_unwind(|| {
            count_allocs(|| -> () { panic!("inner") }).0
        });
        assert!(caught.is_err());
        // The armed flag must have been restored: counting still works
        // and an un-armed thread does not count.
        let ((), count) = count_allocs(|| {
            std::hint::black_box(Box::new(7u32));
        });
        if guard_active() {
            assert_eq!(count.allocations, 1);
        }
    }

    #[test]
    fn sibling_thread_allocations_are_not_counted() {
        let ((), count) = count_allocs(|| {
            std::thread::scope(|s| {
                s.spawn(|| {
                    let v: Vec<u64> = (0..1000).collect();
                    std::hint::black_box(&v);
                });
            });
        });
        // The spawn itself allocates on this thread (thread bookkeeping),
        // but the worker's 8 kB vector must not appear in our count.
        if guard_active() {
            assert!(count.bytes < 4000, "counted {} bytes", count.bytes);
        }
    }
}
