//! Dataset shape statistics: the distributional fingerprints the
//! evaluation reasons about (transaction-length distribution, item
//! frequency skew, co-occurrence clustering). Used to validate that the
//! WebDocs/AP stand-in generators have the shapes their documentation
//! promises, and printed by the CLI's `--profile` pipeline.

use crate::db::TransactionDb;

/// Shape summary of a transaction database.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShapeStats {
    /// Number of transactions.
    pub n_transactions: usize,
    /// Distinct items present.
    pub n_items_present: usize,
    /// Mean transaction length.
    pub mean_len: f64,
    /// Transaction-length standard deviation.
    pub std_len: f64,
    /// Maximum transaction length.
    pub max_len: usize,
    /// Length percentiles `[p50, p90, p99]`.
    pub len_percentiles: [usize; 3],
    /// Gini coefficient of the item-frequency distribution (0 = uniform,
    /// → 1 = maximally skewed; Zipfian data sits high).
    pub item_gini: f64,
    /// Ratio of the most frequent item's support to the median item's
    /// support (head dominance; large under Zipf).
    pub head_to_median: f64,
}

/// Computes the shape statistics of `db`.
pub fn shape(db: &TransactionDb) -> ShapeStats {
    let n = db.len();
    let mut lens: Vec<usize> = db.transactions().iter().map(|t| t.len()).collect();
    lens.sort_unstable();
    let mean = if n == 0 {
        0.0
    } else {
        lens.iter().sum::<usize>() as f64 / n as f64
    };
    let var = if n == 0 {
        0.0
    } else {
        lens.iter().map(|&l| (l as f64 - mean).powi(2)).sum::<f64>() / n as f64
    };
    let pct = |p: f64| -> usize {
        if lens.is_empty() {
            0
        } else {
            lens[((lens.len() - 1) as f64 * p) as usize]
        }
    };

    let mut freq = vec![0u64; db.n_items()];
    for t in db.transactions() {
        for &i in t {
            freq[i as usize] += 1;
        }
    }
    let mut present: Vec<u64> = freq.iter().copied().filter(|&f| f > 0).collect();
    present.sort_unstable();
    let gini = gini(&present);
    let head_to_median = if present.is_empty() {
        0.0
    } else {
        let head = *present.last().expect("non-empty") as f64;
        let median = present[present.len() / 2] as f64;
        head / median.max(1.0)
    };
    ShapeStats {
        n_transactions: n,
        n_items_present: present.len(),
        mean_len: mean,
        std_len: var.sqrt(),
        max_len: lens.last().copied().unwrap_or(0),
        len_percentiles: [pct(0.50), pct(0.90), pct(0.99)],
        item_gini: gini,
        head_to_median,
    }
}

/// Gini coefficient of a sorted-ascending positive vector.
fn gini(sorted: &[u64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // G = (2 Σ i·x_i) / (n Σ x_i) − (n+1)/n, i 1-based over ascending x
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Renders the statistics as an aligned block for CLI/report output.
pub fn render(s: &ShapeStats) -> String {
    format!(
        "transactions {:>10}\nitems        {:>10}\nmean length  {:>10.2} (σ {:.2}, max {})\nlength p50/p90/p99  {} / {} / {}\nitem Gini    {:>10.3}\nhead/median  {:>10.1}\n",
        s.n_transactions,
        s.n_items_present,
        s.mean_len,
        s.std_len,
        s.max_len,
        s.len_percentiles[0],
        s.len_percentiles[1],
        s.len_percentiles[2],
        s.item_gini,
        s.head_to_median,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_items_have_low_gini() {
        let db = TransactionDb::from_transactions(
            (0..100u32).map(|k| vec![k % 10]).collect(),
        );
        let s = shape(&db);
        assert!(s.item_gini < 0.05, "gini {}", s.item_gini);
        assert!((s.head_to_median - 1.0).abs() < 0.2);
        assert_eq!(s.n_items_present, 10);
    }

    #[test]
    fn skewed_items_have_high_gini() {
        // item 0 in every transaction, items 1..50 once each
        let mut ts: Vec<Vec<u32>> = (1..=50u32).map(|k| vec![0, k]).collect();
        ts.extend((0..50).map(|_| vec![0u32]));
        let s = shape(&TransactionDb::from_transactions(ts));
        assert!(s.item_gini > 0.4, "gini {}", s.item_gini);
        assert!(s.head_to_median > 10.0);
    }

    #[test]
    fn length_statistics() {
        let db = TransactionDb::from_transactions(vec![
            vec![0],
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
        ]);
        let s = shape(&db);
        assert_eq!(s.max_len, 4);
        assert!((s.mean_len - 2.5).abs() < 1e-9);
        assert_eq!(s.len_percentiles[0], 2);
    }

    #[test]
    fn empty_db() {
        let s = shape(&TransactionDb::default());
        assert_eq!(s.n_transactions, 0);
        assert_eq!(s.item_gini, 0.0);
        assert_eq!(s.max_len, 0);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-9);
        // one holder of everything among many
        let mut v = vec![0u64; 99];
        v.push(1000);
        assert!(gini(&v) > 0.95);
    }

    #[test]
    fn render_contains_fields() {
        let s = shape(&TransactionDb::from_transactions(vec![vec![1, 2]]));
        let r = render(&s);
        assert!(r.contains("transactions"));
        assert!(r.contains("Gini"));
    }
}
