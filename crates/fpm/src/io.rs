//! FIMI `.dat` I/O — the interchange format of the FIMI'03/'04 workshop
//! repositories the paper draws its kernels and datasets from: one
//! transaction per line, items as whitespace-separated decimal integers.

use crate::db::TransactionDb;
use crate::types::{Item, ItemsetCount};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a FIMI `.dat` database from any reader. Blank lines are skipped;
/// malformed tokens are reported with their line number.
pub fn read_dat<R: Read>(reader: R) -> io::Result<TransactionDb> {
    let mut transactions = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut t = Vec::new();
        for tok in line.split_ascii_whitespace() {
            let item: Item = tok.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad item {tok:?}: {e}", lineno + 1),
                )
            })?;
            t.push(item);
        }
        transactions.push(t);
    }
    Ok(TransactionDb::from_transactions(transactions))
}

/// Reads a FIMI `.dat` file from disk.
pub fn read_dat_file(path: impl AsRef<Path>) -> io::Result<TransactionDb> {
    read_dat(std::fs::File::open(path)?)
}

/// Writes a database in FIMI `.dat` format.
pub fn write_dat<W: Write>(writer: W, db: &TransactionDb) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let mut buf = String::new();
    for t in db.transactions() {
        buf.clear();
        for (k, &i) in t.iter().enumerate() {
            if k > 0 {
                buf.push(' ');
            }
            buf.push_str(itoa(i).as_str());
        }
        buf.push('\n');
        w.write_all(buf.as_bytes())?;
    }
    w.flush()
}

/// Writes a database to a `.dat` file on disk.
pub fn write_dat_file(path: impl AsRef<Path>, db: &TransactionDb) -> io::Result<()> {
    write_dat(std::fs::File::create(path)?, db)
}

/// Writes mined patterns in the FIMI output convention:
/// `item item … (support)` per line.
pub fn write_patterns<W: Write>(writer: W, patterns: &[ItemsetCount]) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for p in patterns {
        for (k, &i) in p.items.iter().enumerate() {
            if k > 0 {
                write!(w, " ")?;
            }
            write!(w, "{i}")?;
        }
        writeln!(w, " ({})", p.support)?;
    }
    w.flush()
}

/// Magic + version header of the binary database format.
const BIN_MAGIC: &[u8; 8] = b"FPMDB\x00\x00\x01";

/// Writes a database in a compact little-endian binary format (used by
/// the dataset cache: parsing multi-hundred-megabyte `.dat` text on
/// every bench run would dominate the harness).
pub fn write_bin<W: Write>(writer: W, db: &TransactionDb) -> io::Result<()> {
    use bytes::BufMut;
    let mut w = BufWriter::new(writer);
    w.write_all(BIN_MAGIC)?;
    let mut buf = bytes::BytesMut::with_capacity(db.nnz() as usize * 4 + db.len() * 4 + 8);
    buf.put_u64_le(db.len() as u64);
    for t in db.transactions() {
        buf.put_u32_le(t.len() as u32);
        for &i in t {
            buf.put_u32_le(i);
        }
    }
    w.write_all(&buf)?;
    w.flush()
}

/// Reads a database written by [`write_bin`].
pub fn read_bin<R: Read>(mut reader: R) -> io::Result<TransactionDb> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an FPMDB binary database (bad magic)",
        ));
    }
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    let mut at = 0usize;
    let take_u32 = |at: &mut usize| -> io::Result<u32> {
        let b: [u8; 4] = data
            .get(*at..*at + 4)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated FPMDB"))?
            .try_into()
            .expect("4-byte slice");
        *at += 4;
        Ok(u32::from_le_bytes(b))
    };
    let n = {
        let lo = take_u32(&mut at)? as u64;
        let hi = take_u32(&mut at)? as u64;
        lo | hi << 32
    };
    let mut transactions = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let len = take_u32(&mut at)? as usize;
        let mut t = Vec::with_capacity(len);
        for _ in 0..len {
            t.push(take_u32(&mut at)?);
        }
        transactions.push(t);
    }
    Ok(TransactionDb::from_transactions(transactions))
}

/// Binary file convenience wrappers.
pub fn write_bin_file(path: impl AsRef<Path>, db: &TransactionDb) -> io::Result<()> {
    write_bin(std::fs::File::create(path)?, db)
}

/// Reads a binary database file written by [`write_bin_file`].
pub fn read_bin_file(path: impl AsRef<Path>) -> io::Result<TransactionDb> {
    read_bin(std::fs::File::open(path)?)
}

fn itoa(mut v: u32) -> String {
    // Tiny formatter to avoid the fmt machinery in the bulk writer path.
    if v == 0 {
        return "0".into();
    }
    let mut b = [0u8; 10];
    let mut i = b.len();
    while v > 0 {
        i -= 1;
        b[i] = b'0' + (v % 10) as u8;
        v /= 10;
    }
    String::from_utf8_lossy(&b[i..]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_basic() {
        let input = "1 2 3\n\n5 1\n7\n";
        let db = read_dat(input.as_bytes()).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.transactions()[0], vec![1, 2, 3]);
        assert_eq!(db.transactions()[1], vec![1, 5]); // sorted
        assert_eq!(db.n_items(), 8);
    }

    #[test]
    fn read_rejects_garbage() {
        let err = read_dat("1 x 3\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn roundtrip() {
        let db = TransactionDb::from_transactions(vec![vec![0, 10, 200], vec![5], vec![3, 4]]);
        let mut buf = Vec::new();
        write_dat(&mut buf, &db).unwrap();
        let back = read_dat(buf.as_slice()).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn pattern_output_format() {
        let ps = vec![
            ItemsetCount { items: vec![1, 2], support: 10 },
            ItemsetCount { items: vec![7], support: 3 },
        ];
        let mut buf = Vec::new();
        write_patterns(&mut buf, &ps).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "1 2 (10)\n7 (3)\n");
    }

    #[test]
    fn itoa_matches_display() {
        for v in [0u32, 1, 9, 10, 99, 12345, u32::MAX] {
            assert_eq!(itoa(v), v.to_string());
        }
    }

    #[test]
    fn bin_roundtrip() {
        let db = TransactionDb::from_transactions(vec![
            vec![0, 10, 200_000],
            vec![],
            vec![5],
            (0..100).collect(),
        ]);
        let mut buf = Vec::new();
        write_bin(&mut buf, &db).unwrap();
        assert_eq!(read_bin(buf.as_slice()).unwrap(), db);
    }

    #[test]
    fn bin_rejects_bad_magic() {
        let err = read_bin(&b"NOTFPMDB123"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bin_rejects_truncation() {
        let db = TransactionDb::from_transactions(vec![vec![1, 2, 3]]);
        let mut buf = Vec::new();
        write_bin(&mut buf, &db).unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_bin(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("fpm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dat");
        let db = TransactionDb::from_transactions(vec![vec![1, 2], vec![3]]);
        write_dat_file(&path, &db).unwrap();
        assert_eq!(read_dat_file(&path).unwrap(), db);
        std::fs::remove_file(&path).ok();
    }
}
