//! Input characterization: bridges [`TransactionDb`] to the advisor's
//! [`InputProfile`](also::advisor::InputProfile) and adds the
//! dataset-shape statistics the evaluation section reasons with (density,
//! mean length, scatter of the frequent items).

use crate::db::TransactionDb;
use crate::remap::remap;
use also::advisor::InputProfile;

/// Measures the profile of a raw database at a given support threshold:
/// the database is rank-remapped first (so "frequent items" means
/// post-threshold ranks) and the profile is taken over the ranked
/// transactions — the form every miner actually sees.
pub fn profile(db: &TransactionDb, minsup: u64) -> InputProfile {
    let ranked = remap(db, minsup);
    InputProfile::measure(&ranked.transactions, ranked.n_ranks())
}

/// The fraction of distinct transactions, `0..=1` — the prefix-sharing
/// signal [`also::adapt::choose_repr`] consumes (low ratio ⇒ heavy
/// duplication ⇒ a prefix tree compresses well).
pub fn distinct_ratio(db: &TransactionDb) -> f64 {
    if db.is_empty() {
        return 1.0;
    }
    let mut sorted: Vec<&Vec<u32>> = db.transactions().iter().collect();
    sorted.sort();
    let mut distinct = 1usize;
    for w in sorted.windows(2) {
        if w[0] != w[1] {
            distinct += 1;
        }
    }
    distinct as f64 / db.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_reflects_threshold() {
        let db = TransactionDb::from_transactions(vec![
            vec![0, 1],
            vec![0, 1],
            vec![0, 2],
            vec![3],
        ]);
        let p_all = profile(&db, 1);
        assert_eq!(p_all.n_items, 4);
        let p_thresh = profile(&db, 2);
        assert_eq!(p_thresh.n_items, 2); // only items 0 and 1 survive
        assert!(p_thresh.nnz < p_all.nnz);
    }

    #[test]
    fn distinct_ratio_bounds() {
        let db = TransactionDb::from_transactions(vec![vec![0], vec![0], vec![0], vec![1]]);
        assert!((distinct_ratio(&db) - 0.5).abs() < 1e-9);
        let all_same = TransactionDb::from_transactions(vec![vec![7, 8]; 10]);
        assert!((distinct_ratio(&all_same) - 0.1).abs() < 1e-9);
        assert_eq!(distinct_ratio(&TransactionDb::default()), 1.0);
    }
}
