//! Input characterization and operational counters.
//!
//! Two halves: (a) bridges [`TransactionDb`] to the advisor's
//! [`InputProfile`] and adds the
//! dataset-shape statistics the evaluation section reasons with (density,
//! mean length, scatter of the frequent items); (b) [`MetricSet`], the
//! small named-counter registry the service layer exports its
//! per-request and cache metrics through.

use crate::db::TransactionDb;
use crate::remap::remap;
use also::advisor::InputProfile;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed registry of named monotonic counters, shareable across
/// threads (`&MetricSet` / `Arc<MetricSet>`). The name set is declared
/// once at construction — unknown names panic rather than silently
/// creating counters, so a typo in an instrumentation site fails the
/// first test that crosses it. Backed by a `BTreeMap` so snapshots and
/// rendering are deterministically ordered.
#[derive(Debug)]
pub struct MetricSet {
    counters: BTreeMap<&'static str, AtomicU64>,
}

impl MetricSet {
    /// Creates the registry with every counter it will ever hold, all
    /// starting at zero.
    pub fn new(names: &[&'static str]) -> Self {
        MetricSet {
            counters: names.iter().map(|&n| (n, AtomicU64::new(0))).collect(),
        }
    }

    fn counter(&self, name: &str) -> &AtomicU64 {
        self.counters
            .get(name)
            .unwrap_or_else(|| panic!("metric {name:?} was not declared at MetricSet::new"))
    }

    /// Adds `v` to `name`.
    pub fn add(&self, name: &str, v: u64) {
        self.counter(name).fetch_add(v, Ordering::Relaxed);
    }

    /// Adds 1 to `name`.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name`.
    pub fn get(&self, name: &str) -> u64 {
        self.counter(name).load(Ordering::Relaxed)
    }

    /// All counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.counters
            .iter()
            // ORDERING: Relaxed — counter reads; each value is exact
            // per key, and snapshots promise no cross-key atomicity.
            .map(|(&n, c)| (n, c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Renders `name value` lines, sorted by name.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (n, v) in self.snapshot() {
            writeln!(out, "{n} {v}").expect("write to String cannot fail");
        }
        out
    }
}

/// Measures the profile of a raw database at a given support threshold:
/// the database is rank-remapped first (so "frequent items" means
/// post-threshold ranks) and the profile is taken over the ranked
/// transactions — the form every miner actually sees.
pub fn profile(db: &TransactionDb, minsup: u64) -> InputProfile {
    let ranked = remap(db, minsup);
    InputProfile::measure(&ranked.transactions, ranked.n_ranks())
}

/// The fraction of distinct transactions, `0..=1` — the prefix-sharing
/// signal [`also::adapt::choose_repr`] consumes (low ratio ⇒ heavy
/// duplication ⇒ a prefix tree compresses well).
pub fn distinct_ratio(db: &TransactionDb) -> f64 {
    if db.is_empty() {
        return 1.0;
    }
    let mut sorted: Vec<&Vec<u32>> = db.transactions().iter().collect();
    sorted.sort();
    let mut distinct = 1usize;
    for w in sorted.windows(2) {
        if w[0] != w[1] {
            distinct += 1;
        }
    }
    distinct as f64 / db.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_reflects_threshold() {
        let db = TransactionDb::from_transactions(vec![
            vec![0, 1],
            vec![0, 1],
            vec![0, 2],
            vec![3],
        ]);
        let p_all = profile(&db, 1);
        assert_eq!(p_all.n_items, 4);
        let p_thresh = profile(&db, 2);
        assert_eq!(p_thresh.n_items, 2); // only items 0 and 1 survive
        assert!(p_thresh.nnz < p_all.nnz);
    }

    #[test]
    fn metric_set_counts_and_snapshots_deterministically() {
        let m = MetricSet::new(&["b.miss", "a.hit", "evictions"]);
        m.incr("a.hit");
        m.add("b.miss", 3);
        assert_eq!(m.get("a.hit"), 1);
        assert_eq!(m.get("b.miss"), 3);
        assert_eq!(m.get("evictions"), 0);
        assert_eq!(
            m.snapshot(),
            vec![("a.hit", 1), ("b.miss", 3), ("evictions", 0)]
        );
        assert_eq!(m.render(), "a.hit 1\nb.miss 3\nevictions 0\n");
    }

    #[test]
    #[should_panic(expected = "was not declared")]
    fn metric_set_rejects_undeclared_names() {
        MetricSet::new(&["known"]).incr("unknown");
    }

    #[test]
    #[should_panic(expected = "\"typo_counterr\"")]
    fn undeclared_name_panic_names_the_counter() {
        // The panic message must carry the offending name, so the first
        // test that crosses a typo'd instrumentation site points at it.
        MetricSet::new(&["typo_counter"]).get("typo_counterr");
    }

    #[test]
    fn metric_set_is_shareable_across_threads() {
        let m = std::sync::Arc::new(MetricSet::new(&["n"]));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.incr("n");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.get("n"), 4000);
    }

    #[test]
    fn metric_set_hammered_concurrently_stays_exact_and_ordered() {
        // N threads interleave add/incr across three counters; totals
        // must be exact (no lost updates) and the snapshot order must
        // stay the deterministic name order regardless of update order.
        let m = std::sync::Arc::new(MetricSet::new(&["z.last", "a.first", "m.mid"]));
        let threads = 8;
        let rounds = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..rounds {
                        m.incr("a.first");
                        m.add("m.mid", 2);
                        if (i + t) % 2 == 0 {
                            m.add("z.last", 3);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = threads * rounds;
        assert_eq!(m.get("a.first"), n);
        assert_eq!(m.get("m.mid"), 2 * n);
        assert_eq!(m.get("z.last"), 3 * n / 2);
        let snap = m.snapshot();
        assert_eq!(
            snap.iter().map(|(name, _)| *name).collect::<Vec<_>>(),
            vec!["a.first", "m.mid", "z.last"],
            "snapshot order is name order, not update order"
        );
        assert_eq!(snap[0].1 + snap[1].1 + snap[2].1, n + 2 * n + 3 * n / 2);
    }

    #[test]
    fn distinct_ratio_bounds() {
        let db = TransactionDb::from_transactions(vec![vec![0], vec![0], vec![0], vec![1]]);
        assert!((distinct_ratio(&db) - 0.5).abs() < 1e-9);
        let all_same = TransactionDb::from_transactions(vec![vec![7, 8]; 10]);
        assert!((distinct_ratio(&all_same) - 0.1).abs() < 1e-9);
        assert_eq!(distinct_ratio(&TransactionDb::default()), 1.0);
    }
}
