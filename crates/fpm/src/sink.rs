//! Pattern sinks: where miners deliver their output.
//!
//! Mining a realistic dataset can emit millions of itemsets; forcing every
//! miner to materialize a `Vec` would turn every benchmark into an
//! allocator benchmark. Miners are therefore generic over a [`PatternSink`]:
//! benches use [`CountSink`]/[`StatsSink`] (no allocation), tests use
//! [`CollectSink`] behind a [`TranslateSink`] that maps rank ids back to
//! original item ids for cross-miner comparison.

use crate::remap::RankMap;
use crate::types::{Item, ItemsetCount};

/// Receives mined patterns. `itemset` is in the miner's working id space
/// (rank ids unless documented otherwise) and is only valid for the
/// duration of the call.
pub trait PatternSink {
    /// Deliver one pattern with its support.
    fn emit(&mut self, itemset: &[Item], support: u64);
}

/// Counts patterns; the cheapest sink.
#[derive(Debug, Default, Clone)]
pub struct CountSink {
    /// Number of patterns emitted.
    pub count: u64,
}

impl PatternSink for CountSink {
    #[inline]
    fn emit(&mut self, _itemset: &[Item], _support: u64) {
        self.count += 1;
    }
}

/// Collects every pattern into memory. Test-sized inputs only.
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    /// The collected patterns, in emission order.
    pub patterns: Vec<ItemsetCount>,
}

impl PatternSink for CollectSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.patterns.push(ItemsetCount {
            items: itemset.to_vec(),
            support,
        });
    }
}

/// Order-insensitive aggregate statistics — used to compare two miners'
/// outputs cheaply on large inputs (equal stats is a strong, allocation-
/// free signal; the exact-equality tests run on smaller inputs).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StatsSink {
    /// Number of patterns.
    pub count: u64,
    /// Sum of supports.
    pub support_sum: u64,
    /// Sum of itemset lengths.
    pub len_sum: u64,
    /// Longest itemset seen.
    pub max_len: usize,
    /// Order-insensitive hash of the (itemset, support) multiset.
    pub hash: u64,
}

impl PatternSink for StatsSink {
    #[inline]
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.count += 1;
        self.support_sum += support;
        self.len_sum += itemset.len() as u64;
        self.max_len = self.max_len.max(itemset.len());
        // FNV over the sorted itemset, combined commutatively (wrapping
        // add) so emission order is irrelevant.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &i in itemset {
            h ^= i as u64 + 1;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= support;
        h = h.wrapping_mul(0x100_0000_01b3);
        self.hash = self.hash.wrapping_add(h);
    }
}

/// Adapter that translates rank-space itemsets back to original item ids
/// before forwarding to the inner sink.
pub struct TranslateSink<'a, S> {
    map: &'a RankMap,
    inner: S,
    scratch: Vec<Item>,
}

impl<'a, S: PatternSink> TranslateSink<'a, S> {
    /// Wraps `inner` with the translation of `map`.
    pub fn new(map: &'a RankMap, inner: S) -> Self {
        TranslateSink {
            map,
            inner,
            scratch: Vec::new(),
        }
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PatternSink> PatternSink for TranslateSink<'_, S> {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.scratch.clear();
        self.scratch
            .extend(itemset.iter().map(|&r| self.map.original(r)));
        self.scratch.sort_unstable();
        self.inner.emit(&self.scratch, support);
    }
}

/// Replays per-task pattern buffers into `sink` in buffer order — the
/// deterministic merge half of the parallel runtime (`fpm-par`). Workers
/// mine disjoint subtrees into private [`CollectSink`]s; the scheduler
/// re-slots those buffers by task rank, and this replay then reproduces
/// the exact emission sequence a serial run would have produced.
pub fn replay_merged<S: PatternSink>(
    buffers: impl IntoIterator<Item = Vec<ItemsetCount>>,
    sink: &mut S,
) {
    for buffer in buffers {
        for p in buffer {
            sink.emit(&p.items, p.support);
        }
    }
}

/// Records every emission as one line of portable bytes
/// (`item,item,...:support\n`). Two runs are behaviourally identical iff
/// their recorded bytes are identical — this is what the parallel
/// determinism regression compares.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecordSink {
    /// The serialized emission log.
    pub bytes: Vec<u8>,
}

impl PatternSink for RecordSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        use std::io::Write;
        for (i, it) in itemset.iter().enumerate() {
            if i > 0 {
                self.bytes.push(b',');
            }
            write!(self.bytes, "{it}").expect("write to Vec cannot fail");
        }
        writeln!(self.bytes, ":{support}").expect("write to Vec cannot fail");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::TransactionDb;
    use crate::remap::remap;

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::default();
        s.emit(&[1, 2], 5);
        s.emit(&[3], 2);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn stats_sink_is_order_insensitive() {
        let mut a = StatsSink::default();
        a.emit(&[1, 2], 5);
        a.emit(&[3], 2);
        let mut b = StatsSink::default();
        b.emit(&[3], 2);
        b.emit(&[1, 2], 5);
        assert_eq!(a, b);
        let mut c = StatsSink::default();
        c.emit(&[3], 3); // different support
        c.emit(&[1, 2], 5);
        assert_ne!(a, c);
    }

    #[test]
    fn stats_sink_distinguishes_itemsets_from_concatenations() {
        let mut a = StatsSink::default();
        a.emit(&[1], 1);
        a.emit(&[2], 1);
        let mut b = StatsSink::default();
        b.emit(&[1, 2], 1);
        b.emit(&[], 1);
        assert_ne!(a, b);
    }

    #[test]
    fn translate_sink_restores_original_ids() {
        let db = TransactionDb::from_transactions(vec![vec![10, 20], vec![20], vec![20, 30]]);
        let ranked = remap(&db, 1);
        // rank 0 = item 20 (freq 3)
        let mut ts = TranslateSink::new(&ranked.map, CollectSink::default());
        ts.emit(&[0], 3);
        ts.emit(&[1, 0], 1);
        let collected = ts.into_inner().patterns;
        assert_eq!(collected[0].items, vec![20]);
        assert_eq!(collected[1].items.len(), 2);
        assert!(collected[1].items.contains(&20));
        assert!(collected[1].items.windows(2).all(|w| w[0] < w[1]));
    }
}
