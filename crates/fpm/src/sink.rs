//! Pattern sinks: where miners deliver their output.
//!
//! Mining a realistic dataset can emit millions of itemsets; forcing every
//! miner to materialize a `Vec` would turn every benchmark into an
//! allocator benchmark. Miners are therefore generic over a [`PatternSink`]:
//! benches use [`CountSink`]/[`StatsSink`] (no allocation), tests use
//! [`CollectSink`] behind a [`TranslateSink`] that maps rank ids back to
//! original item ids for cross-miner comparison.

use crate::control::MineControl;
use crate::remap::RankMap;
use crate::types::{Item, ItemsetCount};

/// Receives mined patterns. `itemset` is in the miner's working id space
/// (rank ids unless documented otherwise) and is only valid for the
/// duration of the call.
pub trait PatternSink {
    /// Deliver one pattern with its support.
    fn emit(&mut self, itemset: &[Item], support: u64);
}

impl<S: PatternSink + ?Sized> PatternSink for &mut S {
    #[inline]
    fn emit(&mut self, itemset: &[Item], support: u64) {
        (**self).emit(itemset, support);
    }
}

/// Counts patterns; the cheapest sink.
#[derive(Debug, Default, Clone)]
pub struct CountSink {
    /// Number of patterns emitted.
    pub count: u64,
}

impl PatternSink for CountSink {
    #[inline]
    fn emit(&mut self, _itemset: &[Item], _support: u64) {
        self.count += 1;
    }
}

/// Collects every pattern into memory. Test-sized inputs only.
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    /// The collected patterns, in emission order.
    pub patterns: Vec<ItemsetCount>,
}

impl PatternSink for CollectSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.patterns.push(ItemsetCount {
            items: itemset.to_vec(),
            support,
        });
    }
}

/// Order-insensitive aggregate statistics — used to compare two miners'
/// outputs cheaply on large inputs (equal stats is a strong, allocation-
/// free signal; the exact-equality tests run on smaller inputs).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StatsSink {
    /// Number of patterns.
    pub count: u64,
    /// Sum of supports.
    pub support_sum: u64,
    /// Sum of itemset lengths.
    pub len_sum: u64,
    /// Longest itemset seen.
    pub max_len: usize,
    /// Order-insensitive hash of the (itemset, support) multiset.
    pub hash: u64,
}

impl PatternSink for StatsSink {
    #[inline]
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.count += 1;
        self.support_sum += support;
        self.len_sum += itemset.len() as u64;
        self.max_len = self.max_len.max(itemset.len());
        // FNV over the sorted itemset, combined commutatively (wrapping
        // add) so emission order is irrelevant.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &i in itemset {
            h ^= i as u64 + 1;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= support;
        h = h.wrapping_mul(0x100_0000_01b3);
        self.hash = self.hash.wrapping_add(h);
    }
}

/// Adapter that translates rank-space itemsets back to original item ids
/// before forwarding to the inner sink.
pub struct TranslateSink<'a, S> {
    map: &'a RankMap,
    inner: S,
    scratch: Vec<Item>,
}

impl<'a, S: PatternSink> TranslateSink<'a, S> {
    /// Wraps `inner` with the translation of `map`.
    pub fn new(map: &'a RankMap, inner: S) -> Self {
        TranslateSink {
            map,
            inner,
            scratch: Vec::new(),
        }
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PatternSink> PatternSink for TranslateSink<'_, S> {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.scratch.clear();
        self.scratch
            .extend(itemset.iter().map(|&r| self.map.original(r)));
        self.scratch.sort_unstable();
        self.inner.emit(&self.scratch, support);
    }
}

/// Replays per-task pattern buffers into `sink` in buffer order — the
/// deterministic merge half of the parallel runtime (`fpm-par`). Workers
/// mine disjoint subtrees into private [`CollectSink`]s; the scheduler
/// re-slots those buffers by task rank, and this replay then reproduces
/// the exact emission sequence a serial run would have produced.
pub fn replay_merged<S: PatternSink>(
    buffers: impl IntoIterator<Item = Vec<ItemsetCount>>,
    sink: &mut S,
) {
    for buffer in buffers {
        for p in buffer {
            sink.emit(&p.items, p.support);
        }
    }
}

/// The cancellation-aware variant of [`replay_merged`]: merges per-task
/// buffers from a *controlled* parallel run back into serial emission
/// order, truncating at the first task whose output may be incomplete.
///
/// Each slot is `None` if the scheduler abandoned the task (never ran),
/// or `Some((buffer, complete))` where `complete` says the task observed
/// no stop signal — its buffer is its full serial output. Tasks run out
/// of order under work stealing, so after a trip the completed set can
/// be an arbitrary subset; replaying in task order and stopping at the
/// first abandoned-or-truncated task is exactly what restores the serial
/// **prefix** guarantee (a truncated task's own buffer is itself a prefix
/// of that task's serial output, so it is replayed before stopping).
///
/// Returns `true` iff every task was present and complete — i.e. the
/// merged output is the *entire* serial sequence.
pub fn replay_merged_prefix<S: PatternSink>(
    buffers: impl IntoIterator<Item = Option<(Vec<ItemsetCount>, bool)>>,
    sink: &mut S,
) -> bool {
    for slot in buffers {
        match slot {
            Some((buffer, complete)) => {
                for p in buffer {
                    sink.emit(&p.items, p.support);
                }
                if !complete {
                    return false;
                }
            }
            None => return false,
        }
    }
    true
}

/// Forwards the first `limit` patterns, then drops the rest. The cheap,
/// local-only way to take a prefix of a miner's output — the service
/// layer's `max_patterns` truncation and "only need the head" tests both
/// ride on it. For *stopping the miner* early (not just dropping the
/// tail) combine with a budgeted [`MineControl`] via [`ControlledSink`].
#[derive(Debug, Clone)]
pub struct LimitSink<S> {
    inner: S,
    limit: u64,
    /// Patterns forwarded to the inner sink (`<= limit`).
    pub emitted: u64,
    /// Patterns dropped after the limit was reached.
    pub suppressed: u64,
}

impl<S: PatternSink> LimitSink<S> {
    /// Wraps `inner`, forwarding only the first `limit` emissions.
    pub fn new(limit: u64, inner: S) -> Self {
        LimitSink {
            inner,
            limit,
            emitted: 0,
            suppressed: 0,
        }
    }

    /// Whether the limit was reached and at least one pattern dropped.
    pub fn truncated(&self) -> bool {
        self.suppressed > 0
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PatternSink> PatternSink for LimitSink<S> {
    #[inline]
    fn emit(&mut self, itemset: &[Item], support: u64) {
        if self.emitted < self.limit {
            self.emitted += 1;
            self.inner.emit(itemset, support);
        } else {
            self.suppressed += 1;
        }
    }
}

/// Gates every delivery through a shared [`MineControl`]: each emission
/// is charged against the control's budget, and once the control trips —
/// budget, deadline, or cancellation — all further emissions are
/// suppressed. Because the control trips monotonically and the kernels
/// only ever cut recursion *tails* at their checkpoints, the patterns
/// that reach the inner sink are always a contiguous prefix of the serial
/// emission order.
#[derive(Debug)]
pub struct ControlledSink<'c, S> {
    control: &'c MineControl,
    inner: S,
    /// Emissions suppressed because the control had tripped. Zero means
    /// this sink observed the run's full output (nothing was cut *at this
    /// sink* — the parallel drivers use that to tell complete task
    /// buffers from truncated ones).
    pub suppressed: u64,
}

impl<'c, S: PatternSink> ControlledSink<'c, S> {
    /// Wraps `inner`, charging every delivery to `control`.
    pub fn new(control: &'c MineControl, inner: S) -> Self {
        ControlledSink {
            control,
            inner,
            suppressed: 0,
        }
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PatternSink> PatternSink for ControlledSink<'_, S> {
    #[inline]
    fn emit(&mut self, itemset: &[Item], support: u64) {
        if self.control.charge_emission() {
            self.inner.emit(itemset, support);
        } else {
            self.suppressed += 1;
        }
    }
}

/// Records every emission as one line of portable bytes
/// (`item,item,...:support\n`). Two runs are behaviourally identical iff
/// their recorded bytes are identical — this is what the parallel
/// determinism regression compares.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecordSink {
    /// The serialized emission log.
    pub bytes: Vec<u8>,
}

impl PatternSink for RecordSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        use std::io::Write;
        for (i, it) in itemset.iter().enumerate() {
            if i > 0 {
                self.bytes.push(b',');
            }
            write!(self.bytes, "{it}").expect("write to Vec cannot fail");
        }
        writeln!(self.bytes, ":{support}").expect("write to Vec cannot fail");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::TransactionDb;
    use crate::remap::remap;

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::default();
        s.emit(&[1, 2], 5);
        s.emit(&[3], 2);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn stats_sink_is_order_insensitive() {
        let mut a = StatsSink::default();
        a.emit(&[1, 2], 5);
        a.emit(&[3], 2);
        let mut b = StatsSink::default();
        b.emit(&[3], 2);
        b.emit(&[1, 2], 5);
        assert_eq!(a, b);
        let mut c = StatsSink::default();
        c.emit(&[3], 3); // different support
        c.emit(&[1, 2], 5);
        assert_ne!(a, c);
    }

    #[test]
    fn stats_sink_distinguishes_itemsets_from_concatenations() {
        let mut a = StatsSink::default();
        a.emit(&[1], 1);
        a.emit(&[2], 1);
        let mut b = StatsSink::default();
        b.emit(&[1, 2], 1);
        b.emit(&[], 1);
        assert_ne!(a, b);
    }

    #[test]
    fn limit_sink_forwards_exactly_the_prefix() {
        let mut s = LimitSink::new(2, CollectSink::default());
        s.emit(&[1], 3);
        s.emit(&[1, 2], 2);
        s.emit(&[2], 9);
        s.emit(&[3], 1);
        assert_eq!(s.emitted, 2);
        assert_eq!(s.suppressed, 2);
        assert!(s.truncated());
        let got = s.into_inner().patterns;
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].items, vec![1]);
        assert_eq!(got[1].items, vec![1, 2]);
    }

    #[test]
    fn limit_sink_zero_limit_drops_all() {
        let mut s = LimitSink::new(0, CountSink::default());
        s.emit(&[1], 1);
        assert_eq!(s.emitted, 0);
        assert_eq!(s.suppressed, 1);
        assert_eq!(s.into_inner().count, 0);
    }

    #[test]
    fn limit_sink_under_limit_is_transparent() {
        let mut s = LimitSink::new(10, CountSink::default());
        s.emit(&[1], 1);
        s.emit(&[2], 1);
        assert!(!s.truncated());
        assert_eq!(s.into_inner().count, 2);
    }

    #[test]
    fn controlled_sink_enforces_budget() {
        let control = crate::control::MineControl::with_budget(2);
        let mut s = ControlledSink::new(&control, CollectSink::default());
        s.emit(&[1], 1);
        s.emit(&[2], 1);
        s.emit(&[3], 1);
        assert_eq!(s.suppressed, 1);
        let got = s.into_inner().patterns;
        assert_eq!(got.len(), 2);
        assert_eq!(
            control.stop_cause(),
            Some(crate::control::StopCause::BudgetExhausted)
        );
    }

    #[test]
    fn controlled_sink_suppresses_after_cancel() {
        let control = crate::control::MineControl::unlimited();
        let mut s = ControlledSink::new(&control, CountSink::default());
        s.emit(&[1], 1);
        control.cancel();
        assert!(control.should_stop());
        s.emit(&[2], 1);
        assert_eq!(s.suppressed, 1);
        assert_eq!(s.into_inner().count, 1);
    }

    #[test]
    fn translate_sink_restores_original_ids() {
        let db = TransactionDb::from_transactions(vec![vec![10, 20], vec![20], vec![20, 30]]);
        let ranked = remap(&db, 1);
        // rank 0 = item 20 (freq 3)
        let mut ts = TranslateSink::new(&ranked.map, CollectSink::default());
        ts.emit(&[0], 3);
        ts.emit(&[1, 0], 1);
        let collected = ts.into_inner().patterns;
        assert_eq!(collected[0].items, vec![20]);
        assert_eq!(collected[1].items.len(), 2);
        assert!(collected[1].items.contains(&20));
        assert!(collected[1].items.windows(2).all(|w| w[0] < w[1]));
    }
}
