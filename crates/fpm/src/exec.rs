//! The kernel execution contract: [`KernelSpine`].
//!
//! Every mining kernel in this workspace parallelises and cancels the
//! same way (DESIGN.md §11): the search space splits at the root into
//! independent first-item subtrees, each subtree is mined serially with
//! the shared [`MineControl`] polled at recursion-node granularity, and
//! subtree outputs concatenated in root-task order reproduce the
//! kernel's serial emission sequence exactly. `KernelSpine` captures
//! that shape as a trait, so the one generic driver in `fpm-exec` can
//! wire probes, control, sinks, and the work-stealing runtime for all
//! kernels at once instead of once per kernel.
//!
//! Implementations live with the kernels (`fpm-lcm`, `fpm-eclat`,
//! `fpm-fpgrowth`); the only caller is `fpm-exec`'s `MinePlan`. Direct
//! use anywhere else is rejected by also-lint rule R6 (`kernel-entry`).

use crate::control::MineControl;
use crate::db::TransactionDb;
use crate::sink::PatternSink;
use memsim::Probe;

/// One kernel's task-parallel skeleton: prepare the database once,
/// enumerate the root subtrees in serial emission order, mine any one
/// subtree into a sink.
///
/// # Contract
///
/// * `root_tasks` returns subtrees in the kernel's **serial emission
///   order**: mining the tasks one by one into the same sink must
///   produce the exact byte sequence of the kernel's serial `mine`.
/// * `mine_task` emits patterns in **original item ids** (the spine owns
///   the rank translation), polls `control` at recursion-node
///   granularity, and returns `false` iff it observed a stop signal and
///   cut its subtree short — so its output may be a proper prefix of
///   the subtree's serial output (always a prefix, never a reordering).
/// * Tasks are independent: mining them concurrently from shared
///   `&Prepared` is safe, and per-task outputs concatenated in task
///   order equal the serial sequence.
pub trait KernelSpine {
    /// Kernel configuration (ablation variant flags).
    type Config: Clone + Send + Sync;
    /// The prepared database: remapped, restructured, ready to mine.
    type Prepared: Send + Sync;
    /// One root subtree, cheap to copy across worker threads.
    type Task: Copy + Send + Sync;

    /// Remaps and restructures `db` for mining at `minsup`. Preparation
    /// is uncontrolled (it does no emission) and unprobed — simulation
    /// runs charge preparation through the kernel's own `mine_probed`.
    fn prepare(db: &TransactionDb, minsup: u64, cfg: &Self::Config) -> Self::Prepared;

    /// The root subtrees in serial emission order.
    fn root_tasks(prepared: &Self::Prepared) -> Vec<Self::Task>;

    /// Mines one subtree into `sink`, charging memory traffic to
    /// `probe` and polling `control` per recursion node. Returns `true`
    /// iff the subtree was mined to completion (no stop signal seen).
    fn mine_task<P: Probe, S: PatternSink>(
        prepared: &Self::Prepared,
        task: Self::Task,
        probe: &mut P,
        control: &MineControl,
        sink: &mut S,
    ) -> bool;
}
