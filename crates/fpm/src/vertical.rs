//! The vertical representations of the paper's Figure 3 (top):
//! per-item transaction sets.
//!
//! * [`VerticalBitDb`] — the dense bit matrix: one bit vector per item,
//!   bit `t` set iff transaction `t` contains the item. The per-column
//!   [`OneRange`]s are the 0-escaping bookkeeping the lexicographic
//!   ordering makes effective (§4.2).
//! * [`VerticalHybridDb`] — the roaring-style refinement: one adaptive
//!   [`TidSet`] per item, each 2^16-tid chunk stored as a sorted-u16
//!   array, bitmap, or run container chosen by local density
//!   ([`also::containers`], DESIGN.md §16).

use also::bits::{BitVec, OneRange};
use also::containers::{AndScratch, TidSet};
use crate::types::Item;

/// A vertical bit-matrix database over rank ids.
#[derive(Debug)]
pub struct VerticalBitDb {
    n_transactions: usize,
    columns: Vec<BitVec>,
    ranges: Vec<OneRange>,
}

impl VerticalBitDb {
    /// Builds the bit matrix from ranked transactions: column `r` gets bit
    /// `t` for every transaction `t` containing rank `r`.
    pub fn from_ranked(transactions: &[Vec<u32>], n_ranks: usize) -> Self {
        let n = transactions.len();
        let mut columns: Vec<BitVec> = (0..n_ranks).map(|_| BitVec::zeros(n)).collect();
        for (t, items) in transactions.iter().enumerate() {
            for &r in items {
                columns[r as usize].set(t);
            }
        }
        let ranges = columns.iter().map(|c| c.one_range()).collect();
        VerticalBitDb {
            n_transactions: n,
            columns,
            ranges,
        }
    }

    /// Number of transactions (bits per column).
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// Number of item columns.
    pub fn n_items(&self) -> usize {
        self.columns.len()
    }

    /// The bit column of `item`.
    #[inline]
    pub fn column(&self, item: Item) -> &BitVec {
        &self.columns[item as usize]
    }

    /// The initial (tight) 1-range of `item`'s column.
    #[inline]
    pub fn range(&self, item: Item) -> OneRange {
        self.ranges[item as usize]
    }

    /// Support of a single item (popcount of its column).
    pub fn support(&self, item: Item) -> u64 {
        self.columns[item as usize].count_ones()
    }

    /// Bytes of bit-matrix storage.
    pub fn bytes(&self) -> usize {
        self.columns.iter().map(|c| c.words() * 8).sum()
    }
}

/// A vertical database over rank ids with one adaptive hybrid
/// [`TidSet`] per item: per-2^16-tid chunks choose array, bitmap, or run
/// containers by local density instead of one global dense-vs-sparse
/// pick. This is Eclat's container-era working structure.
#[derive(Debug)]
pub struct VerticalHybridDb {
    n_transactions: usize,
    columns: Vec<TidSet>,
}

impl VerticalHybridDb {
    /// Builds one hybrid column per rank: column `r` holds the tids of
    /// every transaction containing rank `r`, each chunk stored in the
    /// container the per-chunk cost rule picks (runs included —
    /// [`TidSet::optimize`] runs at build time).
    pub fn from_ranked(transactions: &[Vec<u32>], n_ranks: usize) -> Self {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n_ranks];
        for (t, items) in transactions.iter().enumerate() {
            for &r in items {
                lists[r as usize].push(t as u32);
            }
        }
        let columns = lists
            .iter()
            .map(|l| {
                let mut s = TidSet::from_sorted(l);
                s.optimize();
                s
            })
            .collect();
        VerticalHybridDb {
            n_transactions: transactions.len(),
            columns,
        }
    }

    /// Number of transactions in the underlying database.
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// Number of item columns.
    pub fn n_items(&self) -> usize {
        self.columns.len()
    }

    /// The hybrid tid-set of `item`.
    #[inline]
    pub fn column(&self, item: Item) -> &TidSet {
        &self.columns[item as usize]
    }

    /// Support of a single item (cardinality of its column).
    pub fn support(&self, item: Item) -> u64 {
        self.columns[item as usize].cardinality()
    }

    /// Bytes of container storage across all columns.
    pub fn bytes(&self) -> usize {
        self.columns.iter().map(TidSet::bytes).sum()
    }

    /// One-pass k-way support of an arbitrary itemset: intersects all the
    /// items' columns chunk-by-chunk through preallocated `scratch`
    /// (never materializing an intermediate set) — the
    /// [`TidSet::multi_and_count_with`] path deep recursions and ad-hoc
    /// queries use instead of chained pairwise temporaries.
    pub fn support_of(&self, items: &[u32], scratch: &mut AndScratch) -> u64 {
        let cols: Vec<&TidSet> = items.iter().map(|&i| self.column(i)).collect();
        TidSet::multi_and_count_with(&cols, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> VerticalBitDb {
        VerticalBitDb::from_ranked(
            &[
                vec![0, 1, 2],
                vec![0, 1, 2],
                vec![0, 1, 2, 3, 4, 5],
                vec![0, 1, 3],
                vec![4, 5],
            ],
            6,
        )
    }

    #[test]
    fn columns_match_occurrences() {
        let v = toy();
        assert_eq!(v.n_transactions(), 5);
        assert_eq!(v.n_items(), 6);
        assert_eq!(v.column(0).iter_ones().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(v.column(4).iter_ones().collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(v.support(0), 4);
        assert_eq!(v.support(5), 2);
    }

    #[test]
    fn ranges_are_tight_initially() {
        let v = toy();
        for i in 0..6u32 {
            assert_eq!(v.range(i), v.column(i).one_range());
        }
        // every column of the toy fits in word 0
        assert_eq!(v.range(0), OneRange { first: 0, last: 0 });
    }

    #[test]
    fn lexicographic_ordering_shortens_ranges() {
        // 1000 transactions; item 0 in every 10th one (scattered), vs the
        // same database lexicographically ordered (item-0 transactions
        // first). The scattered column spans ~16 words; the clustered one
        // spans ~2 — the effect §4.2 banks on.
        let scattered: Vec<Vec<u32>> = (0..1000u32)
            .map(|t| if t % 10 == 0 { vec![0, 1] } else { vec![1] })
            .collect();
        let mut ordered = scattered.clone();
        also::lexorder::lex_order(&mut ordered);
        let vs = VerticalBitDb::from_ranked(&scattered, 2);
        let vo = VerticalBitDb::from_ranked(&ordered, 2);
        assert_eq!(vs.support(0), vo.support(0));
        assert!(
            vo.range(0).width() < vs.range(0).width() / 4,
            "ordered range {} should be far shorter than scattered {}",
            vo.range(0).width(),
            vs.range(0).width()
        );
    }

    #[test]
    fn empty_matrix() {
        let v = VerticalBitDb::from_ranked(&[], 0);
        assert_eq!(v.n_transactions(), 0);
        assert_eq!(v.n_items(), 0);
        assert_eq!(v.bytes(), 0);
    }

    /// A two-item database over exactly `n` transactions: item 0 in every
    /// transaction, item 1 in every other one.
    fn striped(n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|t| if t % 2 == 0 { vec![0, 1] } else { vec![0] })
            .collect()
    }

    #[test]
    fn word_multiple_universe_has_no_phantom_tail_bits() {
        // Universes that are exact multiples of 64: the last word is
        // completely full, so any mishandled trailing-word mask would
        // either drop its bits or count past the end.
        for n in [64usize, 128, 192, 1024] {
            let v = VerticalBitDb::from_ranked(&striped(n), 2);
            assert_eq!(v.support(0), n as u64, "universe {n}");
            assert_eq!(v.support(1), n as u64 / 2, "universe {n}");
            assert_eq!(
                v.column(0).iter_ones().count(),
                n,
                "iter_ones must stop at the boundary for {n}"
            );
            // The tight 1-range of the full column ends exactly at the
            // last real word.
            assert_eq!(v.range(0).last as usize, (n - 1) / 64, "universe {n}");
            let h = VerticalHybridDb::from_ranked(&striped(n), 2);
            assert_eq!(h.support(0), n as u64, "hybrid universe {n}");
            assert_eq!(
                h.column(0).and_count(h.column(1)),
                n as u64 / 2,
                "hybrid AND at word boundary {n}"
            );
        }
    }

    #[test]
    fn chunk_multiple_universe_intersects_exactly() {
        // Universes that are exact multiples of 65536: the hybrid set's
        // last chunk is completely full, exercising the chunk-boundary
        // full-run/full-bitmap paths.
        for n in [65_536usize, 131_072] {
            let h = VerticalHybridDb::from_ranked(&striped(n), 2);
            assert_eq!(h.support(0), n as u64);
            assert_eq!(h.support(1), n as u64 / 2);
            let and = h.column(0).and(h.column(1));
            assert_eq!(and.cardinality(), n as u64 / 2);
            assert_eq!(and.to_vec(), h.column(1).to_vec());
            let mut scratch = AndScratch::new();
            assert_eq!(h.support_of(&[0, 1], &mut scratch), n as u64 / 2);
            // The dense matrix agrees.
            let v = VerticalBitDb::from_ranked(&striped(n), 2);
            assert_eq!(v.support(0), h.support(0));
            assert_eq!(v.support(1), h.support(1));
        }
    }

    #[test]
    fn empty_intersection_early_exit_on_chunk_boundary() {
        // Disjoint columns that share no chunk (item 0 in chunk 0, item 1
        // in chunk 1) and disjoint columns *within* a shared chunk.
        let n = 2 * 65_536usize;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|t| if t < 65_536 { vec![0] } else { vec![1] })
            .collect();
        let h = VerticalHybridDb::from_ranked(&rows, 2);
        assert_eq!(h.column(0).and_count(h.column(1)), 0);
        assert!(h.column(0).and(h.column(1)).is_empty());
        let mut scratch = AndScratch::new();
        assert_eq!(h.support_of(&[0, 1], &mut scratch), 0);

        let interleaved: Vec<Vec<u32>> =
            (0..n).map(|t| if t % 2 == 0 { vec![0] } else { vec![1] }).collect();
        let h2 = VerticalHybridDb::from_ranked(&interleaved, 2);
        assert_eq!(h2.column(0).and_count(h2.column(1)), 0);
        assert!(h2.column(0).and(h2.column(1)).is_empty());
    }

    #[test]
    fn hybrid_agrees_with_bits_on_scattered_db() {
        let rows: Vec<Vec<u32>> = (0..3000u32)
            .map(|t| (0..6).filter(|&i| (t * 7 + i * 13) % (i + 2) == 0).collect())
            .collect();
        let v = VerticalBitDb::from_ranked(&rows, 6);
        let h = VerticalHybridDb::from_ranked(&rows, 6);
        assert_eq!(v.n_transactions(), h.n_transactions());
        assert_eq!(v.n_items(), h.n_items());
        for i in 0..6u32 {
            assert_eq!(v.support(i), h.support(i), "item {i}");
            assert_eq!(
                v.column(i).iter_ones().map(|t| t as u32).collect::<Vec<_>>(),
                h.column(i).to_vec(),
                "item {i}"
            );
        }
    }
}
