//! The vertical dense bit-matrix representation (paper Figure 3, top):
//! one bit vector per item, bit `t` set iff transaction `t` contains the
//! item. This is Eclat's working structure; the per-column
//! [`OneRange`]s are the 0-escaping bookkeeping the lexicographic
//! ordering makes effective (§4.2).

use also::bits::{BitVec, OneRange};
use crate::types::Item;

/// A vertical bit-matrix database over rank ids.
#[derive(Debug)]
pub struct VerticalBitDb {
    n_transactions: usize,
    columns: Vec<BitVec>,
    ranges: Vec<OneRange>,
}

impl VerticalBitDb {
    /// Builds the bit matrix from ranked transactions: column `r` gets bit
    /// `t` for every transaction `t` containing rank `r`.
    pub fn from_ranked(transactions: &[Vec<u32>], n_ranks: usize) -> Self {
        let n = transactions.len();
        let mut columns: Vec<BitVec> = (0..n_ranks).map(|_| BitVec::zeros(n)).collect();
        for (t, items) in transactions.iter().enumerate() {
            for &r in items {
                columns[r as usize].set(t);
            }
        }
        let ranges = columns.iter().map(|c| c.one_range()).collect();
        VerticalBitDb {
            n_transactions: n,
            columns,
            ranges,
        }
    }

    /// Number of transactions (bits per column).
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// Number of item columns.
    pub fn n_items(&self) -> usize {
        self.columns.len()
    }

    /// The bit column of `item`.
    #[inline]
    pub fn column(&self, item: Item) -> &BitVec {
        &self.columns[item as usize]
    }

    /// The initial (tight) 1-range of `item`'s column.
    #[inline]
    pub fn range(&self, item: Item) -> OneRange {
        self.ranges[item as usize]
    }

    /// Support of a single item (popcount of its column).
    pub fn support(&self, item: Item) -> u64 {
        self.columns[item as usize].count_ones()
    }

    /// Bytes of bit-matrix storage.
    pub fn bytes(&self) -> usize {
        self.columns.iter().map(|c| c.words() * 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> VerticalBitDb {
        VerticalBitDb::from_ranked(
            &[
                vec![0, 1, 2],
                vec![0, 1, 2],
                vec![0, 1, 2, 3, 4, 5],
                vec![0, 1, 3],
                vec![4, 5],
            ],
            6,
        )
    }

    #[test]
    fn columns_match_occurrences() {
        let v = toy();
        assert_eq!(v.n_transactions(), 5);
        assert_eq!(v.n_items(), 6);
        assert_eq!(v.column(0).iter_ones().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(v.column(4).iter_ones().collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(v.support(0), 4);
        assert_eq!(v.support(5), 2);
    }

    #[test]
    fn ranges_are_tight_initially() {
        let v = toy();
        for i in 0..6u32 {
            assert_eq!(v.range(i), v.column(i).one_range());
        }
        // every column of the toy fits in word 0
        assert_eq!(v.range(0), OneRange { first: 0, last: 0 });
    }

    #[test]
    fn lexicographic_ordering_shortens_ranges() {
        // 1000 transactions; item 0 in every 10th one (scattered), vs the
        // same database lexicographically ordered (item-0 transactions
        // first). The scattered column spans ~16 words; the clustered one
        // spans ~2 — the effect §4.2 banks on.
        let scattered: Vec<Vec<u32>> = (0..1000u32)
            .map(|t| if t % 10 == 0 { vec![0, 1] } else { vec![1] })
            .collect();
        let mut ordered = scattered.clone();
        also::lexorder::lex_order(&mut ordered);
        let vs = VerticalBitDb::from_ranked(&scattered, 2);
        let vo = VerticalBitDb::from_ranked(&ordered, 2);
        assert_eq!(vs.support(0), vo.support(0));
        assert!(
            vo.range(0).width() < vs.range(0).width() / 4,
            "ordered range {} should be far shorter than scattered {}",
            vo.range(0).width(),
            vs.range(0).width()
        );
    }

    #[test]
    fn empty_matrix() {
        let v = VerticalBitDb::from_ranked(&[], 0);
        assert_eq!(v.n_transactions(), 0);
        assert_eq!(v.n_items(), 0);
        assert_eq!(v.bytes(), 0);
    }
}
