//! Closed-form upper bound on the number of frequent patterns — the
//! admission-control oracle of the service layer.
//!
//! Before a server commits a worker to a mining query it wants a cheap,
//! *sound* estimate of how large the output (and hence the search) can
//! possibly get. Geerts, Goethals & Van den Bussche ("A Tight Upper
//! Bound on the Number of Candidate Patterns") derive exactly such bounds
//! from information that is available *before* the expensive levels run:
//! the number of frequent items and simple shape facts of the database.
//! This module implements a bound in that spirit using two O(db) facts:
//!
//! * `m` — the number of frequent items (every frequent itemset draws
//!   from these, so level `k` holds at most `C(m, k)` itemsets);
//! * `L` — the length of the `minsup`-th longest *ranked* transaction
//!   (a frequent itemset is contained in at least `minsup` transactions,
//!   so its size cannot exceed the `minsup`-th largest transaction
//!   length after infrequent items are removed).
//!
//! The bound is `Σ_{k=1..min(m,L)} C(m, k)`, computed in saturating
//! floating point: anything that overflows an `f64` is far beyond any
//! admission threshold anyway.

use crate::db::TransactionDb;
use crate::remap::remap;

/// Upper bound on the number of frequent itemsets of `db` at `minsup`,
/// from frequent-item count and transaction-length shape alone (no
/// mining). Sound: the true count never exceeds it. `f64::INFINITY`
/// signals an astronomically large search space.
pub fn candidate_bound(db: &TransactionDb, minsup: u64) -> f64 {
    let ranked = remap(db, minsup);
    let mut lens: Vec<usize> = ranked.transactions.iter().map(|t| t.len()).collect();
    lens.sort_unstable_by(|a, b| b.cmp(a));
    bound_from_shape(ranked.n_ranks(), &lens, minsup)
}

/// [`candidate_bound`] from precomputed shape facts: `m` frequent items
/// and the ranked transaction lengths `lens_desc` sorted descending,
/// one entry per original transaction (the form [`remap`] produces —
/// duplicates are *not* merged at this stage, so each length carries
/// multiplicity one and the `minsup`-th-longest cutoff is sound).
pub fn bound_from_shape(m: usize, lens_desc: &[usize], minsup: u64) -> f64 {
    if m == 0 || lens_desc.is_empty() {
        return 0.0;
    }
    // A frequent itemset is a subset of >= minsup transactions, so its
    // size is at most the minsup-th largest transaction length.
    let idx = (minsup.max(1) as usize - 1).min(lens_desc.len() - 1);
    let max_k = lens_desc[idx].min(m);
    let mut total = 0.0f64;
    let mut binom = 1.0f64; // C(m, 0)
    for k in 1..=max_k {
        binom *= (m - k + 1) as f64 / k as f64;
        total += binom;
        if !total.is_finite() {
            return f64::INFINITY;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::CountSink;
    use crate::PatternSink as _;

    fn actual_count(db: &TransactionDb, minsup: u64) -> u64 {
        let mut sink = CountSink::default();
        for p in naive::mine(db, minsup) {
            sink.emit(&p.items, p.support);
        }
        sink.count
    }

    #[test]
    fn bound_dominates_actual_count_on_small_dbs() {
        let dbs = vec![
            vec![vec![0u32, 1, 2], vec![0, 1], vec![1, 2], vec![0, 2]],
            vec![vec![0u32, 1, 2, 3, 4], vec![0, 1, 2, 3, 4]],
            vec![vec![5u32], vec![5], vec![5, 6], vec![7]],
        ];
        for raw in dbs {
            let db = TransactionDb::from_transactions(raw);
            for minsup in 1..=4u64 {
                let b = candidate_bound(&db, minsup);
                let actual = actual_count(&db, minsup) as f64;
                assert!(
                    b >= actual,
                    "bound {b} < actual {actual} at minsup {minsup}"
                );
            }
        }
    }

    #[test]
    fn single_full_transaction_bound_is_exact() {
        // One transaction of n items at minsup 1: exactly 2^n - 1
        // frequent itemsets, and the bound collapses to the same value.
        let db = TransactionDb::from_transactions(vec![vec![0, 1, 2, 3]]);
        assert_eq!(candidate_bound(&db, 1), 15.0);
    }

    #[test]
    fn higher_minsup_never_raises_the_bound() {
        let db = TransactionDb::from_transactions(
            (0..40u32)
                .map(|k| (0..(3 + k % 7)).map(|i| (k + i) % 13).collect())
                .collect(),
        );
        let mut prev = f64::INFINITY;
        for minsup in 1..=8u64 {
            let b = candidate_bound(&db, minsup);
            assert!(b <= prev, "minsup {minsup}: {b} > {prev}");
            prev = b;
        }
    }

    #[test]
    fn empty_and_infrequent_inputs_bound_to_zero() {
        assert_eq!(candidate_bound(&TransactionDb::default(), 1), 0.0);
        let db = TransactionDb::from_transactions(vec![vec![0], vec![1]]);
        assert_eq!(candidate_bound(&db, 5), 0.0);
    }

    #[test]
    fn huge_spaces_saturate_to_infinity() {
        // 4000 frequent items in 4000-item transactions: C(4000, k) sums
        // overflow f64 — the signal an admission controller rejects on.
        let lens = vec![4000usize; 10];
        assert_eq!(bound_from_shape(4000, &lens, 1), f64::INFINITY);
    }

    #[test]
    fn shape_bound_respects_minsup_th_longest_cutoff() {
        // One long transaction among short ones: at minsup 2 the cutoff
        // is the 2nd-longest length, not the longest.
        let lens = vec![10usize, 2, 2, 2];
        let m = 10;
        let at_1 = bound_from_shape(m, &lens, 1);
        let at_2 = bound_from_shape(m, &lens, 2);
        assert_eq!(at_1, 1023.0); // sum C(10,k), k=1..10
        assert_eq!(at_2, 55.0); // C(10,1) + C(10,2)
    }
}
