//! The horizontal sparse representation (paper Figure 3, middle): each
//! transaction stored as the array of its item ids, all transactions
//! flattened into one CSR-like arena. This is the structure the LCM
//! kernel traverses; the occurrence array (`occ`) on top of it — one list
//! of transaction indices per item — is what `calc_freq` walks.

use crate::types::{Item, Tid};

/// A flattened, weighted horizontal database over rank ids.
///
/// `weights[t]` is the multiplicity of transaction `t` (duplicate
/// transactions merged upstream sum their weights); supports are weighted
/// counts throughout.
#[derive(Debug, Clone, Default)]
pub struct HorizontalDb {
    items: Vec<Item>,
    offsets: Vec<u32>,
    weights: Vec<u32>,
}

impl HorizontalDb {
    /// Flattens ranked transactions, each with weight 1.
    pub fn from_ranked(transactions: &[Vec<u32>]) -> Self {
        Self::from_weighted(transactions.iter().map(|t| (t.as_slice(), 1)))
    }

    /// Flattens `(items, weight)` pairs.
    pub fn from_weighted<'a>(rows: impl Iterator<Item = (&'a [u32], u32)>) -> Self {
        let mut db = HorizontalDb {
            items: Vec::new(),
            offsets: vec![0],
            weights: Vec::new(),
        };
        for (t, w) in rows {
            db.items.extend_from_slice(t);
            db.offsets.push(db.items.len() as u32);
            db.weights.push(w);
        }
        db
    }

    /// Number of (merged) transactions.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The items of transaction `t`.
    #[inline]
    pub fn transaction(&self, t: Tid) -> &[Item] {
        let (lo, hi) = (self.offsets[t as usize], self.offsets[t as usize + 1]);
        &self.items[lo as usize..hi as usize]
    }

    /// The weight (multiplicity) of transaction `t`.
    #[inline]
    pub fn weight(&self, t: Tid) -> u32 {
        self.weights[t as usize]
    }

    /// Total weighted transaction count.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().map(|&w| w as u64).sum()
    }

    /// Total stored item occurrences.
    pub fn nnz(&self) -> usize {
        self.items.len()
    }

    /// The flat item arena (all transactions concatenated) — exposed so
    /// the memory simulator can attribute addresses.
    pub fn items_raw(&self) -> &[Item] {
        &self.items
    }
}

/// The occurrence array: for each item, the ascending list of transaction
/// indices containing it — the shaded `occ` columns of the paper's
/// Figure 6.
#[derive(Debug, Clone, Default)]
pub struct OccArray {
    lists: Vec<Vec<Tid>>,
}

impl OccArray {
    /// Builds occurrence lists for items `0..n_items` over `db`.
    pub fn build(db: &HorizontalDb, n_items: usize) -> Self {
        let mut lists = vec![Vec::new(); n_items];
        for t in 0..db.len() as u32 {
            for &i in db.transaction(t) {
                lists[i as usize].push(t);
            }
        }
        OccArray { lists }
    }

    /// The transactions containing `item`, ascending.
    #[inline]
    pub fn occ(&self, item: Item) -> &[Tid] {
        &self.lists[item as usize]
    }

    /// Number of items covered.
    pub fn n_items(&self) -> usize {
        self.lists.len()
    }

    /// Weighted support of `item` under `db`.
    pub fn support(&self, db: &HorizontalDb, item: Item) -> u64 {
        self.occ(item).iter().map(|&t| db.weight(t) as u64).sum()
    }

    /// Borrowed slices of every list, for the tiling traversal
    /// ([`also::tiling::TiledLists`] takes `&[&[u32]]`).
    pub fn as_slices(&self) -> Vec<&[Tid]> {
        self.lists.iter().map(|l| l.as_slice()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranked_toy() -> Vec<Vec<u32>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3, 4, 5],
            vec![0, 1, 3],
            vec![4, 5],
        ]
    }

    #[test]
    fn flatten_roundtrip() {
        let db = HorizontalDb::from_ranked(&ranked_toy());
        assert_eq!(db.len(), 5);
        assert_eq!(db.transaction(2), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(db.transaction(4), &[4, 5]);
        assert_eq!(db.weight(0), 1);
        assert_eq!(db.total_weight(), 5);
        assert_eq!(db.nnz(), 17);
    }

    #[test]
    fn weighted_rows() {
        let rows: Vec<(Vec<u32>, u32)> = vec![(vec![0, 1], 3), (vec![1], 2)];
        let db = HorizontalDb::from_weighted(rows.iter().map(|(t, w)| (t.as_slice(), *w)));
        assert_eq!(db.total_weight(), 5);
        assert_eq!(db.weight(0), 3);
    }

    #[test]
    fn occ_lists_ascending_and_complete() {
        let db = HorizontalDb::from_ranked(&ranked_toy());
        let occ = OccArray::build(&db, 6);
        assert_eq!(occ.occ(0), &[0, 1, 2, 3]);
        assert_eq!(occ.occ(3), &[2, 3]);
        assert_eq!(occ.occ(5), &[2, 4]);
        assert_eq!(occ.support(&db, 0), 4);
        for i in 0..6u32 {
            assert!(occ.occ(i).windows(2).all(|w| w[0] < w[1]));
        }
        // every occurrence accounted for
        let total: usize = (0..6u32).map(|i| occ.occ(i).len()).sum();
        assert_eq!(total, db.nnz());
    }

    #[test]
    fn empty_db_occ() {
        let db = HorizontalDb::from_ranked(&[]);
        assert!(db.is_empty());
        let occ = OccArray::build(&db, 4);
        assert_eq!(occ.n_items(), 4);
        assert!(occ.occ(0).is_empty());
    }
}
