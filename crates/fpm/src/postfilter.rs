//! Closed- and maximal-itemset post-filters — the LCM-family output
//! variants (DESIGN.md §7 extension; LCM is, after all, the *closed*
//! itemset miner).
//!
//! The original implementation marked, for every frequent `Q`, each of
//! its `|Q|` one-item-removed subsets; PR 9 replaced that scan with
//! FastLMFI-style superset checking over the prefix-ordered
//! [`SetTrie`](crate::query::SetTrie) (PAPERS.md), which prunes
//! equal-support searches on a per-subtree support bound. This module
//! keeps the historical entry points as thin wrappers so existing
//! callers and the R6 kernel-entry story are unchanged; the engine (and
//! the first-class query surface built on it) lives in [`crate::query`].

pub use crate::query::{closed, maximal};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::TransactionDb;
    use crate::naive;
    use crate::types::{canonicalize, ItemsetCount, MineKind};

    fn toy() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    #[test]
    fn matches_naive_filters_on_toy() {
        for minsup in 1..=4u64 {
            let all = naive::mine(&toy(), minsup);
            assert_eq!(
                canonicalize(closed(all.clone())),
                canonicalize(naive::mine_kind(&toy(), minsup, MineKind::Closed)),
                "closed minsup={minsup}"
            );
            assert_eq!(
                canonicalize(maximal(all)),
                canonicalize(naive::mine_kind(&toy(), minsup, MineKind::Maximal)),
                "maximal minsup={minsup}"
            );
        }
    }

    #[test]
    fn matches_naive_on_pseudorandom() {
        let mut s = 11u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let db = TransactionDb::from_transactions(
            (0..60)
                .map(|_| (0..10u32).filter(|_| rnd() % 3 == 0).collect::<Vec<_>>())
                .collect(),
        );
        let all = naive::mine(&db, 4);
        assert_eq!(
            canonicalize(closed(all.clone())),
            canonicalize(naive::mine_kind(&db, 4, MineKind::Closed))
        );
        assert_eq!(
            canonicalize(maximal(all)),
            canonicalize(naive::mine_kind(&db, 4, MineKind::Maximal))
        );
    }

    #[test]
    fn maximal_subset_of_closed_subset_of_all() {
        let all = naive::mine(&toy(), 2);
        let c = closed(all.clone());
        let m = maximal(all.clone());
        assert!(m.len() <= c.len() && c.len() <= all.len());
        let cset: std::collections::HashSet<_> =
            c.iter().map(|p| p.items.clone()).collect();
        for p in &m {
            assert!(cset.contains(&p.items), "maximal must be closed");
        }
    }

    #[test]
    fn empty_input() {
        assert!(closed(vec![]).is_empty());
        assert!(maximal(vec![]).is_empty());
    }

    #[test]
    fn singletons_only() {
        let ps = vec![
            ItemsetCount { items: vec![0], support: 3 },
            ItemsetCount { items: vec![1], support: 2 },
        ];
        assert_eq!(closed(ps.clone()).len(), 2);
        assert_eq!(maximal(ps).len(), 2);
    }

    #[test]
    fn preserves_serial_input_order() {
        // The filters must keep survivors in input (serial emission)
        // order — the executor's byte-identity depends on it.
        let all = naive::mine(&toy(), 2);
        let c = closed(all.clone());
        let mut it = all.iter();
        for p in &c {
            assert!(it.any(|q| q == p), "closed output must be a subsequence");
        }
        let m = maximal(all.clone());
        let mut it = all.iter();
        for p in &m {
            assert!(it.any(|q| q == p), "maximal output must be a subsequence");
        }
    }
}
