//! Closed- and maximal-itemset post-filters — the LCM-family output
//! variants (DESIGN.md §7 extension; LCM is, after all, the *closed*
//! itemset miner).
//!
//! Both filters run in `O(Σ|Q|)` hash operations over the frequent set,
//! using the one-step structure of the lattice:
//!
//! * `P` is **not closed** iff some one-item extension `Q = P ∪ {e}` is
//!   frequent with `sup(Q) == sup(P)` — larger supersets cannot have
//!   equal support unless a one-step one does (support is
//!   anti-monotone along any chain between them).
//! * `P` is **not maximal** iff *any* one-item extension is frequent.
//!
//! So marking, for every frequent `Q`, each of its `|Q|` one-item-removed
//! subsets suffices.

use crate::types::ItemsetCount;
use std::collections::HashMap;

/// Filters a complete frequent set down to the closed itemsets.
pub fn closed(patterns: Vec<ItemsetCount>) -> Vec<ItemsetCount> {
    filter(patterns, true)
}

/// Filters a complete frequent set down to the maximal itemsets.
pub fn maximal(patterns: Vec<ItemsetCount>) -> Vec<ItemsetCount> {
    filter(patterns, false)
}

fn filter(patterns: Vec<ItemsetCount>, closed: bool) -> Vec<ItemsetCount> {
    // index by sorted itemset
    // deterministic-iteration audit: this map is probed with `get` only;
    // output order comes from walking `patterns` (a Vec) below, so hash
    // order never reaches the emission sequence.
    let index: HashMap<Vec<u32>, usize> = patterns
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut k = p.items.clone();
            k.sort_unstable();
            (k, i)
        })
        .collect();
    let mut keep = vec![true; patterns.len()];
    let mut sub = Vec::new();
    for q in &patterns {
        let mut items = q.items.clone();
        items.sort_unstable();
        if items.len() < 2 {
            // the empty set is not represented; a 1-itemset's only
            // sub-pattern is ∅, which the output convention omits
            continue;
        }
        for drop in 0..items.len() {
            sub.clear();
            sub.extend_from_slice(&items[..drop]);
            sub.extend_from_slice(&items[drop + 1..]);
            if let Some(&pi) = index.get(&sub) {
                if !closed || patterns[pi].support == q.support {
                    keep[pi] = false;
                }
            }
        }
    }
    patterns
        .into_iter()
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::TransactionDb;
    use crate::naive;
    use crate::types::{canonicalize, MineKind};

    fn toy() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    #[test]
    fn matches_naive_filters_on_toy() {
        for minsup in 1..=4u64 {
            let all = naive::mine(&toy(), minsup);
            assert_eq!(
                canonicalize(closed(all.clone())),
                canonicalize(naive::mine_kind(&toy(), minsup, MineKind::Closed)),
                "closed minsup={minsup}"
            );
            assert_eq!(
                canonicalize(maximal(all)),
                canonicalize(naive::mine_kind(&toy(), minsup, MineKind::Maximal)),
                "maximal minsup={minsup}"
            );
        }
    }

    #[test]
    fn matches_naive_on_pseudorandom() {
        let mut s = 11u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let db = TransactionDb::from_transactions(
            (0..60)
                .map(|_| (0..10u32).filter(|_| rnd() % 3 == 0).collect::<Vec<_>>())
                .collect(),
        );
        let all = naive::mine(&db, 4);
        assert_eq!(
            canonicalize(closed(all.clone())),
            canonicalize(naive::mine_kind(&db, 4, MineKind::Closed))
        );
        assert_eq!(
            canonicalize(maximal(all)),
            canonicalize(naive::mine_kind(&db, 4, MineKind::Maximal))
        );
    }

    #[test]
    fn maximal_subset_of_closed_subset_of_all() {
        let all = naive::mine(&toy(), 2);
        let c = closed(all.clone());
        let m = maximal(all.clone());
        assert!(m.len() <= c.len() && c.len() <= all.len());
        let cset: std::collections::HashSet<_> =
            c.iter().map(|p| p.items.clone()).collect();
        for p in &m {
            assert!(cset.contains(&p.items), "maximal must be closed");
        }
    }

    #[test]
    fn empty_input() {
        assert!(closed(vec![]).is_empty());
        assert!(maximal(vec![]).is_empty());
    }

    #[test]
    fn singletons_only() {
        let ps = vec![
            ItemsetCount { items: vec![0], support: 3 },
            ItemsetCount { items: vec![1], support: 2 },
        ];
        assert_eq!(closed(ps.clone()).len(), 2);
        assert_eq!(maximal(ps).len(), 2);
    }
}
