//! Frequency-rank remapping: the preprocessing step every miner shares.
//!
//! Items below the support threshold can never appear in a frequent
//! itemset (the Apriori property), so they are dropped up front; the
//! surviving items are renumbered by **decreasing frequency** — rank 0 is
//! the most frequent item. Under this encoding the paper's P1 alphabet
//! ("items in decreasing frequency order") is the natural integer order,
//! transactions sorted ascending are already frequency-ordered, and the
//! FP-tree's "parent rank < child rank" invariant that the differential
//! byte encoding (P2) exploits holds by construction.

use crate::db::TransactionDb;
use crate::types::Item;

/// The item-id translation produced by [`remap`].
#[derive(Debug, Clone)]
pub struct RankMap {
    to_orig: Vec<Item>,
    supports: Vec<u64>,
}

impl RankMap {
    /// Number of frequent items (the ranked alphabet size).
    pub fn n_ranks(&self) -> usize {
        self.to_orig.len()
    }

    /// Translates a rank back to the original item id.
    pub fn original(&self, rank: u32) -> Item {
        self.to_orig[rank as usize]
    }

    /// The support of the item at `rank` (non-increasing in rank).
    pub fn support(&self, rank: u32) -> u64 {
        self.supports[rank as usize]
    }

    /// Translates a rank-space itemset into original ids, sorted.
    pub fn translate(&self, ranks: &[u32]) -> Vec<Item> {
        let mut v: Vec<Item> = ranks.iter().map(|&r| self.original(r)).collect();
        v.sort_unstable();
        v
    }
}

/// A database after remapping: transactions over rank ids, each sorted
/// ascending (= decreasing frequency), with infrequent items and empty
/// transactions removed.
#[derive(Debug, Clone)]
pub struct RankedDb {
    /// Transactions over rank ids, each sorted ascending.
    pub transactions: Vec<Vec<u32>>,
    /// The rank ↔ original translation and per-rank supports.
    pub map: RankMap,
    /// Number of transactions in the *original* database (empty and
    /// all-infrequent transactions still count toward supports' domain).
    pub original_len: usize,
}

impl RankedDb {
    /// The ranked alphabet size.
    pub fn n_ranks(&self) -> usize {
        self.map.n_ranks()
    }
}

/// Counts item frequencies, drops items with support < `minsup`, and
/// renumbers the survivors by decreasing frequency (ties broken by
/// original id, ascending, for determinism).
pub fn remap(db: &TransactionDb, minsup: u64) -> RankedDb {
    let mut freq = vec![0u64; db.n_items()];
    for t in db.transactions() {
        for &i in t {
            freq[i as usize] += 1;
        }
    }
    let mut frequent: Vec<Item> = (0..db.n_items() as u32)
        .filter(|&i| freq[i as usize] >= minsup.max(1))
        .collect();
    frequent.sort_by(|&a, &b| {
        freq[b as usize]
            .cmp(&freq[a as usize])
            .then(a.cmp(&b))
    });
    let mut to_rank = vec![u32::MAX; db.n_items()];
    for (rank, &orig) in frequent.iter().enumerate() {
        to_rank[orig as usize] = rank as u32;
    }
    let supports: Vec<u64> = frequent.iter().map(|&i| freq[i as usize]).collect();
    let transactions: Vec<Vec<u32>> = db
        .transactions()
        .iter()
        .filter_map(|t| {
            let mut mapped: Vec<u32> = t
                .iter()
                .filter_map(|&i| {
                    let r = to_rank[i as usize];
                    (r != u32::MAX).then_some(r)
                })
                .collect();
            if mapped.is_empty() {
                None
            } else {
                mapped.sort_unstable();
                Some(mapped)
            }
        })
        .collect();
    RankedDb {
        transactions,
        map: RankMap {
            to_orig: frequent,
            supports,
        },
        original_len: db.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TransactionDb {
        // Table 1 of the paper: items a=0 b=1 c=2 d=3 e=4 f=5
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    #[test]
    fn ranks_are_frequency_descending() {
        let r = remap(&toy(), 1);
        // freqs: a=3 b=2 c=4 d=2 e=2 f=4 → ranks c(2),f(5),a(0),b(1),d(3),e(4)
        assert_eq!(r.map.n_ranks(), 6);
        assert_eq!(r.map.original(0), 2); // c
        assert_eq!(r.map.original(1), 5); // f
        assert_eq!(r.map.original(2), 0); // a
        assert_eq!(r.map.original(3), 1); // b (tie with d,e broken by id)
        assert_eq!(r.map.original(4), 3);
        assert_eq!(r.map.original(5), 4);
        assert_eq!(r.map.support(0), 4);
        assert_eq!(r.map.support(5), 2);
        // supports are non-increasing
        for w in r.map.supports.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn transactions_become_rank_sorted() {
        let r = remap(&toy(), 1);
        assert_eq!(r.transactions[0], vec![0, 1, 2]); // {c,f,a}
        assert_eq!(r.transactions[4], vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn infrequent_items_dropped() {
        let r = remap(&toy(), 3);
        // only c(4), f(4), a(3) survive
        assert_eq!(r.map.n_ranks(), 3);
        // transaction {d,e} vanishes entirely
        assert_eq!(r.transactions.len(), 4);
        assert_eq!(r.original_len, 5);
        for t in &r.transactions {
            assert!(t.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn minsup_zero_treated_as_one() {
        let db = TransactionDb::from_transactions(vec![vec![7]]);
        let r = remap(&db, 0);
        // item ids 0..6 never occur: only item 7 is ranked
        assert_eq!(r.map.n_ranks(), 1);
        assert_eq!(r.map.original(0), 7);
    }

    #[test]
    fn translate_restores_original_ids() {
        let r = remap(&toy(), 1);
        let orig = r.map.translate(&[2, 0, 1]);
        assert_eq!(orig, vec![0, 2, 5]); // {a, c, f}
    }

    #[test]
    fn empty_db_remaps_to_empty() {
        let r = remap(&TransactionDb::default(), 1);
        assert_eq!(r.map.n_ranks(), 0);
        assert!(r.transactions.is_empty());
    }
}
