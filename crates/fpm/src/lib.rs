//! # `fpm-core` — frequent-pattern-mining substrate
//!
//! The shared foundation beneath the mining kernels: the transaction
//! model, frequency-rank remapping, the three in-memory database
//! representations of the paper's Figure 3 (horizontal sparse arrays,
//! vertical bit matrix, prefix tree — the tree lives with `fpm-fpgrowth`),
//! FIMI `.dat` I/O, pattern sinks, and a brute-force reference miner used
//! to validate everything else.
//!
//! ## The problem (paper §2.1)
//!
//! Let `I = {i1..im}` be items and `T = {t1..tn}` a database of
//! transactions, each a subset of `I`. The *support* of an itemset is the
//! number of transactions that subsume it; frequent pattern mining outputs
//! every itemset with support ≥ a threshold `s`. With weighted
//! (duplicate-merged) transactions the support is the sum of the weights
//! of the subsuming transactions — all miners in this workspace agree on
//! that weighted definition.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod alloc_guard;
pub mod bound;
pub mod control;
pub mod db;
pub mod exec;
pub mod faults;
pub mod hmine;
pub mod horizontal;
pub mod io;
pub mod metrics;
pub mod naive;
pub mod postfilter;
pub mod query;
pub mod remap;
pub mod sink;
pub mod stats;
pub mod types;
pub mod vertical;

pub use control::{MineControl, StopCause};
pub use db::TransactionDb;
pub use query::{PatternQuery, QueryKey, Rule, RuleSpec};
pub use remap::{remap, RankMap, RankedDb};
pub use sink::{
    replay_merged, replay_merged_prefix, CollectSink, ControlledSink, CountSink, LimitSink,
    PatternSink, RecordSink, StatsSink, TranslateSink,
};
pub use types::{Item, ItemsetCount, Kernel, MineKind, Tid};
