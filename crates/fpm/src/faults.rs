//! Deterministic fault injection: the seam between the runtime crates
//! and the `chaos` harness.
//!
//! Production code never branches on chaos state directly. Instead, the
//! seven **injection sites** — a worker-task panic in the parallel
//! runtime, artificial latency before a steal, a spurious
//! [`MineControl`](crate::control::MineControl) trip, corruption of a
//! cached serve result, an admission-control flap, a stalled (or
//! failed) shard worker in the serve layer, and damage to a persisted
//! store artifact between disk read and decode — each call one hook in
//! this module. Without the `chaos` cargo feature every hook is
//! a constant (`false` / no-op) that the optimizer erases, so tier-1
//! binaries carry no chaos code paths; with the feature on, the hooks
//! consult the installed [`FaultPlan`].
//!
//! A plan is derived from a single `u64` seed: the seed picks the site
//! and, through a SplitMix64 stream, *when* the site fires (a task
//! index for the worker panic, a traversal ordinal for the others) and
//! *how* (the corruption flavor, the steal-delay length). Everything a
//! failing campaign case did is therefore reproducible from
//! `FPM_CHAOS_SEED=<n>` alone — no RNG state, no timing capture.
//!
//! The hooks are free functions rather than methods so call sites read
//! as `fpm::faults::<site>(..)`; the also-lint rule R7 `chaos-sites`
//! holds the workspace to exactly that shape outside `crates/chaos`.

use std::sync::atomic::{AtomicU64, Ordering};

/// The seven named injection sites of the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A task closure panics inside the work-stealing runtime
    /// (`par::run_with_state_until_settled`).
    WorkerPanic,
    /// An idle worker sleeps before scanning victims to steal.
    StealLatency,
    /// `MineControl::should_stop` trips as if cancelled, with no caller
    /// having asked for it.
    SpuriousTrip,
    /// Bytes of a cached serve result flip between insert and probe.
    CacheCorrupt,
    /// The serve admission decision rejects a request its bound would
    /// have admitted.
    AdmissionFlap,
    /// A serve shard worker stalls at job pickup — delayed for the
    /// plan's burst of pickups (delay flavor), or failing the picked
    /// job outright (panic flavor). The targeted *shard index* is the
    /// plan's `fire_at`.
    ShardStall,
    /// Bytes of a persisted store artifact are damaged — truncated or
    /// bit-flipped, by flavor — between the disk read and the sectioned
    /// decode. The loader must detect the damage (every byte is CRC- or
    /// table-covered) and fall back to a cold rebuild.
    ArtifactCorrupt,
}

impl FaultSite {
    /// Every site, in registry order (the order seeds enumerate).
    pub const ALL: [FaultSite; 7] = [
        FaultSite::WorkerPanic,
        FaultSite::StealLatency,
        FaultSite::SpuriousTrip,
        FaultSite::CacheCorrupt,
        FaultSite::AdmissionFlap,
        FaultSite::ShardStall,
        FaultSite::ArtifactCorrupt,
    ];

    /// Stable name, used in campaign labels and failure reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::StealLatency => "steal-latency",
            FaultSite::SpuriousTrip => "spurious-trip",
            FaultSite::CacheCorrupt => "cache-corrupt",
            FaultSite::AdmissionFlap => "admission-flap",
            FaultSite::ShardStall => "shard-stall",
            FaultSite::ArtifactCorrupt => "artifact-corruption",
        }
    }

    /// Parses a [`label`](FaultSite::label).
    pub fn by_label(label: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|s| s.label() == label)
    }
}

/// The SplitMix64 finalizer: one well-mixed `u64` per input. All seed
/// derivation — here and in the `chaos` campaign — goes through this,
/// so a plan's behavior is a pure function of its seed.
pub fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One armed fault: a site plus the seed-derived schedule for firing it.
///
/// `fire_at` is a **task index** for [`FaultSite::WorkerPanic`] (so the
/// target is independent of steal timing), a **shard index** for
/// [`FaultSite::ShardStall`] (the stalled pool is picked up front, not
/// by traversal timing), and a **traversal ordinal** (the N-th time the
/// site is crossed) for every other site. A plan whose `fire_at`
/// exceeds the run's traversal count (or shard count) simply never
/// fires — campaigns treat those seeds as clean-run cases and assert
/// full output.
// Without the `chaos` feature the hooks never consult a plan, so parts
// of this machinery are only reachable from tests; silence dead-code
// noise for that configuration rather than cfg-ing the type away (the
// plan API itself is feature-independent so directed tests can build
// plans either way).
#[cfg_attr(not(feature = "chaos"), allow(dead_code))]
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    site: FaultSite,
    fire_at: u64,
    /// Consecutive steal scans delayed once `fire_at` is reached
    /// (StealLatency only).
    burst: u64,
    /// Sleep per delayed steal scan, microseconds. Read only by the
    /// feature-gated body of [`steal_delay`].
    delay_us: u64,
    /// Selects the CacheCorrupt mutation (support bump, item flip,
    /// truncation, clear).
    flavor: u64,
    hits: AtomicU64,
    fired: AtomicU64,
}

#[cfg_attr(not(feature = "chaos"), allow(dead_code))]
impl FaultPlan {
    /// Derives the full plan — site included — from one seed.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let site = FaultSite::ALL[(mix(seed) % FaultSite::ALL.len() as u64) as usize];
        Self::for_site(site, seed)
    }

    /// Derives a plan for a fixed site; the seed still schedules it.
    pub fn for_site(site: FaultSite, seed: u64) -> FaultPlan {
        let draw = |salt: u64| mix(seed ^ mix(salt));
        let fire_at = match site {
            FaultSite::WorkerPanic => draw(1) % 24,
            FaultSite::StealLatency => draw(1) % 16,
            FaultSite::SpuriousTrip => draw(1) % 4096,
            FaultSite::CacheCorrupt => draw(1) % 3,
            FaultSite::AdmissionFlap => draw(1) % 3,
            FaultSite::ShardStall => draw(1) % 4,
            // A warm start loads one artifact per registered dataset;
            // ordinal 0 damages the first load, ordinal 1 usually never
            // fires — the campaign's clean warm-start cases.
            FaultSite::ArtifactCorrupt => draw(1) % 2,
        };
        FaultPlan {
            seed,
            site,
            fire_at,
            burst: 1 + draw(2) % 4,
            delay_us: 50 + draw(3) % 450,
            flavor: draw(4),
            hits: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        }
    }

    /// A directed plan: fire `site` at exactly `fire_at`, nothing
    /// seed-random. Regression tests use this to sweep, e.g., a panic
    /// across every task index.
    pub fn at(site: FaultSite, fire_at: u64) -> FaultPlan {
        FaultPlan {
            fire_at,
            ..Self::for_site(site, fire_at)
        }
    }

    /// The seed this plan was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The armed site.
    pub fn site(&self) -> FaultSite {
        self.site
    }

    /// When the site fires (task index or traversal ordinal).
    pub fn fire_at(&self) -> u64 {
        self.fire_at
    }

    /// How many times the plan has fired so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Ordinal-scheduled sites: counts the traversal and decides.
    fn fire_ordinal(&self, site: FaultSite) -> bool {
        if self.site != site {
            return false;
        }
        let n = self.hits.fetch_add(1, Ordering::Relaxed);
        let fire = match site {
            FaultSite::StealLatency => n >= self.fire_at && n < self.fire_at + self.burst,
            _ => n == self.fire_at,
        };
        if fire {
            self.fired.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Index-scheduled site (the worker panic): fires when the task
    /// index matches, independent of execution order.
    fn fire_index(&self, site: FaultSite, index: u64) -> bool {
        if self.site != site || index != self.fire_at {
            return false;
        }
        self.fired.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// `true` when a [`FaultSite::ShardStall`] plan fails the picked
    /// job (the "panicked worker" flavor) instead of merely delaying
    /// the shard. Campaigns branch their taxonomy assertions on this.
    pub fn shard_stall_panics(&self) -> bool {
        self.site == FaultSite::ShardStall && self.flavor % 2 == 1
    }

    /// The shard-stall site: fires only for the worker of shard
    /// `fire_at`. The delay flavor fires on that shard's first `burst`
    /// pickups; the panic flavor fires exactly once (the first pickup).
    fn fire_shard(&self, shard: u64) -> bool {
        if self.site != FaultSite::ShardStall || shard != self.fire_at {
            return false;
        }
        let n = self.hits.fetch_add(1, Ordering::Relaxed);
        let fire = if self.shard_stall_panics() { n == 0 } else { n < self.burst };
        if fire {
            self.fired.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }
}

#[cfg(feature = "chaos")]
mod active {
    use super::FaultPlan;
    use std::sync::{Arc, RwLock};

    static ACTIVE: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

    /// Clears the installed plan when dropped.
    pub struct PlanGuard {
        plan: Arc<FaultPlan>,
    }

    impl PlanGuard {
        /// The installed plan (for `fired()` checks after a run).
        pub fn plan(&self) -> &Arc<FaultPlan> {
            &self.plan
        }
    }

    impl Drop for PlanGuard {
        fn drop(&mut self) {
            *ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }

    /// Arms `plan` process-wide until the returned guard drops.
    ///
    /// There is one global slot: concurrent installs overwrite each
    /// other, so campaign tests serialize on a shared mutex.
    pub fn install(plan: FaultPlan) -> PlanGuard {
        let plan = Arc::new(plan);
        *ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&plan));
        PlanGuard { plan }
    }

    pub(super) fn current() -> Option<Arc<FaultPlan>> {
        ACTIVE.read().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

#[cfg(feature = "chaos")]
pub use active::{install, PlanGuard};

/// Injection site: should the task at `task_index` panic?
///
/// Called by the parallel runtime inside its per-task unwind catch; the
/// panic itself is raised at the call site so the payload names the
/// task.
#[inline]
pub fn worker_panic(task_index: usize) -> bool {
    #[cfg(feature = "chaos")]
    {
        active::current()
            .is_some_and(|p| p.fire_index(FaultSite::WorkerPanic, task_index as u64))
    }
    #[cfg(not(feature = "chaos"))]
    {
        let _ = task_index;
        false
    }
}

/// Injection site: an idle worker is about to scan victims; sleep here
/// to perturb steal timing. (Latency must never change output — the
/// campaign asserts byte-identical results when only this site fires.)
#[inline]
pub fn steal_delay() {
    #[cfg(feature = "chaos")]
    if let Some(p) = active::current() {
        if p.fire_ordinal(FaultSite::StealLatency) {
            std::thread::sleep(std::time::Duration::from_micros(p.delay_us));
        }
    }
}

/// Injection site: should this `should_stop` poll trip spuriously?
/// The control records the trip as a cancellation — an injected cancel
/// *is* the true first cause.
#[inline]
pub fn spurious_trip() -> bool {
    #[cfg(feature = "chaos")]
    {
        active::current().is_some_and(|p| p.fire_ordinal(FaultSite::SpuriousTrip))
    }
    #[cfg(not(feature = "chaos"))]
    {
        false
    }
}

/// Injection site: flip bytes of a cached pattern list before the cache
/// verifies its checksum. Returns `true` when a mutation was applied.
#[inline]
pub fn corrupt_patterns(patterns: &mut Vec<crate::types::ItemsetCount>) -> bool {
    #[cfg(feature = "chaos")]
    {
        let Some(p) = active::current() else {
            return false;
        };
        if !p.fire_ordinal(FaultSite::CacheCorrupt) {
            return false;
        }
        if patterns.is_empty() {
            patterns.push(crate::types::ItemsetCount {
                items: vec![u32::MAX],
                support: p.flavor,
            });
            return true;
        }
        let idx = (p.flavor >> 8) as usize % patterns.len();
        match p.flavor % 4 {
            0 => patterns[idx].support = patterns[idx].support.wrapping_add(1),
            1 => match patterns[idx].items.first_mut() {
                Some(item) => *item ^= 1,
                None => patterns[idx].items.push(0),
            },
            2 => {
                let half = patterns.len() / 2;
                patterns.truncate(half);
            }
            _ => patterns.clear(),
        }
        true
    }
    #[cfg(not(feature = "chaos"))]
    {
        let _ = patterns;
        false
    }
}

/// Injection site: should the admission decision flap to a rejection?
#[inline]
pub fn admission_flap() -> bool {
    #[cfg(feature = "chaos")]
    {
        active::current().is_some_and(|p| p.fire_ordinal(FaultSite::AdmissionFlap))
    }
    #[cfg(not(feature = "chaos"))]
    {
        false
    }
}

/// Injection site: a shard worker has just picked a job from shard
/// `shard`'s queue. The delay flavor sleeps here — other shards keep
/// draining, which the campaign asserts — and returns `false`; the
/// panic flavor returns `true` exactly once, telling the worker to fail
/// the picked job as a simulated worker loss.
#[inline]
pub fn shard_stall(shard: usize) -> bool {
    #[cfg(feature = "chaos")]
    {
        let Some(p) = active::current() else {
            return false;
        };
        if !p.fire_shard(shard as u64) {
            return false;
        }
        if p.shard_stall_panics() {
            return true;
        }
        // Stall, don't fail: scale the steal-delay budget up to
        // milliseconds so the stall is observable next to real mining.
        std::thread::sleep(std::time::Duration::from_micros(p.delay_us * 100));
        false
    }
    #[cfg(not(feature = "chaos"))]
    {
        let _ = shard;
        false
    }
}

/// Injection site: damage a serialized store artifact's bytes between
/// the disk read and the sectioned decode. Returns `true` when a
/// mutation was applied. The truncation flavor cuts the buffer to a
/// strictly shorter seed-chosen length; the bit-flip flavor flips one
/// seed-chosen bit. Either way the artifact format's full checksum
/// coverage must turn the damage into a detected load failure.
#[inline]
pub fn corrupt_artifact(bytes: &mut Vec<u8>) -> bool {
    #[cfg(feature = "chaos")]
    {
        let Some(p) = active::current() else {
            return false;
        };
        if !p.fire_ordinal(FaultSite::ArtifactCorrupt) {
            return false;
        }
        if bytes.is_empty() {
            bytes.push(0xFF);
            return true;
        }
        let at = (p.flavor >> 8) as usize % bytes.len();
        if p.flavor % 2 == 0 {
            bytes.truncate(at);
        } else {
            bytes[at] ^= 1 << ((p.flavor >> 4) % 8);
        }
        true
    }
    #[cfg(not(feature = "chaos"))]
    {
        let _ = bytes;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_labels_roundtrip() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::by_label(site.label()), Some(site));
        }
        assert_eq!(FaultSite::by_label("nope"), None);
    }

    #[test]
    fn plans_are_pure_functions_of_the_seed() {
        for seed in 0..512u64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a.site(), b.site(), "seed={seed}");
            assert_eq!(a.fire_at(), b.fire_at(), "seed={seed}");
            assert_eq!(a.flavor, b.flavor, "seed={seed}");
            assert_eq!(a.burst, b.burst, "seed={seed}");
        }
    }

    #[test]
    fn seeds_cover_every_site() {
        let mut seen = [false; 7];
        for seed in 0..64u64 {
            let p = FaultPlan::from_seed(seed);
            seen[FaultSite::ALL.iter().position(|s| *s == p.site()).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 seeds must hit all sites: {seen:?}");
    }

    #[test]
    fn directed_plan_fires_exactly_once_at_its_ordinal() {
        let p = FaultPlan::at(FaultSite::SpuriousTrip, 3);
        let fired: Vec<bool> = (0..8).map(|_| p.fire_ordinal(FaultSite::SpuriousTrip)).collect();
        assert_eq!(
            fired,
            vec![false, false, false, true, false, false, false, false]
        );
        assert_eq!(p.fired(), 1);
        // Other sites never consume this plan's schedule.
        assert!(!p.fire_ordinal(FaultSite::CacheCorrupt));
        assert!(!p.fire_index(FaultSite::WorkerPanic, 3));
        assert!(!p.fire_shard(3));
    }

    #[test]
    fn shard_stall_plan_targets_one_shard_only() {
        let p = FaultPlan::at(FaultSite::ShardStall, 2);
        assert!(!p.fire_shard(0));
        assert!(!p.fire_shard(3));
        if p.shard_stall_panics() {
            assert!(p.fire_shard(2));
            assert!(!p.fire_shard(2), "panic flavor fires once");
        } else {
            for _ in 0..p.burst {
                assert!(p.fire_shard(2));
            }
            assert!(!p.fire_shard(2), "delay flavor stops after its burst");
        }
    }

    #[test]
    fn index_scheduled_site_is_order_independent() {
        let p = FaultPlan::at(FaultSite::WorkerPanic, 5);
        assert!(!p.fire_index(FaultSite::WorkerPanic, 4));
        assert!(!p.fire_index(FaultSite::WorkerPanic, 6));
        assert!(p.fire_index(FaultSite::WorkerPanic, 5));
        assert_eq!(p.fired(), 1);
    }

    #[cfg(not(feature = "chaos"))]
    #[test]
    fn hooks_are_inert_without_the_feature() {
        assert!(!worker_panic(0));
        assert!(!spurious_trip());
        assert!(!admission_flap());
        assert!(!shard_stall(0));
        steal_delay();
        let mut patterns = vec![crate::types::ItemsetCount {
            items: vec![1, 2],
            support: 3,
        }];
        let before = patterns.clone();
        assert!(!corrupt_patterns(&mut patterns));
        assert_eq!(patterns, before);
        let mut bytes = vec![1u8, 2, 3];
        assert!(!corrupt_artifact(&mut bytes));
        assert_eq!(bytes, vec![1, 2, 3]);
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn installed_plan_drives_hooks_and_guard_clears() {
        // Single test touching the global slot in this crate's test
        // binary, so no cross-test serialization is needed here.
        let guard = install(FaultPlan::at(FaultSite::WorkerPanic, 2));
        assert!(!worker_panic(0));
        assert!(worker_panic(2));
        assert_eq!(guard.plan().fired(), 1);
        assert!(!spurious_trip(), "other sites stay quiet");
        drop(guard);
        assert!(!worker_panic(2), "guard drop disarms the plan");
    }
}
