//! Core identifier and result types shared by every miner.

use serde::{Deserialize, Serialize};

/// An item identifier. In *raw* databases this is the external label; in
/// *ranked* databases (after [`crate::remap`]) it is the frequency rank,
/// with `0` the most frequent item — which makes "decreasing frequency
/// order" plain ascending integer order everywhere downstream.
pub type Item = u32;

/// A transaction identifier (its index in the database).
pub type Tid = u32;

/// One mined pattern: the itemset (sorted ascending) and its support.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ItemsetCount {
    /// The items, sorted ascending.
    pub items: Vec<Item>,
    /// Number of transactions (weighted) subsuming the itemset.
    pub support: u64,
}

/// Which family of patterns to emit.
///
/// `All` is the paper's setting; `Closed` and `Maximal` are the LCM
/// extensions (LCM is, after all, the *closed* itemset miner) implemented
/// as the workspace's future-work deliverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MineKind {
    /// Every frequent itemset.
    All,
    /// Frequent itemsets with no superset of equal support.
    Closed,
    /// Frequent itemsets with no frequent superset.
    Maximal,
}

impl MineKind {
    /// Display label.
    pub fn name(&self) -> &'static str {
        match self {
            MineKind::All => "all",
            MineKind::Closed => "closed",
            MineKind::Maximal => "maximal",
        }
    }
}

/// Canonicalizes a result set for comparison: sorts each itemset's items
/// and then the list of patterns. Every cross-miner equivalence test goes
/// through this.
pub fn canonicalize(mut patterns: Vec<ItemsetCount>) -> Vec<ItemsetCount> {
    for p in &mut patterns {
        p.items.sort_unstable();
    }
    patterns.sort();
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_sorts_items_and_patterns() {
        let raw = vec![
            ItemsetCount { items: vec![3, 1], support: 2 },
            ItemsetCount { items: vec![1], support: 5 },
        ];
        let c = canonicalize(raw);
        assert_eq!(c[0].items, vec![1]);
        assert_eq!(c[1].items, vec![1, 3]);
    }

    #[test]
    fn mine_kind_names() {
        assert_eq!(MineKind::All.name(), "all");
        assert_eq!(MineKind::Closed.name(), "closed");
        assert_eq!(MineKind::Maximal.name(), "maximal");
    }
}
