//! Core identifier and result types shared by every miner.

use serde::{Deserialize, Serialize};

/// An item identifier. In *raw* databases this is the external label; in
/// *ranked* databases (after [`crate::remap()`]) it is the frequency rank,
/// with `0` the most frequent item — which makes "decreasing frequency
/// order" plain ascending integer order everywhere downstream.
pub type Item = u32;

/// A transaction identifier (its index in the database).
pub type Tid = u32;

/// One mined pattern: the itemset (sorted ascending) and its support.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ItemsetCount {
    /// The items, sorted ascending.
    pub items: Vec<Item>,
    /// Number of transactions (weighted) subsuming the itemset.
    pub support: u64,
}

/// Which family of patterns to emit.
///
/// `All` is the paper's setting; `Closed` and `Maximal` are the LCM
/// extensions (LCM is, after all, the *closed* itemset miner) implemented
/// as the workspace's future-work deliverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MineKind {
    /// Every frequent itemset.
    All,
    /// Frequent itemsets with no superset of equal support.
    Closed,
    /// Frequent itemsets with no frequent superset.
    Maximal,
}

impl MineKind {
    /// Display label.
    pub fn name(&self) -> &'static str {
        match self {
            MineKind::All => "all",
            MineKind::Closed => "closed",
            MineKind::Maximal => "maximal",
        }
    }

    /// Parses `all` / `closed` / `maximal`.
    pub fn by_label(label: &str) -> Option<MineKind> {
        match label.to_ascii_lowercase().as_str() {
            "all" => Some(MineKind::All),
            "closed" => Some(MineKind::Closed),
            "maximal" => Some(MineKind::Maximal),
            _ => None,
        }
    }

    /// A stable one-byte code for cache keys and on-disk query tags —
    /// the [`Kernel::code`] convention applied to pattern classes.
    pub fn code(&self) -> u8 {
        match self {
            MineKind::All => 0,
            MineKind::Closed => 1,
            MineKind::Maximal => 2,
        }
    }

    /// The inverse of [`code`](MineKind::code).
    pub fn from_code(code: u8) -> Option<MineKind> {
        match code {
            0 => Some(MineKind::All),
            1 => Some(MineKind::Closed),
            2 => Some(MineKind::Maximal),
            _ => None,
        }
    }

    /// All pattern classes a query can ask for.
    pub const ALL: [MineKind; 3] = [MineKind::All, MineKind::Closed, MineKind::Maximal];
}

/// Which mining kernel executes a run.
///
/// This is the workspace-wide kernel identity: the serve layer keys its
/// result cache on it, the CLI parses it from `--kernel`, and the exec
/// layer dispatches a `MinePlan` through it. (The serial-only reference
/// miners — apriori, hmine — are not listed here: they have no parallel
/// spine and the service never dispatches to them.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// `fpm-lcm` (array-based horizontal).
    Lcm,
    /// `fpm-eclat` (vertical bit matrix).
    Eclat,
    /// `fpm-fpgrowth` (prefix tree).
    FpGrowth,
}

impl Kernel {
    /// Parses `lcm` / `eclat` / `fpgrowth`.
    pub fn by_label(label: &str) -> Option<Kernel> {
        match label.to_ascii_lowercase().as_str() {
            "lcm" => Some(Kernel::Lcm),
            "eclat" => Some(Kernel::Eclat),
            "fpgrowth" => Some(Kernel::FpGrowth),
            _ => None,
        }
    }

    /// The wire label.
    pub fn label(&self) -> &'static str {
        match self {
            Kernel::Lcm => "lcm",
            Kernel::Eclat => "eclat",
            Kernel::FpGrowth => "fpgrowth",
        }
    }

    /// A stable one-byte code for cache keys.
    pub fn code(&self) -> u8 {
        match self {
            Kernel::Lcm => 0,
            Kernel::Eclat => 1,
            Kernel::FpGrowth => 2,
        }
    }

    /// All kernels the service dispatches to.
    pub const ALL: [Kernel; 3] = [Kernel::Lcm, Kernel::Eclat, Kernel::FpGrowth];
}

/// Canonicalizes a result set for comparison: sorts each itemset's items
/// and then the list of patterns. Every cross-miner equivalence test goes
/// through this.
pub fn canonicalize(mut patterns: Vec<ItemsetCount>) -> Vec<ItemsetCount> {
    for p in &mut patterns {
        p.items.sort_unstable();
    }
    patterns.sort();
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_sorts_items_and_patterns() {
        let raw = vec![
            ItemsetCount { items: vec![3, 1], support: 2 },
            ItemsetCount { items: vec![1], support: 5 },
        ];
        let c = canonicalize(raw);
        assert_eq!(c[0].items, vec![1]);
        assert_eq!(c[1].items, vec![1, 3]);
    }

    #[test]
    fn kernel_labels_roundtrip() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::by_label(k.label()), Some(k));
        }
        assert_eq!(Kernel::by_label("LCM"), Some(Kernel::Lcm));
        assert_eq!(Kernel::by_label("nope"), None);
        // Cache keys depend on these codes staying put.
        assert_eq!(Kernel::Lcm.code(), 0);
        assert_eq!(Kernel::Eclat.code(), 1);
        assert_eq!(Kernel::FpGrowth.code(), 2);
    }

    #[test]
    fn mine_kind_names() {
        assert_eq!(MineKind::All.name(), "all");
        assert_eq!(MineKind::Closed.name(), "closed");
        assert_eq!(MineKind::Maximal.name(), "maximal");
    }

    #[test]
    fn mine_kind_codes_roundtrip() {
        for kind in MineKind::ALL {
            assert_eq!(MineKind::from_code(kind.code()), Some(kind));
            assert_eq!(MineKind::by_label(kind.name()), Some(kind));
        }
        // Query encodings and store tags depend on these codes staying put.
        assert_eq!(MineKind::All.code(), 0);
        assert_eq!(MineKind::Closed.code(), 1);
        assert_eq!(MineKind::Maximal.code(), 2);
        assert_eq!(MineKind::from_code(3), None);
        assert_eq!(MineKind::by_label("CLOSED"), Some(MineKind::Closed));
        assert_eq!(MineKind::by_label("nope"), None);
    }
}
