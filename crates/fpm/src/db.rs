//! The raw transactional database: what comes off disk or out of a
//! generator, before any mining-oriented restructuring.

use crate::types::Item;

/// A raw transaction database: a bag of item-set transactions over
/// external item identifiers.
///
/// Invariants maintained by the constructors: each transaction's items are
/// sorted ascending with duplicates removed; `n_items` is one past the
/// largest item id (0 when empty).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransactionDb {
    transactions: Vec<Vec<Item>>,
    n_items: usize,
}

impl TransactionDb {
    /// Builds a database from raw transactions, sorting and deduplicating
    /// the items of each. Empty transactions are kept (they carry no
    /// items but still count toward `len`, matching FIMI file semantics
    /// where blank lines are dropped by the reader instead).
    pub fn from_transactions(raw: Vec<Vec<Item>>) -> Self {
        let mut n_items = 0usize;
        let transactions: Vec<Vec<Item>> = raw
            .into_iter()
            .map(|mut t| {
                t.sort_unstable();
                t.dedup();
                if let Some(&max) = t.last() {
                    n_items = n_items.max(max as usize + 1);
                }
                t
            })
            .collect();
        TransactionDb {
            transactions,
            n_items,
        }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// `true` when the database has no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// One past the largest item identifier.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The transactions (each sorted ascending, deduplicated).
    pub fn transactions(&self) -> &[Vec<Item>] {
        &self.transactions
    }

    /// Total item occurrences across all transactions.
    pub fn nnz(&self) -> u64 {
        self.transactions.iter().map(|t| t.len() as u64).sum()
    }

    /// Mean transaction length.
    pub fn mean_len(&self) -> f64 {
        if self.transactions.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.transactions.len() as f64
        }
    }

    /// The support of a single item, by scan (used by tests; miners use
    /// the counted supports from [`crate::remap()`]).
    pub fn item_support(&self, item: Item) -> u64 {
        self.transactions
            .iter()
            .filter(|t| t.binary_search(&item).is_ok())
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        let db = TransactionDb::from_transactions(vec![vec![3, 1, 3], vec![], vec![0, 2]]);
        assert_eq!(db.len(), 3);
        assert_eq!(db.n_items(), 4);
        assert_eq!(db.transactions()[0], vec![1, 3]);
        assert_eq!(db.nnz(), 4);
    }

    #[test]
    fn empty_db() {
        let db = TransactionDb::default();
        assert!(db.is_empty());
        assert_eq!(db.n_items(), 0);
        assert_eq!(db.mean_len(), 0.0);
    }

    #[test]
    fn item_support_by_scan() {
        let db = TransactionDb::from_transactions(vec![vec![0, 1], vec![1], vec![2, 1], vec![0]]);
        assert_eq!(db.item_support(1), 3);
        assert_eq!(db.item_support(0), 2);
        assert_eq!(db.item_support(9), 0);
    }
}
