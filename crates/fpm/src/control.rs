//! Cooperative cancellation for mining runs.
//!
//! A mining query in a service setting must stop in bounded time when its
//! caller goes away, its deadline passes, or it has produced as much
//! output as anyone asked for. The kernels are deep recursions, so the
//! only safe way to stop them early is cooperatively: a shared
//! [`MineControl`] is threaded into every miner, and the recursion spines
//! (the per-child loops of LCM's `node`, Eclat's `recurse`, FP-Growth's
//! header-table walk) call [`MineControl::should_stop`] at node
//! granularity. Once any stop condition fires the control *trips*
//! monotonically — every subsequent check observes the trip and unwinds —
//! so the emitted output is always a contiguous **prefix** of the serial
//! emission order: the cut only ever removes a tail, never a middle.
//!
//! Four conditions can trip a control, with a first-cause-wins record:
//!
//! * **cancellation** — [`MineControl::cancel`] from any thread;
//! * **deadline** — a wall-clock [`Instant`] checked inside
//!   `should_stop`;
//! * **budget** — an emitted-pattern quota charged by
//!   [`ControlledSink`](crate::sink::ControlledSink) on every delivery;
//! * **task failure** — [`MineControl::trip_panicked`], recorded by the
//!   executor when a mining task panics (the worker catches the unwind,
//!   the run stops, and the output already delivered is still a clean
//!   serial prefix).
//!
//! The fast path of `should_stop` is one relaxed atomic load, so checking
//! once per recursion node adds nothing measurable to a mining run.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Why a controlled run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// [`MineControl::cancel`] was called.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The emitted-pattern budget was exhausted.
    BudgetExhausted,
    /// A mining task panicked; the run stopped at the failure point.
    TaskPanicked,
}

const RUNNING: u8 = 0;
const TRIP_CANCELLED: u8 = 1;
const TRIP_DEADLINE: u8 = 2;
const TRIP_BUDGET: u8 = 3;
const TRIP_FAILED: u8 = 4;

/// Shared, thread-safe stop signal for one mining run.
///
/// Cheap to check (`should_stop` is a relaxed load until something
/// trips), cheap to share (`&MineControl` or `Arc<MineControl>` both
/// work), and monotonic: once tripped it stays tripped, which is what
/// guarantees the emitted-prefix property of cancelled runs.
#[derive(Debug)]
pub struct MineControl {
    cancelled: AtomicBool,
    /// First cause to fire, encoded as the `TRIP_*` constants.
    tripped: AtomicU8,
    deadline: Option<Instant>,
    budget: Option<u64>,
    emitted: AtomicU64,
    /// Dynamic minimum-support floor for top-k runs: raised monotonically
    /// as the selection heap fills, read by collectors to skip patterns
    /// that can no longer place.
    support_floor: AtomicU64,
}

impl Default for MineControl {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl MineControl {
    /// A control that never stops on its own — only [`cancel`] can trip
    /// it. This is what the plain `mine` entry points run under.
    ///
    /// [`cancel`]: MineControl::cancel
    pub fn unlimited() -> Self {
        MineControl {
            cancelled: AtomicBool::new(false),
            tripped: AtomicU8::new(RUNNING),
            deadline: None,
            budget: None,
            emitted: AtomicU64::new(0),
            support_floor: AtomicU64::new(0),
        }
    }

    /// A control with an optional wall-clock deadline (from now) and an
    /// optional emitted-pattern budget.
    pub fn new(deadline: Option<Duration>, budget: Option<u64>) -> Self {
        MineControl {
            deadline: deadline.map(|d| Instant::now() + d),
            budget,
            ..Self::unlimited()
        }
    }

    /// A control that trips after `timeout` of wall-clock time.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::new(Some(timeout), None)
    }

    /// A control that trips after `budget` delivered patterns.
    pub fn with_budget(budget: u64) -> Self {
        Self::new(None, Some(budget))
    }

    /// Requests cancellation from any thread. Takes effect at the next
    /// `should_stop` check in every miner sharing this control.
    pub fn cancel(&self) {
        // ORDERING: Relaxed — a monotonic request flag polled at the
        // next checkpoint; no payload is published through it, and the
        // prefix-consistency contract already tolerates checkpoint-
        // granularity latency in when the cancel lands.
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Records `cause` as the trip reason if nothing tripped before it.
    fn trip(&self, cause: u8) {
        // ORDERING: Relaxed — first-cause-wins latch on a single cell;
        // the CAS itself serializes competing causes, readers only
        // branch on the value, and the winning cause travels to the
        // caller through the runtime's join/mutex edges, not this flag.
        let _ = self
            .tripped
            .compare_exchange(RUNNING, cause, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Records a task failure (first-cause-wins, like every trip): the
    /// executor calls this after catching a mining task's unwind, so
    /// the run reports [`StopCause::TaskPanicked`] instead of
    /// propagating the panic past the already-delivered prefix.
    pub fn trip_panicked(&self) {
        self.trip(TRIP_FAILED);
    }

    /// The cooperative checkpoint: `true` once the run must unwind.
    ///
    /// Called by the kernels at recursion-node granularity and by the
    /// parallel runtime before each task. The first `true` return also
    /// records the cause ([`stop_cause`](MineControl::stop_cause)).
    #[inline]
    pub fn should_stop(&self) -> bool {
        // ORDERING: Relaxed — monotonic latch, control-flow only.
        if self.tripped.load(Ordering::Relaxed) != RUNNING {
            return true;
        }
        // ORDERING: Relaxed — monotonic request flag; a stale `false`
        // just runs one more checkpoint interval, which the contract allows.
        if self.cancelled.load(Ordering::Relaxed) {
            self.trip(TRIP_CANCELLED);
            return true;
        }
        // Chaos injection site: a spurious trip is recorded as a
        // cancellation — the injected cancel is the true first cause.
        // Without the `chaos` feature this is a constant `false`.
        if crate::faults::spurious_trip() {
            self.trip(TRIP_CANCELLED);
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.trip(TRIP_DEADLINE);
                return true;
            }
        }
        false
    }

    /// Charges one delivered pattern against the budget; `true` means
    /// "deliver it". Returns `false` (suppress) once the control has
    /// tripped for any reason, so a sink wrapped in this control emits a
    /// clean prefix even if a deadline fires between two recursion
    /// checkpoints. The delivery that *exactly* exhausts the budget is
    /// still forwarded, then trips the control.
    #[inline]
    pub fn charge_emission(&self) -> bool {
        // ORDERING: Relaxed — control-flow-only read of the trip latch;
        // the emission counter below is the (exempt) counter that keeps
        // the budget arithmetic exact.
        if self.tripped.load(Ordering::Relaxed) != RUNNING {
            return false;
        }
        let n = self.emitted.fetch_add(1, Ordering::Relaxed) + 1;
        match self.budget {
            Some(b) if n > b => {
                self.trip(TRIP_BUDGET);
                false
            }
            Some(b) if n == b => {
                self.trip(TRIP_BUDGET);
                true
            }
            _ => true,
        }
    }

    /// Patterns delivered so far under this control.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Raises the dynamic support floor (monotone max). A top-k
    /// selection calls this once its heap holds `k` patterns: every
    /// further candidate below the floor is provably outside the final
    /// answer, so collectors may skip it without changing the output.
    pub fn raise_support_floor(&self, floor: u64) {
        // ORDERING: Relaxed — monotonic max used only as a skip hint;
        // a stale low value admits a pattern the selection heap then
        // rejects deterministically, never the other way around.
        self.support_floor.fetch_max(floor, Ordering::Relaxed);
    }

    /// The current dynamic support floor (0 until a top-k selection
    /// raises it).
    pub fn support_floor(&self) -> u64 {
        // ORDERING: Relaxed — see `raise_support_floor`; the floor is a
        // monotone hint, not a synchronization edge.
        self.support_floor.load(Ordering::Relaxed)
    }

    /// Why the run stopped, or `None` while it is still allowed to run.
    pub fn stop_cause(&self) -> Option<StopCause> {
        // ORDERING: Relaxed — the cause byte is the whole message; it is
        // read after the run quiesces (join or checkpoint return), so no
        // other memory needs to be ordered behind it.
        match self.tripped.load(Ordering::Relaxed) {
            TRIP_CANCELLED => Some(StopCause::Cancelled),
            TRIP_DEADLINE => Some(StopCause::DeadlineExceeded),
            TRIP_BUDGET => Some(StopCause::BudgetExhausted),
            TRIP_FAILED => Some(StopCause::TaskPanicked),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_stops() {
        let c = MineControl::unlimited();
        for _ in 0..1000 {
            assert!(!c.should_stop());
            assert!(c.charge_emission());
        }
        assert_eq!(c.stop_cause(), None);
        assert_eq!(c.emitted(), 1000);
    }

    #[test]
    fn cancel_trips_and_sticks() {
        let c = MineControl::unlimited();
        assert!(!c.should_stop());
        c.cancel();
        assert!(c.should_stop());
        assert!(c.should_stop());
        assert_eq!(c.stop_cause(), Some(StopCause::Cancelled));
        // Emissions after the trip are suppressed.
        assert!(!c.charge_emission());
    }

    #[test]
    fn expired_deadline_trips() {
        let c = MineControl::with_deadline(Duration::from_secs(0));
        assert!(c.should_stop());
        assert_eq!(c.stop_cause(), Some(StopCause::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let c = MineControl::with_deadline(Duration::from_secs(3600));
        assert!(!c.should_stop());
        assert_eq!(c.stop_cause(), None);
    }

    #[test]
    fn budget_delivers_exactly_n_then_trips() {
        let c = MineControl::with_budget(3);
        assert!(c.charge_emission());
        assert!(c.charge_emission());
        assert!(!c.should_stop(), "under budget: keep mining");
        assert!(c.charge_emission(), "the exhausting delivery is forwarded");
        assert_eq!(c.stop_cause(), Some(StopCause::BudgetExhausted));
        assert!(c.should_stop());
        assert!(!c.charge_emission(), "over budget: suppressed");
    }

    #[test]
    fn trip_panicked_sticks_and_suppresses_emissions() {
        let c = MineControl::unlimited();
        c.trip_panicked();
        assert!(c.should_stop());
        assert_eq!(c.stop_cause(), Some(StopCause::TaskPanicked));
        assert!(!c.charge_emission(), "post-failure emissions are suppressed");
        // First cause wins: a later cancel does not rewrite history.
        c.cancel();
        assert_eq!(c.stop_cause(), Some(StopCause::TaskPanicked));
    }

    #[test]
    fn first_cause_wins() {
        let c = MineControl::with_budget(1);
        assert!(c.charge_emission());
        c.cancel();
        assert!(c.should_stop());
        assert_eq!(c.stop_cause(), Some(StopCause::BudgetExhausted));
    }

    #[test]
    fn zero_budget_suppresses_everything() {
        let c = MineControl::with_budget(0);
        assert!(!c.charge_emission());
        assert_eq!(c.stop_cause(), Some(StopCause::BudgetExhausted));
        assert_eq!(c.emitted(), 1, "the attempt is counted, not delivered");
    }

    #[test]
    fn support_floor_is_monotone_max() {
        let c = MineControl::unlimited();
        assert_eq!(c.support_floor(), 0);
        c.raise_support_floor(5);
        assert_eq!(c.support_floor(), 5);
        c.raise_support_floor(3);
        assert_eq!(c.support_floor(), 5, "floor never lowers");
        c.raise_support_floor(9);
        assert_eq!(c.support_floor(), 9);
    }

    #[test]
    fn shared_across_threads() {
        let c = std::sync::Arc::new(MineControl::unlimited());
        let c2 = c.clone();
        let t = std::thread::spawn(move || c2.cancel());
        t.join().unwrap();
        assert!(c.should_stop());
    }
}
