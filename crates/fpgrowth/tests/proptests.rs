//! Property tests: every FP-Growth tree representation mines identically
//! on arbitrary inputs, and conditional-tree recursion respects the
//! frequent-itemset contract.

use fpm_fpgrowth as fpgrowth;
use fpm::types::canonicalize;
use fpm::{CollectSink, TransactionDb};
use proptest::prelude::*;

fn run(db: &TransactionDb, minsup: u64, cfg: &fpgrowth::FpConfig) -> Vec<fpm::ItemsetCount> {
    let mut s = CollectSink::default();
    fpgrowth::mine(db, minsup, cfg, &mut s);
    canonicalize(s.patterns)
}

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(
        prop::collection::btree_set(0u32..16, 0..10)
            .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
        0..60,
    )
    .prop_map(TransactionDb::from_transactions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn representations_agree(db in arb_db(), minsup in 1u64..8) {
        let expect = run(&db, minsup, &fpgrowth::FpConfig::baseline());
        for (name, cfg) in fpgrowth::variants() {
            prop_assert_eq!(run(&db, minsup, &cfg), expect.clone(), "{}", name);
        }
    }

    #[test]
    fn supports_are_exact(db in arb_db(), minsup in 1u64..8) {
        for p in run(&db, minsup, &fpgrowth::FpConfig::all()) {
            let scan = db
                .transactions()
                .iter()
                .filter(|t| p.items.iter().all(|i| t.binary_search(i).is_ok()))
                .count() as u64;
            prop_assert_eq!(p.support, scan);
            prop_assert!(p.support >= minsup);
        }
    }
}
