//! FP-Growth's [`KernelSpine`] implementation — the kernel's
//! task-parallel skeleton consumed by `fpm-exec`'s `MinePlan`
//! (DESIGN.md §11).
//!
//! The header-table walk of the root FP-tree runs bottom-up (highest
//! rank first), and each item's conditional tree is independent of
//! every other's; one task per frequent header item, mined against the
//! shared read-only root tree, concatenates in walk order to the serial
//! emission sequence of [`crate::mine`].

use crate::tree::FpTree;
use crate::{Forward, FpConfig, FpStats, Miner};
use fpm::control::MineControl;
use fpm::exec::KernelSpine;
use fpm::{remap, PatternSink, RankMap, TransactionDb, TranslateSink};
use memsim::{NullProbe, Probe};

/// The spine handle: a zero-sized type carrying the associated items.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpSpine;

/// The shared read-only root of an FP-Growth run: remapped rank space
/// plus the finalized root FP-tree.
pub struct FpPrepared {
    map: RankMap,
    tree: FpTree,
    n_ranks: usize,
    minsup: u64,
    cfg: FpConfig,
}

impl KernelSpine for FpSpine {
    type Config = FpConfig;
    type Prepared = FpPrepared;
    /// One frequent header item (its conditional-tree subtree).
    type Task = u32;

    fn prepare(db: &TransactionDb, minsup: u64, cfg: &Self::Config) -> Self::Prepared {
        let ranked = remap(db, minsup);
        let mut transactions = ranked.transactions.clone();
        if cfg.lex {
            also::lexorder::lex_order(&mut transactions);
        }
        let n_ranks = ranked.n_ranks();
        let mut tree = FpTree::new(n_ranks, cfg.repr());
        for t in &transactions {
            tree.insert(t, 1, &mut NullProbe);
        }
        tree.finalize();
        FpPrepared {
            map: ranked.map,
            tree,
            n_ranks,
            minsup: minsup.max(1),
            cfg: *cfg,
        }
    }

    fn root_tasks(prepared: &Self::Prepared) -> Vec<Self::Task> {
        // Bottom-up header walk: the serial miner visits highest ranks
        // first, so descending rank *is* the serial emission order.
        (0..prepared.n_ranks as u32)
            .rev()
            .filter(|&item| prepared.tree.header_sup[item as usize] >= prepared.minsup)
            .collect()
    }

    fn mine_task<P: Probe, S: PatternSink>(
        prepared: &Self::Prepared,
        task: Self::Task,
        probe: &mut P,
        control: &MineControl,
        sink: &mut S,
    ) -> bool {
        let mut translate = TranslateSink::new(&prepared.map, Forward(sink));
        let mut miner = Miner {
            minsup: prepared.minsup,
            cfg: prepared.cfg,
            probe,
            sink: &mut translate,
            stats: FpStats::default(),
            control,
            cut: false,
            prefix: Vec::new(),
            counts: vec![0u64; prepared.n_ranks],
            stamps: vec![0u32; prepared.n_ranks],
            epoch: 0,
        };
        miner.mine_item(&prepared.tree, task);
        !miner.cut
    }
}
