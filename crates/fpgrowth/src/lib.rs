//! # `fpm-fpgrowth` — prefix-tree miner with ALSO-tuned variants
//!
//! FP-Growth (Han, Pei & Yin, SIGMOD'00) mines without candidate
//! generation: the database is compressed into an FP-tree
//! ([`tree::FpTree`]); for each frequent item, the *conditional pattern
//! base* (every prefix path leading to that item's nodes) is gathered by
//! following header node-links and walking to the root, a conditional
//! FP-tree is built from it, and mining recurses. The paper profiles it
//! as **memory bound** (Figure 2) — both hot access patterns are pointer
//! chases — and tunes it with:
//!
//! * **P1 — lexicographic ordering** of the input: consecutive insertions
//!   share long prefixes (tree construction stays in cache) and
//!   parent/child pairs land in adjacent pool slots for later walks;
//! * **P2 — data structure adaptation**: the one-byte differential item
//!   encoding of §4.3 shrinks the per-node traversal footprint from 24 to
//!   5 bytes;
//! * **P3 — aggregation**: three ancestor items replicated inline per
//!   node, one dereference per three levels of upward walk;
//! * **P5 + P7 — prefetch pointers + software prefetch** along the header
//!   node-link chains.
//!
//! [`variants`] names the columns of the paper's Figure 8(d): `base`,
//! `lex`, `reorg` (P2+P3), `pref`, `all`.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod spine;
pub mod tree;

pub use spine::FpSpine;

use fpm::control::MineControl;
use fpm::{remap, ControlledSink, PatternSink, TransactionDb, TranslateSink};
use memsim::{NullProbe, Probe};
use tree::{FpTree, TreeRepr};

/// Pattern selection for an FP-Growth run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpConfig {
    /// P1: lexicographically reorder transactions before construction.
    pub lex: bool,
    /// P2: differential one-byte node encoding.
    pub adapt: bool,
    /// P3: aggregated ancestor supernodes for path walks.
    pub aggregate: bool,
    /// P5+P7: jump-pointer software prefetch along node-link chains.
    pub prefetch: bool,
}

impl FpConfig {
    /// The untuned baseline.
    pub fn baseline() -> Self {
        FpConfig {
            lex: false,
            adapt: false,
            aggregate: false,
            prefetch: false,
        }
    }

    /// P1 only.
    pub fn lex() -> Self {
        FpConfig {
            lex: true,
            ..Self::baseline()
        }
    }

    /// The paper's `Reorg` column: data structure adaptation + tree
    /// aggregation (the 1.6× item of §4.4).
    pub fn reorg() -> Self {
        FpConfig {
            adapt: true,
            aggregate: true,
            ..Self::baseline()
        }
    }

    /// P5+P7 only.
    pub fn pref() -> Self {
        FpConfig {
            prefetch: true,
            ..Self::baseline()
        }
    }

    /// All applicable patterns.
    pub fn all() -> Self {
        FpConfig {
            lex: true,
            adapt: true,
            aggregate: true,
            prefetch: true,
        }
    }

    pub(crate) fn repr(&self) -> TreeRepr {
        TreeRepr {
            adapt: self.adapt,
            aggregate: self.aggregate,
            jump_pointers: self.prefetch,
        }
    }
}

/// The named variants benchmarked in Figure 8(d): `(label, config)`.
pub fn variants() -> Vec<(&'static str, FpConfig)> {
    vec![
        ("base", FpConfig::baseline()),
        ("lex", FpConfig::lex()),
        ("reorg", FpConfig::reorg()),
        ("pref", FpConfig::pref()),
        ("all", FpConfig::all()),
    ]
}

/// Work counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FpStats {
    /// Conditional trees built.
    pub trees_built: u64,
    /// Total nodes across all trees.
    pub nodes_built: u64,
    /// Header-chain nodes visited.
    pub chain_nodes: u64,
    /// Path levels walked.
    pub path_levels: u64,
    /// Patterns emitted.
    pub emitted: u64,
}

/// Mines every frequent itemset of `db` at `minsup`, emitting patterns in
/// **original item ids** to `sink`. Returns work statistics.
pub fn mine<S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    cfg: &FpConfig,
    sink: &mut S,
) -> FpStats {
    mine_probed(db, minsup, cfg, &mut NullProbe, sink)
}

/// [`mine`] with memory instrumentation (see [`memsim`]).
///
/// These two serial entry points are the kernel's whole mining surface.
/// Control (cancellation, deadlines, budgets) and parallelism are
/// composed once, above the kernel, by `fpm-exec`'s `MinePlan` driving
/// this crate's [`spine`] implementation.
pub fn mine_probed<P: Probe, S: PatternSink>(
    db: &TransactionDb,
    minsup: u64,
    cfg: &FpConfig,
    probe: &mut P,
    sink: &mut S,
) -> FpStats {
    let control = MineControl::unlimited();
    let ranked = remap(db, minsup);
    let mut transactions = ranked.transactions.clone();
    if cfg.lex {
        also::lexorder::lex_order(&mut transactions);
        // Charge the preprocessing to the simulated run: the reorder is a
        // real cost the paper weighs against the benefit ("lexicographic
        // ordering is very time consuming" on very large inputs, §4.4).
        // One streamed read+write pass plus sort work per item.
        for t in &transactions {
            let (a, l) = memsim::slice_span(t);
            probe.read(a, l);
            probe.write(a, l);
            probe.instr(10 * t.len() as u64);
        }
    }
    let n_ranks = ranked.n_ranks();
    let mut tree = FpTree::new(n_ranks, cfg.repr());
    for t in &transactions {
        tree.insert(t, 1, probe);
    }
    tree.finalize();
    let mut translate =
        TranslateSink::new(&ranked.map, ControlledSink::new(&control, Forward(sink)));
    let mut miner = Miner {
        minsup: minsup.max(1),
        cfg: *cfg,
        probe,
        sink: &mut translate,
        stats: FpStats {
            trees_built: 1,
            nodes_built: tree.len() as u64,
            ..FpStats::default()
        },
        control: &control,
        cut: false,
        prefix: Vec::new(),
        counts: vec![0u64; n_ranks],
        stamps: vec![0u32; n_ranks],
        epoch: 0,
    };
    miner.mine_tree(&tree);
    miner.stats
}

pub(crate) struct Forward<'a, S>(pub(crate) &'a mut S);
impl<S: PatternSink> PatternSink for Forward<'_, S> {
    fn emit(&mut self, itemset: &[u32], support: u64) {
        self.0.emit(itemset, support);
    }
}

pub(crate) struct Miner<'a, P, S> {
    pub(crate) minsup: u64,
    pub(crate) cfg: FpConfig,
    pub(crate) probe: &'a mut P,
    pub(crate) sink: &'a mut S,
    pub(crate) stats: FpStats,
    /// Cooperative stop signal, polled once per (tree, item) step.
    pub(crate) control: &'a MineControl,
    /// Set when a control check cut the recursion: the emitted sequence
    /// is a strict prefix of the full serial output.
    pub(crate) cut: bool,
    pub(crate) prefix: Vec<u32>,
    // epoch-stamped conditional support counters
    pub(crate) counts: Vec<u64>,
    pub(crate) stamps: Vec<u32>,
    pub(crate) epoch: u32,
}

impl<P: Probe, S: PatternSink> Miner<'_, P, S> {
    /// Mines one (conditional) tree: bottom-up over the header table.
    fn mine_tree(&mut self, tree: &FpTree) {
        for item in (0..tree.n_ranks() as u32).rev() {
            self.mine_item(tree, item);
        }
    }

    /// Mines the subtree of itemsets whose *last* (highest-rank) item is
    /// `item`: emits the extended prefix, builds `item`'s conditional
    /// tree, and recurses into it. Conditional trees for different items
    /// of the root tree are independent — the decomposition the [`spine`]
    /// hands to the parallel driver as tasks.
    ///
    /// [`spine`]: crate::spine
    pub(crate) fn mine_item(&mut self, tree: &FpTree, item: u32) {
        if self.control.should_stop() {
            self.cut = true;
            return;
        }
        let sup = tree.header_sup[item as usize];
        if sup < self.minsup {
            return;
        }
        self.prefix.push(item);
        self.sink.emit(&self.prefix, sup);
        self.stats.emitted += 1;
        if let Some(cond) = self.conditional_tree(tree, item) {
            self.mine_tree(&cond);
        }
        self.prefix.pop();
    }

    /// Builds the conditional FP-tree for `item`: gather the prefix path
    /// of every chain node (with the node's count), compute conditional
    /// supports, filter infrequent items, and re-insert.
    fn conditional_tree(&mut self, tree: &FpTree, item: u32) -> Option<FpTree> {
        // Pass 1: collect paths into a flat buffer and count conditional
        // supports.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.fill(0);
            self.epoch = 1;
        }
        let mut chain: Vec<(u32, u32)> = Vec::new();
        tree.for_each_chain_node(item, self.probe, |node, count| {
            chain.push((node, count));
        });
        self.stats.chain_nodes += chain.len() as u64;
        let mut paths: Vec<(Vec<u32>, u32)> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        for &(node, count) in &chain {
            scratch.clear();
            tree.path_to_root(node, item, self.probe, &mut scratch);
            self.stats.path_levels += scratch.len() as u64;
            if scratch.is_empty() {
                continue;
            }
            for &it in &scratch {
                if self.stamps[it as usize] != self.epoch {
                    self.stamps[it as usize] = self.epoch;
                    self.counts[it as usize] = 0;
                }
                self.counts[it as usize] += count as u64;
            }
            // paths come leaf→root (descending rank); store ascending
            let mut asc = scratch.clone();
            asc.reverse();
            paths.push((asc, count));
        }
        if paths.is_empty() {
            return None;
        }
        // Pass 2: filter and insert.
        let minsup = self.minsup;
        let frequent =
            |it: u32| self.stamps[it as usize] == self.epoch && self.counts[it as usize] >= minsup;
        let mut cond = FpTree::new(tree.n_ranks(), self.cfg.repr());
        let mut filtered: Vec<u32> = Vec::new();
        let mut any = false;
        for (path, count) in &paths {
            filtered.clear();
            filtered.extend(path.iter().copied().filter(|&it| frequent(it)));
            if !filtered.is_empty() {
                cond.insert(&filtered, *count, self.probe);
                any = true;
            }
        }
        if !any {
            return None;
        }
        cond.finalize();
        self.stats.trees_built += 1;
        self.stats.nodes_built += cond.len() as u64;
        Some(cond)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpm::types::canonicalize;
    use fpm::CollectSink;

    fn run(db: &TransactionDb, minsup: u64, cfg: &FpConfig) -> Vec<fpm::ItemsetCount> {
        let mut sink = CollectSink::default();
        mine(db, minsup, cfg, &mut sink);
        canonicalize(sink.patterns)
    }

    fn toy() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 2, 5],
            vec![1, 2, 5],
            vec![0, 2, 5],
            vec![3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ])
    }

    #[test]
    fn all_variants_match_naive_on_toy() {
        for minsup in 1..=5u64 {
            let expect = canonicalize(fpm::naive::mine(&toy(), minsup));
            for (name, cfg) in variants() {
                assert_eq!(run(&toy(), minsup, &cfg), expect, "{name} minsup={minsup}");
            }
        }
    }

    #[test]
    fn variants_match_on_pseudorandom_db() {
        let mut s = 33u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let db = TransactionDb::from_transactions(
            (0..300)
                .map(|_| (0..16u32).filter(|_| rnd() % 3 == 0).collect::<Vec<_>>())
                .collect(),
        );
        let expect = run(&db, 8, &FpConfig::baseline());
        assert!(!expect.is_empty());
        for (name, cfg) in variants() {
            assert_eq!(run(&db, 8, &cfg), expect, "{name}");
        }
    }

    #[test]
    fn deep_tree_exercises_all_reprs() {
        // long shared-prefix transactions make deep conditional trees
        let db = TransactionDb::from_transactions(
            (0..60)
                .map(|k| (0..(10 + k % 5) as u32).collect::<Vec<_>>())
                .collect(),
        );
        let expect = canonicalize(fpm::naive::mine(&db, 30));
        for (name, cfg) in variants() {
            assert_eq!(run(&db, 30, &cfg), expect, "{name}");
        }
    }

    #[test]
    fn stats_plausible() {
        let mut sink = fpm::CountSink::default();
        let st = mine(&toy(), 2, &FpConfig::all(), &mut sink);
        assert_eq!(st.emitted, sink.count);
        assert!(st.trees_built >= 1);
        assert!(st.chain_nodes > 0);
    }

    #[test]
    fn empty_and_degenerate() {
        let mut sink = CollectSink::default();
        mine(&TransactionDb::default(), 1, &FpConfig::all(), &mut sink);
        assert!(sink.patterns.is_empty());
        let single = TransactionDb::from_transactions(vec![vec![9]]);
        let got = run(&single, 1, &FpConfig::all());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].items, vec![9]);
    }

    #[test]
    fn probed_run_is_memory_bound() {
        let mut s = 13u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let db = TransactionDb::from_transactions(
            (0..4000)
                .map(|_| (0..40u32).filter(|_| rnd() % 5 == 0).collect::<Vec<_>>())
                .collect(),
        );
        let mut probe = memsim::CacheProbe::new(memsim::Machine::m1());
        let mut sink = fpm::CountSink::default();
        mine_probed(&db, 40, &FpConfig::baseline(), &mut probe, &mut sink);
        let r = probe.report("fp-growth");
        assert!(
            r.cpi() > 0.8,
            "FP-Growth CPI {} should sit well above the 0.33 optimum",
            r.cpi()
        );
    }
}
