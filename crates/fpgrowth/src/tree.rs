//! The FP-tree (paper Figure 7): an augmented prefix tree whose nodes
//! carry an item, a count, a parent pointer, and a *node link* chaining
//! every node labelled with the same item off a header table. The two
//! hot access patterns — following header node-links, then walking each
//! node's path to the root — are both pointer chases, which is why the
//! paper's tuning targets node size (P2), path locality (P1, P3) and
//! latency hiding (P5, P7).
//!
//! Node storage comes in two *traversal representations*:
//!
//! * [`AosNode`] — the baseline 24-byte array-of-structs node;
//! * delta form (P2) — the path walk touches only a `parent: u32` array
//!   and a one-byte differential item code ([`also::adapt::DeltaByte`]),
//!   5 bytes per node instead of 24.
//!
//! The P3 overlay ([`AggNode`]) packs each node's three nearest ancestor
//! items plus a skip pointer into 16 bytes, so an upward walk
//! dereferences once per **three** levels; ancestors shared between paths
//! are replicated inline, the trade Figure 4 of the paper illustrates.

use also::adapt::{DeltaByte, DELTA_ESCAPE, NO_PARENT};
use memsim::Probe;

/// Sentinel node id (no node / root's parent).
pub const NONE: u32 = u32::MAX;
/// The root's pseudo-item.
pub const ROOT_ITEM: u32 = u32::MAX;

/// Baseline array-of-structs node (24 bytes).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct AosNode {
    /// Item rank.
    pub item: u32,
    /// Subtree transaction count.
    pub count: u32,
    /// Parent node id ([`NONE`] for root children — the root itself is
    /// not materialized in the AoS array).
    pub parent: u32,
    /// Next node with the same item (header chain).
    pub link: u32,
    /// First child (build-time only).
    pub first_child: u32,
    /// Next sibling (build-time only).
    pub sibling: u32,
}

/// The P2 (delta) traversal representation: dense field arrays with the
/// item stored as a one-byte difference from the parent's item.
#[derive(Debug, Default)]
pub struct DeltaRepr {
    /// One byte per node ([`DELTA_ESCAPE`] ⇒ side table).
    pub delta: Vec<u8>,
    /// Escape side table.
    pub codec: DeltaByte,
}

/// The P3 (aggregation) overlay: three ancestor items inline plus a skip
/// pointer three levels up.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct AggNode {
    /// Items of the parent, grandparent, great-grandparent
    /// ([`ROOT_ITEM`] marks "path ended here").
    pub anc: [u32; 3],
    /// Node id of the great-grandparent ([`NONE`] when the path ends
    /// within `anc`).
    pub skip: u32,
}

/// Which structures a tree materializes — derived from the miner config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeRepr {
    /// P2: delta representation instead of AoS for walks.
    pub adapt: bool,
    /// P3: aggregation overlay.
    pub aggregate: bool,
    /// P5: per-chain jump pointers (distance 2) for software prefetch.
    pub jump_pointers: bool,
}

/// An FP-tree over rank ids `0..n_ranks`.
pub struct FpTree {
    n_ranks: usize,
    // canonical SoA (always present; drives construction and serves as
    // the delta form's count/link/parent arrays)
    item: Vec<u32>,
    count: Vec<u32>,
    parent: Vec<u32>,
    link: Vec<u32>,
    first_child: Vec<u32>,
    sibling: Vec<u32>,
    /// Per rank: head of the node-link chain.
    pub header: Vec<u32>,
    /// Per rank: total support accumulated at insertion.
    pub header_sup: Vec<u64>,
    root_first_child: u32,
    repr: TreeRepr,
    aos: Vec<AosNode>,
    delta: DeltaRepr,
    agg: Vec<AggNode>,
    jump: Vec<u32>,
}

impl FpTree {
    /// Creates an empty tree.
    pub fn new(n_ranks: usize, repr: TreeRepr) -> Self {
        FpTree {
            n_ranks,
            item: Vec::new(),
            count: Vec::new(),
            parent: Vec::new(),
            link: Vec::new(),
            first_child: Vec::new(),
            sibling: Vec::new(),
            header: vec![NONE; n_ranks],
            header_sup: vec![0; n_ranks],
            root_first_child: NONE,
            repr,
            aos: Vec::new(),
            delta: DeltaRepr::default(),
            agg: Vec::new(),
            jump: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.item.len()
    }

    /// `true` when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.item.is_empty()
    }

    /// The item universe size.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Bytes used by the traversal structures — reported by the
    /// adaptation/aggregation benches.
    pub fn traversal_bytes(&self) -> usize {
        let mut b = 0;
        if self.repr.adapt {
            b += self.delta.delta.len() + self.parent.len() * 4 + self.delta.codec.bytes();
        } else {
            b += self.aos.len() * std::mem::size_of::<AosNode>();
        }
        if self.repr.aggregate {
            b += self.agg.len() * std::mem::size_of::<AggNode>();
        }
        if self.repr.jump_pointers {
            b += self.jump.len() * 4;
        }
        b
    }

    /// Inserts one transaction (items ascending in rank) with
    /// multiplicity `count`. Must be called before [`FpTree::finalize`].
    pub fn insert<P: Probe>(&mut self, items: &[u32], count: u32, probe: &mut P) {
        let mut cur = NONE; // virtual root
        for &it in items {
            debug_assert!((it as usize) < self.n_ranks);
            // find the child of `cur` labelled `it` by sibling scan
            let mut child = if cur == NONE {
                self.root_first_child
            } else {
                self.first_child[cur as usize]
            };
            let mut found = NONE;
            while child != NONE {
                probe.read_dep(memsim::addr_of(&self.item[child as usize]), 4);
                probe.instr(6);
                if self.item[child as usize] == it {
                    found = child;
                    break;
                }
                child = self.sibling[child as usize];
            }
            let node = if found != NONE {
                self.count[found as usize] += count;
                probe.write(memsim::addr_of(&self.count[found as usize]), 4);
                found
            } else {
                let id = self.item.len() as u32;
                self.item.push(it);
                self.count.push(count);
                self.parent.push(cur);
                self.link.push(self.header[it as usize]);
                self.header[it as usize] = id;
                if cur == NONE {
                    self.first_child.push(NONE);
                    self.sibling.push(self.root_first_child);
                    self.root_first_child = id;
                } else {
                    self.sibling.push(self.first_child[cur as usize]);
                    self.first_child.push(NONE);
                    self.first_child[cur as usize] = id;
                }
                probe.write(memsim::addr_of(&self.item[id as usize]), 24);
                probe.instr(8);
                id
            };
            self.header_sup[it as usize] += count as u64;
            cur = node;
        }
    }

    /// Builds the configured traversal representations. Call once after
    /// all insertions; the tree is read-only afterwards (the requirement
    /// the aggregation pattern imposes, §3.3).
    pub fn finalize(&mut self) {
        if self.repr.adapt {
            let mut codec = DeltaByte::new();
            let mut delta = Vec::with_capacity(self.len());
            for n in 0..self.len() as u32 {
                let p = self.parent[n as usize];
                let p_item = if p == NONE {
                    NO_PARENT
                } else {
                    self.item[p as usize]
                };
                delta.push(codec.encode(n, p_item, self.item[n as usize]));
            }
            self.delta = DeltaRepr { delta, codec };
        } else {
            self.aos = (0..self.len())
                .map(|n| AosNode {
                    item: self.item[n],
                    count: self.count[n],
                    parent: self.parent[n],
                    link: self.link[n],
                    first_child: self.first_child[n],
                    sibling: self.sibling[n],
                })
                .collect();
        }
        if self.repr.aggregate {
            self.agg = (0..self.len() as u32)
                .map(|n| {
                    let mut anc = [ROOT_ITEM; 3];
                    let mut cur = self.parent[n as usize];
                    let mut skip = NONE;
                    for (k, a) in anc.iter_mut().enumerate() {
                        if cur == NONE {
                            break;
                        }
                        *a = self.item[cur as usize];
                        let up = self.parent[cur as usize];
                        if k == 2 {
                            skip = cur; // continue from the 3rd ancestor
                        }
                        cur = up;
                    }
                    // skip only meaningful if the 3rd ancestor exists and
                    // has a parent to continue from
                    if skip != NONE && self.parent[skip as usize] == NONE {
                        skip = NONE;
                    }
                    AggNode { anc, skip }
                })
                .collect();
        }
        // Jump pointers pay off only on chains long enough to hide
        // latency; tiny conditional trees skip the auxiliary structure
        // entirely (its build cost would dominate — the "extra storage
        // and preprocessing time" trade of §3.3).
        if self.repr.jump_pointers && self.len() >= 64 {
            let mut jump = vec![NONE; self.len()];
            // Walk each header chain once, maintaining a 2-slot window:
            // the node two steps behind gets the current node as target.
            for r in 0..self.n_ranks {
                let mut behind2 = NONE;
                let mut behind1 = NONE;
                let mut cur = self.header[r];
                while cur != NONE {
                    if behind2 != NONE {
                        jump[behind2 as usize] = cur;
                    }
                    behind2 = behind1;
                    behind1 = cur;
                    cur = self.link[cur as usize];
                }
            }
            self.jump = jump;
        }
    }

    /// Iterates the header chain of `item`, yielding `(node, count)` with
    /// representation-appropriate probing and (if configured) jump-pointer
    /// software prefetch.
    #[inline]
    pub fn for_each_chain_node<P: Probe>(
        &self,
        item: u32,
        probe: &mut P,
        mut f: impl FnMut(u32, u32),
    ) {
        let mut cur = self.header[item as usize];
        while cur != NONE {
            let (count, next) = if self.repr.adapt {
                probe.read_dep(memsim::addr_of(&self.count[cur as usize]), 4);
                probe.read(memsim::addr_of(&self.link[cur as usize]), 4);
                (self.count[cur as usize], self.link[cur as usize])
            } else {
                let n = &self.aos[cur as usize];
                probe.read_dep(memsim::addr_of(n), 24);
                (n.count, n.link)
            };
            // jump is empty for trees too small to bother with (finalize
            // skips the auxiliary structure below 64 nodes)
            if self.repr.jump_pointers && !self.jump.is_empty() {
                let j = self.jump[cur as usize];
                if j != NONE {
                    let addr = if self.repr.adapt {
                        memsim::addr_of(&self.count[j as usize])
                    } else {
                        memsim::addr_of(&self.aos[j as usize])
                    };
                    also::prefetch::prefetch_read(addr as *const u8);
                    probe.prefetch(addr);
                }
            }
            probe.instr(10);
            f(cur, count);
            cur = next;
        }
    }

    /// Walks from `node` (whose item is `node_item`) to the root, pushing
    /// the **ancestor** items (nearest first, i.e. descending rank order)
    /// into `out`. Uses the aggregation overlay when present, else the
    /// delta or AoS chain.
    #[inline]
    pub fn path_to_root<P: Probe>(&self, node: u32, node_item: u32, probe: &mut P, out: &mut Vec<u32>) {
        if self.repr.aggregate {
            let mut cur = node;
            loop {
                let a = &self.agg[cur as usize];
                probe.read_dep(memsim::addr_of(a), 16);
                probe.instr(14);
                for &it in &a.anc {
                    if it == ROOT_ITEM {
                        return;
                    }
                    out.push(it);
                }
                if a.skip == NONE {
                    return;
                }
                cur = a.skip;
            }
        } else if self.repr.adapt {
            let mut cur = node;
            let mut cur_item = node_item;
            loop {
                probe.read_dep(memsim::addr_of(&self.parent[cur as usize]), 4);
                probe.read(memsim::addr_of(&self.delta.delta[cur as usize]), 1);
                probe.instr(8);
                let p = self.parent[cur as usize];
                if p == NONE {
                    return;
                }
                let d = self.delta.delta[cur as usize];
                let p_item = if d == DELTA_ESCAPE {
                    // decode via the side table: the stored absolute item
                    // equals cur's item; recover parent from SoA (escapes
                    // are rare enough that the extra load is in the noise)
                    self.item[p as usize]
                } else {
                    cur_item - 1 - d as u32
                };
                out.push(p_item);
                cur = p;
                cur_item = p_item;
            }
        } else {
            let mut cur = self.aos[node as usize].parent;
            while cur != NONE {
                let n = &self.aos[cur as usize];
                probe.read_dep(memsim::addr_of(n), 24);
                probe.instr(8);
                out.push(n.item);
                cur = n.parent;
            }
        }
    }

    /// Direct item lookup (test/debug).
    pub fn item_of(&self, node: u32) -> u32 {
        self.item[node as usize]
    }

    /// Direct parent lookup (test/debug).
    pub fn parent_of(&self, node: u32) -> u32 {
        self.parent[node as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::NullProbe;

    fn reprs() -> Vec<TreeRepr> {
        let mut v = Vec::new();
        for adapt in [false, true] {
            for aggregate in [false, true] {
                for jump_pointers in [false, true] {
                    v.push(TreeRepr {
                        adapt,
                        aggregate,
                        jump_pointers,
                    });
                }
            }
        }
        v
    }

    fn build(transactions: &[(Vec<u32>, u32)], n_ranks: usize, repr: TreeRepr) -> FpTree {
        let mut t = FpTree::new(n_ranks, repr);
        for (items, c) in transactions {
            t.insert(items, *c, &mut NullProbe);
        }
        t.finalize();
        t
    }

    /// The paper's Figure 7 tree comes from Table 1's ordered database.
    fn table1() -> Vec<(Vec<u32>, u32)> {
        vec![
            (vec![0, 1, 2], 1),
            (vec![0, 1, 2], 1),
            (vec![0, 1, 2, 3, 4, 5], 1),
            (vec![0, 1, 3], 1),
            (vec![4, 5], 1),
        ]
    }

    #[test]
    fn prefix_sharing_compresses() {
        let t = build(&table1(), 6, reprs()[0]);
        // paths: 0-1-2(-3-4-5), 0-1-3, 4-5 → nodes: 0,1,2,3,4,5,3',4',5'… count:
        // c,f shared by 4 transactions; distinct nodes: 0,1,2,3(under 2),4,5,3(under 1),4(root),5
        assert_eq!(t.len(), 9);
        assert_eq!(t.header_sup[0], 4);
        assert_eq!(t.header_sup[1], 4);
        assert_eq!(t.header_sup[5], 2);
    }

    #[test]
    fn header_chains_cover_all_nodes_per_item() {
        for repr in reprs() {
            let t = build(&table1(), 6, repr);
            for item in 0..6u32 {
                let mut total = 0u64;
                let mut nodes = 0;
                t.for_each_chain_node(item, &mut NullProbe, |n, c| {
                    assert_eq!(t.item_of(n), item);
                    total += c as u64;
                    nodes += 1;
                });
                assert_eq!(total, t.header_sup[item as usize], "item {item} {repr:?}");
                let _ = nodes;
            }
        }
    }

    #[test]
    fn paths_agree_across_representations() {
        let base = build(&table1(), 6, reprs()[0]);
        for repr in reprs() {
            let t = build(&table1(), 6, repr);
            assert_eq!(t.len(), base.len());
            for item in 0..6u32 {
                // collect every chain node's path under both trees
                let mut got: Vec<Vec<u32>> = Vec::new();
                t.for_each_chain_node(item, &mut NullProbe, |n, _| {
                    let mut p = Vec::new();
                    t.path_to_root(n, item, &mut NullProbe, &mut p);
                    got.push(p);
                });
                let mut expect: Vec<Vec<u32>> = Vec::new();
                base.for_each_chain_node(item, &mut NullProbe, |n, _| {
                    let mut p = Vec::new();
                    base.path_to_root(n, item, &mut NullProbe, &mut p);
                    expect.push(p);
                });
                got.sort();
                expect.sort();
                assert_eq!(got, expect, "item {item} {repr:?}");
            }
        }
    }

    #[test]
    fn paths_descend_in_rank() {
        let t = build(&table1(), 6, reprs()[0]);
        for item in 0..6u32 {
            t.for_each_chain_node(item, &mut NullProbe, |n, _| {
                let mut p = vec![item];
                t.path_to_root(n, item, &mut NullProbe, &mut p);
                assert!(p.windows(2).all(|w| w[0] > w[1]), "path {p:?}");
            });
        }
    }

    #[test]
    fn deep_paths_exercise_agg_skip() {
        // one long chain: 0-1-2-...-19 → agg walk needs multiple skips
        let tx = vec![((0..20u32).collect::<Vec<_>>(), 1)];
        for repr in reprs() {
            let t = build(&tx, 20, repr);
            let mut p = Vec::new();
            t.path_to_root(t.header[19], 19, &mut NullProbe, &mut p);
            assert_eq!(p, (0..19u32).rev().collect::<Vec<_>>(), "{repr:?}");
        }
    }

    #[test]
    fn delta_escapes_handled() {
        // ranks far apart force escape codes (delta > 0xFE)
        let tx = vec![(vec![0u32, 500, 900], 1)];
        for repr in reprs().into_iter().filter(|r| r.adapt) {
            let t = build(&tx, 1000, repr);
            let mut p = Vec::new();
            t.path_to_root(t.header[900], 900, &mut NullProbe, &mut p);
            assert_eq!(p, vec![500, 0], "{repr:?}");
        }
    }

    #[test]
    fn weighted_insertions() {
        let tx = vec![(vec![0u32, 1], 3), (vec![0], 2)];
        let t = build(&tx, 2, reprs()[0]);
        assert_eq!(t.header_sup[0], 5);
        assert_eq!(t.header_sup[1], 3);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_tree() {
        let t = build(&[], 4, reprs()[0]);
        assert!(t.is_empty());
        assert_eq!(t.header[0], NONE);
    }

    #[test]
    fn traversal_bytes_reflect_adaptation() {
        let tx: Vec<(Vec<u32>, u32)> = (0..50)
            .map(|k| ((0..8u32).map(|i| i * 2 + (k % 2)).collect(), 1))
            .collect();
        let base = build(&tx, 20, TreeRepr { adapt: false, aggregate: false, jump_pointers: false });
        let small = build(&tx, 20, TreeRepr { adapt: true, aggregate: false, jump_pointers: false });
        assert!(
            small.traversal_bytes() * 3 < base.traversal_bytes(),
            "delta nodes ({}) must be far smaller than AoS ({})",
            small.traversal_bytes(),
            base.traversal_bytes()
        );
    }
}
