//! Property-based tests for the ALSO pattern library: every pattern is a
//! *semantics-preserving* transformation, so each property asserts
//! equivalence between the optimized form and a plain reference.

use also::adapt::{DeltaByte, NO_PARENT};
use also::aggregate::{ChunkPool, ChunkedList};
use also::bits::BitVec;
use also::lexorder;
use also::prefetch::{wavefront, JumpPointers, NO_JUMP};
use also::simd::{and_count_escaped, and_count_words, Popcount};
use also::tiling::TiledLists;
use proptest::prelude::*;

proptest! {
    /// All popcount strategies compute the same AND-popcount.
    #[test]
    fn simd_strategies_agree(a in prop::collection::vec(any::<u64>(), 0..300),
                             b in prop::collection::vec(any::<u64>(), 0..300)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let reference: u64 = a.iter().zip(b).map(|(&x, &y)| (x & y).count_ones() as u64).sum();
        for s in Popcount::available() {
            prop_assert_eq!(and_count_words(a, b, s), reference, "{}", s.label());
        }
    }

    /// 0-escaping never changes the result of AND + count.
    #[test]
    fn zero_escaping_is_transparent(xs in prop::collection::vec(0u32..5000, 0..200),
                                    ys in prop::collection::vec(0u32..5000, 0..200)) {
        let a = BitVec::from_indices(5000, &xs);
        let b = BitVec::from_indices(5000, &ys);
        let full = and_count_words(a.as_words(), b.as_words(), Popcount::Scalar64);
        for s in Popcount::available() {
            let esc = and_count_escaped(&a, &a.one_range(), &b, &b.one_range(), s);
            prop_assert_eq!(esc, full, "{}", s.label());
        }
    }

    /// BitVec::from_indices + iter_ones is the sorted-dedup of the input.
    #[test]
    fn bitvec_roundtrip(xs in prop::collection::vec(0u32..4096, 0..300)) {
        let v = BitVec::from_indices(4096, &xs);
        let mut expect: Vec<usize> = xs.iter().map(|&x| x as usize).collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(v.iter_ones().collect::<Vec<_>>(), expect.clone());
        prop_assert_eq!(v.count_ones() as usize, expect.len());
        // one_range covers every set bit
        let r = v.one_range();
        for i in expect {
            let w = (i / 64) as u32;
            prop_assert!(r.first <= w && w <= r.last);
        }
    }

    /// Lexicographic ordering is idempotent and preserves the multiset of
    /// (item-sorted) transactions; the rank-0 item ends contiguous.
    #[test]
    fn lex_order_properties(db in prop::collection::vec(
        // transactions are item *sets* — no duplicates
        prop::collection::btree_set(0u32..30, 0..12)
            .prop_map(|s| s.into_iter().collect::<Vec<u32>>()), 0..60)) {
        let mut once = db.clone();
        lexorder::lex_order(&mut once);
        let mut twice = once.clone();
        lexorder::lex_order(&mut twice);
        prop_assert_eq!(&once, &twice, "idempotent");

        let mut expect: Vec<Vec<u32>> = db.iter().map(|t| {
            let mut t = t.clone();
            t.sort_unstable();
            t
        }).collect();
        expect.sort();
        prop_assert_eq!(&once, &expect, "multiset preserved");

        // After ordering: item 0 (the first alphabet letter) is one
        // contiguous run; item 1 has at most one gap (the paper's §3.2
        // claim — item k can have up to 2^k - 1 gaps, so only the first
        // two ranks admit a tight bound).
        prop_assert_eq!(lexorder::discontinuities(&once, 0), 0);
        prop_assert!(lexorder::discontinuities(&once, 1) <= 1);
    }

    /// Aggregated lists reproduce the pushed sequence, whatever the
    /// interleaving across lists sharing the pool.
    #[test]
    fn chunked_list_preserves_sequences(ops in prop::collection::vec((0usize..5, any::<u32>()), 0..400)) {
        let mut pool: ChunkPool<u32, 14> = ChunkPool::new();
        let mut lists = [ChunkedList::new(); 5];
        let mut expect: Vec<Vec<u32>> = vec![Vec::new(); 5];
        for (li, v) in ops {
            lists[li].push(&mut pool, v);
            expect[li].push(v);
        }
        for (li, l) in lists.iter().enumerate() {
            prop_assert_eq!(l.to_vec(&pool), expect[li].clone());
            prop_assert_eq!(l.len(), expect[li].len());
        }
    }

    /// Tiled traversal of sorted lists reconstructs each list exactly,
    /// for every tile size.
    #[test]
    fn tiling_reconstructs_lists(mut lists in prop::collection::vec(
            prop::collection::vec(0u32..500, 0..60), 1..12),
        tile in 1usize..600) {
        for l in &mut lists { l.sort_unstable(); }
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let mut tl = TiledLists::new(&refs);
        let mut rebuilt: Vec<Vec<u32>> = vec![Vec::new(); lists.len()];
        tl.run(500, tile, |ci, sub| rebuilt[ci].extend_from_slice(sub));
        prop_assert_eq!(rebuilt, lists);
    }

    /// Wave-front prefetch visits exactly the plain-loop sequence.
    #[test]
    fn wavefront_is_transparent(items in prop::collection::vec(any::<u32>(), 0..100),
                                dist in 0usize..10) {
        let mut seen = Vec::new();
        wavefront(&items, dist, |x| x as *const u32 as *const u8,
                  |_, &x| seen.push(x));
        prop_assert_eq!(seen, items);
    }

    /// Differential byte encoding decodes back to the original item for
    /// arbitrary parent/child rank chains.
    #[test]
    fn delta_byte_roundtrip(chain in prop::collection::vec(1u32..2000, 1..100)) {
        // Build a strictly increasing rank chain from the deltas.
        let mut codec = DeltaByte::new();
        let mut parent = NO_PARENT;
        let mut item = 0u32;
        let mut stored = Vec::new();
        for (n, d) in chain.iter().enumerate() {
            item = if parent == NO_PARENT { d - 1 } else { item + d };
            stored.push((parent, item, codec.encode(n as u32, parent, item)));
            parent = item;
        }
        for (n, &(p, it, byte)) in stored.iter().enumerate() {
            prop_assert_eq!(codec.decode(n as u32, p, byte), it);
        }
    }

    /// Jump pointers of distance d over a chain point exactly d hops ahead.
    #[test]
    fn jump_pointers_distance(len in 1usize..200, dist in 0usize..8) {
        let chain: Vec<u32> = (0..len as u32).collect();
        let jp = JumpPointers::build(len, std::slice::from_ref(&chain), dist);
        for (i, &n) in chain.iter().enumerate() {
            let expect = if dist > 0 && i + dist < len { chain[i + dist] } else { NO_JUMP };
            // dist == 0 means every node "jumps" to itself per build rule:
            let expect = if dist == 0 { chain[i] } else { expect };
            prop_assert_eq!(jp.target(n), expect);
        }
    }
}
