//! Differential container-conformance battery: every hybrid-container
//! operation checked against a naive `BTreeSet<u32>` oracle (DESIGN.md
//! §16).
//!
//! The directed half pins all nine container type pairs (array, bitmap,
//! runs — forced explicitly) for AND/OR/ANDNOT plus `multi_and`, `rank`,
//! and iteration, at the chunk-boundary values 0, 65535, 65536. The
//! property half throws randomized shapes and add/remove sequences at
//! the same oracle; failing seeds persist via the vendored proptest's
//! `.proptest-regressions` mechanism.

use also::adapt::{ContainerKind, ARRAY_DEMOTE, ARRAY_MAX};
use also::containers::TidSet;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Chunk-boundary tids every directed case weaves in.
const BOUNDARIES: &[u32] = &[0, 63, 64, 65_535, 65_536, 65_537, 131_071, 131_072];

fn from_oracle(o: &BTreeSet<u32>) -> TidSet {
    let v: Vec<u32> = o.iter().copied().collect();
    TidSet::from_sorted(&v)
}

fn assert_matches(set: &TidSet, oracle: &BTreeSet<u32>, what: &str) {
    assert_eq!(set.cardinality(), oracle.len() as u64, "{what}: cardinality");
    assert_eq!(
        set.to_vec(),
        oracle.iter().copied().collect::<Vec<_>>(),
        "{what}: iteration order/content"
    );
    for &b in BOUNDARIES {
        assert_eq!(set.contains(b), oracle.contains(&b), "{what}: contains({b})");
        assert_eq!(
            set.rank(b),
            oracle.range(..=b).count() as u64,
            "{what}: rank({b})"
        );
    }
    // Container invariants: arrays never exceed ARRAY_MAX; bitmaps never
    // drop below the demote threshold (the hysteresis floor).
    for (key, kind, card) in set.chunk_kinds() {
        match kind {
            ContainerKind::Array => assert!(
                card as usize <= ARRAY_MAX,
                "{what}: array chunk {key} holds {card} > ARRAY_MAX"
            ),
            ContainerKind::Bitmap => assert!(
                card as usize >= ARRAY_DEMOTE,
                "{what}: bitmap chunk {key} holds {card} < ARRAY_DEMOTE"
            ),
            ContainerKind::Runs => assert!(card > 0, "{what}: empty runs chunk {key}"),
        }
    }
}

/// Builds a single-chunk set of the requested kind, offset into chunk
/// `chunk` and including that chunk's first/last values.
fn forced(kind: ContainerKind, chunk: u32, salt: u32) -> (TidSet, BTreeSet<u32>) {
    let base = chunk << 16;
    let vals: Vec<u32> = match kind {
        // Sparse scatter, pinned to both chunk edges.
        ContainerKind::Array => (0..200u32)
            .map(|i| base + (i * 307 + salt * 11) % 65_536)
            .chain([base, base + 65_535])
            .collect(),
        // More than ARRAY_MAX values: from_sorted builds a bitmap.
        ContainerKind::Bitmap => (0..65_536u32)
            .filter(|i| !(i + salt).is_multiple_of(13))
            .take(ARRAY_MAX + 1000)
            .map(|i| base + i)
            .chain([base, base + 65_535])
            .collect(),
        // A few solid blocks: optimize() adopts runs.
        ContainerKind::Runs => (0..2000u32)
            .map(|i| base + i)
            .chain((40_000..41_000u32).map(|i| base + i + salt % 7))
            .chain([base, base + 65_535])
            .collect(),
    };
    let oracle: BTreeSet<u32> = vals.into_iter().collect();
    let mut set = from_oracle(&oracle);
    if kind == ContainerKind::Runs {
        set.optimize();
    }
    let built = set.chunk_kinds()[0].1;
    assert_eq!(built, kind, "forced container must materialize as requested");
    (set, oracle)
}

const KINDS: [ContainerKind; 3] =
    [ContainerKind::Array, ContainerKind::Bitmap, ContainerKind::Runs];

#[test]
fn all_nine_pairs_and_or_andnot_match_oracle() {
    for (ai, &ka) in KINDS.iter().enumerate() {
        for (bi, &kb) in KINDS.iter().enumerate() {
            // Same chunk (so the pair actually meets) on chunk 0 and on
            // chunk 1 (boundary 65536).
            for chunk in [0u32, 1] {
                let (a, oa) = forced(ka, chunk, ai as u32 + 1);
                let (b, ob) = forced(kb, chunk, bi as u32 + 5);
                let label = format!("{ka:?}∧{kb:?} chunk {chunk}");
                let and_o: BTreeSet<u32> = oa.intersection(&ob).copied().collect();
                assert_matches(&a.and(&b), &and_o, &label);
                assert_eq!(a.and_count(&b), and_o.len() as u64, "{label}: and_count");
                let or_o: BTreeSet<u32> = oa.union(&ob).copied().collect();
                assert_matches(&a.or(&b), &or_o, &format!("{ka:?}∨{kb:?} chunk {chunk}"));
                let not_o: BTreeSet<u32> = oa.difference(&ob).copied().collect();
                assert_matches(
                    &a.andnot(&b),
                    &not_o,
                    &format!("{ka:?}∖{kb:?} chunk {chunk}"),
                );
            }
        }
    }
}

#[test]
fn cross_chunk_pairs_and_disjoint_chunks() {
    // a spans chunks 0+1, b spans chunks 1+2: ops must align per key and
    // drop the unmatched chunks for AND, keep them for OR/ANDNOT.
    let (a0, oa0) = forced(ContainerKind::Array, 0, 3);
    let (a1, oa1) = forced(ContainerKind::Bitmap, 1, 4);
    let (b1, ob1) = forced(ContainerKind::Runs, 1, 9);
    let (b2, ob2) = forced(ContainerKind::Array, 2, 2);
    let a = a0.or(&a1);
    let oa: BTreeSet<u32> = oa0.union(&oa1).copied().collect();
    let b = b1.or(&b2);
    let ob: BTreeSet<u32> = ob1.union(&ob2).copied().collect();
    assert_matches(&a, &oa, "composed a");
    assert_matches(&b, &ob, "composed b");
    assert_matches(
        &a.and(&b),
        &oa.intersection(&ob).copied().collect(),
        "cross-chunk and",
    );
    assert_matches(&a.or(&b), &oa.union(&ob).copied().collect(), "cross-chunk or");
    assert_matches(
        &a.andnot(&b),
        &oa.difference(&ob).copied().collect(),
        "cross-chunk andnot",
    );
}

#[test]
fn multi_and_all_kind_triples_match_oracle() {
    for &ka in &KINDS {
        for &kb in &KINDS {
            for &kc in &KINDS {
                let (a, oa) = forced(ka, 0, 1);
                let (b, ob) = forced(kb, 0, 2);
                let (c, oc) = forced(kc, 0, 3);
                let expect: BTreeSet<u32> = oa
                    .intersection(&ob)
                    .copied()
                    .collect::<BTreeSet<u32>>()
                    .intersection(&oc)
                    .copied()
                    .collect();
                let got = TidSet::multi_and(&[&a, &b, &c]);
                assert_matches(&got, &expect, &format!("multi_and {ka:?},{kb:?},{kc:?}"));
                assert_eq!(
                    TidSet::multi_and_count(&[&a, &b, &c]),
                    expect.len() as u64,
                    "multi_and_count {ka:?},{kb:?},{kc:?}"
                );
            }
        }
    }
}

#[test]
fn hysteresis_promotion_demotion_tracks_oracle() {
    let mut set = TidSet::new();
    let mut oracle = BTreeSet::new();
    // Grow through the promote threshold…
    for t in 0..=(ARRAY_MAX as u32 + 200) {
        assert_eq!(set.insert(t), oracle.insert(t));
    }
    assert_eq!(set.chunk_kinds()[0].1, ContainerKind::Bitmap);
    assert_matches(&set, &oracle, "after promotion");
    // …shrink into the hysteresis band (still bitmap)…
    for t in (ARRAY_DEMOTE as u32..=(ARRAY_MAX as u32 + 200)).rev() {
        assert_eq!(set.remove(t), oracle.remove(&t));
    }
    assert_eq!(set.chunk_kinds()[0].1, ContainerKind::Bitmap);
    assert_matches(&set, &oracle, "inside hysteresis band");
    // …and through the demote threshold (array again).
    assert_eq!(set.remove(ARRAY_DEMOTE as u32 - 1), oracle.remove(&(ARRAY_DEMOTE as u32 - 1)));
    assert_eq!(set.chunk_kinds()[0].1, ContainerKind::Array);
    assert_matches(&set, &oracle, "after demotion");
    // Oscillate right at the threshold: no thrash, stays correct.
    for round in 0..6u32 {
        for t in 0..600u32 {
            let v = ARRAY_MAX as u32 + t;
            if round % 2 == 0 {
                assert_eq!(set.insert(v), oracle.insert(v));
            } else {
                assert_eq!(set.remove(v), oracle.remove(&v));
            }
        }
        assert_matches(&set, &oracle, &format!("oscillation round {round}"));
    }
    // Mutation on a run container materializes and stays exact.
    set.optimize();
    assert_eq!(set.insert(1_000_000), oracle.insert(1_000_000));
    assert_eq!(set.remove(0), oracle.remove(&0));
    assert_matches(&set, &oracle, "mutated after optimize");
}

#[test]
fn empty_and_boundary_singletons() {
    let empty = TidSet::new();
    assert!(empty.is_empty());
    assert!(empty.and(&empty).is_empty());
    assert!(empty.or(&empty).is_empty());
    assert!(empty.andnot(&empty).is_empty());
    assert!(TidSet::multi_and(&[]).is_empty());
    for &b in BOUNDARIES {
        let s = TidSet::from_sorted(&[b]);
        let oracle: BTreeSet<u32> = [b].into_iter().collect();
        assert_matches(&s, &oracle, &format!("singleton {b}"));
        assert!(s.and(&empty).is_empty());
        assert_eq!(s.or(&empty).to_vec(), vec![b]);
        assert_eq!(s.andnot(&empty).to_vec(), vec![b]);
        assert!(empty.andnot(&s).is_empty());
    }
}

// ---------------------------------------------------------------------------
// Property half: randomized shapes vs the oracle. Failing seeds are
// appended to `container_conformance.proptest-regressions` by the
// vendored runner and replayed on the next run.
// ---------------------------------------------------------------------------

/// Random tid sets spanning several chunks, salted with boundary values.
fn arb_tids() -> impl Strategy<Value = BTreeSet<u32>> {
    (
        prop::collection::btree_set(0u32..200_000, 0..300),
        0u32..256,
    )
        .prop_map(|(mut s, mask)| {
            for (i, &b) in BOUNDARIES.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(b);
                }
            }
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_pairwise_ops_match_oracle(oa in arb_tids(), ob in arb_tids(), opt in 0u32..4) {
        let mut a = from_oracle(&oa);
        let mut b = from_oracle(&ob);
        // Randomly re-shape either side so run containers join the mix.
        if opt & 1 != 0 { a.optimize(); }
        if opt & 2 != 0 { b.optimize(); }
        let and_o: BTreeSet<u32> = oa.intersection(&ob).copied().collect();
        assert_matches(&a.and(&b), &and_o, "random and");
        prop_assert_eq!(a.and_count(&b), and_o.len() as u64);
        assert_matches(&a.or(&b), &oa.union(&ob).copied().collect(), "random or");
        assert_matches(&a.andnot(&b), &oa.difference(&ob).copied().collect(), "random andnot");
        assert_matches(&b.andnot(&a), &ob.difference(&oa).copied().collect(), "random andnot rev");
    }

    #[test]
    fn random_multi_and_matches_pairwise(
        oa in arb_tids(), ob in arb_tids(), oc in arb_tids(), opt in 0u32..8
    ) {
        let mut sets = [from_oracle(&oa), from_oracle(&ob), from_oracle(&oc)];
        for (i, s) in sets.iter_mut().enumerate() {
            if opt & (1 << i) != 0 { s.optimize(); }
        }
        let expect: BTreeSet<u32> = oa
            .intersection(&ob).copied().collect::<BTreeSet<u32>>()
            .intersection(&oc).copied().collect();
        let refs: Vec<&TidSet> = sets.iter().collect();
        assert_matches(&TidSet::multi_and(&refs), &expect, "random multi_and");
        prop_assert_eq!(TidSet::multi_and_count(&refs), expect.len() as u64);
    }

    #[test]
    fn random_insert_remove_sequences_track_oracle(
        ops in prop::collection::vec((0u32..70_000, any::<bool>()), 0..300)
    ) {
        let mut set = TidSet::new();
        let mut oracle = BTreeSet::new();
        for (tid, is_insert) in ops {
            if is_insert {
                prop_assert_eq!(set.insert(tid), oracle.insert(tid), "insert {}", tid);
            } else {
                prop_assert_eq!(set.remove(tid), oracle.remove(&tid), "remove {}", tid);
            }
        }
        assert_matches(&set, &oracle, "after op sequence");
    }

    #[test]
    fn rank_agrees_at_random_probes(oa in arb_tids(), probes in prop::collection::vec(0u32..200_001, 0..40)) {
        let set = from_oracle(&oa);
        for p in probes {
            prop_assert_eq!(set.rank(p), oa.range(..=p).count() as u64, "rank({})", p);
        }
    }
}
