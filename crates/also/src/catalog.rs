//! Machine-readable catalogue of the ALSO patterns: what each pattern
//! improves (Table 2 of the paper) and which mining kernels it applies to
//! (Table 4). The `repro` harness prints the tables directly from this
//! data, so the documentation and the code cannot drift apart.

use serde::{Deserialize, Serialize};

/// The tuning patterns, named as in §3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// P1 — reorder transactions lexicographically by frequency rank.
    LexicographicOrdering,
    /// P2 — adapt the database representation to the input.
    DataStructureAdaptation,
    /// P3 — pack linked-structure nodes into cache-line supernodes.
    Aggregation,
    /// P4 — copy scattered hot data into contiguous memory.
    Compaction,
    /// P5 — precomputed jump pointers for deep prefetching.
    PrefetchPointers,
    /// P6 — tiling (P6.1: tiling for sparse representations).
    Tiling,
    /// P7 — software prefetch (P7.1: wave-front prefetching).
    SoftwarePrefetch,
    /// P8 — SIMD vectorization of the computation kernel.
    Simdization,
}

/// What a pattern improves — the four benefit columns of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternBenefit {
    /// Improves spatial locality.
    pub spatial_locality: bool,
    /// Improves temporal locality.
    pub temporal_locality: bool,
    /// Hides or reduces memory latency.
    pub memory_latency: bool,
    /// Accelerates computation.
    pub computation: bool,
}

/// The mining kernels of the paper's case studies (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kernel {
    /// Array-based horizontal miner (FIMI'04 best implementation).
    Lcm,
    /// Vertical bit-matrix miner.
    Eclat,
    /// Prefix-tree miner.
    FpGrowth,
}

/// How a pattern relates to a kernel in the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Applicability {
    /// Applied and evaluated in the paper's case study (a "√" cell).
    Applied,
    /// Already proposed in prior literature; not re-evaluated ("()").
    PriorWork,
    /// Not studied for this kernel ("—").
    NotStudied,
}

impl Pattern {
    /// Every pattern, in paper order.
    pub const ALL: [Pattern; 8] = [
        Pattern::LexicographicOrdering,
        Pattern::DataStructureAdaptation,
        Pattern::Aggregation,
        Pattern::Compaction,
        Pattern::PrefetchPointers,
        Pattern::Tiling,
        Pattern::SoftwarePrefetch,
        Pattern::Simdization,
    ];

    /// The paper's P-number label.
    pub fn id(&self) -> &'static str {
        match self {
            Pattern::LexicographicOrdering => "P1",
            Pattern::DataStructureAdaptation => "P2",
            Pattern::Aggregation => "P3",
            Pattern::Compaction => "P4",
            Pattern::PrefetchPointers => "P5",
            Pattern::Tiling => "P6",
            Pattern::SoftwarePrefetch => "P7",
            Pattern::Simdization => "P8",
        }
    }

    /// Human-readable name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::LexicographicOrdering => "Lexicographic ordering",
            Pattern::DataStructureAdaptation => "Data structure adaptation",
            Pattern::Aggregation => "Aggregation",
            Pattern::Compaction => "Compaction",
            Pattern::PrefetchPointers => "Prefetch pointers",
            Pattern::Tiling => "Tiling",
            Pattern::SoftwarePrefetch => "Software prefetch",
            Pattern::Simdization => "SIMDization",
        }
    }

    /// Table 2 row: the benefits this pattern provides.
    pub fn benefit(&self) -> PatternBenefit {
        let b = |s, t, m, c| PatternBenefit {
            spatial_locality: s,
            temporal_locality: t,
            memory_latency: m,
            computation: c,
        };
        match self {
            Pattern::LexicographicOrdering => b(true, false, false, false),
            Pattern::DataStructureAdaptation => b(true, false, false, false),
            Pattern::Aggregation => b(true, false, true, false),
            Pattern::Compaction => b(true, false, false, false),
            Pattern::PrefetchPointers => b(false, false, true, false),
            Pattern::Tiling => b(false, true, false, false),
            Pattern::SoftwarePrefetch => b(false, false, true, false),
            Pattern::Simdization => b(false, false, false, true),
        }
    }

    /// Table 4 cell: how the paper's case studies treat this pattern for
    /// the given kernel.
    pub fn applicability(&self, kernel: Kernel) -> Applicability {
        use Applicability::*;
        use Kernel::*;
        match (self, kernel) {
            (Pattern::LexicographicOrdering, _) => Applied,
            (Pattern::DataStructureAdaptation, Lcm) => NotStudied,
            (Pattern::DataStructureAdaptation, Eclat) => PriorWork,
            (Pattern::DataStructureAdaptation, FpGrowth) => Applied,
            (Pattern::Aggregation, Lcm) => Applied,
            (Pattern::Aggregation, Eclat) => NotStudied,
            (Pattern::Aggregation, FpGrowth) => Applied,
            (Pattern::Compaction, Lcm) => Applied,
            (Pattern::Compaction, Eclat) => NotStudied,
            (Pattern::Compaction, FpGrowth) => Applied,
            (Pattern::PrefetchPointers, Lcm) => NotStudied,
            (Pattern::PrefetchPointers, Eclat) => NotStudied,
            (Pattern::PrefetchPointers, FpGrowth) => Applied,
            (Pattern::Tiling, Lcm) => Applied,
            (Pattern::Tiling, Eclat) => NotStudied,
            (Pattern::Tiling, FpGrowth) => PriorWork,
            (Pattern::SoftwarePrefetch, Lcm) => Applied,
            (Pattern::SoftwarePrefetch, Eclat) => NotStudied,
            (Pattern::SoftwarePrefetch, FpGrowth) => Applied,
            (Pattern::Simdization, Lcm) => NotStudied,
            (Pattern::Simdization, Eclat) => Applied,
            (Pattern::Simdization, FpGrowth) => NotStudied,
        }
    }
}

impl Kernel {
    /// The three case-study kernels in paper order.
    pub const ALL: [Kernel; 3] = [Kernel::Lcm, Kernel::Eclat, Kernel::FpGrowth];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Lcm => "LCM",
            Kernel::Eclat => "Eclat",
            Kernel::FpGrowth => "FP-Growth",
        }
    }

    /// Table 3 row: (database type, data structure, bound).
    pub fn characteristics(&self) -> (&'static str, &'static str, &'static str) {
        match self {
            Kernel::Lcm => ("horizontal", "array", "memory"),
            Kernel::Eclat => ("vertical", "bit vector (array)", "computation"),
            Kernel::FpGrowth => ("horizontal", "tree", "memory"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pattern_has_at_least_one_benefit() {
        for p in Pattern::ALL {
            let b = p.benefit();
            assert!(
                b.spatial_locality || b.temporal_locality || b.memory_latency || b.computation,
                "{} has no benefit",
                p.name()
            );
        }
    }

    #[test]
    fn table2_spot_checks() {
        // Aggregation improves spatial locality AND memory latency.
        let agg = Pattern::Aggregation.benefit();
        assert!(agg.spatial_locality && agg.memory_latency);
        // Tiling is the only temporal-locality pattern.
        let temporal: Vec<_> = Pattern::ALL
            .iter()
            .filter(|p| p.benefit().temporal_locality)
            .collect();
        assert_eq!(temporal.len(), 1);
        assert_eq!(*temporal[0], Pattern::Tiling);
        // SIMDization is the only computation pattern.
        assert!(Pattern::Simdization.benefit().computation);
    }

    #[test]
    fn table4_spot_checks() {
        use Applicability::*;
        // Lex ordering applied everywhere.
        for k in Kernel::ALL {
            assert_eq!(Pattern::LexicographicOrdering.applicability(k), Applied);
        }
        // SIMD only on Eclat; tiling on FP-Growth is prior work (Ghoting).
        assert_eq!(Pattern::Simdization.applicability(Kernel::Eclat), Applied);
        assert_eq!(Pattern::Simdization.applicability(Kernel::Lcm), NotStudied);
        assert_eq!(Pattern::Tiling.applicability(Kernel::FpGrowth), PriorWork);
        assert_eq!(Pattern::Tiling.applicability(Kernel::Lcm), Applied);
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let ids: Vec<_> = Pattern::ALL.iter().map(|p| p.id()).collect();
        assert_eq!(ids, vec!["P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8"]);
    }

    #[test]
    fn table3_characteristics() {
        assert_eq!(Kernel::Eclat.characteristics().2, "computation");
        assert_eq!(Kernel::Lcm.characteristics().2, "memory");
        assert_eq!(Kernel::FpGrowth.characteristics().1, "tree");
    }
}
