//! Cache-line-aligned bit vectors — the storage substrate for the
//! SIMDization pattern (P8) and the 0-escaping optimization (§4.2).
//!
//! A [`BitVec`] stores bits packed into `u64` words inside a buffer aligned
//! to [`crate::CACHE_LINE_BYTES`], so that the SIMD kernels in
//! [`crate::simd`] can use aligned 128/256-bit loads. A [`OneRange`]
//! records a conservative `[first_one, last_one]` word range, which is the
//! bookkeeping the paper's *0-escaping* needs: intersections and population
//! counts may skip words outside the range because they are provably zero.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::fmt;
use std::ops::Range;

use crate::CACHE_LINE_BYTES;

/// Number of bits per storage word.
pub const WORD_BITS: usize = 64;

/// A fixed-capacity, cache-line-aligned bit vector.
///
/// The vector owns `words()` 64-bit words, rounded up so the allocation is
/// a whole number of cache lines. Bit `i` is word `i / 64`, bit `i % 64`
/// (LSB first). All words beyond `len` bits are kept zero — an invariant
/// the population-count kernels rely on and the tests assert.
///
/// ```
/// use also::bits::BitVec;
/// let v = BitVec::from_indices(1000, &[3, 64, 999]);
/// assert_eq!(v.count_ones(), 3);
/// assert!(v.get(64) && !v.get(65));
/// assert_eq!(v.one_range().as_word_span(), 0..16); // words 0..=15
/// ```
pub struct BitVec {
    ptr: *mut u64,
    /// Number of addressable bits.
    len: usize,
    /// Number of allocated words (multiple of words-per-cache-line).
    words: usize,
}

// SAFETY: BitVec owns its buffer exclusively; the raw pointer is never
// aliased outside `&self`/`&mut self` borrows, so moving the value to
// another thread moves sole ownership of the allocation with it.
unsafe impl Send for BitVec {}

// SAFETY: all &self methods only read the buffer (writes require &mut
// self), so concurrent shared access from multiple threads is data-race
// free — the same guarantee a Vec<u64> would derive automatically.
unsafe impl Sync for BitVec {}

impl BitVec {
    /// Creates an all-zero bit vector with room for `len` bits.
    pub fn zeros(len: usize) -> Self {
        let words_needed = len.div_ceil(WORD_BITS);
        let per_line = CACHE_LINE_BYTES / std::mem::size_of::<u64>();
        let words = words_needed.div_ceil(per_line).max(1) * per_line;
        let layout = Self::layout(words);
        // SAFETY: layout has non-zero size (words >= per_line >= 1).
        let ptr = unsafe { alloc_zeroed(layout) } as *mut u64;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        BitVec { ptr, len, words }
    }

    /// Builds a bit vector of `len` bits with the given bit positions set.
    ///
    /// Positions ≥ `len` are ignored (callers pass pre-validated tids).
    pub fn from_indices(len: usize, indices: &[u32]) -> Self {
        let mut v = Self::zeros(len);
        for &i in indices {
            if (i as usize) < len {
                v.set(i as usize);
            }
        }
        v
    }

    fn layout(words: usize) -> Layout {
        Layout::from_size_align(words * std::mem::size_of::<u64>(), CACHE_LINE_BYTES)
            .expect("bitvec layout")
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector addresses zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated 64-bit words (a multiple of the words per cache
    /// line; at least one cache line).
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// The words as a shared slice.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        // SAFETY: ptr is valid for `words` u64s for the life of self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.words) }
    }

    /// The words as a mutable slice.
    #[inline]
    pub fn as_words_mut(&mut self) -> &mut [u64] {
        // SAFETY: ptr is valid for `words` u64s; &mut self guarantees
        // exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.words) }
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.as_words_mut()[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.as_words_mut()[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.as_words()[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Population count over the whole vector (portable scalar path).
    pub fn count_ones(&self) -> u64 {
        self.as_words().iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.as_words().iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Computes the conservative [`OneRange`] (in *words*) covering every
    /// set bit, scanning from both ends. Empty vectors produce
    /// [`OneRange::EMPTY`].
    pub fn one_range(&self) -> OneRange {
        let ws = self.as_words();
        let first = match ws.iter().position(|&w| w != 0) {
            Some(f) => f,
            None => return OneRange::EMPTY,
        };
        let last = ws.iter().rposition(|&w| w != 0).expect("first exists");
        OneRange {
            first: first as u32,
            last: last as u32,
        }
    }
}

impl Drop for BitVec {
    fn drop(&mut self) {
        // SAFETY: ptr was allocated with exactly this layout in `zeros`.
        unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.words)) }
    }
}

impl Clone for BitVec {
    fn clone(&self) -> Self {
        let mut v = Self::zeros(self.len);
        v.as_words_mut().copy_from_slice(self.as_words());
        v
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec(len={}, ones={})", self.len, self.count_ones())
    }
}

impl PartialEq for BitVec {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.as_words()[..self.len.div_ceil(WORD_BITS)]
                == other.as_words()[..other.len.div_ceil(WORD_BITS)]
    }
}
impl Eq for BitVec {}

/// A conservative word-granular range `[first, last]` containing every set
/// bit of a [`BitVec`] — the bookkeeping behind the paper's *0-escaping*
/// (§4.2).
///
/// Ranges are **conservative, not necessarily optimal**: intersecting two
/// ranges when two vectors are ANDed gives a range that still covers every
/// set bit of the result but may be wider than the tight range. That is
/// exactly the trade the paper makes — recomputing tight ranges would cost
/// more than it saves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OneRange {
    /// First word that may contain a set bit.
    pub first: u32,
    /// Last word that may contain a set bit (inclusive).
    pub last: u32,
}

impl OneRange {
    /// The canonical empty range (`first > last`).
    pub const EMPTY: OneRange = OneRange { first: 1, last: 0 };

    /// `true` when the range certifies the vector is all-zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.first > self.last
    }

    /// Number of words inside the range.
    #[inline]
    pub fn width(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            (self.last - self.first + 1) as usize
        }
    }

    /// The word range as a half-open `Range<usize>` for slicing.
    #[inline]
    pub fn as_word_span(&self) -> Range<usize> {
        if self.is_empty() {
            0..0
        } else {
            self.first as usize..self.last as usize + 1
        }
    }

    /// Intersects two ranges — the update rule applied when two bit vectors
    /// are ANDed.
    #[inline]
    pub fn intersect(&self, other: &OneRange) -> OneRange {
        let first = self.first.max(other.first);
        let last = self.last.min(other.last);
        if first > last {
            OneRange::EMPTY
        } else {
            OneRange { first, last }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_empty_and_aligned() {
        for len in [0usize, 1, 63, 64, 65, 1000, 4096] {
            let v = BitVec::zeros(len);
            assert_eq!(v.len(), len);
            assert_eq!(v.count_ones(), 0);
            assert_eq!(v.as_words().as_ptr() as usize % CACHE_LINE_BYTES, 0);
            assert_eq!(v.words() * 8 % CACHE_LINE_BYTES, 0);
        }
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec::zeros(200);
        for i in (0..200).step_by(3) {
            v.set(i);
        }
        for i in 0..200 {
            assert_eq!(v.get(i), i % 3 == 0, "bit {i}");
        }
        v.clear(0);
        assert!(!v.get(0));
        assert_eq!(v.count_ones(), (0..200).filter(|i| i % 3 == 0).count() as u64 - 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitVec::zeros(10).set(10);
    }

    #[test]
    fn from_indices_matches_iter_ones() {
        let idx = [3u32, 9, 64, 65, 127, 128, 199];
        let v = BitVec::from_indices(200, &idx);
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, idx.iter().map(|&i| i as usize).collect::<Vec<_>>());
    }

    #[test]
    fn one_range_tight_on_fresh_vector() {
        let v = BitVec::from_indices(1024, &[130, 700]);
        let r = v.one_range();
        assert_eq!(r.first, 130 / 64);
        assert_eq!(r.last, 700 / 64);
        assert_eq!(r.width(), (700 / 64 - 130 / 64 + 1));
    }

    #[test]
    fn one_range_of_empty_vector() {
        assert!(BitVec::zeros(512).one_range().is_empty());
        assert_eq!(OneRange::EMPTY.width(), 0);
        assert_eq!(OneRange::EMPTY.as_word_span(), 0..0);
    }

    #[test]
    fn range_intersection_rules() {
        let a = OneRange { first: 2, last: 9 };
        let b = OneRange { first: 5, last: 20 };
        assert_eq!(a.intersect(&b), OneRange { first: 5, last: 9 });
        let c = OneRange { first: 10, last: 12 };
        assert!(a.intersect(&c).is_empty());
        assert!(a.intersect(&OneRange::EMPTY).is_empty());
    }

    #[test]
    fn clone_and_eq() {
        let v = BitVec::from_indices(300, &[1, 2, 250]);
        let w = v.clone();
        assert_eq!(v, w);
        let mut x = w.clone();
        x.set(0);
        assert_ne!(v, x);
    }

    #[test]
    fn tail_words_stay_zero() {
        let mut v = BitVec::zeros(65); // 2 words used, padded to a cache line
        v.set(64);
        let used = 65usize.div_ceil(WORD_BITS);
        for w in &v.as_words()[used..] {
            assert_eq!(*w, 0);
        }
    }
}
