//! **P1 — Lexicographic ordering** (§3.2 of the paper): permute the
//! transactions of the in-memory database so that transactions which are
//! accessed successively sit in consecutive memory.
//!
//! The recipe, exactly as Table 1 of the paper illustrates it:
//!
//! 1. order the items *inside* each transaction in decreasing frequency
//!    order (the "alphabet" is items by decreasing frequency), then
//! 2. sort the transactions lexicographically under that alphabet.
//!
//! After the transform, all transactions containing the most frequent item
//! are contiguous; those containing the second most frequent item have at
//! most one discontinuity; and so on — so the item-major walks that build
//! projected databases touch mostly-consecutive memory, cutting cache and
//! TLB misses. For vertical bit-vector databases the same permutation
//! clusters the 1s at the front of each frequent item's vector, enabling
//! *0-escaping* (§4.2, see [`crate::bits::OneRange`]).
//!
//! This module works on item identifiers that have **already been remapped
//! to frequency rank** (rank 0 = most frequent), which the `fpm-core`
//! crate's remapper produces; under that encoding "decreasing frequency
//! order" is simply ascending integer order, and the lexicographic
//! comparison is plain slice comparison.

/// Sorts the items of one transaction into decreasing-frequency order,
/// i.e. ascending rank order (step 1 of the transform).
pub fn order_items(transaction: &mut [u32]) {
    transaction.sort_unstable();
}

/// Computes the lexicographic permutation of a transaction list without
/// moving the transactions: returns `perm` such that visiting
/// `transactions[perm[0]], transactions[perm[1]], …` is lexicographic
/// order. Items inside each transaction must already be rank-ordered
/// (see [`order_items`]).
///
/// Ties (duplicate transactions) keep their original relative order, so
/// the permutation is stable — duplicate-merging passes downstream rely on
/// equal transactions being adjacent *and* in input order.
pub fn lex_permutation<T: AsRef<[u32]>>(transactions: &[T]) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..transactions.len() as u32).collect();
    perm.sort_by(|&a, &b| transactions[a as usize].as_ref().cmp(transactions[b as usize].as_ref()));
    perm
}

/// Applies the full transform in place: rank-orders the items of every
/// transaction, then sorts the transaction list lexicographically
/// (stable). This is the form used on owned `Vec<Vec<u32>>` databases
/// before handing them to a miner.
///
/// ```
/// let mut db = vec![vec![2u32, 0], vec![1], vec![0, 1]];
/// also::lexorder::lex_order(&mut db);
/// assert_eq!(db, vec![vec![0, 1], vec![0, 2], vec![1]]);
/// // the most frequent item (rank 0) is now one contiguous run
/// assert_eq!(also::lexorder::discontinuities(&db, 0), 0);
/// ```
pub fn lex_order(transactions: &mut Vec<Vec<u32>>) {
    for t in transactions.iter_mut() {
        order_items(t);
    }
    // MSD radix sort (see [`crate::radix`]): O(total items) instead of
    // O(n log n) sequence comparisons — the preprocessing cost is the
    // pattern's downside on huge inputs (the paper's DS4 observation),
    // so the production path keeps it as low as possible.
    let perm = crate::radix::lex_permutation_radix(transactions);
    *transactions = crate::radix::apply_permutation(transactions, &perm);
}

/// Counts the *discontinuities* of an item under a given transaction
/// order: the number of maximal runs of consecutive transactions that
/// contain the item, minus one (0 means all its transactions are
/// contiguous).
///
/// The paper's locality argument (§3.2) is that lexicographic ordering
/// minimizes discontinuities for the most frequent items: the most
/// frequent item ends up with 0, the second with at most 1, etc. The test
/// suite and the `repro` harness use this metric to *verify* that claim on
/// real and synthetic inputs rather than assume it.
pub fn discontinuities<T: AsRef<[u32]>>(transactions: &[T], item: u32) -> usize {
    let mut runs = 0usize;
    let mut in_run = false;
    for t in transactions {
        let has = t.as_ref().contains(&item);
        if has && !in_run {
            runs += 1;
        }
        in_run = has;
    }
    runs.saturating_sub(1)
}

/// A summary of how well an ordering clusters item occurrences: the total
/// number of discontinuities across the `top_k` most frequent items
/// (ranks `0..top_k`). Lower is better; used by benches and the advisor.
pub fn clustering_cost<T: AsRef<[u32]>>(transactions: &[T], top_k: u32) -> usize {
    (0..top_k).map(|i| discontinuities(transactions, i)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact example of Table 1 in the paper. The raw database (items
    /// a..f) has frequencies c:4, f:4, a:3, b:2, d:2, e:2, so the rank
    /// alphabet is c=0, f=1, a=2, b=3, d=4, e=5.
    #[test]
    fn paper_table1() {
        // Transactions from Table 1 (left), already translated to ranks:
        // {a,c,f}->{0,1,2}, {b,c,f}->{0,1,3}, {a,c,f}->{0,1,2},
        // {d,e}->{4,5}, {a,b,c,d,e,f}->{0,1,2,3,4,5}
        let mut db = vec![
            vec![2u32, 0, 1],
            vec![3, 0, 1],
            vec![2, 0, 1],
            vec![4, 5],
            vec![2, 3, 0, 1, 4, 5],
        ];
        lex_order(&mut db);
        // Table 1 (right): {c,f,a}, {c,f,a}, {c,f,a,b,d,e}, {c,f,b}, {d,e}
        assert_eq!(
            db,
            vec![
                vec![0, 1, 2],
                vec![0, 1, 2],
                vec![0, 1, 2, 3, 4, 5],
                vec![0, 1, 3],
                vec![4, 5],
            ]
        );
    }

    #[test]
    fn permutation_is_stable_for_duplicates() {
        let db = vec![vec![1u32, 2], vec![0, 1], vec![1, 2], vec![0, 1]];
        let perm = lex_permutation(&db);
        assert_eq!(perm, vec![1, 3, 0, 2]);
    }

    #[test]
    fn most_frequent_item_becomes_contiguous() {
        // Item 0 scattered through the input.
        let mut db = vec![
            vec![0u32, 3],
            vec![1, 2],
            vec![0, 1],
            vec![2, 3],
            vec![0, 2],
            vec![1, 3],
            vec![0, 1, 2],
        ];
        assert!(discontinuities(&db, 0) > 0);
        lex_order(&mut db);
        assert_eq!(discontinuities(&db, 0), 0, "rank-0 item must be one run");
        assert!(discontinuities(&db, 1) <= 1, "rank-1 item has at most 1 gap");
    }

    #[test]
    fn lex_order_preserves_multiset() {
        let orig = vec![vec![5u32, 1, 3], vec![2, 2, 0], vec![4]];
        let mut db = orig.clone();
        lex_order(&mut db);
        let mut a: Vec<Vec<u32>> = orig
            .into_iter()
            .map(|mut t| {
                t.sort_unstable();
                t
            })
            .collect();
        a.sort();
        assert_eq!(db, a);
    }

    #[test]
    fn clustering_cost_drops_after_ordering() {
        // A deterministically shuffled database.
        let mut db: Vec<Vec<u32>> = (0..64u32)
            .map(|i| {
                let mut t = vec![i % 4];
                if i % 3 == 0 {
                    t.push(4 + i % 5);
                }
                t.sort_unstable();
                t
            })
            .collect();
        // interleave to scatter
        db.sort_by_key(|t| t.iter().sum::<u32>() % 7);
        let before = clustering_cost(&db, 4);
        lex_order(&mut db);
        let after = clustering_cost(&db, 4);
        assert!(after <= before, "ordering must not worsen clustering: {after} > {before}");
        assert_eq!(discontinuities(&db, 0), 0);
    }

    #[test]
    fn discontinuities_edge_cases() {
        let empty: Vec<Vec<u32>> = vec![];
        assert_eq!(discontinuities(&empty, 0), 0);
        let db = vec![vec![0u32], vec![0], vec![0]];
        assert_eq!(discontinuities(&db, 0), 0);
        assert_eq!(discontinuities(&db, 9), 0); // absent item
        let db = vec![vec![0u32], vec![1], vec![0]];
        assert_eq!(discontinuities(&db, 0), 1);
    }
}
