//! **P8 — SIMDization**: vectorized bit-vector intersection and population
//! count, the computation kernel of Eclat-style vertical miners (§3.5,
//! §4.2 of the paper).
//!
//! The paper observes that 98% of Eclat's time is spent ANDing bit vectors
//! and counting the ones in the result, and that the original
//! implementation's *table-lookup* popcount is an indirect load that cannot
//! be SIMDized — so it replaces the lookup with *computation* (a
//! Hacker's-Delight-style bit-sliced count) that vectorizes cleanly.
//!
//! This module provides the full ladder the evaluation compares:
//!
//! * [`Popcount::Table16`] — the FIMI'04 baseline: a 16-bit lookup table;
//! * [`Popcount::Scalar64`] — portable 64-bit computed popcount
//!   (`u64::count_ones`, which compiles to `popcnt` where available);
//! * [`Popcount::Sse2`] — 128-bit SSE2 AND + bit-sliced popcount
//!   (no `popcnt`/SSSE3 needed: this is what a 2006 Pentium D could do);
//! * [`Popcount::Avx2`] — 256-bit AVX2 AND + nibble-shuffle popcount, the
//!   modern extension of the same pattern.
//!
//! Every kernel computes `popcount(a & b)` fused — the AND result is
//! consumed in registers, never written back — and every kernel accepts a
//! word sub-range so the 0-escaping optimization ([`crate::bits::OneRange`])
//! composes with all of them.

use crate::bits::{BitVec, OneRange};

/// Strategy for the fused AND + population-count kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Popcount {
    /// 16-bit table lookup per half-word — the un-SIMDizable baseline used
    /// by the original Eclat implementation.
    Table16,
    /// Portable computed popcount on 64-bit words.
    Scalar64,
    /// SSE2 128-bit vectors with a bit-sliced (shift/mask/add) count.
    Sse2,
    /// AVX2 256-bit vectors with a nibble-shuffle (`vpshufb`) count.
    Avx2,
}

impl Popcount {
    /// All strategies supported on the current CPU, slowest-baseline first.
    pub fn available() -> Vec<Popcount> {
        let mut v = vec![Popcount::Table16, Popcount::Scalar64];
        #[cfg(target_arch = "x86_64")]
        {
            // SSE2 is architecturally guaranteed on x86_64.
            v.push(Popcount::Sse2);
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(Popcount::Avx2);
            }
        }
        v
    }

    /// The fastest strategy available on the current CPU. Cached after the
    /// first call so hot kernels can consult it without allocating.
    pub fn best() -> Popcount {
        static BEST: std::sync::OnceLock<Popcount> = std::sync::OnceLock::new();
        *BEST.get_or_init(|| *Popcount::available().last().expect("non-empty"))
    }

    /// Human-readable label used in benchmark reports.
    pub fn label(&self) -> &'static str {
        match self {
            Popcount::Table16 => "table16",
            Popcount::Scalar64 => "scalar64",
            Popcount::Sse2 => "sse2",
            Popcount::Avx2 => "avx2",
        }
    }

    /// `true` if this strategy runs on the current CPU.
    pub fn is_available(&self) -> bool {
        Popcount::available().contains(self)
    }
}

/// The 16-bit population-count lookup table (65,536 entries, 64 KiB).
///
/// Deliberately large — the paper's point is that this table competes with
/// the mined data for cache capacity and its indirect loads cannot be
/// vectorized.
struct Table16 {
    counts: Vec<u8>,
}

impl Table16 {
    fn new() -> Self {
        let mut counts = vec![0u8; 1 << 16];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = (i as u32).count_ones() as u8;
        }
        Table16 { counts }
    }

    #[inline]
    fn count_word(&self, w: u64) -> u64 {
        let t = &self.counts;
        t[(w & 0xFFFF) as usize] as u64
            + t[(w >> 16 & 0xFFFF) as usize] as u64
            + t[(w >> 32 & 0xFFFF) as usize] as u64
            + t[(w >> 48) as usize] as u64
    }
}

fn table16() -> &'static Table16 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Table16> = OnceLock::new();
    TABLE.get_or_init(Table16::new)
}

/// Computes `popcount(a & b)` over the word sub-range `span`, using the
/// given strategy.
///
/// `span` is a *word* range; passing each vector's full word range gives
/// the un-escaped kernel, passing an intersected [`OneRange`] span gives
/// the 0-escaped kernel.
///
/// # Panics
/// Panics if `span` exceeds either vector's allocated words.
// also-lint: hot
pub fn and_count(a: &BitVec, b: &BitVec, span: std::ops::Range<usize>, strategy: Popcount) -> u64 {
    let aw = &a.as_words()[span.clone()];
    let bw = &b.as_words()[span];
    and_count_words(aw, bw, strategy)
}

/// Computes `popcount(a & b)` over two equal-length word slices.
///
/// ```
/// use also::simd::{and_count_words, Popcount};
/// let a = [0b1011u64, u64::MAX];
/// let b = [0b0011u64, u64::MAX];
/// for s in Popcount::available() {
///     assert_eq!(and_count_words(&a, &b, s), 2 + 64);
/// }
/// ```
///
/// # Panics
/// Panics if the slices differ in length, or if the strategy is not
/// available on the current CPU.
// also-lint: hot
pub fn and_count_words(a: &[u64], b: &[u64], strategy: Popcount) -> u64 {
    assert_eq!(a.len(), b.len(), "word slices must match");
    match strategy {
        Popcount::Table16 => and_count_table16(a, b),
        Popcount::Scalar64 => and_count_scalar(a, b),
        Popcount::Sse2 => {
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: SSE2 is guaranteed on x86_64.
                unsafe { x86::and_count_sse2(a, b) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            panic!("SSE2 kernel unavailable on this architecture")
        }
        Popcount::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                assert!(
                    std::arch::is_x86_feature_detected!("avx2"),
                    "AVX2 not available on this CPU"
                );
                // SAFETY: AVX2 presence just checked.
                unsafe { x86::and_count_avx2(a, b) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            panic!("AVX2 kernel unavailable on this architecture")
        }
    }
}

/// Computes `a & b` into `out` and returns the population count of the
/// result, over `span` words. Words of `out` **outside** `span` are zeroed
/// by the caller's contract (use on freshly zeroed vectors or full spans).
///
/// This is the materializing variant used when the result vector is needed
/// for deeper recursion levels (Eclat keeps the intersected tidset).
// also-lint: hot
pub fn and_into_count(
    a: &BitVec,
    b: &BitVec,
    out: &mut BitVec,
    span: std::ops::Range<usize>,
    strategy: Popcount,
) -> u64 {
    let aw = &a.as_words()[span.clone()];
    let bw = &b.as_words()[span.clone()];
    let ow = &mut out.as_words_mut()[span];
    match strategy {
        Popcount::Table16 => {
            let t = table16();
            let mut total = 0u64;
            for ((o, &x), &y) in ow.iter_mut().zip(aw).zip(bw) {
                let w = x & y;
                *o = w;
                total += t.count_word(w);
            }
            total
        }
        _ => {
            // The vector strategies materialize with scalar stores and then
            // count with the vector kernel; on every tested CPU this fused
            // loop is store-bound, so one pass is enough.
            let mut total = 0u64;
            for ((o, &x), &y) in ow.iter_mut().zip(aw).zip(bw) {
                let w = x & y;
                *o = w;
                total += w.count_ones() as u64;
            }
            total
        }
    }
}

// also-lint: hot
fn and_count_table16(a: &[u64], b: &[u64]) -> u64 {
    let t = table16();
    a.iter().zip(b).map(|(&x, &y)| t.count_word(x & y)).sum()
}

// also-lint: hot
fn and_count_scalar(a: &[u64], b: &[u64]) -> u64 {
    a.iter().zip(b).map(|(&x, &y)| (x & y).count_ones() as u64).sum()
}

/// Intersects `a & b` within the conservative range produced by
/// intersecting the operands' 1-ranges, returning the popcount — the full
/// 0-escaped kernel of §4.2. Returns 0 without touching memory when the
/// intersected range is empty.
// also-lint: hot
pub fn and_count_escaped(
    a: &BitVec,
    ra: &OneRange,
    b: &BitVec,
    rb: &OneRange,
    strategy: Popcount,
) -> u64 {
    let r = ra.intersect(rb);
    if r.is_empty() {
        return 0;
    }
    and_count(a, b, r.as_word_span(), strategy)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The x86-64 intrinsic kernels. All functions take equal-length word
    //! slices (checked by the public wrappers).

    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// SSE2 fused AND + bit-sliced popcount.
    ///
    /// The count uses the classic shift/mask/add reduction (Hacker's
    /// Delight fig. 5-2) entirely in 128-bit registers — the "use
    /// computations to count the frequency of ones" transformation the
    /// paper applies, expressible with nothing newer than SSE2.
    ///
    /// # Safety
    /// Caller must ensure SSE2 (always true on x86_64) and
    /// `a.len() == b.len()`.
    // also-lint: hot
    #[target_feature(enable = "sse2")]
    pub unsafe fn and_count_sse2(a: &[u64], b: &[u64]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 2;
        let mut total: u64 = 0;
        // SAFETY: all pointer arithmetic stays within the slices; loads are
        // unaligned-tolerant (`loadu`) because 0-escaping spans start at
        // arbitrary word offsets.
        unsafe {
            let pa = a.as_ptr() as *const __m128i;
            let pb = b.as_ptr() as *const __m128i;
            let m1 = _mm_set1_epi8(0x55u8 as i8);
            let m2 = _mm_set1_epi8(0x33u8 as i8);
            let m4 = _mm_set1_epi8(0x0Fu8 as i8);
            let zero = _mm_setzero_si128();
            let mut i = 0;
            while i < chunks {
                // Accumulate up to 31 iterations of byte-wise counts before
                // widening, to amortize the horizontal reduction (each byte
                // holds <= 8, sad accumulates across 8 bytes: safe up to 31).
                let block_end = (i + 31).min(chunks);
                let mut acc = _mm_setzero_si128();
                while i < block_end {
                    let v = _mm_and_si128(_mm_loadu_si128(pa.add(i)), _mm_loadu_si128(pb.add(i)));
                    // Bit-sliced per-byte popcount.
                    let v = _mm_sub_epi8(v, _mm_and_si128(_mm_srli_epi64::<1>(v), m1));
                    let v = _mm_add_epi8(
                        _mm_and_si128(v, m2),
                        _mm_and_si128(_mm_srli_epi64::<2>(v), m2),
                    );
                    let v = _mm_and_si128(_mm_add_epi8(v, _mm_srli_epi64::<4>(v)), m4);
                    acc = _mm_add_epi8(acc, v);
                    i += 1;
                }
                // Horizontal add of 16 bytes into two u64 lanes, then out.
                let sums = _mm_sad_epu8(acc, zero);
                total += _mm_cvtsi128_si64(sums) as u64;
                total += _mm_cvtsi128_si64(_mm_unpackhi_epi64(sums, sums)) as u64;
            }
        }
        // Tail word (odd length).
        for k in chunks * 2..n {
            total += (a[k] & b[k]).count_ones() as u64;
        }
        total
    }

    /// AVX2 fused AND + nibble-shuffle popcount (Mula's method).
    ///
    /// # Safety
    /// Caller must ensure AVX2 and `a.len() == b.len()`.
    // also-lint: hot
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_count_avx2(a: &[u64], b: &[u64]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 4;
        let mut total: u64 = 0;
        // SAFETY: same containment argument as the SSE2 kernel.
        unsafe {
            let pa = a.as_ptr() as *const __m256i;
            let pb = b.as_ptr() as *const __m256i;
            let nibble_counts = _mm256_setr_epi8(
                0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2,
                3, 2, 3, 3, 4,
            );
            let low_mask = _mm256_set1_epi8(0x0F);
            let zero = _mm256_setzero_si256();
            let mut i = 0;
            while i < chunks {
                let block_end = (i + 31).min(chunks);
                let mut acc = _mm256_setzero_si256();
                while i < block_end {
                    let v = _mm256_and_si256(
                        _mm256_loadu_si256(pa.add(i)),
                        _mm256_loadu_si256(pb.add(i)),
                    );
                    let lo = _mm256_and_si256(v, low_mask);
                    let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(v), low_mask);
                    let cnt = _mm256_add_epi8(
                        _mm256_shuffle_epi8(nibble_counts, lo),
                        _mm256_shuffle_epi8(nibble_counts, hi),
                    );
                    acc = _mm256_add_epi8(acc, cnt);
                    i += 1;
                }
                let sums = _mm256_sad_epu8(acc, zero);
                let lo128 = _mm256_castsi256_si128(sums);
                let hi128 = _mm256_extracti128_si256::<1>(sums);
                total += _mm_cvtsi128_si64(lo128) as u64;
                total += _mm_cvtsi128_si64(_mm_unpackhi_epi64(lo128, lo128)) as u64;
                total += _mm_cvtsi128_si64(hi128) as u64;
                total += _mm_cvtsi128_si64(_mm_unpackhi_epi64(hi128, hi128)) as u64;
            }
        }
        for k in chunks * 4..n {
            total += (a[k] & b[k]).count_ones() as u64;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_words(n: usize, seed: u64) -> Vec<u64> {
        // Small xorshift so the test has no external deps.
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            })
            .collect()
    }

    fn reference(a: &[u64], b: &[u64]) -> u64 {
        a.iter().zip(b).map(|(&x, &y)| (x & y).count_ones() as u64).sum()
    }

    #[test]
    fn all_strategies_agree_on_random_words() {
        for n in [0usize, 1, 2, 3, 7, 8, 31, 32, 33, 63, 64, 65, 200, 1000] {
            let a = rng_words(n, 42);
            let b = rng_words(n, 4242);
            let expect = reference(&a, &b);
            for s in Popcount::available() {
                assert_eq!(and_count_words(&a, &b, s), expect, "{} n={n}", s.label());
            }
        }
    }

    #[test]
    fn strategies_agree_on_extremes() {
        for n in [5usize, 64, 129] {
            let ones = vec![u64::MAX; n];
            let zeros = vec![0u64; n];
            for s in Popcount::available() {
                assert_eq!(and_count_words(&ones, &ones, s), 64 * n as u64);
                assert_eq!(and_count_words(&ones, &zeros, s), 0);
            }
        }
    }

    #[test]
    fn long_accumulation_does_not_overflow_byte_lanes() {
        // > 31 SIMD chunks of all-ones exercises the block-accumulator
        // widening logic in both vector kernels.
        let n = 4 * 200 + 3;
        let ones = vec![u64::MAX; n];
        for s in Popcount::available() {
            assert_eq!(and_count_words(&ones, &ones, s), 64 * n as u64, "{}", s.label());
        }
    }

    #[test]
    fn escaped_equals_full() {
        let a = BitVec::from_indices(2048, &[100, 700, 701, 1500]);
        let b = BitVec::from_indices(2048, &[100, 701, 1600]);
        let full = and_count(&a, &b, 0..a.words().min(b.words()), Popcount::Scalar64);
        for s in Popcount::available() {
            let esc = and_count_escaped(&a, &a.one_range(), &b, &b.one_range(), s);
            assert_eq!(esc, full, "{}", s.label());
        }
        assert_eq!(full, 2);
    }

    #[test]
    fn escaped_disjoint_ranges_short_circuit() {
        let a = BitVec::from_indices(4096, &[10]);
        let b = BitVec::from_indices(4096, &[4000]);
        assert_eq!(
            and_count_escaped(&a, &a.one_range(), &b, &b.one_range(), Popcount::Scalar64),
            0
        );
    }

    #[test]
    fn and_into_count_materializes_and_counts() {
        let a = BitVec::from_indices(512, &[1, 64, 65, 300]);
        let b = BitVec::from_indices(512, &[1, 65, 300, 301]);
        for s in Popcount::available() {
            let mut out = BitVec::zeros(512);
            let n = and_into_count(&a, &b, &mut out, 0..a.words(), s);
            assert_eq!(n, 3);
            assert_eq!(out.iter_ones().collect::<Vec<_>>(), vec![1, 65, 300]);
        }
    }

    #[test]
    fn unaligned_spans_work() {
        // 0-escaping spans start at arbitrary word offsets; vector loads
        // must tolerate 8-byte (not 16/32-byte) alignment.
        let a = BitVec::from_indices(4096, &(0..4096).step_by(3).map(|x| x as u32).collect::<Vec<_>>());
        let b = BitVec::from_indices(4096, &(0..4096).step_by(5).map(|x| x as u32).collect::<Vec<_>>());
        for start in [1usize, 3, 5, 7] {
            let span = start..a.words();
            let expect = and_count(&a, &b, span.clone(), Popcount::Scalar64);
            for s in Popcount::available() {
                assert_eq!(and_count(&a, &b, span.clone(), s), expect, "{}", s.label());
            }
        }
    }

    #[test]
    fn best_is_available() {
        assert!(Popcount::best().is_available());
        assert!(!Popcount::available().is_empty());
    }

    #[test]
    fn table16_counts_every_halfword_correctly() {
        // Spot-check the table against u32::count_ones on a stratified set.
        for w in [0u64, 1, 0xFFFF, 0x1_0000, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            assert_eq!(
                and_count_words(&[w], &[u64::MAX], Popcount::Table16),
                w.count_ones() as u64
            );
        }
    }
}
