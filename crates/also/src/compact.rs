//! **P4 — Compaction** (§3.3 of the paper): copy data that is scattered
//! across memory into consecutive locations, so the accesses that follow
//! enjoy spatial locality. Compaction pays when the copy cost is amortized
//! over many subsequent accesses — LCM's frequency counters, read on every
//! `calc_freq` call but scattered through the occurrence array's header
//! structs, are the paper's example.
//!
//! Two tools live here:
//!
//! * [`Arena`] — a cache-line-aligned bump arena. Projected databases and
//!   compacted counter blocks are copied into it, giving them both
//!   contiguity and alignment.
//! * [`compact_by`] / [`scatter_back`] — the structure-of-arrays split:
//!   pull one hot field out of an array of structs into a dense vector,
//!   operate on it, and write it back.

use crate::CACHE_LINE_BYTES;

/// A cache-line-aligned bump arena of `T`.
///
/// All values copied into the arena stay valid (their indices stable)
/// until [`Arena::reset`]; the arena never reallocates its current block —
/// it chains new blocks instead, so raw index ranges returned by
/// [`Arena::copy_in`] remain usable.
pub struct Arena<T> {
    blocks: Vec<Vec<T>>,
    block_cap: usize,
    len: usize,
}

impl<T: Copy> Arena<T> {
    /// Creates an arena whose blocks hold `block_cap` elements (rounded up
    /// to at least one cache line's worth).
    pub fn new(block_cap: usize) -> Self {
        let min = (CACHE_LINE_BYTES / std::mem::size_of::<T>().max(1)).max(1);
        Arena {
            blocks: Vec::new(),
            block_cap: block_cap.max(min),
            len: 0,
        }
    }

    /// Total elements stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing has been copied in.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies `src` into the arena as one contiguous run and returns a
    /// slice of it. Runs longer than the block capacity get a dedicated
    /// block (still contiguous).
    pub fn copy_in(&mut self, src: &[T]) -> &[T] {
        let need = src.len();
        let start_new = match self.blocks.last() {
            None => true,
            Some(b) => b.len() + need > b.capacity(),
        };
        if start_new {
            self.blocks.push(Vec::with_capacity(self.block_cap.max(need)));
        }
        let block = self.blocks.last_mut().expect("block just ensured");
        let at = block.len();
        block.extend_from_slice(src);
        self.len += need;
        &block[at..at + need]
    }

    /// Drops all contents but keeps the allocated blocks for reuse —
    /// projection loops call this once per recursion level.
    pub fn reset(&mut self) {
        for b in &mut self.blocks {
            b.clear();
        }
        self.len = 0;
        // Keep at most one (largest) block to bound idle memory.
        if self.blocks.len() > 1 {
            let max_cap = self.blocks.iter().map(|b| b.capacity()).max().unwrap_or(0);
            self.blocks.retain(|b| b.capacity() == max_cap);
            self.blocks.truncate(1);
        }
    }
}

/// Extracts the hot field selected by `get` from every element of
/// `items` into one dense, contiguous vector — the compaction step.
///
/// ```
/// use also::compact::{compact_by, scatter_back};
/// struct Hdr { count: u32, _bulk: [u8; 28] }
/// let mut hdrs = vec![Hdr { count: 1, _bulk: [0; 28] }, Hdr { count: 2, _bulk: [0; 28] }];
/// let mut counts = compact_by(&hdrs, |h| h.count); // dense, cache-friendly
/// counts.iter_mut().for_each(|c| *c += 10);
/// scatter_back(&mut hdrs, &counts, |h, v| h.count = v);
/// assert_eq!(hdrs[1].count, 12);
/// ```
pub fn compact_by<S, T, F: FnMut(&S) -> T>(items: &[S], get: F) -> Vec<T> {
    items.iter().map(get).collect()
}

/// Writes a compacted field vector back into the array of structs —
/// the inverse of [`compact_by`].
///
/// # Panics
/// Panics if lengths differ.
pub fn scatter_back<S, T: Copy, F: FnMut(&mut S, T)>(items: &mut [S], compacted: &[T], mut set: F) {
    assert_eq!(items.len(), compacted.len(), "compacted field length mismatch");
    for (s, &v) in items.iter_mut().zip(compacted) {
        set(s, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_copies_are_contiguous_and_stable() {
        let mut a: Arena<u32> = Arena::new(8);
        let r1: Vec<u32> = a.copy_in(&[1, 2, 3]).to_vec();
        let r2: Vec<u32> = a.copy_in(&[4, 5]).to_vec();
        assert_eq!(r1, vec![1, 2, 3]);
        assert_eq!(r2, vec![4, 5]);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn arena_handles_oversized_runs() {
        let mut a: Arena<u8> = Arena::new(4);
        let big: Vec<u8> = (0..100).collect();
        let r = a.copy_in(&big).to_vec();
        assert_eq!(r, big);
    }

    #[test]
    fn arena_reset_reuses_storage() {
        let mut a: Arena<u64> = Arena::new(1024);
        for _ in 0..10 {
            a.copy_in(&[1; 100]);
        }
        a.reset();
        assert!(a.is_empty());
        a.copy_in(&[7, 8, 9]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn compact_and_scatter_roundtrip() {
        #[derive(Clone)]
        struct Hdr {
            count: u32,
            _payload: [u8; 40],
        }
        let mut hdrs: Vec<Hdr> = (0..50)
            .map(|i| Hdr {
                count: i,
                _payload: [0; 40],
            })
            .collect();
        let mut counts = compact_by(&hdrs, |h| h.count);
        for c in &mut counts {
            *c *= 2;
        }
        scatter_back(&mut hdrs, &counts, |h, v| h.count = v);
        for (i, h) in hdrs.iter().enumerate() {
            assert_eq!(h.count, i as u32 * 2);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scatter_back_length_mismatch_panics() {
        let mut items = vec![0u32; 3];
        scatter_back(&mut items, &[1u32, 2], |s, v| *s = v);
    }
}
