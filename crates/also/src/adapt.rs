//! **P2 — Data structure adaptation** (§3.3 of the paper): pick, or
//! specialize, the in-memory database representation according to the
//! input's characteristics.
//!
//! Two concrete adaptations from the paper live here:
//!
//! * [`choose_repr`] — the representation chooser over the paper's
//!   Feature 1/Feature 2 design space (horizontal vs vertical; dense bit
//!   matrix vs sparse index lists vs prefix tree), driven by the measured
//!   density of the `m × n` occurrence table.
//! * [`DeltaByte`] — the compression scheme of §4.3: encode a node's item
//!   ID as the difference from its parent's item ID in **one byte**, with
//!   an escape code for the rare large deltas. In an FP-tree built over
//!   frequency-ranked items, parent/child ranks are close, so nearly every
//!   delta fits — shrinking the node and the tree's cache footprint
//!   dramatically.

/// The database representations of the paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Repr {
    /// Horizontal sparse: per transaction, the indices of its items (LCM).
    HorizontalSparse,
    /// Vertical dense bit matrix: per item, a bit per transaction (Eclat).
    VerticalBits,
    /// Prefix tree with shared prefixes (FP-Growth).
    PrefixTree,
}

/// Chooses a representation from gross input statistics.
///
/// * dense tables (≥ `DENSE_THRESHOLD` fill) → bit matrix: a bit costs
///   less than a 32-bit index once more than 1/32 of entries are set, and
///   the vertical AND kernel is SIMD-friendly;
/// * sparse tables with heavy prefix sharing (low distinct-transaction
///   ratio) → prefix tree;
/// * otherwise → horizontal sparse arrays.
///
/// `distinct_ratio` is `distinct transactions / transactions` in `0..=1`;
/// pass `1.0` when unknown (disables the tree choice).
pub fn choose_repr(n_transactions: usize, n_items: usize, nnz: u64, distinct_ratio: f64) -> Repr {
    let cells = n_transactions as u64 * n_items as u64;
    let density = if cells == 0 { 0.0 } else { nnz as f64 / cells as f64 };
    if density >= DENSE_THRESHOLD {
        Repr::VerticalBits
    } else if distinct_ratio <= TREE_SHARING_THRESHOLD {
        Repr::PrefixTree
    } else {
        Repr::HorizontalSparse
    }
}

/// Density at which a bit matrix beats 32-bit sparse indices (1/32),
/// nudged up slightly because sparse arrays also compress trailing items.
pub const DENSE_THRESHOLD: f64 = 0.04;

// ---------------------------------------------------------------------------
// Per-chunk container rules — the roaring-style refinement of P2. The
// global [`choose_repr`] picks one representation for the whole table;
// these rules pick one *per 2^16-tid chunk* (mechanism in
// [`crate::containers`]).
// ---------------------------------------------------------------------------

/// The three per-chunk container shapes of [`crate::containers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ContainerKind {
    /// Sorted `u16` array — 2 bytes per element, for sparse chunks.
    Array,
    /// 1024×u64 bitmap — fixed 8 KiB, for dense chunks.
    Bitmap,
    /// Run-length intervals — 4 bytes per run, for clustered chunks.
    Runs,
}

/// Largest cardinality stored as a sorted-u16 array: past this point the
/// fixed 8 KiB bitmap is smaller than `2 × card` bytes (the classic
/// roaring 4096 crossover).
pub const ARRAY_MAX: usize = 4096;

/// Cardinality **below** which a bitmap demotes back to an array on
/// removal. Strictly less than [`ARRAY_MAX`]: the band
/// `ARRAY_DEMOTE ..= ARRAY_MAX` is the hysteresis region where a chunk
/// keeps its bitmap, so a workload oscillating around the crossover does
/// not thrash between shapes (promotion and demotion each cost a full
/// chunk rewrite).
pub const ARRAY_DEMOTE: usize = ARRAY_MAX - 512;

/// Whether an array that just grew to `card` elements should promote to a
/// bitmap (insert path).
#[inline]
pub fn should_promote(card: usize) -> bool {
    card > ARRAY_MAX
}

/// Whether a bitmap that just shrank to `card` elements should demote to
/// an array (remove path). Deliberately below the promote threshold —
/// see [`ARRAY_DEMOTE`].
#[inline]
pub fn should_demote(card: usize) -> bool {
    card < ARRAY_DEMOTE
}

/// Static cost rule choosing the cheapest container for a chunk with
/// `card` values forming `n_runs` maximal intervals: compares exact
/// storage bytes (array `2·card` when it fits, bitmap 8 KiB, runs
/// `4·n_runs`) and picks the smallest, runs winning ties because its
/// set ops are also the cheapest per byte.
pub fn choose_container(card: usize, n_runs: usize) -> ContainerKind {
    let array_bytes = if card <= ARRAY_MAX { card * 2 } else { usize::MAX };
    let bitmap_bytes = 8 * 1024;
    let runs_bytes = n_runs * 4;
    if runs_bytes <= array_bytes && runs_bytes <= bitmap_bytes {
        ContainerKind::Runs
    } else if array_bytes <= bitmap_bytes {
        ContainerKind::Array
    } else {
        ContainerKind::Bitmap
    }
}

/// Distinct-transaction ratio below which prefix sharing pays for a tree.
pub const TREE_SHARING_THRESHOLD: f64 = 0.5;

/// The escape byte: a stored `0xFF` means "the real delta did not fit;
/// look it up in the side table".
pub const DELTA_ESCAPE: u8 = 0xFF;

/// Differential one-byte item-ID encoding with an escape side table
/// (§4.3 of the paper).
///
/// ```
/// use also::adapt::{DeltaByte, NO_PARENT};
/// let mut codec = DeltaByte::new();
/// let byte = codec.encode(0, 4, 7);          // child rank 7 under parent rank 4
/// assert_eq!(byte, 2);                       // 7 - 4 - 1
/// assert_eq!(codec.decode(0, 4, byte), 7);
/// let far = codec.encode(1, NO_PARENT, 5000); // too far: escapes
/// assert_eq!(codec.decode(1, NO_PARENT, far), 5000);
/// assert_eq!(codec.escape_count(), 1);
/// ```
///
/// `encode(parent_item, item)` stores `item − parent_item − 1` (a child's
/// rank is strictly greater than its parent's in a rank-ordered FP-tree)
/// when it fits in `0..=0xFE`; larger deltas are escaped to a `u32` side
/// table. The root's children encode against a virtual parent rank of
/// `−1`, which callers express by passing `parent_item = NO_PARENT`.
#[derive(Debug, Clone, Default)]
pub struct DeltaByte {
    escapes: Vec<(u32, u32)>, // (node_index, absolute item) sorted by node_index
}

/// Virtual parent rank for root children (represents rank −1).
pub const NO_PARENT: u32 = u32::MAX;

impl DeltaByte {
    /// Creates an empty codec (no escapes yet).
    pub fn new() -> Self {
        DeltaByte { escapes: Vec::new() }
    }

    /// Encodes `item` relative to `parent_item` for the node at
    /// `node_index`, returning the byte to store. Escaped values are
    /// recorded in the side table; `node_index` values must be encoded in
    /// ascending order (node pools grow monotonically).
    pub fn encode(&mut self, node_index: u32, parent_item: u32, item: u32) -> u8 {
        let base = if parent_item == NO_PARENT { 0 } else { parent_item + 1 };
        debug_assert!(item >= base, "child rank must exceed parent rank");
        let delta = item - base;
        if delta < DELTA_ESCAPE as u32 {
            delta as u8
        } else {
            debug_assert!(
                self.escapes.last().is_none_or(|&(n, _)| n < node_index),
                "escapes must be recorded in ascending node order"
            );
            self.escapes.push((node_index, item));
            DELTA_ESCAPE
        }
    }

    /// Decodes the byte stored for `node_index` back to the absolute item.
    #[inline]
    pub fn decode(&self, node_index: u32, parent_item: u32, stored: u8) -> u32 {
        if stored == DELTA_ESCAPE {
            let at = self
                .escapes
                .binary_search_by_key(&node_index, |&(n, _)| n)
                .expect("escaped node must be in side table");
            self.escapes[at].1
        } else {
            let base = if parent_item == NO_PARENT { 0 } else { parent_item + 1 };
            base + stored as u32
        }
    }

    /// Number of escaped nodes — benches report the escape rate to show
    /// the "usually fits in a single byte" claim holds.
    pub fn escape_count(&self) -> usize {
        self.escapes.len()
    }

    /// Bytes of side-table storage.
    pub fn bytes(&self) -> usize {
        self.escapes.len() * std::mem::size_of::<(u32, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chooser_picks_bits_for_dense() {
        // 300 transactions × 100 items, 40% full.
        assert_eq!(choose_repr(300, 100, 12_000, 1.0), Repr::VerticalBits);
    }

    #[test]
    fn chooser_picks_tree_for_shared_prefixes() {
        assert_eq!(choose_repr(100_000, 10_000, 1_000_000, 0.2), Repr::PrefixTree);
    }

    #[test]
    fn chooser_picks_sparse_otherwise() {
        assert_eq!(choose_repr(100_000, 10_000, 1_000_000, 0.9), Repr::HorizontalSparse);
    }

    #[test]
    fn chooser_empty_input() {
        assert_eq!(choose_repr(0, 0, 0, 1.0), Repr::HorizontalSparse);
    }

    #[test]
    fn delta_roundtrip_small() {
        let mut c = DeltaByte::new();
        // parent rank 10, child rank 11 → delta byte 0.
        let b = c.encode(0, 10, 11);
        assert_eq!(b, 0);
        assert_eq!(c.decode(0, 10, b), 11);
        assert_eq!(c.escape_count(), 0);
    }

    #[test]
    fn delta_roundtrip_root_children() {
        let mut c = DeltaByte::new();
        let b = c.encode(0, NO_PARENT, 0); // most frequent item under root
        assert_eq!(b, 0);
        assert_eq!(c.decode(0, NO_PARENT, b), 0);
        let b2 = c.encode(1, NO_PARENT, 200);
        assert_eq!(c.decode(1, NO_PARENT, b2), 200);
    }

    #[test]
    fn delta_escape_roundtrip() {
        let mut c = DeltaByte::new();
        let b = c.encode(7, 3, 3 + 1 + 300); // delta 300 doesn't fit
        assert_eq!(b, DELTA_ESCAPE);
        assert_eq!(c.decode(7, 3, b), 304);
        assert_eq!(c.escape_count(), 1);
        assert_eq!(c.bytes(), 8);
    }

    #[test]
    fn delta_boundary_values() {
        let mut c = DeltaByte::new();
        // delta 0xFE is the largest inline value
        let b = c.encode(0, 0, 1 + 0xFE - 1 + 1);
        assert_eq!(b, 0xFE);
        assert_eq!(c.decode(0, 0, b), 0xFF);
        // delta 0xFF must escape
        let b = c.encode(1, 0, 1 + 0xFF);
        assert_eq!(b, DELTA_ESCAPE);
        assert_eq!(c.decode(1, 0, b), 0x100);
    }

    #[test]
    fn many_escapes_binary_search() {
        let mut c = DeltaByte::new();
        let mut stored = Vec::new();
        for n in 0..100u32 {
            stored.push(c.encode(n, 0, 1000 + n));
        }
        for n in 0..100u32 {
            assert_eq!(c.decode(n, 0, stored[n as usize]), 1000 + n);
        }
        assert_eq!(c.escape_count(), 100);
    }
}
