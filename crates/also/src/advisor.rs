//! Input-driven pattern selection — the paper's stated future work
//! ("selecting an optimal set of transformations, given the input and
//! machine parameters", §6), built from the predictive observations its
//! evaluation section makes:
//!
//! * software prefetch and aggregation pay off on *long* linked
//!   structures (deep FP-trees ⇐ long transactions);
//! * lexicographic ordering pays when the input order is *random*
//!   (poorly clustered), and its preprocessing cost can outweigh the win
//!   on databases with very many transactions (the DS4 / FP-Growth case);
//! * tiling pays when transactions are *clustered* (reuse inside a tile)
//!   and adds nothing on very sparse scattered data (the DS4 / LCM case);
//! * SIMDization pays for computation-bound, dense, vertical kernels.
//!
//! [`InputProfile`] captures exactly the metrics those rules need;
//! [`advise`] turns a profile + kernel into a recommended pattern set.
//! Integration tests validate the advice against measured best variants.

use crate::adapt::{choose_container, choose_repr, ContainerKind, Repr};
use crate::catalog::{Kernel, Pattern};
use crate::containers::{CHUNK_BITS, TidSet};
use crate::lexorder::clustering_cost;
use serde::{Deserialize, Serialize};

/// Summary statistics of a transactional database, as used by the
/// advisor's rules. Built by [`InputProfile::measure`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InputProfile {
    /// Number of transactions `n`.
    pub n_transactions: usize,
    /// Number of distinct items `m`.
    pub n_items: usize,
    /// Total item occurrences (`nnz` of the n×m table).
    pub nnz: u64,
    /// Mean transaction length.
    pub mean_len: f64,
    /// Fill ratio of the n×m occurrence table, in `0..=1`.
    pub density: f64,
    /// How badly the *current* transaction order scatters the frequent
    /// items, in `0..=1`: measured discontinuities of the top items
    /// divided by their worst case. 0 = perfectly clustered (already
    /// lexicographic-like), 1 = maximally scattered.
    pub scatter: f64,
}

impl InputProfile {
    /// Measures a database of rank-mapped transactions (item ids are
    /// frequency ranks, as produced by `fpm-core`'s remapper).
    pub fn measure<T: AsRef<[u32]>>(transactions: &[T], n_items: usize) -> Self {
        let n = transactions.len();
        let nnz: u64 = transactions.iter().map(|t| t.as_ref().len() as u64).sum();
        let mean_len = if n == 0 { 0.0 } else { nnz as f64 / n as f64 };
        let cells = n as u64 * n_items as u64;
        let density = if cells == 0 { 0.0 } else { nnz as f64 / cells as f64 };
        // Scatter over the top-k most frequent items. Worst case per item
        // is ~min(freq, n - freq) discontinuities; we use a cheap bound of
        // n/2 per item which is enough for a 0..1 normalization.
        let top_k = (n_items as u32).min(8);
        let scatter = if n < 2 || top_k == 0 {
            0.0
        } else {
            let cost = clustering_cost(transactions, top_k) as f64;
            (cost / (top_k as f64 * (n as f64 / 2.0))).min(1.0)
        };
        InputProfile {
            n_transactions: n,
            n_items,
            nnz,
            mean_len,
            density,
            scatter,
        }
    }
}

/// Thresholds for the advisor rules, separated out so benches can sweep
/// them and tests can pin them.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdvisorConfig {
    /// Transactions above this make lexicographic preprocessing suspect
    /// (the paper's DS4/FP-Growth observation). Expressed as a multiple of
    /// items: very many transactions over few items reorder slowly.
    pub lex_max_transactions: usize,
    /// Scatter below this means the input is already clustered, so lex
    /// ordering adds little.
    pub lex_min_scatter: f64,
    /// Mean transaction length above which linked structures are deep
    /// enough for prefetch/aggregation to pay.
    pub deep_structure_len: f64,
    /// Post-threshold density below which tiling finds no reuse (the
    /// DS4/LCM case): with fewer than ~2% of transactions sharing an
    /// item, a transaction-range tile holds almost no cross-column
    /// overlap to exploit.
    pub tiling_min_density: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            lex_max_transactions: 1_000_000,
            lex_min_scatter: 0.02,
            deep_structure_len: 8.0,
            tiling_min_density: 0.02,
        }
    }
}

/// Recommends the set of patterns to enable for `kernel` on an input with
/// the given profile. Only patterns the paper marks as applied to that
/// kernel (Table 4) are ever recommended.
pub fn advise(profile: &InputProfile, kernel: Kernel, cfg: &AdvisorConfig) -> Vec<Pattern> {
    use Pattern::*;
    let mut out = Vec::new();
    let lex_ok = profile.scatter >= cfg.lex_min_scatter
        && profile.n_transactions <= cfg.lex_max_transactions;
    let deep = profile.mean_len >= cfg.deep_structure_len;
    match kernel {
        Kernel::Lcm => {
            if lex_ok {
                out.push(LexicographicOrdering);
            }
            out.push(Aggregation);
            out.push(Compaction);
            if deep {
                out.push(SoftwarePrefetch);
            }
            if profile.density >= cfg.tiling_min_density {
                out.push(Tiling);
            }
        }
        Kernel::Eclat => {
            if lex_ok {
                out.push(LexicographicOrdering); // enables 0-escaping
            }
            out.push(Simdization);
        }
        Kernel::FpGrowth => {
            if lex_ok {
                out.push(LexicographicOrdering);
            }
            out.push(DataStructureAdaptation);
            if deep {
                out.push(Aggregation);
                out.push(SoftwarePrefetch);
                out.push(PrefetchPointers);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Per-chunk vertical advisory — the container-era refinement of the
// global `choose_repr` pick.
// ---------------------------------------------------------------------------

/// Occupancy profile of one 2^16-tid chunk of a tid universe: everything
/// the per-chunk container rule needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkProfile {
    /// Chunk key (tid high 16 bits).
    pub key: u16,
    /// Distinct tids present in the chunk.
    pub cardinality: u32,
    /// Maximal runs the chunk's tids form.
    pub n_runs: u32,
}

impl ChunkProfile {
    /// Measures the per-chunk profiles of a strictly ascending tid list.
    pub fn measure_sorted(tids: &[u32]) -> Vec<ChunkProfile> {
        debug_assert!(tids.windows(2).all(|w| w[0] < w[1]), "tids must be strictly ascending");
        let mut out: Vec<ChunkProfile> = Vec::new();
        let mut prev: Option<u32> = None;
        for &t in tids {
            let key = (t >> CHUNK_BITS) as u16;
            let new_chunk = out.last().is_none_or(|p| p.key != key);
            if new_chunk {
                out.push(ChunkProfile { key, cardinality: 0, n_runs: 0 });
                prev = None;
            }
            let p = out.last_mut().unwrap_or_else(|| unreachable!("pushed above"));
            p.cardinality += 1;
            if prev != Some(t.wrapping_sub(1)) {
                p.n_runs += 1;
            }
            prev = Some(t);
        }
        out
    }
}

/// Which decision procedure the vertical auto-chooser runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AutoMode {
    /// Per-chunk container choices (the default, container-era path).
    PerChunk,
    /// The pre-container single global representation pick, kept as an
    /// A/B fallback; reproduces [`choose_repr`]'s decisions bit-for-bit.
    Global,
}

/// The advisor's plan for a vertical tid universe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VerticalPlan {
    /// One representation for the whole table ([`AutoMode::Global`]).
    Global(Repr),
    /// `(chunk_key, container)` choices per chunk ([`AutoMode::PerChunk`]).
    PerChunk(Vec<(u16, ContainerKind)>),
}

/// Advises a vertical representation for one tid universe.
///
/// In [`AutoMode::Global`] this defers to [`choose_repr`] with the exact
/// same inputs the pre-container chooser used — the decision is
/// bit-for-bit identical. In [`AutoMode::PerChunk`] it applies the
/// static container cost rule ([`choose_container`]) to each measured
/// chunk independently.
pub fn advise_vertical(
    profile: &InputProfile,
    chunks: &[ChunkProfile],
    distinct_ratio: f64,
    mode: AutoMode,
) -> VerticalPlan {
    match mode {
        AutoMode::Global => VerticalPlan::Global(choose_repr(
            profile.n_transactions,
            profile.n_items,
            profile.nnz,
            distinct_ratio,
        )),
        AutoMode::PerChunk => VerticalPlan::PerChunk(
            chunks
                .iter()
                .map(|c| (c.key, choose_container(c.cardinality as usize, c.n_runs as usize)))
                .collect(),
        ),
    }
}

/// Convenience: the per-chunk plan a [`TidSet`] actually materialized —
/// lets tests and benches confirm the built layout matches the advice.
pub fn realized_plan(set: &TidSet) -> Vec<(u16, ContainerKind)> {
    set.chunk_kinds().into_iter().map(|(k, kind, _)| (k, kind)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_clustered() -> InputProfile {
        InputProfile {
            n_transactions: 30_000,
            n_items: 1000,
            nnz: 30_000 * 60,
            mean_len: 60.0,
            density: 0.06,
            scatter: 0.01,
        }
    }

    fn sparse_scattered_huge() -> InputProfile {
        // The AP-like profile: 1.8M short scattered transactions.
        InputProfile {
            n_transactions: 1_800_000,
            n_items: 200_000,
            nnz: 1_800_000 * 9,
            mean_len: 9.0,
            density: 0.000045,
            scatter: 0.6,
        }
    }

    #[test]
    fn measure_on_toy_db() {
        let db = vec![vec![0u32, 1], vec![0], vec![2]];
        let p = InputProfile::measure(&db, 3);
        assert_eq!(p.n_transactions, 3);
        assert_eq!(p.nnz, 4);
        assert!((p.mean_len - 4.0 / 3.0).abs() < 1e-9);
        assert!((p.density - 4.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn measure_empty_db() {
        let db: Vec<Vec<u32>> = vec![];
        let p = InputProfile::measure(&db, 0);
        assert_eq!(p.nnz, 0);
        assert_eq!(p.density, 0.0);
        assert_eq!(p.scatter, 0.0);
    }

    #[test]
    fn tiling_skipped_on_sparse_scattered_input() {
        // The paper: "In DS4, tiling produces almost no speedup … very
        // sparse data set".
        let advice = advise(&sparse_scattered_huge(), Kernel::Lcm, &AdvisorConfig::default());
        assert!(!advice.contains(&Pattern::Tiling));
        let advice = advise(&dense_clustered(), Kernel::Lcm, &AdvisorConfig::default());
        assert!(advice.contains(&Pattern::Tiling));
    }

    #[test]
    fn lex_skipped_on_huge_transaction_counts() {
        // The paper: lex ordering "is not performing well in FP-Growth for
        // DS4, because the data set contains too many transactions".
        let advice = advise(
            &sparse_scattered_huge(),
            Kernel::FpGrowth,
            &AdvisorConfig::default(),
        );
        assert!(!advice.contains(&Pattern::LexicographicOrdering));
    }

    #[test]
    fn lex_skipped_on_already_clustered_input() {
        let mut p = dense_clustered();
        p.scatter = 0.0;
        let advice = advise(&p, Kernel::Eclat, &AdvisorConfig::default());
        assert!(!advice.contains(&Pattern::LexicographicOrdering));
        assert!(advice.contains(&Pattern::Simdization));
    }

    #[test]
    fn prefetch_only_for_deep_structures() {
        let mut shallow = dense_clustered();
        shallow.mean_len = 3.0;
        let advice = advise(&shallow, Kernel::FpGrowth, &AdvisorConfig::default());
        assert!(!advice.contains(&Pattern::SoftwarePrefetch));
        assert!(!advice.contains(&Pattern::Aggregation));
        let advice = advise(&dense_clustered(), Kernel::FpGrowth, &AdvisorConfig::default());
        assert!(advice.contains(&Pattern::SoftwarePrefetch));
        assert!(advice.contains(&Pattern::PrefetchPointers));
    }

    fn profile_for(n: usize, items: usize, nnz: u64) -> InputProfile {
        InputProfile {
            n_transactions: n,
            n_items: items,
            nnz,
            mean_len: if n == 0 { 0.0 } else { nnz as f64 / n as f64 },
            density: if n * items == 0 { 0.0 } else { nnz as f64 / (n * items) as f64 },
            scatter: 0.5,
        }
    }

    #[test]
    fn per_chunk_all_sparse_picks_arrays() {
        // 3 chunks, a few hundred scattered tids each.
        let tids: Vec<u32> = (0..900u32).map(|i| i * 217).collect();
        let chunks = ChunkProfile::measure_sorted(&tids);
        assert!(chunks.len() >= 2);
        let VerticalPlan::PerChunk(plan) =
            advise_vertical(&profile_for(200_000, 100, 900), &chunks, 1.0, AutoMode::PerChunk)
        else {
            panic!("PerChunk mode must yield a per-chunk plan")
        };
        assert!(plan.iter().all(|&(_, k)| k == ContainerKind::Array), "{plan:?}");
    }

    #[test]
    fn per_chunk_all_dense_picks_bitmaps() {
        // Every other tid set across two chunks: card 32768/chunk, runs
        // 32768/chunk — bitmap beats both array (too big) and runs.
        let tids: Vec<u32> = (0..65536u32).map(|i| i * 2).collect();
        let chunks = ChunkProfile::measure_sorted(&tids);
        assert_eq!(chunks.len(), 2);
        let VerticalPlan::PerChunk(plan) =
            advise_vertical(&profile_for(131_072, 10, 65_536), &chunks, 1.0, AutoMode::PerChunk)
        else {
            panic!("PerChunk mode must yield a per-chunk plan")
        };
        assert!(plan.iter().all(|&(_, k)| k == ContainerKind::Bitmap), "{plan:?}");
    }

    #[test]
    fn per_chunk_run_heavy_picks_runs() {
        // One solid block of 20k consecutive tids: 1 run beats everything.
        let tids: Vec<u32> = (10_000..30_000u32).collect();
        let chunks = ChunkProfile::measure_sorted(&tids);
        assert_eq!(chunks.len(), 1);
        let VerticalPlan::PerChunk(plan) =
            advise_vertical(&profile_for(65_536, 10, 20_000), &chunks, 1.0, AutoMode::PerChunk)
        else {
            panic!("PerChunk mode must yield a per-chunk plan")
        };
        assert_eq!(plan, vec![(0u16, ContainerKind::Runs)]);
    }

    #[test]
    fn per_chunk_mixed_profile_differs_per_chunk() {
        // Chunk 0 sparse, chunk 1 a solid run, chunk 2 dense-scattered.
        let mut tids: Vec<u32> = (0..100u32).map(|i| i * 600).collect();
        tids.extend(65_536..65_536 + 30_000u32);
        tids.extend((0..30_000u32).map(|i| 131_072 + i * 2));
        let chunks = ChunkProfile::measure_sorted(&tids);
        assert_eq!(chunks.len(), 3);
        let VerticalPlan::PerChunk(plan) = advise_vertical(
            &profile_for(200_000, 10, tids.len() as u64),
            &chunks,
            1.0,
            AutoMode::PerChunk,
        ) else {
            panic!("PerChunk mode must yield a per-chunk plan")
        };
        assert_eq!(
            plan,
            vec![
                (0u16, ContainerKind::Array),
                (1u16, ContainerKind::Runs),
                (2u16, ContainerKind::Bitmap),
            ]
        );
    }

    #[test]
    fn global_fallback_reproduces_choose_repr_bit_for_bit() {
        // Sweep a grid of gross statistics: the Global plan must equal the
        // legacy chooser's pick on every point.
        for &(n, items, nnz, ratio) in &[
            (300usize, 100usize, 12_000u64, 1.0f64), // dense → VerticalBits
            (100_000, 10_000, 1_000_000, 0.2),       // shared → PrefixTree
            (100_000, 10_000, 1_000_000, 0.9),       // sparse → HorizontalSparse
            (0, 0, 0, 1.0),                          // empty
            (1_800_000, 200_000, 16_200_000, 1.0),   // DS4-like
        ] {
            let p = profile_for(n, items, nnz);
            let plan = advise_vertical(&p, &[], ratio, AutoMode::Global);
            assert_eq!(plan, VerticalPlan::Global(choose_repr(n, items, nnz, ratio)));
        }
    }

    #[test]
    fn realized_layout_matches_advice_after_optimize() {
        let mut tids: Vec<u32> = (0..100u32).map(|i| i * 600).collect();
        tids.extend(65_536..65_536 + 30_000u32);
        let chunks = ChunkProfile::measure_sorted(&tids);
        let VerticalPlan::PerChunk(plan) = advise_vertical(
            &profile_for(100_000, 10, tids.len() as u64),
            &chunks,
            1.0,
            AutoMode::PerChunk,
        ) else {
            panic!("PerChunk mode must yield a per-chunk plan")
        };
        let mut set = TidSet::from_sorted(&tids);
        set.optimize();
        assert_eq!(realized_plan(&set), plan);
    }

    #[test]
    fn advice_respects_table4_applicability() {
        use crate::catalog::Applicability;
        for k in Kernel::ALL {
            for profile in [dense_clustered(), sparse_scattered_huge()] {
                for p in advise(&profile, k, &AdvisorConfig::default()) {
                    assert_eq!(
                        p.applicability(k),
                        Applicability::Applied,
                        "{} advised for {} but paper never applied it",
                        p.name(),
                        k.name()
                    );
                }
            }
        }
    }
}
