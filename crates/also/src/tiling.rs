//! **P6.1 — Tiling for sparse representations** (§3.4 of the paper):
//! restructure a repeated traversal of a large sparse structure so that a
//! cache-sized *tile* of it is processed completely before moving on.
//!
//! The paper's target loop (LCM's `calc_freq`, Figure 6): an outer loop
//! over the columns of the occurrence array, each iteration scanning —
//! in the worst case — the whole database, with no reuse between
//! iterations once the database exceeds cache. The tiled form slices the
//! database *horizontally by row (transaction) range*; an outer loop walks
//! tiles and an inner loop performs, for every column, just the work that
//! falls inside the current tile. The cost is the extra level of loop
//! nesting plus per-column cursors.
//!
//! The occurrence lists are sorted by transaction index, so "the entries
//! of column `c` inside tile `[lo, hi)`" is a contiguous sub-slice found
//! by advancing a cursor — [`TiledLists`] manages those cursors.

use std::ops::Range;

/// Yields the half-open row ranges `[k·tile, (k+1)·tile)` covering
/// `0..n_rows`.
pub fn tiles(n_rows: usize, tile_rows: usize) -> impl Iterator<Item = Range<usize>> {
    assert!(tile_rows > 0, "tile size must be positive");
    (0..n_rows.div_ceil(tile_rows)).map(move |k| {
        let lo = k * tile_rows;
        lo..(lo + tile_rows).min(n_rows)
    })
}

/// Picks a tile size (in rows) such that a tile's working set fits in a
/// cache of `cache_bytes` — the paper chooses the tile to fit L1.
///
/// `bytes_per_row` is the caller's estimate of the memory touched per row
/// (for LCM: the average transaction's bytes plus its header). A safety
/// factor of 2 leaves room for the auxiliary arrays sharing the cache.
pub fn tile_rows_for_cache(bytes_per_row: usize, cache_bytes: usize) -> usize {
    (cache_bytes / 2 / bytes_per_row.max(1)).max(1)
}

/// Cursor-managed tiled traversal over an array of ascending-sorted `u32`
/// lists (a CSC-like sparse matrix: one list of row indices per column).
///
/// ```
/// use also::tiling::TiledLists;
/// let col0 = [0u32, 5, 9];
/// let col1 = [4u32, 5];
/// let lists = [&col0[..], &col1[..]];
/// let mut seen = Vec::new();
/// TiledLists::new(&lists).run(10, 5, |col, sub| seen.push((col, sub.to_vec())));
/// // tile [0,5): col0 gets {0}, col1 gets {4}; tile [5,10): {5,9} and {5}
/// assert_eq!(seen, vec![
///     (0, vec![0]), (1, vec![4]),
///     (0, vec![5, 9]), (1, vec![5]),
/// ]);
/// ```
pub struct TiledLists<'a> {
    lists: &'a [&'a [u32]],
    cursors: Vec<u32>,
}

impl<'a> TiledLists<'a> {
    /// Wraps `lists`; every list must be sorted ascending (checked in
    /// debug builds).
    pub fn new(lists: &'a [&'a [u32]]) -> Self {
        #[cfg(debug_assertions)]
        for l in lists {
            debug_assert!(l.windows(2).all(|w| w[0] <= w[1]), "lists must be sorted");
        }
        TiledLists {
            lists,
            cursors: vec![0; lists.len()],
        }
    }

    /// Processes one tile: for every list, `visit(list_index, sub)` where
    /// `sub` is the slice of entries `e` with `rows.start <= e < rows.end`.
    /// Tiles must be visited in ascending, non-overlapping order (the
    /// cursors only move forward).
    ///
    /// Lists with no entry in the tile are skipped (no callback), matching
    /// the sparse setting where most columns are absent from most tiles.
    pub fn visit_tile(&mut self, rows: Range<usize>, mut visit: impl FnMut(usize, &[u32])) {
        let end = rows.end as u32;
        for (ci, list) in self.lists.iter().enumerate() {
            let start = self.cursors[ci] as usize;
            if start >= list.len() {
                continue;
            }
            debug_assert!(
                list[start] as usize >= rows.start,
                "tiles must be visited in ascending order"
            );
            let mut stop = start;
            while stop < list.len() && list[stop] < end {
                stop += 1;
            }
            if stop > start {
                visit(ci, &list[start..stop]);
                self.cursors[ci] = stop as u32;
            }
        }
    }

    /// Runs the complete tiled traversal: outer loop over tiles of
    /// `tile_rows` rows covering `0..n_rows`, inner loop over lists.
    pub fn run(&mut self, n_rows: usize, tile_rows: usize, mut visit: impl FnMut(usize, &[u32])) {
        for t in tiles(n_rows, tile_rows) {
            self.visit_tile(t, &mut visit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_cover_exactly_once() {
        let mut covered = [0u8; 103];
        for r in tiles(103, 10) {
            for i in r {
                covered[i] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn tiles_of_empty_input() {
        assert_eq!(tiles(0, 16).count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_size_panics() {
        let _ = tiles(10, 0).count();
    }

    #[test]
    fn tile_size_heuristic() {
        assert_eq!(tile_rows_for_cache(64, 16 * 1024), 128);
        assert_eq!(tile_rows_for_cache(1 << 30, 16 * 1024), 1); // never zero
        assert_eq!(tile_rows_for_cache(0, 16 * 1024), 8 * 1024);
    }

    #[test]
    fn tiled_traversal_sees_every_entry_once_grouped_by_tile() {
        let l0: Vec<u32> = vec![0, 5, 9, 10, 99];
        let l1: Vec<u32> = vec![7];
        let l2: Vec<u32> = vec![];
        let binding = [l0.as_slice(), l1.as_slice(), l2.as_slice()];
        let mut tl = TiledLists::new(&binding);
        let mut seen: Vec<(usize, Vec<u32>)> = Vec::new();
        tl.run(100, 10, |ci, sub| seen.push((ci, sub.to_vec())));
        assert_eq!(
            seen,
            vec![
                (0, vec![0, 5, 9]),
                (1, vec![7]),
                (0, vec![10]),
                (0, vec![99]),
            ]
        );
    }

    #[test]
    fn tiled_equals_untiled_aggregate() {
        // Pseudo-random lists; tiled visit must reproduce each full list
        // when sub-slices are concatenated.
        let mut s = 12345u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let lists: Vec<Vec<u32>> = (0..20)
            .map(|_| {
                let mut v: Vec<u32> = (0..50).map(|_| (rnd() % 1000) as u32).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let mut tl = TiledLists::new(&refs);
        let mut rebuilt: Vec<Vec<u32>> = vec![Vec::new(); lists.len()];
        for tile_rows in [1usize, 7, 64, 1000, 5000] {
            for r in &mut rebuilt {
                r.clear();
            }
            tl = TiledLists::new(&refs);
            tl.run(1000, tile_rows, |ci, sub| rebuilt[ci].extend_from_slice(sub));
            assert_eq!(rebuilt, lists, "tile_rows={tile_rows}");
        }
        let _ = tl;
    }
}
