//! **P3 — Aggregation** (§3.3 of the paper): pack multiple consecutive
//! nodes of a linked structure into one cache-line-sized *supernode*, so a
//! traversal dereferences one pointer per line instead of one per node.
//!
//! Plain linked structures have two problems the paper calls out: the
//! traversal is memory-latency bound (each `next` load depends on the
//! previous one) and spatial locality is poor (a node occupies a fraction
//! of a cache line, and consecutive nodes need not be adjacent).
//! Aggregation fixes both — at the price of making mid-list insertion
//! expensive, which is why it only pays for *seldom-updated* structures
//! such as the radix buckets of LCM's duplicate-removal pass or a built
//! FP-tree.
//!
//! [`ChunkedList`] is the list form: an append-only list of `T` stored as
//! a chain of supernodes, each holding [`chunk_capacity`] elements
//! inline. Many lists share one [`ChunkPool`] (the LCM use-case is an
//! array of thousands of short bucket lists), so allocation is one bump
//! per supernode and chunks of different lists interleave in allocation
//! order — which is traversal order when lists are filled in scan order.
//!
//! The tree form of aggregation (superlevels with node replication,
//! Figure 4 of the paper) is structure-specific and lives with the
//! FP-tree in `fpm-fpgrowth`; it is built on the same sizing helper
//! [`chunk_capacity`].

use crate::CACHE_LINE_BYTES;

/// Sentinel "null" chunk index.
const NONE: u32 = u32::MAX;

/// Number of `T` elements that fit in one supernode, given that a
/// supernode also carries a `next` link and a length byte and should span
/// exactly `line_bytes` bytes (the paper: "making each supernode the size
/// of a cache line seems to be optimal").
pub const fn chunk_capacity(elem_bytes: usize, line_bytes: usize) -> usize {
    // 8 bytes of header: u32 next + u8 len + padding.
    let avail = if line_bytes > 8 { line_bytes - 8 } else { elem_bytes };
    let k = avail / elem_bytes;
    if k == 0 {
        1
    } else {
        k
    }
}

/// One supernode: up to `K` elements plus the link to the next supernode.
#[derive(Clone)]
struct Chunk<T, const K: usize> {
    next: u32,
    len: u8,
    items: [T; K],
}

/// A bump pool of supernodes shared by many [`ChunkedList`]s.
///
/// `K` is the supernode capacity; use [`chunk_capacity`] (or the ready-made
/// [`U32_LINE_CAPACITY`]) to pick it.
pub struct ChunkPool<T, const K: usize> {
    chunks: Vec<Chunk<T, K>>,
}

impl<T: Copy + Default, const K: usize> ChunkPool<T, K> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ChunkPool { chunks: Vec::new() }
    }

    /// Creates an empty pool with room for `n` elements pre-reserved.
    pub fn with_capacity(n: usize) -> Self {
        ChunkPool {
            chunks: Vec::with_capacity(n.div_ceil(K)),
        }
    }

    /// Number of supernodes allocated.
    pub fn chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Bytes of supernode storage in use — benchmarks report this to show
    /// the replication/padding overhead the paper discusses.
    pub fn bytes(&self) -> usize {
        self.chunks.len() * std::mem::size_of::<Chunk<T, K>>()
    }

    fn alloc(&mut self) -> u32 {
        let id = self.chunks.len() as u32;
        self.chunks.push(Chunk {
            next: NONE,
            len: 0,
            items: [T::default(); K],
        });
        id
    }
}

impl<T: Copy + Default, const K: usize> Default for ChunkPool<T, K> {
    fn default() -> Self {
        Self::new()
    }
}

/// An aggregated (supernode-chunked) append-only list.
///
/// The handle itself is two `u32`s; all storage lives in the shared
/// [`ChunkPool`].
///
/// ```
/// use also::aggregate::{ChunkPool, ChunkedList, U32_LINE_CAPACITY};
/// let mut pool: ChunkPool<u32, U32_LINE_CAPACITY> = ChunkPool::new();
/// let mut list = ChunkedList::new();
/// for v in 0..100 {
///     list.push(&mut pool, v);
/// }
/// assert_eq!(list.to_vec(&pool), (0..100).collect::<Vec<u32>>());
/// // 100 u32s at 14 per cache-line supernode:
/// assert_eq!(pool.chunks(), 8);
/// ```
#[derive(Clone, Copy)]
pub struct ChunkedList {
    head: u32,
    tail: u32,
    len: u32,
}

impl ChunkedList {
    /// Creates an empty list (no storage allocated until the first push).
    pub fn new() -> Self {
        ChunkedList {
            head: NONE,
            tail: NONE,
            len: 0,
        }
    }

    /// Number of elements in the list.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when no element has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `value`, allocating a new supernode from `pool` only when
    /// the tail supernode is full.
    pub fn push<T: Copy + Default, const K: usize>(&mut self, pool: &mut ChunkPool<T, K>, value: T) {
        if self.tail == NONE || pool.chunks[self.tail as usize].len as usize == K {
            let id = pool.alloc();
            if self.tail == NONE {
                self.head = id;
            } else {
                pool.chunks[self.tail as usize].next = id;
            }
            self.tail = id;
        }
        let c = &mut pool.chunks[self.tail as usize];
        c.items[c.len as usize] = value;
        c.len += 1;
        self.len += 1;
    }

    /// Visits every element in insertion order. Taking a closure (rather
    /// than returning an iterator) keeps the hot loop free of per-element
    /// branch overhead: the inner loop runs over one supernode's inline
    /// array.
    #[inline]
    pub fn for_each<T: Copy + Default, const K: usize>(
        &self,
        pool: &ChunkPool<T, K>,
        mut f: impl FnMut(T),
    ) {
        let mut cur = self.head;
        while cur != NONE {
            let c = &pool.chunks[cur as usize];
            for &item in &c.items[..c.len as usize] {
                f(item);
            }
            cur = c.next;
        }
    }

    /// Visits the list one supernode at a time — the form instrumented
    /// code uses: the caller sees (and can probe) each chunk's inline
    /// array as a single contiguous slice.
    #[inline]
    pub fn for_each_chunk<T: Copy + Default, const K: usize>(
        &self,
        pool: &ChunkPool<T, K>,
        mut f: impl FnMut(&[T]),
    ) {
        let mut cur = self.head;
        while cur != NONE {
            let c = &pool.chunks[cur as usize];
            f(&c.items[..c.len as usize]);
            cur = c.next;
        }
    }

    /// Collects the list into a `Vec` (test/debug convenience).
    pub fn to_vec<T: Copy + Default, const K: usize>(&self, pool: &ChunkPool<T, K>) -> Vec<T> {
        let mut v = Vec::with_capacity(self.len());
        self.for_each(pool, |x| v.push(x));
        v
    }
}

impl Default for ChunkedList {
    fn default() -> Self {
        Self::new()
    }
}

/// The supernode capacity for `u32` payloads on a 64-byte cache line —
/// the configuration LCM's duplicate-removal buckets use.
pub const U32_LINE_CAPACITY: usize = chunk_capacity(4, CACHE_LINE_BYTES);

/// A classic singly-linked list over the same pool-of-nodes layout, used
/// as the *un-aggregated baseline* in benchmarks and in the baseline LCM
/// kernel: one element per node, one dependent load per element.
pub struct NodeList<T> {
    nodes: Vec<(T, u32)>,
}

impl<T: Copy> NodeList<T> {
    /// Creates an empty node pool.
    pub fn new() -> Self {
        NodeList { nodes: Vec::new() }
    }

    /// Pushes `value` onto the front of the list whose head index is
    /// `*head` (using `u32::MAX` as the empty list), updating the head.
    pub fn push_front(&mut self, head: &mut u32, value: T) {
        let id = self.nodes.len() as u32;
        self.nodes.push((value, *head));
        *head = id;
    }

    /// Visits the list starting at `head` (front to back).
    #[inline]
    pub fn for_each(&self, head: u32, mut f: impl FnMut(T)) {
        let mut cur = head;
        while cur != NONE {
            let (v, next) = self.nodes[cur as usize];
            f(v);
            cur = next;
        }
    }

    /// Reads node `id`: its value and the id of the next node
    /// ([`NodeList::EMPTY`] at the end) — the manual walk used by
    /// instrumented traversals that charge one dependent load per node.
    #[inline]
    pub fn node(&self, id: u32) -> (T, u32) {
        self.nodes[id as usize]
    }

    /// The address of node `id`, for memory probes.
    #[inline]
    pub fn node_addr(&self, id: u32) -> usize {
        &self.nodes[id as usize] as *const (T, u32) as usize
    }

    /// Number of nodes allocated across all lists in this pool.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no node has been allocated.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The sentinel head value for an empty list.
    pub const EMPTY: u32 = NONE;
}

impl<T: Copy> Default for NodeList<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math() {
        assert_eq!(chunk_capacity(4, 64), 14); // (64-8)/4
        assert_eq!(chunk_capacity(8, 64), 7);
        assert_eq!(chunk_capacity(100, 64), 1); // oversized elements degrade to 1
        assert_eq!(U32_LINE_CAPACITY, 14);
    }

    #[test]
    fn supernode_is_one_cache_line() {
        assert!(std::mem::size_of::<Chunk<u32, U32_LINE_CAPACITY>>() <= CACHE_LINE_BYTES);
    }

    #[test]
    fn push_and_iterate_preserves_order() {
        let mut pool: ChunkPool<u32, 14> = ChunkPool::new();
        let mut list = ChunkedList::new();
        for i in 0..100u32 {
            list.push(&mut pool, i * 3);
        }
        assert_eq!(list.len(), 100);
        assert_eq!(list.to_vec(&pool), (0..100u32).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(pool.chunks(), 100usize.div_ceil(14));
    }

    #[test]
    fn many_interleaved_lists_share_a_pool() {
        let mut pool: ChunkPool<u32, 4> = ChunkPool::new();
        let mut lists = [ChunkedList::new(); 10];
        for round in 0..30u32 {
            for (li, l) in lists.iter_mut().enumerate() {
                l.push(&mut pool, round * 100 + li as u32);
            }
        }
        for (li, l) in lists.iter().enumerate() {
            let got = l.to_vec(&pool);
            let expect: Vec<u32> = (0..30).map(|r| r * 100 + li as u32).collect();
            assert_eq!(got, expect, "list {li}");
        }
    }

    #[test]
    fn empty_list_behaviour() {
        let pool: ChunkPool<u32, 14> = ChunkPool::new();
        let list = ChunkedList::new();
        assert!(list.is_empty());
        assert_eq!(list.to_vec(&pool), Vec::<u32>::new());
        assert_eq!(pool.bytes(), 0);
    }

    #[test]
    fn node_list_baseline_matches_chunked_contents() {
        let mut pool: ChunkPool<u32, 14> = ChunkPool::new();
        let mut agg = ChunkedList::new();
        let mut base: NodeList<u32> = NodeList::new();
        let mut head = NodeList::<u32>::EMPTY;
        for i in 0..50u32 {
            agg.push(&mut pool, i);
            base.push_front(&mut head, i);
        }
        let mut from_base = Vec::new();
        base.for_each(head, |v| from_base.push(v));
        from_base.reverse(); // push_front reverses
        assert_eq!(from_base, agg.to_vec(&pool));
    }
}
