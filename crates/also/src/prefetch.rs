//! **P5 — Prefetch pointers** and **P7 — Software prefetch** (with the
//! paper's new **P7.1 wave-front prefetching**): latency hiding for linked
//! data structures, where hardware prefetchers cannot predict the next
//! address.
//!
//! *Software prefetch* (P7) issues a non-binding cache-fill hint for an
//! address the code will dereference a few hundred cycles later.
//! *Prefetch pointers* (P5, after Roth & Sohi's jump pointers) are an
//! auxiliary structure built in a preprocessing pass: each node stores the
//! address of the node `d` steps ahead in traversal order, so the prefetch
//! distance can exceed one dependent load.
//!
//! *Wave-front prefetching* (P7.1, Figure 5 of the paper) targets the
//! structure both LCM and FP-Growth traverse constantly: an **array of
//! short linked lists**. Chain-based prefetch schemes need long chains to
//! win; here each chain is only a few nodes. The wave-front instead
//! prefetches across *different* lists in the same iteration — while list
//! `i` is being walked, the heads (and early nodes) of lists `i+1 … i+D`
//! are already in flight.

/// Issues a read prefetch hint for the cache line containing `p`.
///
/// Compiles to `prefetcht0` on x86-64 and to nothing elsewhere. Safe to
/// call with any address, including null or dangling pointers — prefetch
/// instructions do not fault.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it cannot fault on any address.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Prefetches the element `dist` ahead of position `i` in `slice`, if it
/// exists. The bread-and-butter loop prologue of P7.
#[inline(always)]
pub fn prefetch_ahead<T>(slice: &[T], i: usize, dist: usize) {
    if let Some(x) = slice.get(i + dist) {
        prefetch_read(x as *const T);
    }
}

/// Visits each element of `items` in order, prefetching — via `addr_of`,
/// which maps an element to the memory it will cause to be dereferenced —
/// the element `dist` positions ahead.
///
/// This is the wave-front core: when `items` is an array of list heads,
/// `addr_of` returns the first node of each list, and the head of list
/// `i+dist` is in flight while list `i` is walked. With `dist == 0` this
/// degrades gracefully to a plain loop (no prefetch).
#[inline]
pub fn wavefront<T>(
    items: &[T],
    dist: usize,
    mut addr_of: impl FnMut(&T) -> *const u8,
    mut visit: impl FnMut(usize, &T),
) {
    if dist == 0 {
        for (i, it) in items.iter().enumerate() {
            visit(i, it);
        }
        return;
    }
    // Prime the pipe.
    for it in items.iter().take(dist.min(items.len())) {
        prefetch_read(addr_of(it));
    }
    for (i, it) in items.iter().enumerate() {
        if let Some(ahead) = items.get(i + dist) {
            prefetch_read(addr_of(ahead));
        }
        visit(i, it);
    }
}

/// Jump pointers (P5): an auxiliary table mapping every node to the node
/// `dist` steps later in traversal order. During traversal, prefetching
/// `jump[n]` hides `dist` dependent loads of latency.
///
/// ```
/// use also::prefetch::{JumpPointers, NO_JUMP};
/// let chain = vec![vec![7u32, 3, 5, 1]]; // one traversal chain
/// let jp = JumpPointers::build(8, &chain, 2);
/// assert_eq!(jp.target(7), 5);
/// assert_eq!(jp.target(3), 1);
/// assert_eq!(jp.target(5), NO_JUMP); // fewer than 2 nodes remain
/// ```
#[derive(Debug, Clone)]
pub struct JumpPointers {
    jump: Vec<u32>,
    dist: usize,
}

/// Sentinel for "no jump target" (end of the chain).
pub const NO_JUMP: u32 = u32::MAX;

impl JumpPointers {
    /// Builds jump pointers of distance `dist` over `n_nodes` nodes whose
    /// traversal order is the concatenation of the `chains` (each chain a
    /// sequence of node ids, e.g. one FP-tree header list per item).
    ///
    /// Nodes not on any chain get [`NO_JUMP`]. A node appearing in
    /// multiple chains keeps the pointer from the *last* chain mentioning
    /// it (chains are normally disjoint).
    pub fn build<C: AsRef<[u32]>>(n_nodes: usize, chains: &[C], dist: usize) -> Self {
        let mut jump = vec![NO_JUMP; n_nodes];
        for chain in chains {
            let c = chain.as_ref();
            for (i, &n) in c.iter().enumerate() {
                if let Some(&target) = c.get(i + dist) {
                    jump[n as usize] = target;
                }
            }
        }
        JumpPointers { jump, dist }
    }

    /// The prefetch target for `node`, or [`NO_JUMP`].
    #[inline]
    pub fn target(&self, node: u32) -> u32 {
        self.jump[node as usize]
    }

    /// The build-time distance.
    pub fn dist(&self) -> usize {
        self.dist
    }

    /// Extra memory the auxiliary structure costs, in bytes — reported by
    /// benches ("at the expense of extra storage", §3.3).
    pub fn bytes(&self) -> usize {
        self.jump.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_never_faults() {
        prefetch_read(std::ptr::null::<u8>());
        prefetch_read(0xdead_beef as *const u64);
        let v = [1u8, 2, 3];
        prefetch_ahead(&v, 0, 2);
        prefetch_ahead(&v, 2, 5); // out of range: no-op
    }

    #[test]
    fn wavefront_visits_everything_in_order() {
        let items: Vec<u32> = (0..37).collect();
        for dist in [0usize, 1, 3, 8, 100] {
            let mut seen = Vec::new();
            wavefront(
                &items,
                dist,
                |x| x as *const u32 as *const u8,
                |i, &x| {
                    assert_eq!(i as u32, x);
                    seen.push(x);
                },
            );
            assert_eq!(seen, items, "dist={dist}");
        }
    }

    #[test]
    fn wavefront_on_empty_slice() {
        let items: Vec<u32> = vec![];
        let mut n = 0;
        wavefront(&items, 3, |x| x as *const u32 as *const u8, |_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn jump_pointers_follow_chains() {
        // Two chains over 8 nodes: [0,2,4,6] and [1,3,5].
        let jp = JumpPointers::build(8, &[vec![0u32, 2, 4, 6], vec![1, 3, 5]], 2);
        assert_eq!(jp.target(0), 4);
        assert_eq!(jp.target(2), 6);
        assert_eq!(jp.target(4), NO_JUMP);
        assert_eq!(jp.target(1), 5);
        assert_eq!(jp.target(3), NO_JUMP);
        assert_eq!(jp.target(7), NO_JUMP); // not on any chain
        assert_eq!(jp.bytes(), 32);
        assert_eq!(jp.dist(), 2);
    }

    #[test]
    fn jump_distance_one_is_plain_next() {
        let jp = JumpPointers::build(4, &[vec![3u32, 1, 0, 2]], 1);
        assert_eq!(jp.target(3), 1);
        assert_eq!(jp.target(1), 0);
        assert_eq!(jp.target(0), 2);
        assert_eq!(jp.target(2), NO_JUMP);
    }
}
