//! # `also` — Architecture-Level Software Optimization tuning patterns
//!
//! This crate is a reusable implementation of the *ALSO tuning patterns*
//! catalogued by Wei, Jiang & Snir, *"Programming Patterns for
//! Architecture-Level Software Optimizations on Frequent Pattern Mining"*
//! (ICDE 2007). Each pattern is a general, repeatable solution to a
//! performance problem that recurs across frequent-pattern-mining kernels
//! (and other pointer/array-intensive codes), and is beyond the reach of
//! compiler optimization because it needs application-level knowledge.
//!
//! | id   | pattern                      | module |
//! |------|------------------------------|--------|
//! | P1   | Lexicographic ordering       | [`lexorder`] |
//! | P2   | Data structure adaptation    | [`adapt`] |
//! | P3   | Aggregation (supernodes)     | [`aggregate`] |
//! | P4   | Compaction                   | [`compact`] |
//! | P5   | Prefetch pointers            | [`prefetch`] |
//! | P6.1 | Tiling for sparse structures | [`tiling`] |
//! | P7   | Software prefetch (P7.1 wave-front) | [`prefetch`] |
//! | P8   | SIMDization                  | [`simd`], [`bits`] |
//!
//! A machine-readable catalogue of the patterns — which locality or
//! latency problem each one attacks (Table 2 of the paper) and which
//! mining kernel each applies to (Table 4) — lives in [`catalog`].
//!
//! The pattern implementations are deliberately independent of the mining
//! kernels: the sibling crates `fpm-lcm`, `fpm-eclat` and `fpm-fpgrowth`
//! compose them into tuned miner variants, exactly as the paper's case
//! studies do.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod adapt;
pub mod advisor;
pub mod aggregate;
pub mod bits;
pub mod catalog;
pub mod compact;
pub mod containers;
pub mod lexorder;
pub mod prefetch;
pub mod radix;
pub mod simd;
pub mod tiling;

pub use catalog::{Pattern, PatternBenefit};

/// Size in bytes of one cache line on every platform this crate targets.
///
/// The aggregation pattern ([`aggregate`]) sizes supernodes to this and the
/// compaction arena ([`compact`]) aligns to it; the paper found one cache
/// line to be the optimal supernode size (§3.3, P3).
pub const CACHE_LINE_BYTES: usize = 64;
