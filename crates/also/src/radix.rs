//! MSD radix sorting for transaction lists — the production backend of
//! the lexicographic-ordering pattern (P1).
//!
//! `lex_order` must sort hundreds of thousands of variable-length
//! rank-id sequences; a comparison sort pays `O(n log n)` full-sequence
//! comparisons, while most-significant-digit radix sorting buckets on
//! one item position at a time and only recurses into groups that are
//! still tied — `O(total items)` for typical rank distributions. This
//! is also the access pattern the original LCM's `rm_dup_trans` uses
//! (bucket lists per item value), so the module doubles as the
//! radix-bucket machinery referenced in §4.1.
//!
//! The sort is **stable** (ties keep input order), matching the
//! documented contract of [`crate::lexorder::lex_permutation`].

/// Sentinel digit for "sequence ended here" — sorts before every item,
/// giving the prefix-first order lexicographic comparison produces.
const END: u32 = u32::MAX;

/// Computes the stable lexicographic permutation of `transactions` by
/// MSD radix sort on item ranks. Equivalent to (but typically faster
/// than) sorting indices with a comparison sort; the equivalence is
/// property-tested.
pub fn lex_permutation_radix<T: AsRef<[u32]>>(transactions: &[T]) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..transactions.len() as u32).collect();
    let mut scratch: Vec<u32> = vec![0; transactions.len()];
    sort_range(transactions, &mut perm, &mut scratch, 0, 0, transactions.len());
    perm
}

/// Sorts `perm[lo..hi]` by the item at `depth`, recursing into ties.
fn sort_range<T: AsRef<[u32]>>(
    ts: &[T],
    perm: &mut [u32],
    scratch: &mut [u32],
    depth: usize,
    lo: usize,
    hi: usize,
) {
    if hi - lo < 2 {
        return;
    }
    // Small groups: insertion sort on the remaining suffixes beats
    // bucket setup.
    if hi - lo <= 16 {
        let key = |i: u32| {
            let t = ts[i as usize].as_ref();
            &t[depth.min(t.len())..]
        };
        // stable insertion sort
        for i in lo + 1..hi {
            let mut j = i;
            while j > lo && key(perm[j - 1]) > key(perm[j]) {
                perm.swap(j - 1, j);
                j -= 1;
            }
        }
        return;
    }
    let digit = |i: u32| -> u32 {
        let t = ts[i as usize].as_ref();
        if depth < t.len() {
            t[depth]
        } else {
            END
        }
    };
    // Find the digit range to size the counting array; fall back to
    // sorting by digit when the alphabet is huge and the group small.
    let mut min_d = u32::MAX;
    let mut max_d = 0u32;
    let mut any_item = false;
    for &i in &perm[lo..hi] {
        let d = digit(i);
        if d != END {
            any_item = true;
            min_d = min_d.min(d);
            max_d = max_d.max(d);
        }
    }
    if !any_item {
        return; // all sequences ended: fully tied
    }
    let span = (max_d - min_d) as usize + 1;
    if span > 4 * (hi - lo) {
        // Sparse digit range: counting would be mostly empty; sort this
        // group by digit with a stable comparison sort, then recurse into
        // equal-digit runs.
        scratch[lo..hi].copy_from_slice(&perm[lo..hi]);
        let group = &mut perm[lo..hi];
        // END (sequence exhausted) must sort FIRST: a prefix precedes its
        // extensions in lexicographic order.
        group.sort_by_key(|&i| {
            let d = digit(i);
            if d == END {
                0u64
            } else {
                d as u64 + 1
            }
        });
        recurse_runs(ts, perm, scratch, depth, lo, hi, &digit);
        return;
    }
    // Counting sort on digit (END bucket first).
    let mut counts = vec![0usize; span + 1]; // bucket 0 = END
    for &i in &perm[lo..hi] {
        let d = digit(i);
        let b = if d == END { 0 } else { (d - min_d) as usize + 1 };
        counts[b] += 1;
    }
    let mut starts = vec![0usize; span + 1];
    let mut acc = 0;
    for (b, &c) in counts.iter().enumerate() {
        starts[b] = acc;
        acc += c;
    }
    let mut cursors = starts.clone();
    scratch[lo..hi].copy_from_slice(&perm[lo..hi]);
    for &i in &scratch[lo..hi] {
        let d = digit(i);
        let b = if d == END { 0 } else { (d - min_d) as usize + 1 };
        perm[lo + cursors[b]] = i;
        cursors[b] += 1;
    }
    // Recurse into every non-END bucket of size >= 2.
    for b in 1..=span {
        let (s, e) = (lo + starts[b], lo + starts[b] + counts[b]);
        if e - s >= 2 {
            sort_range(ts, perm, scratch, depth + 1, s, e);
        }
    }
}

/// After a comparison sort by digit, recurse into maximal equal-digit
/// runs (skipping the END run, which is fully tied).
fn recurse_runs<T: AsRef<[u32]>>(
    ts: &[T],
    perm: &mut [u32],
    scratch: &mut [u32],
    depth: usize,
    lo: usize,
    hi: usize,
    digit: &impl Fn(u32) -> u32,
) {
    let mut s = lo;
    while s < hi {
        let d = digit(perm[s]);
        let mut e = s + 1;
        while e < hi && digit(perm[e]) == d {
            e += 1;
        }
        if d != END && e - s >= 2 {
            sort_range(ts, perm, scratch, depth + 1, s, e);
        }
        s = e;
    }
}

/// Applies a permutation, producing the reordered transaction list.
pub fn apply_permutation<T: Clone>(items: &[T], perm: &[u32]) -> Vec<T> {
    perm.iter().map(|&i| items[i as usize].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexorder::lex_permutation;

    fn assert_matches_comparison(db: &[Vec<u32>]) {
        assert_eq!(
            lex_permutation_radix(db),
            lex_permutation(db),
            "radix must equal comparison sort on {db:?}"
        );
    }

    #[test]
    fn matches_comparison_sort_on_paper_example() {
        let db = vec![
            vec![0u32, 1, 2],
            vec![0, 1, 3],
            vec![0, 1, 2],
            vec![4, 5],
            vec![0, 1, 2, 3, 4, 5],
        ];
        assert_matches_comparison(&db);
    }

    #[test]
    fn prefix_sorts_before_extension() {
        let db = vec![vec![0u32, 1, 2], vec![0, 1]];
        let p = lex_permutation_radix(&db);
        assert_eq!(p, vec![1, 0]);
    }

    #[test]
    fn stability_on_duplicates() {
        let db = vec![vec![1u32], vec![0], vec![1], vec![0], vec![1]];
        let p = lex_permutation_radix(&db);
        assert_eq!(p, vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(lex_permutation_radix(&Vec::<Vec<u32>>::new()), Vec::<u32>::new());
        assert_eq!(lex_permutation_radix(&[vec![5u32]]), vec![0]);
        let db = vec![Vec::<u32>::new(), vec![0], Vec::new()];
        assert_eq!(lex_permutation_radix(&db), vec![0, 2, 1]);
    }

    #[test]
    fn sparse_alphabet_falls_back_gracefully() {
        // huge item ids in a tiny group trigger the sparse-digit path
        let db = vec![
            vec![4_000_000_000u32],
            vec![17],
            vec![4_000_000_000, 1],
            vec![900_000],
        ];
        assert_matches_comparison(&db);
    }

    #[test]
    fn matches_comparison_on_pseudorandom() {
        let mut s = 41u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for n_items in [5u32, 50, 100_000] {
            let db: Vec<Vec<u32>> = (0..500)
                .map(|_| {
                    let len = (rnd() % 8) as usize;
                    let mut t: Vec<u32> =
                        (0..len).map(|_| (rnd() % n_items as u64) as u32).collect();
                    t.sort_unstable();
                    t.dedup();
                    t
                })
                .collect();
            assert_matches_comparison(&db);
        }
    }

    #[test]
    fn apply_permutation_reorders() {
        let items = vec!["a", "b", "c"];
        assert_eq!(apply_permutation(&items, &[2, 0, 1]), vec!["c", "a", "b"]);
    }
}
