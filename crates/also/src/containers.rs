//! Roaring-style **adaptive containers** for the vertical path — the
//! modern extension of P2 (data-structure adaptation, §3.3) that replaces
//! one global dense-vs-sparse pick with a *per-chunk* choice.
//!
//! A [`TidSet`] holds transaction ids (u32) partitioned into chunks of
//! 2^16 consecutive ids (the high 16 bits are the chunk key). Each chunk
//! stores its low 16 bits in whichever [`Container`] is cheapest for its
//! local density:
//!
//! * **Array** — a sorted `Vec<u16>`, for sparse chunks
//!   (≤ [`ARRAY_MAX`] elements, 2 bytes each);
//! * **Bitmap** — 1024 words of 64 bits, for dense chunks (fixed 8 KiB,
//!   word-wise SIMD-friendly set ops);
//! * **Runs** — sorted intervals, for clustered chunks (4 bytes per run —
//!   the shape lexicographic ordering (P1) produces on purpose).
//!
//! The decision rules (thresholds, promotion/demotion **hysteresis**)
//! live in [`crate::adapt`]; this module is the mechanism. Pairwise
//! AND/OR/ANDNOT are implemented across **all nine container pairs**
//! (galloping array∩array for skewed operands, word-wise bitmap∩bitmap,
//! array-probe-into-bitmap, run merges), plus a k-way [`TidSet::multi_and`]
//! that intersects several sets in one pass over preallocated scratch —
//! the FastLMFI-style backbone for deep Eclat recursions.
//!
//! Everything here is deterministic: chunks are kept sorted by key,
//! arrays sorted ascending, and container choice is a pure function of
//! content — two sets with equal elements built the same way have equal
//! layout, and iteration order is always ascending tid order.

use crate::adapt::{choose_container, should_demote, should_promote, ContainerKind, ARRAY_MAX};

/// Bits of a tid addressing *within* a chunk.
pub const CHUNK_BITS: u32 = 16;

/// Number of tids spanned by one chunk (2^16).
pub const CHUNK_SPAN: u32 = 1 << CHUNK_BITS;

/// 64-bit words in a bitmap container (2^16 bits).
pub const BITMAP_WORDS: usize = 1024;

/// A maximal interval of present values inside one chunk: covers
/// `start ..= start + len` (so `len` is the run length **minus one**,
/// letting a single run span a full chunk: `{start: 0, len: 65535}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// First value of the interval.
    pub start: u16,
    /// Interval length minus one (inclusive end is `start + len`).
    pub len: u16,
}

impl Run {
    #[inline]
    fn end(&self) -> u32 {
        self.start as u32 + self.len as u32
    }

    #[inline]
    fn card(&self) -> u32 {
        self.len as u32 + 1
    }
}

/// One chunk's storage: the three roaring container shapes.
///
/// Invariants (maintained by every constructor and operation):
/// * `Array` is sorted ascending with no duplicates and holds at most
///   [`ARRAY_MAX`] values — except transiently inside the hysteresis band
///   (a bitmap demotes back to array only below the *demote* threshold).
/// * `Bitmap` caches its exact cardinality.
/// * `Runs` is sorted, non-overlapping, non-adjacent (maximal runs).
/// * No container is empty (empty chunks are removed from the set).
#[derive(Debug, Clone)]
pub enum Container {
    /// Sorted array of low-16-bit values.
    Array(Vec<u16>),
    /// 2^16-bit bitmap plus cached cardinality.
    Bitmap(Box<[u64; BITMAP_WORDS]>, u32),
    /// Sorted maximal intervals.
    Runs(Vec<Run>),
}

impl Container {
    /// Which of the three shapes this container currently uses.
    pub fn kind(&self) -> ContainerKind {
        match self {
            Container::Array(_) => ContainerKind::Array,
            Container::Bitmap(..) => ContainerKind::Bitmap,
            Container::Runs(_) => ContainerKind::Runs,
        }
    }

    /// Number of values stored.
    pub fn cardinality(&self) -> u32 {
        match self {
            Container::Array(a) => a.len() as u32,
            Container::Bitmap(_, card) => *card,
            Container::Runs(rs) => rs.iter().map(Run::card).sum(),
        }
    }

    /// The sorted array view, when this is an array container.
    pub fn as_array(&self) -> Option<&[u16]> {
        match self {
            Container::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The bitmap words, when this is a bitmap container.
    pub fn as_bitmap(&self) -> Option<&[u64; BITMAP_WORDS]> {
        match self {
            Container::Bitmap(w, _) => Some(w),
            _ => None,
        }
    }

    /// The run list, when this is a run container.
    pub fn as_runs(&self) -> Option<&[Run]> {
        match self {
            Container::Runs(r) => Some(r),
            _ => None,
        }
    }

    /// Heap bytes used by this container's storage.
    pub fn bytes(&self) -> usize {
        match self {
            Container::Array(a) => a.len() * 2,
            Container::Bitmap(..) => BITMAP_WORDS * 8 + 4,
            Container::Runs(rs) => rs.len() * 4,
        }
    }

    /// Membership test for a low-16-bit value.
    pub fn contains(&self, v: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&v).is_ok(),
            Container::Bitmap(w, _) => w[v as usize / 64] >> (v % 64) & 1 == 1,
            Container::Runs(rs) => match rs.binary_search_by_key(&v, |r| r.start) {
                Ok(_) => true,
                Err(0) => false,
                Err(i) => rs[i - 1].end() >= v as u32,
            },
        }
    }

    /// Number of stored values `<= v`.
    pub fn rank(&self, v: u16) -> u32 {
        match self {
            Container::Array(a) => a.partition_point(|&x| x <= v) as u32,
            Container::Bitmap(w, _) => {
                let wi = v as usize / 64;
                let full: u32 = w[..wi].iter().map(|x| x.count_ones()).sum();
                let mask = if v % 64 == 63 { u64::MAX } else { (1u64 << (v % 64 + 1)) - 1 };
                full + (w[wi] & mask).count_ones()
            }
            Container::Runs(rs) => {
                let mut n = 0u32;
                for r in rs {
                    if r.start > v {
                        break;
                    }
                    n += (v as u32).min(r.end()) - r.start as u32 + 1;
                }
                n
            }
        }
    }

    /// Iterator over stored values, ascending.
    pub fn iter(&self) -> ContainerIter<'_> {
        match self {
            Container::Array(a) => ContainerIter::Array(a.iter()),
            Container::Bitmap(w, _) => ContainerIter::Bitmap {
                words: w,
                wi: 0,
                cur: w[0],
            },
            Container::Runs(rs) => ContainerIter::Runs {
                runs: rs.iter(),
                cur: None,
            },
        }
    }

    /// Builds from sorted unique values, choosing array vs bitmap by
    /// cardinality (runs are only chosen by [`Container::optimize`]).
    fn from_sorted(vals: &[u16]) -> Container {
        debug_assert!(vals.windows(2).all(|w| w[0] < w[1]), "values must be sorted unique");
        if vals.len() > ARRAY_MAX {
            let mut words = new_bitmap();
            for &v in vals {
                words[v as usize / 64] |= 1u64 << (v % 64);
            }
            Container::Bitmap(words, vals.len() as u32)
        } else {
            Container::Array(vals.to_vec())
        }
    }

    /// Counts the maximal runs of this container's content.
    fn count_runs(&self) -> u32 {
        match self {
            Container::Runs(rs) => rs.len() as u32,
            _ => {
                let mut runs = 0u32;
                let mut prev: i64 = -2;
                for v in self.iter() {
                    if v as i64 != prev + 1 {
                        runs += 1;
                    }
                    prev = v as i64;
                }
                runs
            }
        }
    }

    /// Re-chooses the cheapest shape for the current content using the
    /// static rule [`choose_container`] (this is where run containers are
    /// adopted).
    pub fn optimize(&mut self) {
        let card = self.cardinality() as usize;
        let runs = self.count_runs() as usize;
        let want = choose_container(card, runs);
        if want == self.kind() {
            return;
        }
        *self = match want {
            ContainerKind::Array => Container::Array(self.iter().collect()),
            ContainerKind::Bitmap => {
                let mut words = new_bitmap();
                for v in self.iter() {
                    words[v as usize / 64] |= 1u64 << (v % 64);
                }
                Container::Bitmap(words, card as u32)
            }
            ContainerKind::Runs => {
                let mut rs: Vec<Run> = Vec::with_capacity(runs);
                for v in self.iter() {
                    match rs.last_mut() {
                        Some(r) if r.end() + 1 == v as u32 => r.len += 1,
                        _ => rs.push(Run { start: v, len: 0 }),
                    }
                }
                Container::Runs(rs)
            }
        };
    }

    /// Rewrites a run container as array or bitmap (by cardinality) so it
    /// can be mutated in place. No-op for the other shapes.
    fn materialize(&mut self) {
        if let Container::Runs(rs) = self {
            let card: u32 = rs.iter().map(Run::card).sum();
            if card as usize > ARRAY_MAX {
                let mut words = new_bitmap();
                for r in rs.iter() {
                    set_run(&mut words, r);
                }
                *self = Container::Bitmap(words, card);
            } else {
                let mut a: Vec<u16> = Vec::with_capacity(card as usize);
                for r in rs.iter() {
                    for v in r.start as u32..=r.end() {
                        a.push(v as u16);
                    }
                }
                *self = Container::Array(a);
            }
        }
    }
}

/// Iterator over a single container's values (ascending).
pub enum ContainerIter<'a> {
    /// Array walk.
    Array(std::slice::Iter<'a, u16>),
    /// Bitmap bit scan.
    Bitmap {
        /// The 1024 bitmap words.
        words: &'a [u64; BITMAP_WORDS],
        /// Current word index.
        wi: usize,
        /// Remaining bits of the current word.
        cur: u64,
    },
    /// Run expansion.
    Runs {
        /// Remaining runs.
        runs: std::slice::Iter<'a, Run>,
        /// Current `(next, end)` interval being expanded.
        cur: Option<(u32, u32)>,
    },
}

impl Iterator for ContainerIter<'_> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        match self {
            ContainerIter::Array(it) => it.next().copied(),
            ContainerIter::Bitmap { words, wi, cur } => loop {
                if *cur != 0 {
                    let b = cur.trailing_zeros() as usize;
                    *cur &= *cur - 1;
                    return Some((*wi * 64 + b) as u16);
                }
                if *wi + 1 >= BITMAP_WORDS {
                    return None;
                }
                *wi += 1;
                *cur = words[*wi];
            },
            ContainerIter::Runs { runs, cur } => {
                if cur.is_none() {
                    let r = runs.next()?;
                    *cur = Some((r.start as u32, r.end()));
                }
                let (next, end) = cur.take().unwrap_or((1, 0));
                if next < end {
                    *cur = Some((next + 1, end));
                }
                Some(next as u16)
            }
        }
    }
}

#[inline]
fn new_bitmap() -> Box<[u64; BITMAP_WORDS]> {
    vec![0u64; BITMAP_WORDS]
        .into_boxed_slice()
        .try_into()
        .unwrap_or_else(|_| unreachable!("vec built with BITMAP_WORDS words"))
}

/// Sets every bit of `r` in `words`.
fn set_run(words: &mut [u64; BITMAP_WORDS], r: &Run) {
    let (lo, hi) = (r.start as usize, r.end() as usize);
    let (wl, wh) = (lo / 64, hi / 64);
    let lmask = u64::MAX << (lo % 64);
    let hmask = if hi % 64 == 63 { u64::MAX } else { (1u64 << (hi % 64 + 1)) - 1 };
    if wl == wh {
        words[wl] |= lmask & hmask;
    } else {
        words[wl] |= lmask;
        for w in &mut words[wl + 1..wh] {
            *w = u64::MAX;
        }
        words[wh] |= hmask;
    }
}

/// Counts the set bits of `words` inside the interval `r`.
fn bitmap_count_in_run(words: &[u64; BITMAP_WORDS], r: &Run) -> u32 {
    let (lo, hi) = (r.start as usize, r.end() as usize);
    let (wl, wh) = (lo / 64, hi / 64);
    let lmask = u64::MAX << (lo % 64);
    let hmask = if hi % 64 == 63 { u64::MAX } else { (1u64 << (hi % 64 + 1)) - 1 };
    if wl == wh {
        (words[wl] & lmask & hmask).count_ones()
    } else {
        (words[wl] & lmask).count_ones()
            + words[wl + 1..wh].iter().map(|w| w.count_ones()).sum::<u32>()
            + (words[wh] & hmask).count_ones()
    }
}

/// Clears every bit of `r` in `words`, returning how many were set.
fn clear_run(words: &mut [u64; BITMAP_WORDS], r: &Run) -> u32 {
    let (lo, hi) = (r.start as usize, r.end() as usize);
    let (wl, wh) = (lo / 64, hi / 64);
    let lmask = u64::MAX << (lo % 64);
    let hmask = if hi % 64 == 63 { u64::MAX } else { (1u64 << (hi % 64 + 1)) - 1 };
    let mut cleared = 0u32;
    if wl == wh {
        let m = lmask & hmask;
        cleared += (words[wl] & m).count_ones();
        words[wl] &= !m;
    } else {
        cleared += (words[wl] & lmask).count_ones();
        words[wl] &= !lmask;
        for w in &mut words[wl + 1..wh] {
            cleared += w.count_ones();
            *w = 0;
        }
        cleared += (words[wh] & hmask).count_ones();
        words[wh] &= !hmask;
    }
    cleared
}

// ---------------------------------------------------------------------------
// Chunk kernels — the hot, allocation-free inner loops. Outputs are
// caller-preallocated slices; every kernel returns the number of values
// (or the cardinality) written. These are the functions the
// `crates/eclat/tests/hot_loops.rs` alloc-guard battery pins.
// ---------------------------------------------------------------------------

/// Ratio at which a skewed array∩array switches from the linear merge to
/// the galloping probe: gallop when `small.len() * GALLOP_RATIO < large.len()`.
pub const GALLOP_RATIO: usize = 16;

/// Intersects two sorted u16 arrays into `out`, returning the count.
/// Dispatches to the galloping kernel when the lengths are skewed.
///
/// # Panics
/// Panics if `out` is shorter than `min(a.len(), b.len())`.
// also-lint: hot
pub fn array_and_into(a: &[u16], b: &[u16], out: &mut [u16]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len() * GALLOP_RATIO < large.len() {
        return array_and_gallop_into(small, large, out);
    }
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < small.len() && j < large.len() {
        let (x, y) = (small[i], large[j]);
        if x < y {
            i += 1;
        } else if y < x {
            j += 1;
        } else {
            out[k] = x;
            k += 1;
            i += 1;
            j += 1;
        }
    }
    k
}

/// Galloping (exponential-search) intersection of a small sorted array
/// against a much larger one — each probe doubles its stride from the
/// last match position, then binary-searches the bracketed window.
///
/// # Panics
/// Panics if `out` is shorter than `small.len()`.
// also-lint: hot
pub fn array_and_gallop_into(small: &[u16], large: &[u16], out: &mut [u16]) -> usize {
    let mut k = 0usize;
    let mut lo = 0usize;
    for &x in small {
        // Gallop: find the window [lo + step/2, lo + step] containing x.
        let mut step = 1usize;
        while lo + step < large.len() && large[lo + step] < x {
            step <<= 1;
        }
        let hi = (lo + step + 1).min(large.len());
        match large[lo..hi].binary_search(&x) {
            Ok(p) => {
                out[k] = x;
                k += 1;
                lo += p + 1;
            }
            Err(p) => lo += p,
        }
        if lo >= large.len() {
            break;
        }
    }
    k
}

/// Unions two sorted u16 arrays into `out`, returning the count.
///
/// # Panics
/// Panics if `out` is shorter than `a.len() + b.len()`.
// also-lint: hot
pub fn array_or_into(a: &[u16], b: &[u16], out: &mut [u16]) -> usize {
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x < y {
            out[k] = x;
            i += 1;
        } else if y < x {
            out[k] = y;
            j += 1;
        } else {
            out[k] = x;
            i += 1;
            j += 1;
        }
        k += 1;
    }
    while i < a.len() {
        out[k] = a[i];
        i += 1;
        k += 1;
    }
    while j < b.len() {
        out[k] = b[j];
        j += 1;
        k += 1;
    }
    k
}

/// Computes `a − b` over sorted u16 arrays into `out`, returning the count.
///
/// # Panics
/// Panics if `out` is shorter than `a.len()`.
// also-lint: hot
pub fn array_andnot_into(a: &[u16], b: &[u16], out: &mut [u16]) -> usize {
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out[k] = a[i];
            k += 1;
            i += 1;
        } else if a[i] == b[j] {
            i += 1;
            j += 1;
        } else {
            j += 1;
        }
    }
    k
}

/// Probes each array value against a bitmap, keeping members — the
/// array-probe-into-bitmap AND.
///
/// # Panics
/// Panics if `out` is shorter than `arr.len()`.
// also-lint: hot
pub fn array_bitmap_and_into(arr: &[u16], bm: &[u64; BITMAP_WORDS], out: &mut [u16]) -> usize {
    let mut k = 0usize;
    for &v in arr {
        if bm[v as usize / 64] >> (v % 64) & 1 == 1 {
            out[k] = v;
            k += 1;
        }
    }
    k
}

/// Probes each array value against a bitmap, keeping **non**-members
/// (`arr − bm`).
///
/// # Panics
/// Panics if `out` is shorter than `arr.len()`.
// also-lint: hot
pub fn array_bitmap_andnot_into(arr: &[u16], bm: &[u64; BITMAP_WORDS], out: &mut [u16]) -> usize {
    let mut k = 0usize;
    for &v in arr {
        if bm[v as usize / 64] >> (v % 64) & 1 == 0 {
            out[k] = v;
            k += 1;
        }
    }
    k
}

/// Word-wise bitmap AND into `out`, returning the result cardinality.
// also-lint: hot
pub fn bitmap_and_into(
    a: &[u64; BITMAP_WORDS],
    b: &[u64; BITMAP_WORDS],
    out: &mut [u64; BITMAP_WORDS],
) -> u32 {
    let mut card = 0u32;
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        let w = x & y;
        *o = w;
        card += w.count_ones();
    }
    card
}

/// In-place bitmap AND (`acc &= b`), returning the result cardinality —
/// the k-way fold step.
// also-lint: hot
pub fn bitmap_and_inplace(acc: &mut [u64; BITMAP_WORDS], b: &[u64; BITMAP_WORDS]) -> u32 {
    let mut card = 0u32;
    for (x, &y) in acc.iter_mut().zip(b.iter()) {
        *x &= y;
        card += x.count_ones();
    }
    card
}

/// Count-only bitmap AND, routed through the P8 SIMD popcount ladder
/// ([`crate::simd::and_count_words`]) with the best available strategy.
// also-lint: hot
pub fn bitmap_and_count(a: &[u64; BITMAP_WORDS], b: &[u64; BITMAP_WORDS]) -> u32 {
    crate::simd::and_count_words(&a[..], &b[..], crate::simd::Popcount::best()) as u32
}

/// Word-wise bitmap OR into `out`, returning the result cardinality.
// also-lint: hot
pub fn bitmap_or_into(
    a: &[u64; BITMAP_WORDS],
    b: &[u64; BITMAP_WORDS],
    out: &mut [u64; BITMAP_WORDS],
) -> u32 {
    let mut card = 0u32;
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        let w = x | y;
        *o = w;
        card += w.count_ones();
    }
    card
}

/// Word-wise bitmap ANDNOT (`a & !b`) into `out`, returning the result
/// cardinality.
// also-lint: hot
pub fn bitmap_andnot_into(
    a: &[u64; BITMAP_WORDS],
    b: &[u64; BITMAP_WORDS],
    out: &mut [u64; BITMAP_WORDS],
) -> u32 {
    let mut card = 0u32;
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        let w = x & !y;
        *o = w;
        card += w.count_ones();
    }
    card
}

/// Intersects a sorted array with a run list into `out` (two-pointer over
/// intervals), returning the count.
///
/// # Panics
/// Panics if `out` is shorter than `arr.len()`.
// also-lint: hot
pub fn array_runs_and_into(arr: &[u16], runs: &[Run], out: &mut [u16]) -> usize {
    let (mut k, mut ri) = (0usize, 0usize);
    for &v in arr {
        while ri < runs.len() && runs[ri].end() < v as u32 {
            ri += 1;
        }
        if ri >= runs.len() {
            break;
        }
        if runs[ri].start <= v {
            out[k] = v;
            k += 1;
        }
    }
    k
}

/// Keeps the array values **outside** every run (`arr − runs`).
///
/// # Panics
/// Panics if `out` is shorter than `arr.len()`.
// also-lint: hot
pub fn array_runs_andnot_into(arr: &[u16], runs: &[Run], out: &mut [u16]) -> usize {
    let (mut k, mut ri) = (0usize, 0usize);
    for &v in arr {
        while ri < runs.len() && runs[ri].end() < v as u32 {
            ri += 1;
        }
        if ri >= runs.len() || runs[ri].start > v {
            out[k] = v;
            k += 1;
        }
    }
    k
}

/// Zeroes every bitmap bit outside the run list (in-place run∩bitmap),
/// returning the surviving cardinality.
pub fn bitmap_retain_runs(bm: &mut [u64; BITMAP_WORDS], runs: &[Run]) -> u32 {
    // Walk gaps between runs, clearing each.
    let mut next_free = 0u32; // first value not yet accounted for
    for r in runs {
        if (r.start as u32) > next_free {
            clear_run(
                bm,
                &Run {
                    start: next_free as u16,
                    len: (r.start as u32 - next_free - 1) as u16,
                },
            );
        }
        next_free = r.end() + 1;
        if next_free == CHUNK_SPAN {
            break;
        }
    }
    if next_free < CHUNK_SPAN {
        clear_run(
            bm,
            &Run {
                start: next_free as u16,
                len: (CHUNK_SPAN - next_free - 1) as u16,
            },
        );
    }
    bm.iter().map(|w| w.count_ones()).sum()
}

/// Intersects two run lists into `out` (interval walk).
pub fn runs_and(a: &[Run], b: &[Run], out: &mut Vec<Run>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].start.max(b[j].start) as u32;
        let hi = a[i].end().min(b[j].end());
        if lo <= hi {
            out.push(Run {
                start: lo as u16,
                len: (hi - lo) as u16,
            });
        }
        if a[i].end() <= b[j].end() {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// Unions two run lists into `out` (interval merge, coalescing adjacency).
pub fn runs_or(a: &[Run], b: &[Run], out: &mut Vec<Run>) {
    let (mut i, mut j) = (0usize, 0usize);
    let push = |out: &mut Vec<Run>, lo: u32, hi: u32| match out.last_mut() {
        Some(last) if last.end() + 1 >= lo => {
            if hi > last.end() {
                last.len = (hi - last.start as u32) as u16;
            }
        }
        _ => out.push(Run {
            start: lo as u16,
            len: (hi - lo) as u16,
        }),
    };
    while i < a.len() || j < b.len() {
        let take_a = j >= b.len() || (i < a.len() && a[i].start <= b[j].start);
        let r = if take_a { &a[i] } else { &b[j] };
        push(out, r.start as u32, r.end());
        if take_a {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// Subtracts run list `b` from `a` into `out` (interval subtraction).
pub fn runs_andnot(a: &[Run], b: &[Run], out: &mut Vec<Run>) {
    let mut j = 0usize;
    for ra in a {
        let mut lo = ra.start as u32;
        let hi = ra.end();
        while j < b.len() && b[j].end() < lo {
            j += 1;
        }
        let mut jj = j;
        while lo <= hi {
            if jj >= b.len() || b[jj].start as u32 > hi {
                out.push(Run {
                    start: lo as u16,
                    len: (hi - lo) as u16,
                });
                break;
            }
            let (blo, bhi) = (b[jj].start as u32, b[jj].end());
            if blo > lo {
                out.push(Run {
                    start: lo as u16,
                    len: (blo - 1 - lo) as u16,
                });
            }
            if bhi >= hi {
                break;
            }
            lo = bhi + 1;
            jj += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Pairwise chunk dispatch — all nine type pairs per operation.
// ---------------------------------------------------------------------------

/// Normalizes computed sorted values into the deterministic result shape:
/// array iff the cardinality fits, bitmap otherwise. (Runs are chosen
/// only by `optimize` or by the run∩run/run∪run merges.)
fn normalize_sorted(vals: &[u16]) -> Option<Container> {
    if vals.is_empty() {
        None
    } else {
        Some(Container::from_sorted(vals))
    }
}

fn normalize_bitmap(words: Box<[u64; BITMAP_WORDS]>, card: u32) -> Option<Container> {
    if card == 0 {
        None
    } else if card as usize > ARRAY_MAX {
        Some(Container::Bitmap(words, card))
    } else {
        let mut a: Vec<u16> = Vec::with_capacity(card as usize);
        for (wi, &w) in words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                a.push((wi * 64 + w.trailing_zeros() as usize) as u16);
                w &= w - 1;
            }
        }
        Some(Container::Array(a))
    }
}

fn normalize_runs(runs: Vec<Run>) -> Option<Container> {
    if runs.is_empty() {
        return None;
    }
    let card: u32 = runs.iter().map(Run::card).sum();
    match choose_container(card as usize, runs.len()) {
        ContainerKind::Runs => Some(Container::Runs(runs)),
        _ => {
            let mut words = new_bitmap();
            for r in &runs {
                set_run(&mut words, r);
            }
            normalize_bitmap(words, card)
        }
    }
}

fn runs_to_bitmap(runs: &[Run]) -> (Box<[u64; BITMAP_WORDS]>, u32) {
    let mut words = new_bitmap();
    for r in runs {
        set_run(&mut words, r);
    }
    (words, runs.iter().map(Run::card).sum())
}

impl Container {
    /// Pairwise AND across all nine container pairs. `None` when empty.
    pub fn and(&self, other: &Container) -> Option<Container> {
        use Container::*;
        match (self, other) {
            (Array(a), Array(b)) => {
                let mut out = vec![0u16; a.len().min(b.len())];
                let n = array_and_into(a, b, &mut out);
                out.truncate(n);
                normalize_sorted(&out)
            }
            (Array(a), Bitmap(w, _)) | (Bitmap(w, _), Array(a)) => {
                let mut out = vec![0u16; a.len()];
                let n = array_bitmap_and_into(a, w, &mut out);
                out.truncate(n);
                normalize_sorted(&out)
            }
            (Array(a), Runs(rs)) | (Runs(rs), Array(a)) => {
                let mut out = vec![0u16; a.len()];
                let n = array_runs_and_into(a, rs, &mut out);
                out.truncate(n);
                normalize_sorted(&out)
            }
            (Bitmap(a, _), Bitmap(b, _)) => {
                let mut out = new_bitmap();
                let card = bitmap_and_into(a, b, &mut out);
                normalize_bitmap(out, card)
            }
            (Bitmap(w, _), Runs(rs)) | (Runs(rs), Bitmap(w, _)) => {
                let mut out: Box<[u64; BITMAP_WORDS]> = w.clone();
                let card = bitmap_retain_runs(&mut out, rs);
                normalize_bitmap(out, card)
            }
            (Runs(a), Runs(b)) => {
                let mut out = Vec::new();
                runs_and(a, b, &mut out);
                normalize_runs(out)
            }
        }
    }

    /// Count-only pairwise AND (no result materialization).
    pub fn and_card(&self, other: &Container) -> u32 {
        use Container::*;
        match (self, other) {
            (Bitmap(a, _), Bitmap(b, _)) => bitmap_and_count(a, b),
            (Array(a), Bitmap(w, _)) | (Bitmap(w, _), Array(a)) => {
                let mut n = 0u32;
                for &v in a {
                    n += (w[v as usize / 64] >> (v % 64) & 1) as u32;
                }
                n
            }
            (Runs(a), Runs(b)) => {
                let (mut i, mut j, mut n) = (0usize, 0usize, 0u32);
                while i < a.len() && j < b.len() {
                    let lo = a[i].start.max(b[j].start) as u32;
                    let hi = a[i].end().min(b[j].end());
                    if lo <= hi {
                        n += hi - lo + 1;
                    }
                    if a[i].end() <= b[j].end() {
                        i += 1;
                    } else {
                        j += 1;
                    }
                }
                n
            }
            (Bitmap(w, _), Runs(rs)) | (Runs(rs), Bitmap(w, _)) => {
                rs.iter().map(|r| bitmap_count_in_run(w, r)).sum()
            }
            (Array(a), Runs(rs)) | (Runs(rs), Array(a)) => {
                let (mut ri, mut n) = (0usize, 0u32);
                for &v in a {
                    while ri < rs.len() && rs[ri].end() < v as u32 {
                        ri += 1;
                    }
                    if ri >= rs.len() {
                        break;
                    }
                    if rs[ri].start <= v {
                        n += 1;
                    }
                }
                n
            }
            // Array∩array: merge count without output.
            (Array(a), Array(b)) => {
                let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                if small.len() * GALLOP_RATIO < large.len() {
                    let mut lo = 0usize;
                    let mut n = 0u32;
                    for &x in small.iter() {
                        let mut step = 1usize;
                        while lo + step < large.len() && large[lo + step] < x {
                            step <<= 1;
                        }
                        let hi = (lo + step + 1).min(large.len());
                        match large[lo..hi].binary_search(&x) {
                            Ok(p) => {
                                n += 1;
                                lo += p + 1;
                            }
                            Err(p) => lo += p,
                        }
                        if lo >= large.len() {
                            break;
                        }
                    }
                    n
                } else {
                    let (mut i, mut j, mut n) = (0usize, 0usize, 0u32);
                    while i < small.len() && j < large.len() {
                        match small[i].cmp(&large[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                n += 1;
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    n
                }
            }
        }
    }

    /// Pairwise OR across all nine container pairs.
    pub fn or(&self, other: &Container) -> Container {
        use Container::*;
        match (self, other) {
            (Array(a), Array(b)) => {
                if a.len() + b.len() <= ARRAY_MAX {
                    let mut out = vec![0u16; a.len() + b.len()];
                    let n = array_or_into(a, b, &mut out);
                    out.truncate(n);
                    Container::Array(out)
                } else {
                    let mut words = new_bitmap();
                    for &v in a.iter().chain(b.iter()) {
                        words[v as usize / 64] |= 1u64 << (v % 64);
                    }
                    let card: u32 = words.iter().map(|w| w.count_ones()).sum();
                    normalize_bitmap(words, card).unwrap_or_else(|| Container::Array(Vec::new()))
                }
            }
            (Array(a), Bitmap(w, _)) | (Bitmap(w, _), Array(a)) => {
                let mut words: Box<[u64; BITMAP_WORDS]> = w.clone();
                for &v in a {
                    words[v as usize / 64] |= 1u64 << (v % 64);
                }
                let card: u32 = words.iter().map(|x| x.count_ones()).sum();
                normalize_bitmap(words, card).unwrap_or_else(|| Container::Array(Vec::new()))
            }
            (Bitmap(a, _), Bitmap(b, _)) => {
                let mut out = new_bitmap();
                let card = bitmap_or_into(a, b, &mut out);
                normalize_bitmap(out, card).unwrap_or_else(|| Container::Array(Vec::new()))
            }
            (Runs(a), Runs(b)) => {
                let mut out = Vec::new();
                runs_or(a, b, &mut out);
                normalize_runs(out).unwrap_or_else(|| Container::Array(Vec::new()))
            }
            (Runs(rs), other_c @ (Array(_) | Bitmap(..)))
            | (other_c @ (Array(_) | Bitmap(..)), Runs(rs)) => {
                let (words, _) = runs_to_bitmap(rs);
                Container::Bitmap(words, 0).or_fixup(other_c)
            }
        }
    }

    /// Helper for run∪{array,bitmap}: `self` is a bitmap expansion of the
    /// runs (card field unused), `other` the second operand.
    fn or_fixup(self, other: &Container) -> Container {
        let Container::Bitmap(mut words, _) = self else {
            unreachable!("or_fixup is only called on bitmap expansions")
        };
        match other {
            Container::Array(a) => {
                for &v in a {
                    words[v as usize / 64] |= 1u64 << (v % 64);
                }
            }
            Container::Bitmap(b, _) => {
                for (x, &y) in words.iter_mut().zip(b.iter()) {
                    *x |= y;
                }
            }
            Container::Runs(rs) => {
                for r in rs {
                    set_run(&mut words, r);
                }
            }
        }
        let card: u32 = words.iter().map(|x| x.count_ones()).sum();
        normalize_bitmap(words, card).unwrap_or_else(|| Container::Array(Vec::new()))
    }

    /// Pairwise ANDNOT (`self − other`) across all nine container pairs.
    /// `None` when empty.
    pub fn andnot(&self, other: &Container) -> Option<Container> {
        use Container::*;
        match (self, other) {
            (Array(a), Array(b)) => {
                let mut out = vec![0u16; a.len()];
                let n = array_andnot_into(a, b, &mut out);
                out.truncate(n);
                normalize_sorted(&out)
            }
            (Array(a), Bitmap(w, _)) => {
                let mut out = vec![0u16; a.len()];
                let n = array_bitmap_andnot_into(a, w, &mut out);
                out.truncate(n);
                normalize_sorted(&out)
            }
            (Array(a), Runs(rs)) => {
                let mut out = vec![0u16; a.len()];
                let n = array_runs_andnot_into(a, rs, &mut out);
                out.truncate(n);
                normalize_sorted(&out)
            }
            (Bitmap(a, _), Bitmap(b, _)) => {
                let mut out = new_bitmap();
                let card = bitmap_andnot_into(a, b, &mut out);
                normalize_bitmap(out, card)
            }
            (Bitmap(w, card), Array(b)) => {
                let mut out: Box<[u64; BITMAP_WORDS]> = w.clone();
                let mut c = *card;
                for &v in b {
                    let bit = 1u64 << (v % 64);
                    if out[v as usize / 64] & bit != 0 {
                        out[v as usize / 64] &= !bit;
                        c -= 1;
                    }
                }
                normalize_bitmap(out, c)
            }
            (Bitmap(w, card), Runs(rs)) => {
                let mut out: Box<[u64; BITMAP_WORDS]> = w.clone();
                let mut c = *card;
                for r in rs {
                    c -= clear_run(&mut out, r);
                }
                normalize_bitmap(out, c)
            }
            (Runs(a), Runs(b)) => {
                let mut out = Vec::new();
                runs_andnot(a, b, &mut out);
                normalize_runs(out)
            }
            (Runs(_), Array(_) | Bitmap(..)) => {
                let mut lhs = self.clone();
                lhs.materialize();
                lhs.andnot(other)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TidSet — the chunked hybrid set.
// ---------------------------------------------------------------------------

/// A hybrid set of u32 transaction ids: sorted chunk keys (high 16 bits)
/// paired with per-chunk adaptive [`Container`]s.
#[derive(Debug, Clone, Default)]
pub struct TidSet {
    keys: Vec<u16>,
    chunks: Vec<Container>,
}

/// Preallocated scratch for the k-way AND fold: two u16 arrays (for array
/// accumulators, which never exceed [`ARRAY_MAX`]) and one bitmap. One
/// instance serves any number of [`TidSet::multi_and_with`] /
/// [`TidSet::multi_and_count_with`] calls without further allocation.
pub struct AndScratch {
    arr_a: Vec<u16>,
    arr_b: Vec<u16>,
    bm: Box<[u64; BITMAP_WORDS]>,
}

impl Default for AndScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl AndScratch {
    /// Allocates the scratch buffers (the only allocation the k-way fold
    /// ever performs).
    pub fn new() -> Self {
        AndScratch {
            arr_a: vec![0; ARRAY_MAX],
            arr_b: vec![0; ARRAY_MAX],
            bm: new_bitmap(),
        }
    }
}

/// Accumulator state of the k-way chunk fold: which scratch buffer holds
/// the current intersection and how many values it has.
enum Acc {
    /// Values live in `arr_a` (true) or `arr_b` (false), `len` of them.
    Arr { in_a: bool, len: usize },
    /// Values live in the bitmap scratch with this cardinality.
    Bm { card: u32 },
}

impl TidSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        TidSet::default()
    }

    /// Builds from strictly ascending tids (the order tid-lists are built
    /// in). Chooses array vs bitmap per chunk; call [`TidSet::optimize`]
    /// afterwards to adopt run containers where they win.
    pub fn from_sorted(tids: &[u32]) -> Self {
        debug_assert!(tids.windows(2).all(|w| w[0] < w[1]), "tids must be strictly ascending");
        let mut set = TidSet::new();
        let mut i = 0usize;
        while i < tids.len() {
            let key = (tids[i] >> CHUNK_BITS) as u16;
            let mut j = i;
            while j < tids.len() && (tids[j] >> CHUNK_BITS) as u16 == key {
                j += 1;
            }
            let lows: Vec<u16> = tids[i..j].iter().map(|&t| t as u16).collect();
            set.keys.push(key);
            set.chunks.push(Container::from_sorted(&lows));
            i = j;
        }
        set
    }

    /// `true` when no tid is stored.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Total number of stored tids.
    pub fn cardinality(&self) -> u64 {
        self.chunks.iter().map(|c| c.cardinality() as u64).sum()
    }

    /// Heap bytes of container storage (keys + per-chunk payloads).
    pub fn bytes(&self) -> usize {
        self.keys.len() * 2 + self.chunks.iter().map(Container::bytes).sum::<usize>()
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.keys.len()
    }

    /// Iterates `(chunk_key, container)` pairs in ascending key order.
    pub fn chunks(&self) -> impl Iterator<Item = (u16, &Container)> {
        self.keys.iter().copied().zip(self.chunks.iter())
    }

    /// The `(key, kind, cardinality)` layout — what the per-chunk advisor
    /// decided for each chunk.
    pub fn chunk_kinds(&self) -> Vec<(u16, ContainerKind, u32)> {
        self.chunks()
            .map(|(k, c)| (k, c.kind(), c.cardinality()))
            .collect()
    }

    /// Membership test.
    pub fn contains(&self, tid: u32) -> bool {
        let key = (tid >> CHUNK_BITS) as u16;
        match self.keys.binary_search(&key) {
            Ok(i) => self.chunks[i].contains(tid as u16),
            Err(_) => false,
        }
    }

    /// Number of stored tids `<= tid` (the roaring `rank` operation).
    pub fn rank(&self, tid: u32) -> u64 {
        let key = (tid >> CHUNK_BITS) as u16;
        let (below, at) = match self.keys.binary_search(&key) {
            Ok(i) => (i, Some(i)),
            Err(i) => (i, None),
        };
        let full: u64 = self.chunks[..below].iter().map(|c| c.cardinality() as u64).sum();
        full + at.map_or(0, |i| self.chunks[i].rank(tid as u16) as u64)
    }

    /// Inserts a tid; returns whether it was newly added. Sparse chunks
    /// grow as arrays and **promote** to bitmaps above
    /// [`ARRAY_MAX`] (see [`should_promote`]); run
    /// containers materialize to the shape their cardinality dictates
    /// before mutation.
    pub fn insert(&mut self, tid: u32) -> bool {
        let key = (tid >> CHUNK_BITS) as u16;
        let low = tid as u16;
        let i = match self.keys.binary_search(&key) {
            Ok(i) => i,
            Err(i) => {
                self.keys.insert(i, key);
                self.chunks.insert(i, Container::Array(vec![low]));
                return true;
            }
        };
        let c = &mut self.chunks[i];
        c.materialize();
        match c {
            Container::Array(a) => match a.binary_search(&low) {
                Ok(_) => false,
                Err(p) => {
                    a.insert(p, low);
                    if should_promote(a.len()) {
                        let mut words = new_bitmap();
                        for &v in a.iter() {
                            words[v as usize / 64] |= 1u64 << (v % 64);
                        }
                        let card = a.len() as u32;
                        *c = Container::Bitmap(words, card);
                    }
                    true
                }
            },
            Container::Bitmap(w, card) => {
                let bit = 1u64 << (low % 64);
                if w[low as usize / 64] & bit != 0 {
                    false
                } else {
                    w[low as usize / 64] |= bit;
                    *card += 1;
                    true
                }
            }
            Container::Runs(_) => unreachable!("materialized above"),
        }
    }

    /// Removes a tid; returns whether it was present. Bitmaps **demote**
    /// back to arrays only below the demote
    /// threshold (see [`should_demote`]) — the hysteresis band keeps a
    /// chunk oscillating around the promote threshold from thrashing.
    pub fn remove(&mut self, tid: u32) -> bool {
        let key = (tid >> CHUNK_BITS) as u16;
        let low = tid as u16;
        let Ok(i) = self.keys.binary_search(&key) else {
            return false;
        };
        let c = &mut self.chunks[i];
        c.materialize();
        let removed = match c {
            Container::Array(a) => match a.binary_search(&low) {
                Ok(p) => {
                    a.remove(p);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap(w, card) => {
                let bit = 1u64 << (low % 64);
                if w[low as usize / 64] & bit == 0 {
                    false
                } else {
                    w[low as usize / 64] &= !bit;
                    *card -= 1;
                    if should_demote(*card as usize) {
                        let mut a: Vec<u16> = Vec::with_capacity(*card as usize);
                        for (wi, &word) in w.iter().enumerate() {
                            let mut word = word;
                            while word != 0 {
                                a.push((wi * 64 + word.trailing_zeros() as usize) as u16);
                                word &= word - 1;
                            }
                        }
                        *c = Container::Array(a);
                    }
                    true
                }
            }
            Container::Runs(_) => unreachable!("materialized above"),
        };
        if removed && self.chunks[i].cardinality() == 0 {
            self.keys.remove(i);
            self.chunks.remove(i);
        }
        removed
    }

    /// Re-chooses every chunk's container by the static cost rule
    /// (adopting run containers for clustered chunks).
    pub fn optimize(&mut self) {
        for c in &mut self.chunks {
            c.optimize();
        }
    }

    /// Iterates stored tids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.chunks().flat_map(|(k, c)| {
            let base = (k as u32) << CHUNK_BITS;
            c.iter().map(move |lo| base | lo as u32)
        })
    }

    /// Collects the set into a sorted `Vec<u32>`.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Pairwise intersection.
    pub fn and(&self, other: &TidSet) -> TidSet {
        let mut out = TidSet::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if let Some(c) = self.chunks[i].and(&other.chunks[j]) {
                        out.keys.push(self.keys[i]);
                        out.chunks.push(c);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Count-only intersection (no result set is built).
    pub fn and_count(&self, other: &TidSet) -> u64 {
        let mut total = 0u64;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    total += self.chunks[i].and_card(&other.chunks[j]) as u64;
                    i += 1;
                    j += 1;
                }
            }
        }
        total
    }

    /// Pairwise union.
    pub fn or(&self, other: &TidSet) -> TidSet {
        let mut out = TidSet::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.keys.len() || j < other.keys.len() {
            let take_left = j >= other.keys.len()
                || (i < self.keys.len() && self.keys[i] <= other.keys[j]);
            let take_right =
                i >= self.keys.len() || (j < other.keys.len() && other.keys[j] <= self.keys[i]);
            if take_left && take_right {
                out.keys.push(self.keys[i]);
                out.chunks.push(self.chunks[i].or(&other.chunks[j]));
                i += 1;
                j += 1;
            } else if take_left {
                out.keys.push(self.keys[i]);
                out.chunks.push(self.chunks[i].clone());
                i += 1;
            } else {
                out.keys.push(other.keys[j]);
                out.chunks.push(other.chunks[j].clone());
                j += 1;
            }
        }
        out
    }

    /// Pairwise difference (`self − other`).
    pub fn andnot(&self, other: &TidSet) -> TidSet {
        let mut out = TidSet::new();
        let mut j = 0usize;
        for (i, &key) in self.keys.iter().enumerate() {
            while j < other.keys.len() && other.keys[j] < key {
                j += 1;
            }
            if j < other.keys.len() && other.keys[j] == key {
                if let Some(c) = self.chunks[i].andnot(&other.chunks[j]) {
                    out.keys.push(key);
                    out.chunks.push(c);
                }
            } else {
                out.keys.push(key);
                out.chunks.push(self.chunks[i].clone());
            }
        }
        out
    }

    /// k-way AND: intersects every set in **one pass per chunk** over
    /// internally allocated scratch. `multi_and(&[])` is empty;
    /// `multi_and(&[a])` clones `a`.
    pub fn multi_and(sets: &[&TidSet]) -> TidSet {
        TidSet::multi_and_with(sets, &mut AndScratch::new())
    }

    /// [`TidSet::multi_and`] with caller-provided scratch; only the result
    /// containers are allocated.
    pub fn multi_and_with(sets: &[&TidSet], scratch: &mut AndScratch) -> TidSet {
        let mut out = TidSet::new();
        TidSet::multi_and_fold(sets, scratch, |key, container| {
            out.keys.push(key);
            out.chunks.push(container);
        });
        out
    }

    /// Count-only k-way AND over internally allocated scratch.
    pub fn multi_and_count(sets: &[&TidSet]) -> u64 {
        TidSet::multi_and_count_with(sets, &mut AndScratch::new())
    }

    /// Count-only k-way AND with caller-provided scratch — performs **no
    /// allocation at all** (the alloc-guard-pinned deep-recursion path).
    pub fn multi_and_count_with(sets: &[&TidSet], scratch: &mut AndScratch) -> u64 {
        let mut total = 0u64;
        TidSet::multi_and_fold_counts(sets, scratch, |_, card| total += card as u64);
        total
    }

    /// Shared chunk loop of the k-way AND: for every chunk key present in
    /// **all** operands, folds the operands' containers through the
    /// scratch accumulator and hands the materialized result to `emit`.
    fn multi_and_fold(sets: &[&TidSet], scratch: &mut AndScratch, mut emit: impl FnMut(u16, Container)) {
        let Some((driver, rest)) = sets.split_first() else {
            return;
        };
        if rest.is_empty() {
            for (k, c) in driver.chunks() {
                emit(k, c.clone());
            }
            return;
        }
        for (key, first) in driver.chunks() {
            let Some(acc) = TidSet::fold_chunk(key, first, rest, scratch) else {
                continue;
            };
            let container = match acc {
                Acc::Arr { in_a, len } => {
                    if len == 0 {
                        continue;
                    }
                    let arr = if in_a { &scratch.arr_a } else { &scratch.arr_b };
                    Container::Array(arr[..len].to_vec())
                }
                Acc::Bm { card } => {
                    if card == 0 {
                        continue;
                    }
                    let Some(c) = normalize_bitmap(scratch.bm.clone(), card) else {
                        continue;
                    };
                    c
                }
            };
            emit(key, container);
        }
    }

    /// Count-only twin of [`TidSet::multi_and_fold`] — never allocates.
    fn multi_and_fold_counts(
        sets: &[&TidSet],
        scratch: &mut AndScratch,
        mut emit: impl FnMut(u16, u32),
    ) {
        let Some((driver, rest)) = sets.split_first() else {
            return;
        };
        if rest.is_empty() {
            for (k, c) in driver.chunks() {
                emit(k, c.cardinality());
            }
            return;
        }
        for (key, first) in driver.chunks() {
            let Some(acc) = TidSet::fold_chunk(key, first, rest, scratch) else {
                continue;
            };
            let card = match acc {
                Acc::Arr { len, .. } => len as u32,
                Acc::Bm { card } => card,
            };
            if card > 0 {
                emit(key, card);
            }
        }
    }

    /// Folds one chunk key through every remaining operand. Returns `None`
    /// when some operand lacks the chunk or the accumulator empties.
    ///
    /// The accumulator lives entirely in `scratch`: array accumulators
    /// ping-pong between the two u16 buffers (AND never grows an array, so
    /// [`ARRAY_MAX`] capacity suffices), bitmap accumulators fold in place.
    // also-lint: hot
    fn fold_chunk(key: u16, first: &Container, rest: &[&TidSet], scratch: &mut AndScratch) -> Option<Acc> {
        // Seed the accumulator from the driver's chunk.
        let mut acc = match first {
            Container::Array(a) => {
                scratch.arr_a[..a.len()].copy_from_slice(a);
                Acc::Arr { in_a: true, len: a.len() }
            }
            Container::Bitmap(w, card) => {
                scratch.bm.copy_from_slice(&w[..]);
                Acc::Bm { card: *card }
            }
            Container::Runs(rs) => {
                let card: u32 = rs.iter().map(Run::card).sum();
                if card as usize > ARRAY_MAX {
                    scratch.bm.fill(0);
                    for r in rs {
                        set_run(&mut scratch.bm, r);
                    }
                    Acc::Bm { card }
                } else {
                    let mut len = 0usize;
                    for r in rs {
                        let mut v = r.start as u32;
                        while v <= r.end() {
                            scratch.arr_a[len] = v as u16;
                            len += 1;
                            v += 1;
                        }
                    }
                    Acc::Arr { in_a: true, len }
                }
            }
        };
        for set in rest {
            let i = set.keys.binary_search(&key).ok()?;
            let next = &set.chunks[i];
            acc = match acc {
                Acc::Arr { in_a, len } => {
                    let (src, dst) = if in_a {
                        (&scratch.arr_a, &mut scratch.arr_b)
                    } else {
                        (&scratch.arr_b, &mut scratch.arr_a)
                    };
                    let n = match next {
                        Container::Array(b) => array_and_into(&src[..len], b, dst),
                        Container::Bitmap(w, _) => array_bitmap_and_into(&src[..len], w, dst),
                        Container::Runs(rs) => array_runs_and_into(&src[..len], rs, dst),
                    };
                    Acc::Arr { in_a: !in_a, len: n }
                }
                Acc::Bm { .. } => match next {
                    Container::Array(b) => {
                        let n = array_bitmap_and_into(b, &scratch.bm, &mut scratch.arr_a);
                        Acc::Arr { in_a: true, len: n }
                    }
                    Container::Bitmap(w, _) => {
                        let card = bitmap_and_inplace(&mut scratch.bm, w);
                        Acc::Bm { card }
                    }
                    Container::Runs(rs) => {
                        let card = bitmap_retain_runs(&mut scratch.bm, rs);
                        Acc::Bm { card }
                    }
                },
            };
            let empty = match &acc {
                Acc::Arr { len, .. } => *len == 0,
                Acc::Bm { card } => *card == 0,
            };
            if empty {
                return None;
            }
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(tids: &[u32]) -> TidSet {
        TidSet::from_sorted(tids)
    }

    #[test]
    fn from_sorted_roundtrips() {
        let tids = [0u32, 1, 63, 64, 65, 65535, 65536, 65537, 131072, 200000];
        let s = set(&tids);
        assert_eq!(s.to_vec(), tids);
        assert_eq!(s.cardinality(), tids.len() as u64);
        assert_eq!(s.n_chunks(), 4);
        for &t in &tids {
            assert!(s.contains(t));
        }
        assert!(!s.contains(2));
        assert!(!s.contains(65538));
    }

    #[test]
    fn dense_chunk_builds_bitmap_sparse_builds_array() {
        let dense: Vec<u32> = (0..5000u32).collect();
        let s = set(&dense);
        assert_eq!(s.chunk_kinds()[0].1, ContainerKind::Bitmap);
        let sparse: Vec<u32> = (0..5000u32).map(|i| i * 20).collect();
        let s = set(&sparse);
        assert!(s.chunk_kinds().iter().all(|&(_, k, _)| k == ContainerKind::Array));
    }

    #[test]
    fn optimize_adopts_runs_for_contiguous_chunks() {
        let tids: Vec<u32> = (1000..3000u32).collect();
        let mut s = set(&tids);
        assert_eq!(s.chunk_kinds()[0].1, ContainerKind::Array);
        s.optimize();
        assert_eq!(s.chunk_kinds()[0].1, ContainerKind::Runs);
        assert_eq!(s.to_vec(), tids);
    }

    #[test]
    fn and_or_andnot_toy() {
        let a = set(&[1, 5, 9, 65536, 70000]);
        let b = set(&[5, 9, 11, 70000, 131072]);
        assert_eq!(a.and(&b).to_vec(), vec![5, 9, 70000]);
        assert_eq!(a.and_count(&b), 3);
        assert_eq!(a.or(&b).to_vec(), vec![1, 5, 9, 11, 65536, 70000, 131072]);
        assert_eq!(a.andnot(&b).to_vec(), vec![1, 65536]);
        assert_eq!(b.andnot(&a).to_vec(), vec![11, 131072]);
    }

    #[test]
    fn multi_and_matches_pairwise_folds() {
        let a = set(&(0..2000u32).map(|i| i * 3).collect::<Vec<_>>());
        let b = set(&(0..3000u32).map(|i| i * 2).collect::<Vec<_>>());
        let c = set(&(0..1500u32).map(|i| i * 4).collect::<Vec<_>>());
        let expect = a.and(&b).and(&c).to_vec();
        let got = TidSet::multi_and(&[&a, &b, &c]);
        assert_eq!(got.to_vec(), expect);
        assert_eq!(TidSet::multi_and_count(&[&a, &b, &c]), expect.len() as u64);
        assert_eq!(TidSet::multi_and(&[&a]).to_vec(), a.to_vec());
        assert!(TidSet::multi_and(&[]).is_empty());
    }

    #[test]
    fn rank_counts_at_boundaries() {
        let s = set(&[0, 64, 65535, 65536, 131071]);
        assert_eq!(s.rank(0), 1);
        assert_eq!(s.rank(63), 1);
        assert_eq!(s.rank(64), 2);
        assert_eq!(s.rank(65535), 3);
        assert_eq!(s.rank(65536), 4);
        assert_eq!(s.rank(u32::MAX), 5);
    }

    #[test]
    fn insert_remove_hysteresis() {
        let mut s = TidSet::new();
        for t in 0..=(ARRAY_MAX as u32) {
            assert!(s.insert(t));
        }
        // ARRAY_MAX + 1 values: promoted past the threshold.
        assert_eq!(s.chunk_kinds()[0].1, ContainerKind::Bitmap);
        // Dropping back under ARRAY_MAX must NOT demote (hysteresis band).
        for t in (crate::adapt::ARRAY_DEMOTE as u32 + 1..=(ARRAY_MAX as u32)).rev() {
            assert!(s.remove(t));
        }
        assert_eq!(s.chunk_kinds()[0].1, ContainerKind::Bitmap);
        // At exactly the demote threshold the bitmap still holds...
        assert!(s.remove(crate::adapt::ARRAY_DEMOTE as u32));
        assert_eq!(s.chunk_kinds()[0].1, ContainerKind::Bitmap);
        // ...and one below it flips to array.
        assert!(s.remove(crate::adapt::ARRAY_DEMOTE as u32 - 1));
        assert_eq!(s.chunk_kinds()[0].1, ContainerKind::Array);
        assert_eq!(s.cardinality(), crate::adapt::ARRAY_DEMOTE as u64 - 1);
    }

    #[test]
    fn gallop_kernel_matches_merge() {
        let small: Vec<u16> = (0..40u16).map(|i| i * 1000).collect();
        let large: Vec<u16> = (0..60000u16).collect();
        let mut out1 = vec![0u16; 40];
        let mut out2 = [0u16; 40];
        let n1 = array_and_gallop_into(&small, &large, &mut out1);
        let (mut i, mut j, mut k) = (0, 0, 0);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out2[k] = small[i];
                    k += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        assert_eq!(n1, k);
        assert_eq!(out1[..n1], out2[..k]);
    }

    #[test]
    fn run_merges_cover_boundaries() {
        // Full-chunk run {0, 65535} intersected and subtracted.
        let full = vec![Run { start: 0, len: 65535 }];
        let mid = vec![Run { start: 100, len: 99 }, Run { start: 65000, len: 535 }];
        let mut out = Vec::new();
        runs_and(&full, &mid, &mut out);
        assert_eq!(out, mid);
        out.clear();
        runs_andnot(&full, &mid, &mut out);
        assert_eq!(
            out,
            vec![
                Run { start: 0, len: 99 },
                Run { start: 200, len: 64799 },
            ]
        );
        out.clear();
        runs_or(&mid, &[Run { start: 200, len: 64799 }], &mut out);
        assert_eq!(out, vec![Run { start: 100, len: 65435 }]);
    }
}
