//! Store round-trip properties (DESIGN.md §14):
//!
//! * build → persist → load → mine is **byte-identical** to mining the
//!   original database cold, for every kernel, on arbitrary inputs;
//! * persisted result entries survive the disk round trip exactly;
//! * incremental append over a persisted artifact equals a from-scratch
//!   rebuild of the grown database;
//! * damaging any individual section is detected and named; arbitrary
//!   garbage never panics the decoder.

use fpm::types::{canonicalize, MineKind};
use fpm::{CollectSink, Kernel, PatternQuery, QueryKey, RuleSpec, TransactionDb};
use fpm_store as store;
use proptest::prelude::*;
use store::{Artifact, LoadError, SpecMeta};

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(
        prop::collection::btree_set(0u32..24, 0..10)
            .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
        0..60,
    )
    .prop_map(TransactionDb::from_transactions)
}

fn mine(db: &TransactionDb, kernel: Kernel, minsup: u64) -> Vec<fpm::ItemsetCount> {
    let mut sink = CollectSink::default();
    exec::MinePlan::kernel(kernel, minsup).execute(db, &mut sink);
    canonicalize(sink.patterns)
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "fpm-store-roundtrip-{}-{}.fpa",
        std::process::id(),
        tag
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: a warm start from disk mines exactly what
    /// a cold start would, and persisted results return verbatim.
    #[test]
    fn persisted_artifact_mines_byte_identical_to_cold(
        db in arb_db(),
        minsup in 1u64..6,
    ) {
        let mut artifact = Artifact::build(SpecMeta::named("ds1", "smoke"), &db, minsup);
        for kernel in Kernel::ALL {
            artifact.push_result(
                kernel.code(),
                minsup,
                QueryKey::default(),
                mine(&db, kernel, minsup),
            );
        }

        // In-memory encode/decode is exact.
        let decoded = Artifact::decode(&artifact.encode()).expect("clean decode");
        prop_assert_eq!(&decoded, &artifact);

        // Through the filesystem (atomic tmp+rename write path).
        let path = tmp_path("prop");
        artifact.store(&path).expect("store");
        let loaded = Artifact::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(&loaded, &artifact);
        loaded.verify_deep().expect("deep verify");

        // Mining the database rebuilt from the loaded raw section is
        // byte-identical to mining the original, for every kernel —
        // and matches the persisted result entries.
        let rebuilt = TransactionDb::from_transactions(loaded.raw.clone());
        prop_assert_eq!(store::fingerprint(&rebuilt), loaded.fingerprint);
        for kernel in Kernel::ALL {
            let cold = mine(&db, kernel, minsup);
            prop_assert_eq!(&mine(&rebuilt, kernel, minsup), &cold, "{}", kernel.label());
            let entry = loaded
                .live_results()
                .find(|e| e.kernel == kernel.code() && e.min_support == minsup)
                .expect("persisted entry");
            prop_assert_eq!(&entry.patterns, &cold, "{}", kernel.label());
        }
    }

    /// Incremental append over a persisted artifact equals building the
    /// grown database from scratch — same prepared sections, and the
    /// same mined bytes afterwards.
    #[test]
    fn append_after_reload_matches_scratch(
        db in arb_db(),
        extra in prop::collection::vec(
            prop::collection::vec(0u32..24, 0..8), 1..8),
        minsup in 1u64..6,
    ) {
        let artifact = Artifact::build(SpecMeta::named("ds2", "smoke"), &db, minsup);
        let path = tmp_path("append");
        artifact.store(&path).expect("store");
        let mut grown = Artifact::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);

        let report = store::append(&mut grown, &extra);
        prop_assert_eq!(report.appended_rows, extra.len());
        prop_assert_eq!(report.generation, 1);

        // From-scratch reference: the original rows plus the appended
        // ones, rebuilt as one database.
        let mut all_rows = db.transactions().to_vec();
        all_rows.extend(extra.iter().cloned());
        let reference = TransactionDb::from_transactions(all_rows);
        let mut scratch = Artifact::build(SpecMeta::named("ds2", "smoke"), &reference, minsup);
        scratch.generation = grown.generation;
        prop_assert_eq!(&grown, &scratch);

        // And the mined bytes over the grown artifact's raw section are
        // what a from-scratch mine of the grown database emits.
        let rebuilt = TransactionDb::from_transactions(grown.raw.clone());
        for kernel in Kernel::ALL {
            prop_assert_eq!(
                mine(&rebuilt, kernel, minsup),
                mine(&reference, kernel, minsup),
                "{}", kernel.label()
            );
        }
    }

    /// The decoder is total: arbitrary garbage is rejected or decoded,
    /// never a panic, never an out-of-bounds read.
    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = Artifact::decode(&bytes);
    }

    /// Format v2: query-tagged result entries survive the disk round
    /// trip exactly, each query occupying its own slot, and the
    /// persisted answer equals applying the query to the full mine.
    #[test]
    fn query_tagged_results_roundtrip(
        db in arb_db(),
        minsup in 1u64..6,
        k in 1u64..8,
    ) {
        let queries = [
            PatternQuery::all(),
            PatternQuery::class(MineKind::Closed),
            PatternQuery::class(MineKind::Maximal),
            PatternQuery::all().top_k(k),
            PatternQuery::class(MineKind::Closed)
                .top_k(k)
                .rules(RuleSpec { min_confidence: 0.5, min_lift: 1.0 }),
        ];
        let full = mine(&db, Kernel::Lcm, minsup);
        let mut artifact = Artifact::build(SpecMeta::named("ds1", "smoke"), &db, minsup);
        for q in &queries {
            let answer = q.apply(full.clone(), db.len() as u64);
            artifact.push_result(Kernel::Lcm.code(), minsup, q.key(), answer);
        }
        prop_assert_eq!(artifact.results.len(), queries.len());

        let path = tmp_path("query");
        artifact.store(&path).expect("store");
        let loaded = Artifact::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(&loaded, &artifact);
        for q in &queries {
            let entry = loaded
                .live_results()
                .find(|e| e.query == q.key())
                .expect("per-query slot persisted");
            prop_assert_eq!(
                &entry.patterns,
                &q.apply(full.clone(), db.len() as u64),
                "{}", q.label()
            );
        }
    }
}

/// Deterministic per-section sweep: damage inside each section's
/// payload is not just detected but *attributed* — the typed error
/// names the damaged section, which is what the serve-side fallback
/// logs hinge on.
#[test]
fn damage_names_the_section_it_landed_in() {
    let db = TransactionDb::from_transactions(vec![
        vec![0, 1, 2, 3],
        vec![0, 1, 2],
        vec![1, 2, 4],
        vec![0, 4],
        vec![2, 3, 4],
    ]);
    let mut artifact = Artifact::build(SpecMeta::named("ds1", "smoke"), &db, 2);
    artifact.push_result(0, 2, QueryKey::default(), mine(&db, Kernel::Lcm, 2));
    let clean = artifact.encode();

    for i in 0..7 {
        let base = 16 + i * 24;
        let id = u32::from_le_bytes(clean[base..base + 4].try_into().unwrap());
        let off = u64::from_le_bytes(clean[base + 4..base + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(clean[base + 12..base + 20].try_into().unwrap()) as usize;
        assert!(len > 0, "fixture must populate section {i}");

        // A bit-flip anywhere in the payload is attributed to exactly
        // this section by its CRC.
        let mut flipped = clean.clone();
        flipped[off + len / 2] ^= 0x80;
        match Artifact::decode(&flipped) {
            Err(LoadError::Corrupt { section }) => {
                assert_eq!(section, store::section_name(id), "flip in section {i}")
            }
            other => panic!("flip in section {i}: expected Corrupt, got {other:?}"),
        }

        // Truncation that cuts this section off is detected (the exact
        // attribution may be the file-length check, but it must fail).
        let truncated = &clean[..off + len / 2];
        assert!(
            Artifact::decode(truncated).is_err(),
            "truncation into section {i} must not decode"
        );
    }
}

/// The atomic write contract: a failed/interrupted store never leaves a
/// half-written artifact at the final path, and a rewrite replaces the
/// bytes in one step.
#[test]
fn store_is_atomic_rename_and_rewrites_whole() {
    let db = TransactionDb::from_transactions(vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
    let mut artifact = Artifact::build(SpecMeta::named("ds3", "smoke"), &db, 1);
    let path = tmp_path("atomic");
    artifact.store(&path).expect("first store");
    let first = std::fs::read(&path).expect("read");

    artifact.push_result(0, 1, QueryKey::default(), mine(&db, Kernel::Lcm, 1));
    artifact.store(&path).expect("rewrite");
    let second = std::fs::read(&path).expect("read");
    let _ = std::fs::remove_file(&path);

    assert_ne!(first, second, "the rewrite must replace the bytes");
    assert_eq!(Artifact::decode(&second).expect("decode"), artifact);
    // No stray temp file left beside the artifact.
    let mut tmp = path.into_os_string();
    tmp.push(".tmp");
    assert!(!std::path::Path::new(&tmp).exists(), "temp file must be renamed away");
}
