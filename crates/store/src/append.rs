//! Incremental append: grow a persisted dataset without a full rebuild.
//!
//! The write-efficiency idea (PAPERS.md, wear-leveling-aware persistent
//! FPM) is to treat the big prepared sections as *cold* and route
//! growth through a small *hot* delta: appending transactions extends
//! the raw section, bumps the per-item frequency counters in place, and
//! — whenever the frequent-item **rank order is unchanged** — merely
//! appends the new rows' remapped forms to the ranked section instead
//! of re-deriving it from scratch. Only the conditional structures
//! derived from the ranked rows (bit-matrix, prefix tree) rebuild, and
//! those are linear passes over data already in memory.
//!
//! Every append bumps the artifact **generation**, which is the
//! invalidation mechanism for persisted results: cached entries record
//! the generation they were mined at, and [`crate::Artifact::live_results`]
//! only yields entries whose generation matches — so a warm-starting
//! service can never serve pre-append patterns for a post-append
//! database.
//!
//! Correctness is anchored by equivalence, not trust in the patch
//! logic: after either path, the artifact compares equal (fingerprint,
//! freq, ranked, vbm, fpt) to a from-scratch [`crate::Artifact::build`]
//! of the appended database — tested below and property-tested in
//! `tests/roundtrip.rs`.

use crate::artifact::{fingerprint, Artifact, BitMatrix, PrefixTree, RankedSection};
use fpm::{remap, Item, TransactionDb};

/// What an [`append`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReport {
    /// Transactions appended (after normalization; empties count).
    pub appended_rows: usize,
    /// The artifact's new generation.
    pub generation: u64,
    /// Result-cache entries invalidated by the generation bump.
    pub invalidated_results: usize,
    /// `true` when the frequent-item rank order survived and the ranked
    /// section was patched in place; `false` when the order changed and
    /// the prepared sections were re-derived from the raw section.
    pub incremental: bool,
}

/// Appends `new_rows` to the artifact's dataset, invalidating dependent
/// results and patching (or, when the rank order changed, rebuilding)
/// the prepared sections. See the module docs for the contract.
pub fn append(a: &mut Artifact, new_rows: &[Vec<Item>]) -> AppendReport {
    // Normalize exactly like `TransactionDb::from_transactions`: items
    // sorted ascending, duplicates dropped, empty rows kept.
    let normalized: Vec<Vec<Item>> = new_rows
        .iter()
        .map(|t| {
            let mut row = t.clone();
            row.sort_unstable();
            row.dedup();
            row
        })
        .collect();

    let invalidated_results = a.live_results().count();
    a.generation += 1;
    a.results.clear();

    for row in &normalized {
        if let Some(&max) = row.last() {
            if max as usize >= a.freq.len() {
                a.freq.resize(max as usize + 1, 0);
            }
        }
        for &i in row {
            a.freq[i as usize] += 1;
        }
    }
    a.raw.extend(normalized.iter().cloned());

    // The raw rows are already normalized, so rebuilding the db is a
    // pure copy; it re-derives n_items and the fingerprint for us.
    let db = TransactionDb::from_transactions(a.raw.clone());
    a.fingerprint = fingerprint(&db);

    // Re-derive the frequent-rank order from the updated counters,
    // mirroring `fpm::remap` exactly (freq desc, original id asc).
    let minsup = a.prepared_minsup.max(1);
    let mut frequent: Vec<Item> = (0..a.freq.len() as u32)
        .filter(|&i| a.freq[i as usize] >= minsup)
        .collect();
    frequent.sort_by(|&x, &y| {
        a.freq[y as usize]
            .cmp(&a.freq[x as usize])
            .then(x.cmp(&y))
    });

    let incremental = frequent == a.ranked.to_orig;
    if incremental {
        // Rank order unchanged: patch supports, append remapped rows.
        for (rank, &orig) in frequent.iter().enumerate() {
            a.ranked.supports[rank] = a.freq[orig as usize];
        }
        let mut to_rank = vec![u32::MAX; a.freq.len()];
        for (rank, &orig) in frequent.iter().enumerate() {
            to_rank[orig as usize] = rank as u32;
        }
        for row in &normalized {
            let mut mapped: Vec<u32> = row
                .iter()
                .filter_map(|&i| {
                    let r = to_rank[i as usize];
                    (r != u32::MAX).then_some(r)
                })
                .collect();
            if !mapped.is_empty() {
                mapped.sort_unstable();
                a.ranked.rows.push(mapped);
            }
        }
        a.ranked.original_len += normalized.len() as u64;
    } else {
        // Order changed: the remapped ids themselves are stale, so the
        // whole prepared family re-derives from raw.
        a.ranked = RankedSection::from_ranked(&remap(&db, a.prepared_minsup));
    }
    // The conditional structures always rebuild from the (patched or
    // re-derived) ranked rows: they index by row position and rank, so
    // any growth touches them wholesale anyway.
    a.vbm = BitMatrix::build(&a.ranked.rows, a.ranked.to_orig.len());
    a.fpt = PrefixTree::build(&a.ranked.rows);

    AppendReport {
        appended_rows: normalized.len(),
        generation: a.generation,
        invalidated_results,
        incremental,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::SpecMeta;
    use fpm::ItemsetCount;

    fn base_rows() -> Vec<Vec<Item>> {
        vec![
            vec![1, 2, 3],
            vec![1, 2],
            vec![2, 3],
            vec![1, 2, 5],
            vec![4],
        ]
    }

    fn built(rows: Vec<Vec<Item>>, minsup: u64) -> Artifact {
        let db = TransactionDb::from_transactions(rows);
        Artifact::build(SpecMeta::named("ds1", "smoke"), &db, minsup)
    }

    /// Appending must land on exactly the state a from-scratch build of
    /// the full dataset produces, whichever path it took.
    fn assert_matches_scratch(appended: &Artifact, all_rows: Vec<Vec<Item>>) {
        let scratch = built(all_rows, appended.prepared_minsup);
        assert_eq!(appended.fingerprint, scratch.fingerprint);
        assert_eq!(appended.freq, scratch.freq);
        assert_eq!(appended.ranked, scratch.ranked);
        assert_eq!(appended.vbm, scratch.vbm);
        assert_eq!(appended.fpt, scratch.fpt);
        assert!(appended.verify_deep().is_ok());
    }

    #[test]
    fn order_preserving_append_is_incremental() {
        let mut a = built(base_rows(), 2);
        // [1,2] reinforces the existing order (2 most frequent, then 1).
        let delta = vec![vec![2, 1], vec![2]];
        let report = append(&mut a, &delta);
        assert!(report.incremental);
        assert_eq!(report.appended_rows, 2);
        assert_eq!(report.generation, 1);
        let mut all = base_rows();
        all.extend(delta);
        assert_matches_scratch(&a, all);
    }

    #[test]
    fn order_change_falls_back_to_rebuild() {
        let mut a = built(base_rows(), 2);
        // Flood item 7 (previously absent) to the top of the ranking.
        let delta: Vec<Vec<Item>> = (0..10).map(|_| vec![7]).collect();
        let report = append(&mut a, &delta);
        assert!(!report.incremental);
        let mut all = base_rows();
        all.extend(delta);
        assert_matches_scratch(&a, all);
    }

    #[test]
    fn append_bumps_generation_and_invalidates_results() {
        let mut a = built(base_rows(), 2);
        a.push_result(
            0,
            2,
            fpm::QueryKey::default(),
            vec![ItemsetCount { items: vec![1], support: 3 }],
        );
        assert_eq!(a.live_results().count(), 1);
        let report = append(&mut a, &[vec![1, 2]]);
        assert_eq!(report.invalidated_results, 1);
        assert_eq!(a.generation, 1);
        assert_eq!(a.live_results().count(), 0);
        assert!(a.results.is_empty(), "stale entries are dropped, not kept as dead bytes");
    }

    #[test]
    fn appended_artifact_roundtrips_on_disk() {
        let mut a = built(base_rows(), 2);
        append(&mut a, &[vec![1, 3], vec![]]);
        let bytes = a.encode();
        assert_eq!(Artifact::decode(&bytes).expect("clean decode"), a);
    }

    #[test]
    fn unnormalized_and_empty_rows_are_handled() {
        let mut a = built(base_rows(), 2);
        let delta = vec![vec![2, 2, 1], vec![]];
        let report = append(&mut a, &delta);
        assert_eq!(report.appended_rows, 2);
        let mut all = base_rows();
        all.extend(delta);
        assert_matches_scratch(&a, all);
    }
}
