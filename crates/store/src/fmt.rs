//! Little-endian primitive encoding and the CRC-32 used by every
//! section of the artifact format.
//!
//! Everything here is deliberately boring: fixed-width little-endian
//! integers, length-prefixed byte strings, and the IEEE CRC-32
//! polynomial in its table-driven reflected form (the same polynomial
//! as zip/png, so third-party tooling can cross-check section sums).
//! The cursor reader is bounds-checked at every step and returns
//! `None` on any overrun — the caller maps that to a named corrupt
//! section instead of panicking, which is what lets the loader promise
//! "any damage degrades to a cold rebuild".

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xff) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    !crc
}

/// The 256-entry CRC table, built at compile time so the checksum pass
/// allocates nothing.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string (`u32` length + bytes).
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked forward-only reader over a byte slice. Every
/// accessor returns `None` past the end; nothing panics.
pub struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    /// Starts reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Rd<'a> {
        Rd { buf, pos: 0 }
    }

    /// Takes the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    /// Reads a little-endian `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.bytes(4).map(|b| {
            let mut a = [0u8; 4];
            a.copy_from_slice(b);
            u32::from_le_bytes(a)
        })
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.bytes(8).map(|b| {
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            u64::from_le_bytes(a)
        })
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let b = self.bytes(n)?;
        String::from_utf8(b.to_vec()).ok()
    }

    /// True when every byte has been consumed — sections must not carry
    /// trailing garbage (it would be unchecksummed dead weight).
    pub fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vectors() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc_detects_single_bit_flips() {
        let base = b"artifact section payload".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8u8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip at {byte}.{bit}");
            }
        }
    }

    #[test]
    fn rd_roundtrips_and_bounds_checks() {
        let mut out = Vec::new();
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, 42);
        put_str(&mut out, "ds1");
        let mut rd = Rd::new(&out);
        assert_eq!(rd.u32(), Some(0xDEAD_BEEF));
        assert_eq!(rd.u64(), Some(42));
        assert_eq!(rd.str().as_deref(), Some("ds1"));
        assert!(rd.exhausted());
        assert_eq!(rd.u8(), None);

        let mut short = Rd::new(&out[..5]);
        assert_eq!(short.u32(), Some(0xDEAD_BEEF));
        assert_eq!(short.u64(), None);
    }
}
