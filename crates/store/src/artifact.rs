//! The on-disk artifact: sectioned, versioned, checksummed.
//!
//! # Layout (format version 2; version 1 still decodes)
//!
//! ```text
//! magic "FPMSTOR1" (8)  version u32  section_count u32
//! section table: { id u32, offset u64, len u64, crc u32 } × count
//! table_crc u32            — CRC-32 over every byte above
//! payloads                 — contiguous, in table order
//! ```
//!
//! Offsets are absolute file offsets; the payloads are written
//! contiguously right after the table and the decoder *requires* that
//! layout, so **every byte of the file is covered by exactly one
//! checksum** (the table CRC or a section CRC) and any truncation or
//! bit-flip — anywhere — reads as a named [`LoadError`]. Readers never
//! panic on damage: the bounds-checked cursor turns overruns into
//! [`LoadError::Corrupt`] and the caller falls back to a cold rebuild.
//!
//! # Sections
//!
//! | id | name    | contents                                           |
//! |----|---------|----------------------------------------------------|
//! | 1  | meta    | generation, fingerprint, prepared minsup, spec     |
//! | 2  | rawdb   | normalized raw transactions (original item ids)    |
//! | 3  | freq    | per-original-item support counts (the border map)  |
//! | 4  | ranked  | remapped DB: rank→orig, supports, ranked rows      |
//! | 5  | vbm     | vertical bit-matrix, column-major u64 words        |
//! | 6  | fpt     | serialized prefix tree (item, parent, count) rows  |
//! | 7  | results | cached results keyed (kernel, minsup, query, gen)  |
//!
//! Sections 4–6 are the paper's P2 *prepared* forms — persisting them
//! is the point: a warm start costs a checksum pass, not a rebuild.
//! Section 7 entries are only served when their recorded generation
//! matches the artifact's current generation; `append` bumps the
//! generation, which invalidates every dependent cached result without
//! touching their bytes.
//!
//! # Version 2: query-tagged results
//!
//! Version 2 adds a **query tag** to every results entry — the
//! canonical [`fpm::PatternQuery::encode`] byte layout (class code,
//! top-k flag + value, rules flag + two `f64` bit patterns), so a
//! warm start can seed the serve cache under the full widened key
//! `(fingerprint, kernel, minsup, query)`. Version 1 files carry no
//! tag; the decoder reads them with every entry tagged as the identity
//! query ([`fpm::QueryKey::default`]), which is exactly what a v1
//! producer meant. The writer always emits version 2.

use crate::fmt::{crc32, put_str, put_u32, put_u64, Rd};
use fpm::types::MineKind;
use fpm::{remap, Item, ItemsetCount, QueryKey, TransactionDb};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File magic, identifying the artifact family; the version field right
/// after it carries the format version.
pub const MAGIC: [u8; 8] = *b"FPMSTOR1";
/// On-disk format version written by [`Artifact::encode`]; bump on any
/// incompatible layout change. The decoder also accepts every version
/// in [`DECODABLE_VERSIONS`].
pub const FORMAT_VERSION: u32 = 2;
/// Format versions [`Artifact::decode`] understands: 1 (query-less
/// results entries, read as identity-query) and 2 (query-tagged).
pub const DECODABLE_VERSIONS: [u32; 2] = [1, 2];
/// Artifact file extension (`<stem>.fpa`).
pub const EXTENSION: &str = "fpa";

const SEC_META: u32 = 1;
const SEC_RAWDB: u32 = 2;
const SEC_FREQ: u32 = 3;
const SEC_RANKED: u32 = 4;
const SEC_VBM: u32 = 5;
const SEC_FPT: u32 = 6;
const SEC_RESULTS: u32 = 7;

/// Canonical section order; the decoder requires exactly these ids in
/// exactly this order (we are the only writer of version-1 files).
const SECTION_IDS: [u32; 7] = [
    SEC_META, SEC_RAWDB, SEC_FREQ, SEC_RANKED, SEC_VBM, SEC_FPT, SEC_RESULTS,
];

/// Human name of a section id, for error taxonomy and `inspect`.
pub fn section_name(id: u32) -> &'static str {
    match id {
        SEC_META => "meta",
        SEC_RAWDB => "rawdb",
        SEC_FREQ => "freq",
        SEC_RANKED => "ranked",
        SEC_VBM => "vbm",
        SEC_FPT => "fpt",
        SEC_RESULTS => "results",
        _ => "unknown",
    }
}

/// Why an artifact failed to load. Every variant is a *detected* failure:
/// the caller's contract is to fall back to a cold rebuild, never to
/// trust partial bytes.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The first eight bytes are not [`MAGIC`] (wrong file, or damage
    /// that reached the magic itself).
    BadMagic,
    /// A magic-valid file with a format version this reader does not
    /// speak.
    BadVersion(u32),
    /// A checksum, bounds, or structure violation, attributed to the
    /// innermost section being read when it was detected.
    Corrupt {
        /// The section (or `"header"` / `"trailer"`) that failed.
        section: &'static str,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "artifact io error: {e}"),
            LoadError::BadMagic => write!(f, "artifact magic mismatch"),
            LoadError::BadVersion(v) => write!(f, "artifact format version {v} unsupported"),
            LoadError::Corrupt { section } => write!(f, "artifact corrupt in section `{section}`"),
        }
    }
}

impl std::error::Error for LoadError {}

/// FNV-1a over the full transaction content — byte-for-byte the same
/// function as the serve layer's cache fingerprint, so an artifact's
/// recorded fingerprint can be cross-checked against the database the
/// service rebuilds from the raw section. (Covered by a cross-crate
/// equality test in `fpm-serve`.)
pub fn fingerprint(db: &TransactionDb) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(db.len() as u64);
    for t in db.transactions() {
        eat(t.len() as u64);
        for &item in t {
            eat(item as u64);
        }
    }
    h
}

/// How the dataset behind an artifact was specified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// A named quest dataset at a named scale (warm-startable by serve).
    Named,
    /// An inline transaction list.
    Inline,
    /// A FIMI file path.
    Path,
}

impl SpecKind {
    /// Stable one-byte wire code.
    pub fn code(&self) -> u8 {
        match self {
            SpecKind::Named => 0,
            SpecKind::Inline => 1,
            SpecKind::Path => 2,
        }
    }

    /// Inverse of [`SpecKind::code`].
    pub fn from_code(c: u8) -> Option<SpecKind> {
        match c {
            0 => Some(SpecKind::Named),
            1 => Some(SpecKind::Inline),
            2 => Some(SpecKind::Path),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SpecKind::Named => "named",
            SpecKind::Inline => "inline",
            SpecKind::Path => "path",
        }
    }
}

/// The dataset identity an artifact was built for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecMeta {
    /// Spec family.
    pub kind: SpecKind,
    /// Dataset label (`ds1`…) for [`SpecKind::Named`], the source path
    /// for [`SpecKind::Path`], empty for inline.
    pub dataset: String,
    /// Scale label (`smoke`/`ci`/`full`) for named specs, else empty.
    pub scale: String,
}

impl SpecMeta {
    /// A named-dataset spec, the only kind serve warm-starts from.
    pub fn named(dataset: &str, scale: &str) -> SpecMeta {
        SpecMeta {
            kind: SpecKind::Named,
            dataset: dataset.to_string(),
            scale: scale.to_string(),
        }
    }
}

/// The persisted remapped database (section 4): the rank↔original
/// translation, per-rank supports, and the ranked rows themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedSection {
    /// Original item id per rank (rank 0 = most frequent).
    pub to_orig: Vec<Item>,
    /// Support per rank.
    pub supports: Vec<u64>,
    /// Length of the *original* database (supports' denominator).
    pub original_len: u64,
    /// Remapped transactions, each sorted ascending by rank.
    pub rows: Vec<Vec<u32>>,
}

impl RankedSection {
    /// Copies a [`fpm::RankedDb`] into the persistable form.
    pub fn from_ranked(r: &fpm::RankedDb) -> RankedSection {
        let to_orig = (0..r.map.n_ranks() as u32).map(|k| r.map.original(k)).collect();
        let supports = (0..r.map.n_ranks() as u32).map(|k| r.map.support(k)).collect();
        RankedSection {
            to_orig,
            supports,
            original_len: r.original_len as u64,
            rows: r.transactions.clone(),
        }
    }
}

/// The persisted vertical bit-matrix (section 5): one column of
/// `words_per_col` u64 words per rank, bit `row` set when the row's
/// transaction contains the rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    /// Number of rank columns.
    pub n_ranks: u32,
    /// Number of transaction rows.
    pub n_rows: u64,
    /// Words per column (`ceil(n_rows / 64)`).
    pub words_per_col: u32,
    /// Column-major words: rank `r` occupies `words[r*wpc..(r+1)*wpc]`.
    pub words: Vec<u64>,
}

impl BitMatrix {
    /// Builds the matrix from ranked rows.
    pub fn build(rows: &[Vec<u32>], n_ranks: usize) -> BitMatrix {
        let wpc = rows.len().div_ceil(64);
        let mut words = vec![0u64; n_ranks * wpc];
        for (row, t) in rows.iter().enumerate() {
            for &r in t {
                words[r as usize * wpc + row / 64] |= 1u64 << (row % 64);
            }
        }
        BitMatrix {
            n_ranks: n_ranks as u32,
            n_rows: rows.len() as u64,
            words_per_col: wpc as u32,
            words,
        }
    }
}

/// The persisted prefix tree (section 6), stored as parallel arrays in
/// deterministic insertion order: node 0 is the root; every other node
/// records its rank item, parent index, and path count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixTree {
    /// Rank item per node (`u32::MAX` at the root).
    pub items: Vec<u32>,
    /// Parent node index per node (self-referential 0 at the root).
    pub parents: Vec<u32>,
    /// Number of ranked rows whose prefix passes through the node.
    pub counts: Vec<u64>,
}

impl PrefixTree {
    /// Builds the tree by inserting ranked rows in row order, with a
    /// `BTreeMap` child index so node numbering is deterministic.
    pub fn build(rows: &[Vec<u32>]) -> PrefixTree {
        let mut items = vec![u32::MAX];
        let mut parents = vec![0u32];
        let mut counts = vec![0u64];
        let mut children: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        for t in rows {
            let mut cur = 0u32;
            for &it in t {
                let next = match children.get(&(cur, it)) {
                    Some(&n) => n,
                    None => {
                        let n = items.len() as u32;
                        items.push(it);
                        parents.push(cur);
                        counts.push(0);
                        children.insert((cur, it), n);
                        n
                    }
                };
                counts[next as usize] += 1;
                cur = next;
            }
        }
        PrefixTree { items, parents, counts }
    }

    /// Number of nodes, root included.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True only for a degenerate zero-node value (never produced by
    /// [`PrefixTree::build`], which always emits the root).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// One persisted result-cache entry (section 7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultEntry {
    /// Kernel code (`fpm::Kernel::code`).
    pub kernel: u8,
    /// Minimum support the result was mined at.
    pub min_support: u64,
    /// The pattern query the result answers, in its hashable key form
    /// ([`fpm::PatternQuery::key`]); [`QueryKey::default`] is the
    /// identity query — the only value version-1 files can carry.
    pub query: QueryKey,
    /// Artifact generation the result belongs to; entries from older
    /// generations are dead weight kept only until the next rewrite.
    pub generation: u64,
    /// The complete mined pattern list, serial order.
    pub patterns: Vec<ItemsetCount>,
}

/// A fully materialized artifact: everything the store persists for one
/// dataset, in memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Dataset identity.
    pub spec: SpecMeta,
    /// Append generation, bumped by every [`crate::append()`].
    pub generation: u64,
    /// FNV fingerprint of the raw database ([`fingerprint`]).
    pub fingerprint: u64,
    /// Minimum support the prepared sections (4–6) were built at.
    pub prepared_minsup: u64,
    /// Normalized raw transactions (sorted, deduplicated items).
    pub raw: Vec<Vec<Item>>,
    /// Per-original-item support counts.
    pub freq: Vec<u64>,
    /// Prepared: the remapped database.
    pub ranked: RankedSection,
    /// Prepared: the vertical bit-matrix.
    pub vbm: BitMatrix,
    /// Prepared: the prefix tree.
    pub fpt: PrefixTree,
    /// Persisted result-cache entries.
    pub results: Vec<ResultEntry>,
}

impl Artifact {
    /// Builds a fresh artifact (generation 0, no results) from a raw
    /// database, preparing the remapped DB, bit-matrix and prefix tree
    /// at `minsup`.
    pub fn build(spec: SpecMeta, db: &TransactionDb, minsup: u64) -> Artifact {
        let mut freq = vec![0u64; db.n_items()];
        for t in db.transactions() {
            for &i in t {
                freq[i as usize] += 1;
            }
        }
        let ranked_db = remap(db, minsup);
        let ranked = RankedSection::from_ranked(&ranked_db);
        let vbm = BitMatrix::build(&ranked.rows, ranked.to_orig.len());
        let fpt = PrefixTree::build(&ranked.rows);
        Artifact {
            spec,
            generation: 0,
            fingerprint: fingerprint(db),
            prepared_minsup: minsup,
            raw: db.transactions().to_vec(),
            freq,
            ranked,
            vbm,
            fpt,
            results: Vec::new(),
        }
    }

    /// Records a result at the artifact's current generation, replacing
    /// any entry for the same `(kernel, min_support, query)`.
    pub fn push_result(
        &mut self,
        kernel: u8,
        min_support: u64,
        query: QueryKey,
        patterns: Vec<ItemsetCount>,
    ) {
        self.results
            .retain(|e| !(e.kernel == kernel && e.min_support == min_support && e.query == query));
        self.results.push(ResultEntry {
            kernel,
            min_support,
            query,
            generation: self.generation,
            patterns,
        });
    }

    /// Result entries whose generation matches the artifact's current
    /// generation — the only ones a warm start may serve.
    pub fn live_results(&self) -> impl Iterator<Item = &ResultEntry> {
        self.results.iter().filter(|e| e.generation == self.generation)
    }

    /// Deterministic file stem for this artifact, e.g. `named-ds1-smoke`.
    pub fn stem(&self) -> String {
        match self.spec.kind {
            SpecKind::Named => format!("named-{}-{}", self.spec.dataset, self.spec.scale),
            SpecKind::Inline => format!("inline-{:016x}", self.fingerprint),
            SpecKind::Path => format!("path-{:016x}", self.fingerprint),
        }
    }

    /// The artifact's path under `dir`: `<dir>/<stem>.fpa`.
    pub fn path_in(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}.{}", self.stem(), EXTENSION))
    }

    /// Serializes to the sectioned format documented at module level
    /// (always the current [`FORMAT_VERSION`]).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with(FORMAT_VERSION)
    }

    /// Serializes in the version-1 layout (query-less results entries).
    /// **Lossy**: entries whose query is not the identity cannot be
    /// represented and are dropped. Exists so compatibility tests can
    /// manufacture genuine v1 bytes; production code always writes v2.
    #[doc(hidden)]
    pub fn encode_legacy_v1(&self) -> Vec<u8> {
        self.encode_with(1)
    }

    fn encode_with(&self, version: u32) -> Vec<u8> {
        let payloads: Vec<(u32, Vec<u8>)> = vec![
            (SEC_META, self.enc_meta()),
            (SEC_RAWDB, enc_rows_items(&self.raw)),
            (SEC_FREQ, self.enc_freq()),
            (SEC_RANKED, self.enc_ranked()),
            (SEC_VBM, self.enc_vbm()),
            (SEC_FPT, self.enc_fpt()),
            (SEC_RESULTS, self.enc_results(version)),
        ];
        let header_len = 8 + 4 + 4 + payloads.len() * 24 + 4;
        let mut out = Vec::with_capacity(
            header_len + payloads.iter().map(|(_, p)| p.len()).sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, version);
        put_u32(&mut out, payloads.len() as u32);
        let mut offset = header_len as u64;
        for (id, payload) in &payloads {
            put_u32(&mut out, *id);
            put_u64(&mut out, offset);
            put_u64(&mut out, payload.len() as u64);
            put_u32(&mut out, crc32(payload));
            offset += payload.len() as u64;
        }
        let table_crc = crc32(&out);
        put_u32(&mut out, table_crc);
        for (_, payload) in &payloads {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parses and integrity-checks a serialized artifact. Any damage —
    /// header, table, any section, truncation, trailing bytes — returns
    /// an error naming the innermost failing region; nothing panics.
    pub fn decode(bytes: &[u8]) -> Result<Artifact, LoadError> {
        let corrupt = |section| LoadError::Corrupt { section };
        if bytes.len() < 8 || bytes[..8] != MAGIC {
            return Err(LoadError::BadMagic);
        }
        let mut rd = Rd::new(bytes);
        let _ = rd.bytes(8); // magic, just checked
        let version = rd.u32().ok_or(corrupt("header"))?;
        if !DECODABLE_VERSIONS.contains(&version) {
            return Err(LoadError::BadVersion(version));
        }
        let count = rd.u32().ok_or(corrupt("header"))? as usize;
        if count != SECTION_IDS.len() {
            return Err(corrupt("header"));
        }
        let table_end = 8 + 4 + 4 + count * 24;
        if bytes.len() < table_end + 4 {
            return Err(corrupt("header"));
        }
        let mut table = Vec::with_capacity(count);
        for _ in 0..count {
            let id = rd.u32().ok_or(corrupt("header"))?;
            let offset = rd.u64().ok_or(corrupt("header"))?;
            let len = rd.u64().ok_or(corrupt("header"))?;
            let crc = rd.u32().ok_or(corrupt("header"))?;
            table.push((id, offset, len, crc));
        }
        let stored_table_crc = rd.u32().ok_or(corrupt("header"))?;
        if crc32(&bytes[..table_end]) != stored_table_crc {
            return Err(corrupt("header"));
        }
        // Enforce the canonical contiguous layout: known ids in order,
        // payloads exactly filling the rest of the file. This is what
        // makes every byte checksum-covered.
        let mut expect_offset = (table_end + 4) as u64;
        for (i, &(id, offset, len, _)) in table.iter().enumerate() {
            if id != SECTION_IDS[i] || offset != expect_offset {
                return Err(corrupt("header"));
            }
            expect_offset = offset.checked_add(len).ok_or(corrupt("header"))?;
        }
        if expect_offset != bytes.len() as u64 {
            return Err(corrupt("trailer"));
        }
        let mut sections: Vec<&[u8]> = Vec::with_capacity(count);
        for &(id, offset, len, crc) in &table {
            let name = section_name(id);
            let payload = bytes
                .get(offset as usize..(offset + len) as usize)
                .ok_or(corrupt(name))?;
            if crc32(payload) != crc {
                return Err(corrupt(name));
            }
            sections.push(payload);
        }
        let (spec, generation, fingerprint, prepared_minsup) = dec_meta(sections[0])?;
        let raw = dec_rows_items(sections[1], "rawdb")?;
        let freq = dec_freq(sections[2])?;
        let ranked = dec_ranked(sections[3])?;
        let vbm = dec_vbm(sections[4])?;
        let fpt = dec_fpt(sections[5])?;
        let results = dec_results(sections[6], version)?;
        Ok(Artifact {
            spec,
            generation,
            fingerprint,
            prepared_minsup,
            raw,
            freq,
            ranked,
            vbm,
            fpt,
            results,
        })
    }

    /// Reads and decodes `path`. Crosses the chaos harness's
    /// artifact-corruption site first, so the fault campaign can damage
    /// the bytes between disk and decoder exactly where real rot would.
    pub fn load(path: &Path) -> Result<Artifact, LoadError> {
        let mut bytes = fs::read(path).map_err(LoadError::Io)?;
        fpm::faults::corrupt_artifact(&mut bytes);
        Artifact::decode(&bytes)
    }

    /// Writes atomically: serialize, write `<path>.tmp`, fsync-free
    /// rename over `path`. A crash mid-write leaves either the old
    /// artifact or a stray `.tmp`, never a torn file under `path`.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        let bytes = self.encode();
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, path)
    }

    /// Recomputes every prepared section from the raw section and
    /// compares: the deep half of `store verify`, catching logic drift
    /// (a stale prepared form with a valid CRC) that checksums cannot.
    pub fn verify_deep(&self) -> Result<(), String> {
        let db = TransactionDb::from_transactions(self.raw.clone());
        if fingerprint(&db) != self.fingerprint {
            return Err("fingerprint does not match raw section".to_string());
        }
        let mut freq = vec![0u64; db.n_items()];
        for t in db.transactions() {
            for &i in t {
                freq[i as usize] += 1;
            }
        }
        if freq != self.freq {
            return Err("freq section does not match raw section".to_string());
        }
        let ranked = RankedSection::from_ranked(&remap(&db, self.prepared_minsup));
        if ranked != self.ranked {
            return Err("ranked section does not match raw remap".to_string());
        }
        if BitMatrix::build(&self.ranked.rows, self.ranked.to_orig.len()) != self.vbm {
            return Err("vbm section does not match ranked rows".to_string());
        }
        if PrefixTree::build(&self.ranked.rows) != self.fpt {
            return Err("fpt section does not match ranked rows".to_string());
        }
        Ok(())
    }

    fn enc_meta(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.generation);
        put_u64(&mut out, self.fingerprint);
        put_u64(&mut out, self.prepared_minsup);
        out.push(self.spec.kind.code());
        put_str(&mut out, &self.spec.dataset);
        put_str(&mut out, &self.spec.scale);
        out
    }

    fn enc_freq(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.freq.len() as u64);
        for &c in &self.freq {
            put_u64(&mut out, c);
        }
        out
    }

    fn enc_ranked(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.ranked.to_orig.len() as u32);
        for &o in &self.ranked.to_orig {
            put_u32(&mut out, o);
        }
        for &s in &self.ranked.supports {
            put_u64(&mut out, s);
        }
        put_u64(&mut out, self.ranked.original_len);
        let rows = enc_rows_u32(&self.ranked.rows);
        out.extend_from_slice(&rows);
        out
    }

    fn enc_vbm(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.vbm.n_ranks);
        put_u64(&mut out, self.vbm.n_rows);
        put_u32(&mut out, self.vbm.words_per_col);
        for &w in &self.vbm.words {
            put_u64(&mut out, w);
        }
        out
    }

    fn enc_fpt(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.fpt.items.len() as u64);
        for i in 0..self.fpt.items.len() {
            put_u32(&mut out, self.fpt.items[i]);
            put_u32(&mut out, self.fpt.parents[i]);
            put_u64(&mut out, self.fpt.counts[i]);
        }
        out
    }

    fn enc_results(&self, version: u32) -> Vec<u8> {
        // Version 1 cannot carry a query tag: only identity-query
        // entries survive a legacy encode (push_result dedup keeps the
        // retained set deterministic).
        let entries: Vec<&ResultEntry> = self
            .results
            .iter()
            .filter(|e| version >= 2 || e.query == QueryKey::default())
            .collect();
        let mut out = Vec::new();
        put_u64(&mut out, entries.len() as u64);
        for e in entries {
            out.push(e.kernel);
            put_u64(&mut out, e.min_support);
            if version >= 2 {
                enc_query(&mut out, &e.query);
            }
            put_u64(&mut out, e.generation);
            put_u64(&mut out, e.patterns.len() as u64);
            for p in &e.patterns {
                put_u32(&mut out, p.items.len() as u32);
                for &it in &p.items {
                    put_u32(&mut out, it);
                }
                put_u64(&mut out, p.support);
            }
        }
        out
    }
}

/// Writes a query tag in the canonical [`fpm::PatternQuery::encode`]
/// byte layout (asserted equal by a unit test below): class code `u8`,
/// top-k flag `u8` (+ `u64` LE when set), rules flag `u8` (+ two `f64`
/// bit patterns LE when set).
fn enc_query(out: &mut Vec<u8>, q: &QueryKey) {
    out.push(q.class);
    match q.top_k {
        Some(k) => {
            out.push(1);
            put_u64(out, k);
        }
        None => out.push(0),
    }
    match q.rules {
        Some((c, l)) => {
            out.push(1);
            put_u64(out, c);
            put_u64(out, l);
        }
        None => out.push(0),
    }
}

/// Reads [`enc_query`]'s layout, validating the class code and flag
/// bytes; `None` on anything malformed.
fn dec_query(rd: &mut Rd) -> Option<QueryKey> {
    let class = rd.u8()?;
    MineKind::from_code(class)?;
    let top_k = match rd.u8()? {
        0 => None,
        1 => Some(rd.u64()?),
        _ => return None,
    };
    let rules = match rd.u8()? {
        0 => None,
        1 => Some((rd.u64()?, rd.u64()?)),
        _ => return None,
    };
    Some(QueryKey { class, top_k, rules })
}

/// A conservative cap on decoded element counts: no section of a real
/// artifact approaches it, and honoring a corrupted length prefix of
/// e.g. `u64::MAX` must fail fast instead of attempting the allocation.
const SANE_MAX: u64 = 1 << 32;

fn take_len(n: u64, section: &'static str) -> Result<usize, LoadError> {
    if n > SANE_MAX {
        Err(LoadError::Corrupt { section })
    } else {
        Ok(n as usize)
    }
}

fn enc_rows_items(rows: &[Vec<Item>]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, rows.len() as u64);
    for t in rows {
        put_u32(&mut out, t.len() as u32);
        for &i in t {
            put_u32(&mut out, i);
        }
    }
    out
}

fn enc_rows_u32(rows: &[Vec<u32>]) -> Vec<u8> {
    enc_rows_items(rows)
}

fn dec_rows_items(bytes: &[u8], section: &'static str) -> Result<Vec<Vec<u32>>, LoadError> {
    let corrupt = || LoadError::Corrupt { section };
    let mut rd = Rd::new(bytes);
    let n = take_len(rd.u64().ok_or_else(corrupt)?, section)?;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let len = rd.u32().ok_or_else(corrupt)? as usize;
        let mut row = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            row.push(rd.u32().ok_or_else(corrupt)?);
        }
        rows.push(row);
    }
    if !rd.exhausted() {
        return Err(corrupt());
    }
    Ok(rows)
}

fn dec_meta(bytes: &[u8]) -> Result<(SpecMeta, u64, u64, u64), LoadError> {
    let corrupt = || LoadError::Corrupt { section: "meta" };
    let mut rd = Rd::new(bytes);
    let generation = rd.u64().ok_or_else(corrupt)?;
    let fingerprint = rd.u64().ok_or_else(corrupt)?;
    let prepared_minsup = rd.u64().ok_or_else(corrupt)?;
    let kind = SpecKind::from_code(rd.u8().ok_or_else(corrupt)?).ok_or_else(corrupt)?;
    let dataset = rd.str().ok_or_else(corrupt)?;
    let scale = rd.str().ok_or_else(corrupt)?;
    if !rd.exhausted() {
        return Err(corrupt());
    }
    Ok((SpecMeta { kind, dataset, scale }, generation, fingerprint, prepared_minsup))
}

fn dec_freq(bytes: &[u8]) -> Result<Vec<u64>, LoadError> {
    let corrupt = || LoadError::Corrupt { section: "freq" };
    let mut rd = Rd::new(bytes);
    let n = take_len(rd.u64().ok_or_else(corrupt)?, "freq")?;
    let mut freq = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        freq.push(rd.u64().ok_or_else(corrupt)?);
    }
    if !rd.exhausted() {
        return Err(corrupt());
    }
    Ok(freq)
}

fn dec_ranked(bytes: &[u8]) -> Result<RankedSection, LoadError> {
    let corrupt = || LoadError::Corrupt { section: "ranked" };
    let mut rd = Rd::new(bytes);
    let n_ranks = rd.u32().ok_or_else(corrupt)? as usize;
    let mut to_orig = Vec::with_capacity(n_ranks.min(1 << 20));
    for _ in 0..n_ranks {
        to_orig.push(rd.u32().ok_or_else(corrupt)?);
    }
    let mut supports = Vec::with_capacity(n_ranks.min(1 << 20));
    for _ in 0..n_ranks {
        supports.push(rd.u64().ok_or_else(corrupt)?);
    }
    let original_len = rd.u64().ok_or_else(corrupt)?;
    let n = take_len(rd.u64().ok_or_else(corrupt)?, "ranked")?;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let len = rd.u32().ok_or_else(corrupt)? as usize;
        let mut row = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            row.push(rd.u32().ok_or_else(corrupt)?);
        }
        rows.push(row);
    }
    if !rd.exhausted() {
        return Err(corrupt());
    }
    Ok(RankedSection { to_orig, supports, original_len, rows })
}

fn dec_vbm(bytes: &[u8]) -> Result<BitMatrix, LoadError> {
    let corrupt = || LoadError::Corrupt { section: "vbm" };
    let mut rd = Rd::new(bytes);
    let n_ranks = rd.u32().ok_or_else(corrupt)?;
    let n_rows = rd.u64().ok_or_else(corrupt)?;
    let words_per_col = rd.u32().ok_or_else(corrupt)?;
    let n_words = take_len((n_ranks as u64).saturating_mul(words_per_col as u64), "vbm")?;
    let mut words = Vec::with_capacity(n_words.min(1 << 20));
    for _ in 0..n_words {
        words.push(rd.u64().ok_or_else(corrupt)?);
    }
    if !rd.exhausted() {
        return Err(corrupt());
    }
    Ok(BitMatrix { n_ranks, n_rows, words_per_col, words })
}

fn dec_fpt(bytes: &[u8]) -> Result<PrefixTree, LoadError> {
    let corrupt = || LoadError::Corrupt { section: "fpt" };
    let mut rd = Rd::new(bytes);
    let n = take_len(rd.u64().ok_or_else(corrupt)?, "fpt")?;
    let mut items = Vec::with_capacity(n.min(1 << 20));
    let mut parents = Vec::with_capacity(n.min(1 << 20));
    let mut counts = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        items.push(rd.u32().ok_or_else(corrupt)?);
        parents.push(rd.u32().ok_or_else(corrupt)?);
        counts.push(rd.u64().ok_or_else(corrupt)?);
    }
    if !rd.exhausted() {
        return Err(corrupt());
    }
    Ok(PrefixTree { items, parents, counts })
}

fn dec_results(bytes: &[u8], version: u32) -> Result<Vec<ResultEntry>, LoadError> {
    let corrupt = || LoadError::Corrupt { section: "results" };
    let mut rd = Rd::new(bytes);
    let n = take_len(rd.u64().ok_or_else(corrupt)?, "results")?;
    let mut results = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let kernel = rd.u8().ok_or_else(corrupt)?;
        let min_support = rd.u64().ok_or_else(corrupt)?;
        let query = if version >= 2 {
            dec_query(&mut rd).ok_or_else(corrupt)?
        } else {
            // Version 1 predates the query surface: every entry answers
            // the identity query.
            QueryKey::default()
        };
        let generation = rd.u64().ok_or_else(corrupt)?;
        let np = take_len(rd.u64().ok_or_else(corrupt)?, "results")?;
        let mut patterns = Vec::with_capacity(np.min(1 << 20));
        for _ in 0..np {
            let len = rd.u32().ok_or_else(corrupt)? as usize;
            let mut items = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                items.push(rd.u32().ok_or_else(corrupt)?);
            }
            let support = rd.u64().ok_or_else(corrupt)?;
            patterns.push(ItemsetCount { items, support });
        }
        results.push(ResultEntry { kernel, min_support, query, generation, patterns });
    }
    if !rd.exhausted() {
        return Err(corrupt());
    }
    Ok(results)
}

/// Lists every artifact (`*.fpa`) under `dir`, sorted by path so warm
/// starts visit artifacts in a deterministic order.
pub fn scan(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some(EXTENSION) {
            paths.push(path);
        }
    }
    paths.sort();
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (TransactionDb, Artifact) {
        let db = TransactionDb::from_transactions(vec![
            vec![1, 2, 3],
            vec![1, 2],
            vec![2, 3],
            vec![5, 2, 1],
            vec![4],
        ]);
        let mut a = Artifact::build(SpecMeta::named("ds1", "smoke"), &db, 2);
        a.push_result(
            0,
            2,
            QueryKey::default(),
            vec![
                ItemsetCount { items: vec![1], support: 3 },
                ItemsetCount { items: vec![1, 2], support: 3 },
            ],
        );
        // A query-tagged entry (closed, top-2): v2's reason to exist.
        a.push_result(
            0,
            2,
            fpm::PatternQuery::class(fpm::types::MineKind::Closed)
                .top_k(2)
                .key(),
            vec![ItemsetCount { items: vec![1, 2], support: 3 }],
        );
        (db, a)
    }

    #[test]
    fn encode_decode_roundtrips_exactly() {
        let (_, a) = sample();
        let bytes = a.encode();
        let back = Artifact::decode(&bytes).expect("clean bytes decode");
        assert_eq!(back, a);
        assert!(back.verify_deep().is_ok());
    }

    #[test]
    fn build_is_consistent_with_verify_deep() {
        let (_, a) = sample();
        assert!(a.verify_deep().is_ok());
        let mut tampered = a.clone();
        tampered.freq[1] += 1;
        assert!(tampered.verify_deep().is_err());
        let mut stale = a;
        stale.prepared_minsup = 3; // prepared sections now claim the wrong minsup
        assert!(stale.verify_deep().is_err());
    }

    #[test]
    fn every_truncation_is_detected() {
        let (_, a) = sample();
        let bytes = a.encode();
        for cut in 0..bytes.len() {
            assert!(
                Artifact::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let (_, a) = sample();
        let bytes = a.encode();
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x40;
            assert!(
                Artifact::decode(&flipped).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn version_and_magic_get_their_own_taxonomy() {
        let (_, a) = sample();
        let mut bytes = a.encode();
        bytes[0] = b'X';
        assert!(matches!(Artifact::decode(&bytes), Err(LoadError::BadMagic)));
        let mut v3 = a.encode();
        v3[8] = 3; // version field: one past everything decodable
        assert!(matches!(Artifact::decode(&v3), Err(LoadError::BadVersion(3))));
    }

    #[test]
    fn v1_artifacts_still_decode_with_identity_query_tags() {
        let (_, a) = sample();
        let v1 = a.encode_legacy_v1();
        assert_eq!(&v1[8..12], &1u32.to_le_bytes(), "legacy writer stamps version 1");
        let back = Artifact::decode(&v1).expect("v1 bytes decode");
        // The query-tagged entry cannot ride in a v1 file; the identity
        // entry survives, tagged as the identity query.
        assert_eq!(back.results.len(), 1);
        assert_eq!(back.results[0].query, QueryKey::default());
        assert_eq!(back.results[0].patterns, a.results[0].patterns);
        assert_eq!(back.spec, a.spec);
        assert_eq!(back.fingerprint, a.fingerprint);
        assert!(back.verify_deep().is_ok());
        // Re-encoding the decoded artifact lands on v2 bytes that
        // round-trip: upgrade-on-rewrite, no special casing.
        let upgraded = Artifact::decode(&back.encode()).expect("v2 re-encode decodes");
        assert_eq!(upgraded, back);
    }

    #[test]
    fn query_tag_layout_matches_canonical_encoding() {
        // The store's tag bytes must be exactly
        // `fpm::PatternQuery::encode` — one canonical layout everywhere.
        let queries = [
            fpm::PatternQuery::all(),
            fpm::PatternQuery::class(fpm::types::MineKind::Closed),
            fpm::PatternQuery::class(fpm::types::MineKind::Maximal)
                .top_k(7)
                .rules(fpm::RuleSpec { min_confidence: 0.75, min_lift: 1.1 }),
        ];
        for q in queries {
            let mut tagged = Vec::new();
            enc_query(&mut tagged, &q.key());
            assert_eq!(tagged, q.encode(), "{}", q.label());
            let mut rd = Rd::new(&tagged);
            assert_eq!(dec_query(&mut rd), Some(q.key()));
            assert!(rd.exhausted());
        }
        // Malformed tags are rejected, not misread.
        for bad in [&[9u8, 0, 0][..], &[0, 2, 0], &[0, 0, 7], &[0, 1, 0]] {
            let mut rd = Rd::new(bad);
            assert!(dec_query(&mut rd).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn push_result_replaces_per_query_slot() {
        let (_, mut a) = sample();
        let closed = fpm::PatternQuery::class(fpm::types::MineKind::Closed).key();
        assert_eq!(a.results.len(), 2);
        // Same (kernel, minsup), third query: a new slot.
        a.push_result(0, 2, closed, vec![]);
        assert_eq!(a.results.len(), 3);
        // Same triple again: replaced, not appended.
        a.push_result(0, 2, closed, vec![ItemsetCount { items: vec![2], support: 4 }]);
        assert_eq!(a.results.len(), 3);
        let entry = a
            .results
            .iter()
            .find(|e| e.query == closed)
            .expect("closed-query slot exists");
        assert_eq!(entry.patterns.len(), 1);
    }

    #[test]
    fn generation_gates_live_results() {
        let (_, mut a) = sample();
        assert_eq!(a.live_results().count(), 2);
        a.generation += 1;
        assert_eq!(a.live_results().count(), 0, "stale-generation entries are dead");
        a.push_result(1, 2, QueryKey::default(), vec![]);
        assert_eq!(a.live_results().count(), 1);
    }

    #[test]
    fn store_writes_atomically_and_scan_finds_it() {
        let (_, a) = sample();
        let dir = std::env::temp_dir().join(format!(
            "fpm-store-unit-{}-{}",
            std::process::id(),
            line!()
        ));
        fs::create_dir_all(&dir).unwrap();
        let path = a.path_in(&dir);
        a.store(&path).unwrap();
        assert!(!path.with_extension("fpa.tmp").exists());
        let paths = scan(&dir).unwrap();
        assert_eq!(paths, vec![path.clone()]);
        let back = Artifact::load(&path).unwrap();
        assert_eq!(back, a);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_matches_shape_and_content() {
        let a = TransactionDb::from_transactions(vec![vec![1, 2], vec![3]]);
        let b = TransactionDb::from_transactions(vec![vec![1], vec![2, 3]]);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let c = TransactionDb::from_transactions(vec![vec![2, 1], vec![3]]);
        assert_eq!(fingerprint(&a), fingerprint(&c), "normalization first, then hash");
    }
}
