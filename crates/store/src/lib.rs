//! # `fpm-store` — the persistent prepared-artifact store
//!
//! Serve re-parses and re-mines every dataset from scratch each process
//! lifetime. This crate makes the *prepared* forms durable instead
//! (DESIGN.md §14): a compact, versioned, checksummed on-disk artifact
//! holding the remapped database, the item-frequency map, the vertical
//! bit-matrix, the serialized prefix tree, and persisted result-cache
//! entries — so a restart costs a checksum pass, not a rebuild. That is
//! the paper's P2 data-structure-adaptation pattern carried across the
//! process boundary: the expensive step is building the adapted
//! structures, so those, not the raw text, are what persist.
//!
//! The three load-bearing promises:
//!
//! * **Every byte is checksummed.** The header and section table are
//!   covered by a table CRC-32, each section payload by its own, and
//!   the decoder requires the payloads to exactly fill the file — so
//!   any truncation or bit-flip anywhere reads as a typed
//!   [`LoadError`], never a panic and never silent garbage. Chaos site
//!   #7 (`artifact-corruption`) drives truncation and bit-flip flavors
//!   through [`Artifact::load`] to prove the fallback-to-cold-rebuild
//!   path end to end.
//! * **Writes are atomic.** [`Artifact::store`] serializes to a
//!   sibling `.tmp` and renames over the target; a crash leaves the
//!   old artifact intact.
//! * **Generations invalidate.** Persisted results are keyed
//!   `(kernel, minsup, query, generation)` — the query tag is the
//!   canonical [`fpm::PatternQuery`] encoding, new in format version 2
//!   (version-1 files still load, every entry read as the identity
//!   query); [`append`] bumps the generation,
//!   so stale patterns can never be served for an appended dataset —
//!   and when the append preserves the frequent-item rank order, the
//!   remapped DB and frequency map are patched in place rather than
//!   rebuilt (the write-efficient hot/cold split of the NVM FPM work
//!   in PAPERS.md).
//!
//! ```
//! use fpm::TransactionDb;
//! use fpm_store::{append, Artifact, SpecMeta};
//!
//! let db = TransactionDb::from_transactions(vec![vec![1, 2, 3], vec![1, 2], vec![2, 3]]);
//! let mut artifact = Artifact::build(SpecMeta::named("ds1", "smoke"), &db, 2);
//! // kernel code 0 = lcm; the default query key is the identity query.
//! artifact.push_result(0, 2, fpm::QueryKey::default(), vec![]);
//!
//! let bytes = artifact.encode();
//! let back = Artifact::decode(&bytes).unwrap();
//! assert_eq!(back, artifact);
//!
//! let report = append(&mut artifact, &[vec![1, 2]]);
//! assert_eq!(report.generation, 1);
//! assert_eq!(artifact.live_results().count(), 0); // invalidated
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod append;
pub mod artifact;
pub mod fmt;

pub use append::{append, AppendReport};
pub use artifact::{
    fingerprint, scan, section_name, Artifact, BitMatrix, LoadError, PrefixTree, RankedSection,
    ResultEntry, SpecKind, SpecMeta, DECODABLE_VERSIONS, EXTENSION, FORMAT_VERSION, MAGIC,
};
